// Figure 8: client-LDNS distance box plots for public-resolver clients,
// by country. Paper: AR and BR largest (no South American resolver
// sites); SG/MY clients often detoured despite Singapore sites; Western
// Europe / HK / TW comparatively close.
#include "bench_common.h"

#include <algorithm>

#include "topo/country_data.h"

using namespace eum;

int main() {
  bench::banner("Figure 8 - public-resolver client-LDNS distance by country",
                "AR/BR largest; SE-Asia detoured; EU/HK/TW closest; 12-country high half");

  const auto& world = bench::default_world();
  struct Row {
    std::string code;
    stats::BoxPlot box;
  };
  std::vector<Row> rows;
  for (topo::CountryId ci = 0; ci < world.countries.size(); ++ci) {
    measure::DistanceFilter filter;
    filter.country = ci;
    filter.public_only = true;
    const auto sample = measure::client_ldns_distance_sample(world, filter);
    if (sample.empty()) continue;
    rows.push_back({world.countries[ci].code, sample.box_plot()});
  }
  // The paper orders countries by decreasing median.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.box.p50 > b.box.p50; });

  stats::Table table{"country", "p5", "p25", "median", "p75", "p95", "group"};
  std::string high_group;
  for (const Row& row : rows) {
    const bool high = row.box.p50 > 1000.0;
    if (high) high_group += row.code + " ";
    table.add_row({row.code, stats::num(row.box.p5, 0), stats::num(row.box.p25, 0),
                   stats::num(row.box.p50, 0), stats::num(row.box.p75, 0),
                   stats::num(row.box.p95, 0), high ? "HIGH" : "low"});
  }
  std::printf("(miles, sorted by median)\n%s\n", table.render().c_str());
  std::printf("high-expectation group (median > 1000 mi): %s\n", high_group.c_str());
  std::printf("paper's high group:                        AR BR AU IN ID SG MY TH TR MX JP VN\n\n");

  const auto median_of = [&](const char* code) {
    for (const Row& row : rows) {
      if (row.code == code) return row.box.p50;
    }
    return 0.0;
  };
  bench::compare("AR median (paper's largest)", 5000.0, median_of("AR"), "mi");
  bench::compare("BR median", 4500.0, median_of("BR"), "mi");
  bench::compare("TW median (paper's smallest)", 150.0, median_of("TW"), "mi");
  return 0;
}
