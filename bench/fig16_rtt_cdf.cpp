// Figure 16: RTT CDFs before/after the roll-out. Paper: all percentiles
// improve; high-expectation 75th percentile 220 -> 137 ms.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 16 - RTT CDFs before/after roll-out",
                "high-exp p75: 220 -> 137 ms");
  const auto& result = bench::rollout_bundle().result;
  bench::print_cdfs(result, &sim::MetricPools::rtt, "ms");

  std::printf("\n");
  bench::compare("high-exp p75 RTT before", 220.0, result.high_before.rtt.percentile(75), "ms");
  bench::compare("high-exp p75 RTT after", 137.0, result.high_after.rtt.percentile(75), "ms");
  return 0;
}
