// Figure 19: daily mean content download time during the roll-out.
// Paper: high-expectation mean fell from ~300 ms to ~150 ms (2x, tracking
// RTT since embedded content is latency-dominated); the low group's was
// already small.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 19 - daily mean content download time during the roll-out",
                "high-expectation mean 300 -> 150 ms (2x)");
  const auto& result = bench::rollout_bundle().result;
  bench::print_timeline(result, &sim::DailyMetrics::download_ms, "ms");

  const double before = result.high_before.download.mean();
  const double after = result.high_after.download.mean();
  std::printf("\n");
  bench::compare("high-exp mean download before", 300.0, before, "ms");
  bench::compare("high-exp mean download after", 150.0, after, "ms");
  bench::compare("high-exp download improvement", 2.0, before / after, "x");
  return 0;
}
