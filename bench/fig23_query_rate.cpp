// Figure 23: authoritative DNS query rate before/during/after the
// roll-out. Paper: total went from 870K to 1.17M qps; the public-resolver
// share went from 33.5K to 270K qps — an 8x increase, the price of
// per-block cache entries (RFC 7871 scoped caching).
//
// The study drives the real RecursiveResolver cache with Poisson client
// arrivals, with ECS off and on, and scales the sampled rates to the
// paper's magnitudes for the timeline view. An ECS-scope ablation sweep
// (the DESIGN.md knob) is appended.
#include "bench_common.h"

#include "sim/query_rate.h"
#include "sim/rollout.h"

using namespace eum;

namespace {

sim::QueryRateResult run_with_scope(int scope_len) {
  const auto& world = bench::default_world();
  static cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 300);
  cdn::MappingConfig mapping_config;
  mapping_config.ecs_scope_len = scope_len;
  cdn::MappingSystem mapping{&world, &network, &bench::default_latency(), mapping_config};

  sim::QueryRateConfig config;
  config.isp_ldns_sample = 120;
  config.domain_count = 40;
  config.horizon_seconds = 1800.0;
  config.queries_per_demand_unit = 0.001;
  return sim::run_query_rate_study(world, mapping, config);
}

}  // namespace

int main() {
  bench::banner("Figure 23 - DNS queries/s at the authorities across the roll-out",
                "total 870K -> 1.17M qps; public resolvers 33.5K -> 270K qps (8x)");

  const sim::QueryRateResult result = run_with_scope(24);

  // Scale sampled qps to the paper's pre-roll-out magnitudes: the paper's
  // public resolvers produced 33.5K qps and everyone else 836.5K qps.
  const double public_scale = 33'500.0 / std::max(1e-9, result.public_pre_qps);
  const double isp_scale =
      836'500.0 / std::max(1e-9, result.isp_qps / std::max(1e-9, result.isp_demand_coverage));

  const auto total_qps = [&](double fraction_rolled) {
    const double pub = result.public_pre_qps * (1.0 - fraction_rolled) +
                       result.public_post_qps * fraction_rolled;
    return pub * public_scale +
           result.isp_qps / result.isp_demand_coverage * isp_scale;
  };

  sim::RolloutConfig timeline;
  stats::Table table{"date", "total qps (K)", "public-resolver qps (K)"};
  for (int day = 0; day <= util::day_index(util::Date{2014, 6, 30}); day += 7) {
    const util::Date date = util::date_from_day_index(day);
    const int ramp_lo = util::day_index(timeline.ramp_start);
    const int ramp_hi = util::day_index(timeline.ramp_end);
    double fraction = 0.0;
    if (day >= ramp_hi) {
      fraction = 1.0;
    } else if (day > ramp_lo) {
      fraction = static_cast<double>(day - ramp_lo) / static_cast<double>(ramp_hi - ramp_lo);
    }
    const double pub_qps = (result.public_pre_qps * (1.0 - fraction) +
                            result.public_post_qps * fraction) *
                           public_scale;
    table.add_row({util::to_string(date), stats::num(total_qps(fraction) / 1e3, 0),
                   stats::num(pub_qps / 1e3, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("public-resolver query increase", 8.0, result.public_factor(), "x");
  bench::compare("total qps before (K)", 870.0, total_qps(0.0) / 1e3, "K");
  bench::compare("total qps after (K)", 1170.0, total_qps(1.0) / 1e3, "K");

  // Ablation: the ECS answer scope trades precision for cacheability.
  std::printf("\nECS scope ablation (answer scope /y; broader scopes recombine cache entries):\n");
  stats::Table ablation{"answer scope", "public factor"};
  for (const int scope : {24, 20, 16}) {
    const auto r = scope == 24 ? result : run_with_scope(scope);
    ablation.add_row({util::format("/%d", scope), stats::num(r.public_factor(), 1) + "x"});
  }
  std::printf("%s", ablation.render().c_str());
  return 0;
}
