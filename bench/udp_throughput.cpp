// Concurrent UDP front-end throughput: the same authoritative engine
// served by 1, 2, and 4 SO_REUSEPORT workers, hammered by closed-loop
// client threads. The handler charges a fixed simulated backend latency
// per query (geo lookup / mapping decision / upstream wait), so worker
// threads pay off by overlapping waits — the regime the paper's
// authorities actually run in — and the speedup column is meaningful
// even on small machines. Prints an aligned table with registry-derived
// serve-latency percentiles; regen_figures.sh captures it alongside the
// figure benches. Results are also written as BENCH_udp_throughput.json
// (path overridable via the EUM_BENCH_OUT environment variable) so the
// perf trajectory accumulates across runs.
//
// A second section measures control-plane churn: the real mapping system
// served through the MapMaker's RCU snapshot fast path by 4 workers,
// first with a static map (steady state), then with a background
// republish every EUM_CHURN_MS milliseconds (default 50). The comparison
// answers "what does continuous map publishing cost the serving path" —
// the RCU design's claim is: nothing but the snapshot build's CPU.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cdn/mapping.h"
#include "control/map_maker.h"
#include "dnsserver/udp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/table.h"
#include "topo/world_gen.h"

namespace {

using namespace std::chrono_literals;
using namespace eum;

constexpr auto kBackendLatency = 300us;  // simulated per-query backend work
constexpr auto kMeasureWindow = 400ms;   // per-configuration measurement
constexpr int kClientThreads = 8;

struct RunResult {
  std::size_t workers = 0;
  std::uint64_t attempted = 0;  ///< queries the clients sent
  std::uint64_t answered = 0;   ///< queries actually answered in time
  double seconds = 0.0;
  dnsserver::UdpServerStats stats;
  obs::HistogramSnapshot latency;  ///< eum_udp_serve_latency_us, this run
  /// Achieved (answered) rate — attempted-but-unanswered queries are
  /// reported separately, never folded into the headline number.
  [[nodiscard]] double qps() const { return static_cast<double>(answered) / seconds; }
};

RunResult run_config(std::size_t workers) {
  dnsserver::AuthoritativeServer engine;
  engine.add_dynamic_domain(
      dns::DnsName::from_text("g.cdn.example"),
      [](const dnsserver::DynamicQuery&) -> std::optional<dnsserver::DynamicAnswer> {
        std::this_thread::sleep_for(kBackendLatency);
        dnsserver::DynamicAnswer answer;
        answer.ttl = 20;
        answer.addresses = {net::IpAddr{net::IpV4Addr{203, 0, 0, 1}}};
        return answer;
      });
  dnsserver::UdpAuthorityServer server{
      &engine, dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0},
      dnsserver::UdpServerConfig{workers}};
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> attempted{0};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      dnsserver::UdpDnsClient client;
      std::uint16_t id = static_cast<std::uint16_t>(c * 1000 + 1);
      const dns::Message query = dns::Message::make_query(
          id, dns::DnsName::from_text("www.g.cdn.example"), dns::RecordType::A);
      while (!stop.load(std::memory_order_relaxed)) {
        attempted.fetch_add(1, std::memory_order_relaxed);
        if (client.query(query, server.endpoint(), 2000ms)) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kMeasureWindow);
  stop = true;
  for (std::thread& thread : clients) thread.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult result;
  result.workers = workers;
  result.attempted = attempted.load(std::memory_order_relaxed);
  result.answered = answered.load(std::memory_order_relaxed);
  result.seconds = std::chrono::duration<double>(elapsed).count();
  result.stats = server.stats();
  // Each run has its own engine, hence its own registry: the serve
  // latency histogram covers exactly this configuration's window.
  result.latency = server.registry().histogram("eum_udp_serve_latency_us").snapshot();
  server.stop();
  return result;
}

// --- wire answer cache: repeat-query hot path --------------------------

// The tentpole workload: a repeat-heavy query stream (one hot qname)
// against the batched serve path, with the wire answer cache off vs on.
// The client is windowed and batched — it pre-encodes a window of
// queries once, then pumps them with send_batch/receive_batch — so on a
// small machine the client's own syscall cost does not mask the server's
// fast path. One client flow (socket) per worker keeps SO_REUSEPORT's
// flow hashing from funnelling everything to one worker.
constexpr std::size_t kCacheWindow = 64;

struct CacheRun {
  std::size_t workers = 0;
  bool cache_on = false;
  std::uint32_t trace_sample = 0;  ///< 0 = tracing off, else 1-in-N sampling
  std::uint64_t answered = 0;
  std::uint64_t trace_committed = 0;  ///< records the flight recorder kept
  double seconds = 0.0;
  double hit_ratio = 0.0;
  obs::HistogramSnapshot latency;  ///< per-batch serve latency
  [[nodiscard]] double qps() const { return static_cast<double>(answered) / seconds; }
};

CacheRun run_cache_config(std::size_t workers, bool cache_on,
                          std::uint32_t trace_sample = 0) {
  dnsserver::AuthoritativeServer engine;
  engine.set_latency_tracking(false);  // measure serving, not instrumentation
  engine.add_dynamic_domain(
      dns::DnsName::from_text("g.cdn.example"),
      [](const dnsserver::DynamicQuery&) -> std::optional<dnsserver::DynamicAnswer> {
        std::this_thread::sleep_for(kBackendLatency);
        dnsserver::DynamicAnswer answer;
        answer.ttl = 20;
        answer.addresses = {net::IpAddr{net::IpV4Addr{203, 0, 0, 1}}};
        return answer;
      });
  dnsserver::UdpServerConfig config;
  config.workers = workers;
  config.batch = kCacheWindow;
  if (cache_on) config.answer_cache_entries = 1024;
  // Optional tracing arm: the flight recorder outlives the server (the
  // workers' QueryTracers borrow it until stop() joins them).
  obs::FlightRecorderConfig trace_config;
  trace_config.sample_every = trace_sample == 0 ? 1 : trace_sample;
  obs::FlightRecorder recorder{trace_config};
  if (trace_sample != 0) config.recorder = &recorder;
  dnsserver::UdpAuthorityServer server{
      &engine, dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0}, config};
  server.start();

  struct Flow {
    dnsserver::UdpSocket socket{dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0}};
    dnsserver::UdpBatch tx{kCacheWindow};
    dnsserver::UdpBatch rx{kCacheWindow};
    std::vector<std::vector<std::uint8_t>> wires;  ///< pre-encoded queries
  };
  std::vector<Flow> flows(workers);
  std::uint16_t id = 1;
  for (Flow& flow : flows) {
    flow.wires.reserve(kCacheWindow);
    for (std::size_t i = 0; i < kCacheWindow; ++i) {
      flow.wires.push_back(dns::Message::make_query(
                               id++, dns::DnsName::from_text("www.g.cdn.example"),
                               dns::RecordType::A)
                               .encode());
    }
  }

  std::uint64_t answered = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + kMeasureWindow;
  while (std::chrono::steady_clock::now() < deadline) {
    for (Flow& flow : flows) {
      for (const std::vector<std::uint8_t>& wire : flow.wires) {
        flow.tx.stage(server.endpoint()).assign(wire.begin(), wire.end());
      }
      (void)flow.socket.send_batch(flow.tx);
    }
    for (Flow& flow : flows) {
      std::size_t got = 0;
      const auto flow_deadline = std::chrono::steady_clock::now() + 1000ms;
      while (got < kCacheWindow && std::chrono::steady_clock::now() < flow_deadline) {
        const std::size_t n = flow.socket.receive_batch(flow.rx, 100ms);
        if (n == 0) break;  // lost datagrams: move on, next window refills
        got += n;
      }
      answered += got;
    }
  }

  CacheRun run;
  run.workers = workers;
  run.cache_on = cache_on;
  run.trace_sample = trace_sample;
  run.answered = answered;
  run.trace_committed = recorder.committed();
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  run.hit_ratio = server.stats().cache_hit_ratio();
  run.latency = server.registry().histogram("eum_udp_serve_latency_us").snapshot();
  server.stop();
  return run;
}

// --- tracing overhead gate ---------------------------------------------

/// The flight recorder's serve-path cost, measured where it matters: the
/// repeat-query cache-on fast path at 4 workers, untraced vs traced at
/// 1-in-kTraceSample. Trials run as adjacent untraced/traced pairs with
/// alternating order (so frequency/thermal drift cannot systematically
/// favour one arm), and each arm's batch-latency histograms are MERGED
/// across trials: the reported ratio compares the p99 of every untraced
/// batch against the p99 of every traced batch over the same interleaved
/// windows. On a small shared box a single 400 ms window's p99 swings
/// ±20 % with ambient noise — far more than the ~50 ns/query the tracer
/// actually costs — while the merged distributions see the same noise on
/// both sides and converge to the true overhead. Pairs keep running
/// (bounded) until the ratio settles under the quiet threshold.
constexpr std::uint32_t kTraceSample = 64;
constexpr int kTraceMinTrials = 3;
constexpr int kTraceMaxTrials = 16;
constexpr double kTraceQuietRatio = 1.03;  ///< stop early at/below this

struct TracingReport {
  std::uint32_t sample_every = kTraceSample;
  double untraced_p99_us = 0.0;  ///< p99 of the merged untraced trials
  double traced_p99_us = 0.0;    ///< p99 of the merged traced trials
  std::uint64_t committed = 0;   ///< trace records kept across traced trials
  int trials = 0;
  [[nodiscard]] double p99_ratio() const {
    return untraced_p99_us == 0.0 ? 0.0 : traced_p99_us / untraced_p99_us;
  }
};

TracingReport run_tracing_overhead() {
  (void)run_cache_config(4, true, 0);  // warm-up window, discarded
  TracingReport report;
  obs::HistogramSnapshot untraced;
  obs::HistogramSnapshot traced;
  for (int trial = 0; trial < kTraceMaxTrials; ++trial) {
    const bool traced_first = (trial % 2) != 0;
    for (int arm = 0; arm < 2; ++arm) {
      const bool is_traced = (arm == 0) == traced_first;
      const CacheRun run = run_cache_config(4, true, is_traced ? kTraceSample : 0);
      (is_traced ? traced : untraced).merge(run.latency);
      if (is_traced) report.committed += run.trace_committed;
    }
    report.trials = trial + 1;
    report.untraced_p99_us = untraced.percentile(99);
    report.traced_p99_us = traced.percentile(99);
    if (report.trials >= kTraceMinTrials && report.p99_ratio() <= kTraceQuietRatio) {
      break;
    }
  }
  return report;
}

// --- control-plane churn mode ------------------------------------------

struct ChurnPhase {
  std::uint64_t answered = 0;
  std::uint64_t timeouts = 0;  ///< dropped queries (client gave up)
  double seconds = 0.0;
  obs::HistogramSnapshot latency;  ///< eum_udp_serve_latency_us, this phase
  [[nodiscard]] double qps() const { return static_cast<double>(answered) / seconds; }
};

struct ChurnReport {
  std::chrono::milliseconds interval{0};
  ChurnPhase steady;
  ChurnPhase churn;
  std::uint64_t publishes = 0;
  std::uint64_t final_version = 0;
  [[nodiscard]] double p99_ratio() const {
    const double base = steady.latency.percentile(99);
    return base == 0.0 ? 0.0 : churn.latency.percentile(99) / base;
  }
};

/// One measurement window against a running server: closed-loop ECS
/// clients, serve-latency percentiles from the shared registry.
ChurnPhase churn_phase(dnsserver::UdpAuthorityServer& server, const topo::World& world,
                       std::chrono::milliseconds window) {
  server.reset_stats();  // clean per-phase latency histogram
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      dnsserver::UdpDnsClient client;
      const auto qname = dns::DnsName::from_text("www.g.cdn.example");
      // Each query announces a different client /24, spreading the
      // end-user mapping decisions over the snapshot's scoring tables
      // with a realistic hot-block skew (shared seeded Zipf sampler).
      bench::BlockSampler blocks{world, 42, static_cast<std::uint64_t>(c)};
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const topo::ClientBlock& block = blocks.next();
        i += 1;
        const auto ecs = dns::ClientSubnetOption::for_query(
            net::IpAddr{net::IpV4Addr{block.prefix.address().v4().value() + 1}}, 24);
        const auto query = dns::Message::make_query(static_cast<std::uint16_t>(i), qname,
                                                    dns::RecordType::A, ecs);
        if (client.query(query, server.endpoint(), 2000ms)) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(window);
  stop = true;
  for (std::thread& thread : clients) thread.join();

  ChurnPhase phase;
  phase.answered = answered.load(std::memory_order_relaxed);
  phase.timeouts = timeouts.load(std::memory_order_relaxed);
  phase.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  phase.latency = server.registry().histogram("eum_udp_serve_latency_us").snapshot();
  return phase;
}

/// Steady-state vs churn percentiles over the real mapping stack: the
/// same serving setup, measured once with a static published map and
/// once with the MapMaker republishing every `interval`.
ChurnReport run_churn(std::chrono::milliseconds interval) {
  topo::WorldGenConfig world_config;
  world_config.seed = 42;
  world_config.target_blocks = 4000;
  world_config.target_ases = 220;
  world_config.ping_targets = 400;
  const topo::World world = topo::generate_world(world_config);
  const topo::LatencyModel latency{topo::LatencyParams{}, world_config.seed};
  cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 150);
  cdn::MappingSystem mapping{&world, &network, &latency, cdn::MappingConfig{}};

  control::MapMakerConfig maker_config;
  maker_config.publish_unchanged = true;  // full-rate republish path
  control::MapMaker maker{&mapping, nullptr, maker_config};
  maker.install_fast_path();  // serving reads the RCU snapshot, lock-free

  dnsserver::AuthoritativeServer engine;
  const topo::Ldns& fallback_ldns = world.ldnses.front();
  auto inner = mapping.dns_handler();
  engine.add_dynamic_domain(
      dns::DnsName::from_text("g.cdn.example"),
      [&world, &fallback_ldns, inner](const dnsserver::DynamicQuery& query)
          -> std::optional<dnsserver::DynamicAnswer> {
        dnsserver::DynamicQuery patched = query;
        if (world.ldns_by_address(query.resolver) == nullptr) {
          patched.resolver = fallback_ldns.address;
        }
        return inner(patched);
      });
  dnsserver::UdpAuthorityServer server{
      &engine, dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0},
      dnsserver::UdpServerConfig{4}};
  server.start();

  ChurnReport report;
  report.interval = interval;
  report.steady = churn_phase(server, world, kMeasureWindow);

  const std::uint64_t publishes_before = maker.publishes();
  maker.start(interval);
  report.churn = churn_phase(server, world, kMeasureWindow);
  maker.stop();
  report.publishes = maker.publishes() - publishes_before;
  report.final_version = maker.version();
  server.stop();
  return report;
}

/// Seed-era closed-loop throughput at 4 workers (BENCH history): the
/// baseline the answer-cache speedup is reported against.
constexpr double kSeedBaselineQps = 9524.0;

/// BENCH_udp_throughput.json: one object per worker configuration with
/// throughput and registry-derived latency percentiles.
void write_bench_json(const std::vector<RunResult>& results,
                      const std::vector<CacheRun>& cache_runs,
                      const TracingReport& tracing, const ChurnReport& churn,
                      const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::perror("udp_throughput: fopen bench artifact");
    return;
  }
  // closed_loop marks every rate in this artifact as what a
  // wait-for-the-answer client measured — subject to coordinated
  // omission. The open-loop latency-under-load record is BENCH_loadgen.json.
  std::fprintf(out,
               "{\n  \"bench\": \"udp_throughput\",\n  \"closed_loop\": true,\n"
               "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\"workers\": %zu, \"attempted\": %llu, \"answered\": %llu, "
                 "\"achieved_qps\": %.0f, "
                 "\"speedup\": %.3f, \"latency_us\": {\"count\": %llu, \"mean\": %.1f, "
                 "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"p999\": %.1f}}%s\n",
                 r.workers, static_cast<unsigned long long>(r.attempted),
                 static_cast<unsigned long long>(r.answered), r.qps(),
                 r.qps() / results.front().qps(),
                 static_cast<unsigned long long>(r.latency.count), r.latency.mean(),
                 r.latency.percentile(50), r.latency.percentile(90), r.latency.percentile(99),
                 r.latency.percentile(99.9), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"answer_cache\": {\n");
  std::fprintf(out,
               "    \"workload\": \"repeat-query (one hot qname), windowed batched "
               "client, %lldus backend per miss\",\n",
               static_cast<long long>(kBackendLatency.count()));
  std::fprintf(out, "    \"seed_baseline_qps\": %.0f,\n    \"runs\": [\n", kSeedBaselineQps);
  double best_on = 0.0;
  double best_off = 0.0;
  double best_on_ratio = 0.0;
  for (std::size_t i = 0; i < cache_runs.size(); ++i) {
    const CacheRun& r = cache_runs[i];
    std::fprintf(out,
                 "      {\"workers\": %zu, \"cache\": %s, \"answered\": %llu, "
                 "\"qps\": %.0f, \"hit_ratio\": %.4f, \"batch_p50_us\": %.1f, "
                 "\"batch_p99_us\": %.1f}%s\n",
                 r.workers, r.cache_on ? "true" : "false",
                 static_cast<unsigned long long>(r.answered), r.qps(), r.hit_ratio,
                 r.latency.percentile(50), r.latency.percentile(99),
                 i + 1 < cache_runs.size() ? "," : "");
    if (r.cache_on && r.qps() > best_on) {
      best_on = r.qps();
      best_on_ratio = r.hit_ratio;
    }
    if (!r.cache_on && r.qps() > best_off) best_off = r.qps();
  }
  std::fprintf(out,
               "    ],\n    \"hit_ratio\": %.4f,\n    \"best_cache_on_qps\": %.0f,\n"
               "    \"best_cache_off_qps\": %.0f,\n    \"speedup_vs_seed\": %.2f\n  },\n",
               best_on_ratio, best_on, best_off, best_on / kSeedBaselineQps);
  std::fprintf(out,
               "  \"tracing\": {\n    \"workload\": \"cache-on repeat-query fast path, "
               "4 workers, merged p99 over %d interleaved paired trials\",\n"
               "    \"sample_every\": %u,\n    \"untraced_p99_us\": %.1f,\n"
               "    \"traced_p99_us\": %.1f,\n    \"p99_ratio\": %.4f,\n"
               "    \"committed\": %llu\n  },\n",
               tracing.trials, tracing.sample_every, tracing.untraced_p99_us,
               tracing.traced_p99_us, tracing.p99_ratio(),
               static_cast<unsigned long long>(tracing.committed));
  const auto phase_json = [out](const char* name, const ChurnPhase& p) {
    std::fprintf(out,
                 "    \"%s\": {\"answered\": %llu, \"dropped\": %llu, \"qps\": %.0f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f},\n",
                 name, static_cast<unsigned long long>(p.answered),
                 static_cast<unsigned long long>(p.timeouts), p.qps(),
                 p.latency.percentile(50), p.latency.percentile(99));
  };
  std::fprintf(out, "  \"churn\": {\n    \"interval_ms\": %lld,\n",
               static_cast<long long>(churn.interval.count()));
  phase_json("steady", churn.steady);
  phase_json("under_churn", churn.churn);
  std::fprintf(out, "    \"publishes\": %llu,\n    \"p99_ratio\": %.3f\n  }\n}\n",
               static_cast<unsigned long long>(churn.publishes), churn.p99_ratio());
  std::fclose(out);
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main() {
  std::vector<RunResult> results;
  for (const std::size_t workers : {1U, 2U, 4U}) {
    results.push_back(run_config(workers));
  }

  stats::Table table{{"workers", "attempted", "answered", "achieved_qps", "speedup",
                      "per_worker_share", "p50_us", "p99_us"}};
  for (const RunResult& result : results) {
    // How evenly the kernel spread load across the REUSEPORT sockets:
    // max worker share of total (1/workers is a perfect spread).
    std::uint64_t busiest = 0;
    for (const std::uint64_t w : result.stats.per_worker) busiest = std::max(busiest, w);
    const double share = result.stats.queries == 0
                             ? 0.0
                             : static_cast<double>(busiest) /
                                   static_cast<double>(result.stats.queries);
    table.add_row({std::to_string(result.workers), std::to_string(result.attempted),
                   std::to_string(result.answered), stats::num(result.qps(), 0),
                   stats::num(result.qps() / results.front().qps(), 2),
                   stats::num(share, 2), stats::num(result.latency.percentile(50), 0),
                   stats::num(result.latency.percentile(99), 0)});
  }
  std::cout << "UDP front-end throughput, " << kClientThreads
            << " closed-loop clients, " << kBackendLatency.count()
            << "us simulated backend latency per query (achieved_qps counts "
               "answered queries only)\n\n"
            << table.render() << '\n';

  std::vector<CacheRun> cache_runs;
  for (const std::size_t workers : {1U, 4U}) {
    cache_runs.push_back(run_cache_config(workers, false));
    cache_runs.push_back(run_cache_config(workers, true));
  }
  stats::Table cache_table{
      {"workers", "cache", "answered", "qps", "hit_ratio", "vs_seed", "batch_p99_us"}};
  for (const CacheRun& run : cache_runs) {
    cache_table.add_row({std::to_string(run.workers), run.cache_on ? "on" : "off",
                         std::to_string(run.answered), stats::num(run.qps(), 0),
                         stats::num(run.hit_ratio, 3),
                         stats::num(run.qps() / kSeedBaselineQps, 2),
                         stats::num(run.latency.percentile(99), 0)});
  }
  std::cout << "Wire answer cache: repeat-query workload, windowed batched client, "
            << "seed baseline " << stats::num(kSeedBaselineQps, 0) << " qps\n\n"
            << cache_table.render() << '\n';

  const TracingReport tracing = run_tracing_overhead();
  std::cout << "\nFlight-recorder overhead: cache-on fast path at 4 workers, "
            << "1-in-" << tracing.sample_every << " sampling, merged p99 over "
            << tracing.trials << " interleaved paired trials\n"
            << "  untraced p99: " << stats::num(tracing.untraced_p99_us, 0)
            << " us, traced p99: " << stats::num(tracing.traced_p99_us, 0)
            << " us, ratio: " << stats::num(tracing.p99_ratio(), 3)
            << "x (target <= 1.05), trace records committed: " << tracing.committed
            << '\n';

  const char* churn_ms = std::getenv("EUM_CHURN_MS");
  const auto interval =
      std::chrono::milliseconds{churn_ms != nullptr ? std::atoi(churn_ms) : 50};
  const ChurnReport churn = run_churn(interval);
  stats::Table churn_table{{"phase", "answered", "dropped", "qps", "p50_us", "p99_us"}};
  const auto churn_row = [&](const char* name, const ChurnPhase& p) {
    churn_table.add_row({name, std::to_string(p.answered), std::to_string(p.timeouts),
                         stats::num(p.qps(), 0), stats::num(p.latency.percentile(50), 0),
                         stats::num(p.latency.percentile(99), 0)});
  };
  churn_row("steady", churn.steady);
  churn_row("churn", churn.churn);
  std::cout << "\nControl-plane churn: real mapping stack, 4 workers, MapMaker republishing "
               "every "
            << interval.count() << " ms (snapshot fast path)\n\n"
            << churn_table.render() << '\n'
            << "\nsnapshots published during churn window: " << churn.publishes
            << " (map version " << churn.final_version << ")"
            << "\nchurn p99 / steady p99: " << stats::num(churn.p99_ratio(), 2)
            << "x (target <= 1.20), dropped under churn: " << churn.churn.timeouts << '\n';

  const char* out_path = std::getenv("EUM_BENCH_OUT");
  write_bench_json(results, cache_runs, tracing, churn,
                   out_path != nullptr ? out_path : "BENCH_udp_throughput.json");

  double best_on = 0.0;
  double best_off = 0.0;
  for (const CacheRun& run : cache_runs) {
    if (run.cache_on) {
      best_on = std::max(best_on, run.qps());
    } else {
      best_off = std::max(best_off, run.qps());
    }
  }
  const double speedup = results.back().qps() / results.front().qps();
  std::cout << "\n4-worker speedup over 1 worker: " << stats::num(speedup, 2)
            << "x\nbest cache-on qps: " << stats::num(best_on, 0) << " ("
            << stats::num(best_on / kSeedBaselineQps, 2)
            << "x seed), best cache-off qps: " << stats::num(best_off, 0) << '\n';
  return speedup >= 2.0 && best_on > best_off ? 0 : 1;
}
