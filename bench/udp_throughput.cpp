// Concurrent UDP front-end throughput: the same authoritative engine
// served by 1, 2, and 4 SO_REUSEPORT workers, hammered by closed-loop
// client threads. The handler charges a fixed simulated backend latency
// per query (geo lookup / mapping decision / upstream wait), so worker
// threads pay off by overlapping waits — the regime the paper's
// authorities actually run in — and the speedup column is meaningful
// even on small machines. Prints an aligned table with registry-derived
// serve-latency percentiles; regen_figures.sh captures it alongside the
// figure benches. Results are also written as BENCH_udp_throughput.json
// (path overridable via the EUM_BENCH_OUT environment variable) so the
// perf trajectory accumulates across runs.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dnsserver/udp.h"
#include "obs/metrics.h"
#include "stats/table.h"

namespace {

using namespace std::chrono_literals;
using namespace eum;

constexpr auto kBackendLatency = 300us;  // simulated per-query backend work
constexpr auto kMeasureWindow = 400ms;   // per-configuration measurement
constexpr int kClientThreads = 8;

struct RunResult {
  std::size_t workers = 0;
  std::uint64_t answered = 0;
  double seconds = 0.0;
  dnsserver::UdpServerStats stats;
  obs::HistogramSnapshot latency;  ///< eum_udp_serve_latency_us, this run
  [[nodiscard]] double qps() const { return static_cast<double>(answered) / seconds; }
};

RunResult run_config(std::size_t workers) {
  dnsserver::AuthoritativeServer engine;
  engine.add_dynamic_domain(
      dns::DnsName::from_text("g.cdn.example"),
      [](const dnsserver::DynamicQuery&) -> std::optional<dnsserver::DynamicAnswer> {
        std::this_thread::sleep_for(kBackendLatency);
        dnsserver::DynamicAnswer answer;
        answer.ttl = 20;
        answer.addresses = {net::IpAddr{net::IpV4Addr{203, 0, 0, 1}}};
        return answer;
      });
  dnsserver::UdpAuthorityServer server{
      &engine, dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0},
      dnsserver::UdpServerConfig{workers}};
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      dnsserver::UdpDnsClient client;
      std::uint16_t id = static_cast<std::uint16_t>(c * 1000 + 1);
      const dns::Message query = dns::Message::make_query(
          id, dns::DnsName::from_text("www.g.cdn.example"), dns::RecordType::A);
      while (!stop.load(std::memory_order_relaxed)) {
        if (client.query(query, server.endpoint(), 2000ms)) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kMeasureWindow);
  stop = true;
  for (std::thread& thread : clients) thread.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  RunResult result;
  result.workers = workers;
  result.answered = answered.load();
  result.seconds = std::chrono::duration<double>(elapsed).count();
  result.stats = server.stats();
  // Each run has its own engine, hence its own registry: the serve
  // latency histogram covers exactly this configuration's window.
  result.latency = server.registry().histogram("eum_udp_serve_latency_us").snapshot();
  server.stop();
  return result;
}

/// BENCH_udp_throughput.json: one object per worker configuration with
/// throughput and registry-derived latency percentiles.
void write_bench_json(const std::vector<RunResult>& results, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::perror("udp_throughput: fopen bench artifact");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"udp_throughput\",\n  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\"workers\": %zu, \"queries\": %llu, \"qps\": %.0f, "
                 "\"speedup\": %.3f, \"latency_us\": {\"count\": %llu, \"mean\": %.1f, "
                 "\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"p999\": %.1f}}%s\n",
                 r.workers, static_cast<unsigned long long>(r.answered), r.qps(),
                 r.qps() / results.front().qps(),
                 static_cast<unsigned long long>(r.latency.count), r.latency.mean(),
                 r.latency.percentile(50), r.latency.percentile(90), r.latency.percentile(99),
                 r.latency.percentile(99.9), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main() {
  std::vector<RunResult> results;
  for (const std::size_t workers : {1U, 2U, 4U}) {
    results.push_back(run_config(workers));
  }

  stats::Table table{
      {"workers", "queries", "qps", "speedup", "per_worker_share", "p50_us", "p99_us"}};
  for (const RunResult& result : results) {
    // How evenly the kernel spread load across the REUSEPORT sockets:
    // max worker share of total (1/workers is a perfect spread).
    std::uint64_t busiest = 0;
    for (const std::uint64_t w : result.stats.per_worker) busiest = std::max(busiest, w);
    const double share = result.stats.queries == 0
                             ? 0.0
                             : static_cast<double>(busiest) /
                                   static_cast<double>(result.stats.queries);
    table.add_row({std::to_string(result.workers), std::to_string(result.answered),
                   stats::num(result.qps(), 0),
                   stats::num(result.qps() / results.front().qps(), 2),
                   stats::num(share, 2), stats::num(result.latency.percentile(50), 0),
                   stats::num(result.latency.percentile(99), 0)});
  }
  std::cout << "UDP front-end throughput, " << kClientThreads
            << " closed-loop clients, " << kBackendLatency.count()
            << "us simulated backend latency per query\n\n"
            << table.render() << '\n';

  const char* out_path = std::getenv("EUM_BENCH_OUT");
  write_bench_json(results, out_path != nullptr ? out_path : "BENCH_udp_throughput.json");

  const double speedup = results.back().qps() / results.front().qps();
  std::cout << "\n4-worker speedup over 1 worker: " << stats::num(speedup, 2) << "x\n";
  return speedup >= 2.0 ? 0 : 1;
}
