// Map-making at paper scale: full vs incremental rebuild latency over
// worlds of 100K / 1M / 4M client blocks (the paper's dataset is 3.76M
// /24s). Each arm generates a streamed world (no geo trie — the map
// maker never consults it), partitions the ping-target space into
// mapping units (§4, the Gürsun latency-cluster construction behind
// Fig 21), then measures:
//
//   - full rebuild latency: every unit re-scored (incremental off),
//   - incremental rebuild latency: one cluster flaps, only units whose
//     candidate sets touch it are re-scored,
//   - sustained publish rate on the incremental path,
//   - resident memory (VmRSS) once the arm is built.
//
// A differential check pins the two paths to each other: after every
// flap the incremental snapshot must be serving-equal to a from-scratch
// full rebuild. Results land in BENCH_mapmaker.json (EUM_BENCH_OUT
// overrides), gated by scripts/check_bench_artifact.py: at >= 1M blocks
// the incremental path must beat the full path outright.
//
// Arms: EUM_MAPMAKER_BLOCKS (default "100000,1000000,4000000").
// Shards: EUM_MAPMAKER_SHARDS (default hardware). Iterations per
// measurement: EUM_MAPMAKER_ITERS (default 5).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cdn/mapping.h"
#include "control/map_maker.h"
#include "control/map_snapshot.h"
#include "stats/table.h"
#include "topo/world_gen.h"
#include "util/shard_pool.h"

namespace {

using namespace eum;

struct ArmResult {
  std::size_t blocks = 0;
  std::size_t targets = 0;
  std::size_t ldnses = 0;
  std::size_t clusters = 0;
  std::size_t units = 0;
  double world_gen_s = 0.0;
  double full_rebuild_ms = 0.0;         ///< best-of-iters, every unit scored
  double incremental_rebuild_ms = 0.0;  ///< best-of-iters, single-cluster flap
  std::uint64_t units_rescored_flap = 0;
  double publish_rate_hz = 0.0;  ///< sustained incremental flap publishes
  double rss_mb = 0.0;
  bool differential_equal = false;
};

/// VmRSS from /proc/self/status, in MiB (0.0 if unreadable).
double resident_mb() {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      mb = std::strtod(line + 6, nullptr) / 1024.0;
      break;
    }
  }
  std::fclose(status);
  return mb;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::size_t> parse_arms(const char* env) {
  std::vector<std::size_t> arms;
  std::string spec = env != nullptr ? env : "100000,1000000,4000000";
  for (std::size_t pos = 0; pos < spec.size();) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(pos, comma - pos);
    if (!tok.empty()) arms.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return arms;
}

ArmResult run_arm(std::size_t blocks, std::size_t shards, int iters) {
  ArmResult result;
  result.blocks = blocks;

  topo::WorldGenConfig world_config;
  world_config.seed = 42;
  world_config.target_blocks = blocks;
  world_config.target_ases = std::max<std::size_t>(400, blocks / 100);
  world_config.ping_targets = blocks >= 1'000'000 ? 8192 : 4000;  // paper: 8K proxies
  world_config.build_geodb = false;  // the map maker never touches the geo trie
  const auto gen0 = std::chrono::steady_clock::now();
  const topo::World world = topo::generate_world(world_config);
  result.world_gen_s = ms_since(gen0) / 1000.0;
  result.targets = world.ping_targets.size();
  result.ldnses = world.ldnses.size();

  const topo::LatencyModel latency{topo::LatencyParams{}, world_config.seed};
  cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 600);
  result.clusters = network.size();

  cdn::MappingConfig mapping_config;
  // Cluster-level aggregation scans every block x LDNS association — the
  // one O(world) term the unit partition cannot shard away. End-user
  // serving never reads it, so scale arms turn it off.
  mapping_config.precompute_cluster_scores = false;
  cdn::MappingSystem mapping{&world, &network, &latency, mapping_config};

  control::MapMakerConfig full_config;
  full_config.incremental = false;
  full_config.scoring_shards = shards;
  control::MapMaker full{&mapping, nullptr, full_config};
  result.units = full.units().unit_count();

  control::MapMakerConfig inc_config;
  inc_config.incremental = true;
  inc_config.scoring_shards = shards;
  control::MapMaker incremental{&mapping, nullptr, inc_config};

  // Full rebuilds: best-of-iters (the floor is the honest number for a
  // latency comparison on a shared machine).
  result.full_rebuild_ms = 1e300;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)full.rebuild_now(true);
    result.full_rebuild_ms = std::min(result.full_rebuild_ms, ms_since(t0));
  }

  // Incremental: flap one cluster per rebuild (die, rebuild, revive,
  // rebuild) so every measured build really re-scores a delta.
  const cdn::DeploymentId victim = network.size() / 2;
  result.incremental_rebuild_ms = 1e300;
  std::uint64_t flap_publishes = 0;
  double flap_seconds = 0.0;
  for (int i = 0; i < iters; ++i) {
    for (const bool alive : {false, true}) {
      network.set_cluster_alive(victim, alive);
      const auto t0 = std::chrono::steady_clock::now();
      const auto snapshot = incremental.rebuild_now(true);
      const double ms = ms_since(t0);
      result.incremental_rebuild_ms = std::min(result.incremental_rebuild_ms, ms);
      flap_seconds += ms / 1000.0;
      ++flap_publishes;
      if (i == 0 && !alive) result.units_rescored_flap = snapshot->units_rescored();
    }
  }
  result.publish_rate_hz = flap_seconds > 0.0 ? flap_publishes / flap_seconds : 0.0;

  // Differential gate: a dead-victim incremental snapshot must be
  // serving-equal to a from-scratch full rebuild of the same state.
  network.set_cluster_alive(victim, false);
  const auto inc_snapshot = incremental.rebuild_now(true);
  const auto full_snapshot = full.rebuild_now(true);
  result.differential_equal = inc_snapshot->serving_equal(*full_snapshot);
  network.set_cluster_alive(victim, true);

  result.rss_mb = resident_mb();
  return result;
}

void write_bench_json(const std::vector<ArmResult>& arms, std::size_t shards,
                      const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::perror("mapmaker_scale: fopen bench artifact");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"mapmaker\",\n  \"scoring_shards\": %zu,\n",
               shards);
  std::fprintf(out, "  \"arms\": [\n");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    std::fprintf(
        out,
        "    {\"blocks\": %zu, \"targets\": %zu, \"ldnses\": %zu, \"clusters\": %zu, "
        "\"units\": %zu, \"world_gen_s\": %.2f, \"full_rebuild_ms\": %.2f, "
        "\"incremental_rebuild_ms\": %.2f, \"speedup\": %.1f, "
        "\"units_rescored_on_flap\": %llu, \"publish_rate_hz\": %.1f, "
        "\"rss_mb\": %.1f, \"differential_equal\": %s}%s\n",
        a.blocks, a.targets, a.ldnses, a.clusters, a.units, a.world_gen_s,
        a.full_rebuild_ms, a.incremental_rebuild_ms,
        a.incremental_rebuild_ms > 0.0 ? a.full_rebuild_ms / a.incremental_rebuild_ms : 0.0,
        static_cast<unsigned long long>(a.units_rescored_flap), a.publish_rate_hz,
        a.rss_mb, a.differential_equal ? "true" : "false",
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  const std::vector<std::size_t> arms = parse_arms(std::getenv("EUM_MAPMAKER_BLOCKS"));
  std::size_t shards = 0;  // MapMakerConfig: 0 = size to the machine
  if (const char* env = std::getenv("EUM_MAPMAKER_SHARDS")) {
    shards = std::strtoull(env, nullptr, 10);
  }
  int iters = 5;
  if (const char* env = std::getenv("EUM_MAPMAKER_ITERS")) {
    iters = std::max(1, std::atoi(env));
  }

  std::printf("=== mapmaker_scale ===\n");
  std::printf("full vs incremental map rebuilds; %zu shard(s) requested (0 = hardware: %zu "
              "workers + caller), %d iters\n\n",
              shards, util::ShardPool::hardware_workers(), iters);

  stats::Table table{{"blocks", "targets", "units", "full ms", "incr ms", "speedup",
                      "rescored", "pub/s", "rss MB", "diff=="}};
  std::vector<ArmResult> results;
  bool all_equal = true;
  for (const std::size_t blocks : arms) {
    std::printf("arm %zu blocks: generating world...\n", blocks);
    std::fflush(stdout);
    const ArmResult a = run_arm(blocks, shards, iters);
    std::printf("  world %.1fs, %zu units over %zu targets; full %.1fms, incremental "
                "%.1fms (%llu units re-scored), rss %.0f MB\n",
                a.world_gen_s, a.units, a.targets, a.full_rebuild_ms,
                a.incremental_rebuild_ms,
                static_cast<unsigned long long>(a.units_rescored_flap), a.rss_mb);
    table.add_row({stats::num(static_cast<double>(a.blocks), 0),
               stats::num(static_cast<double>(a.targets), 0),
               stats::num(static_cast<double>(a.units), 0), stats::num(a.full_rebuild_ms, 2),
               stats::num(a.incremental_rebuild_ms, 2),
               stats::num(a.incremental_rebuild_ms > 0.0
                              ? a.full_rebuild_ms / a.incremental_rebuild_ms
                              : 0.0,
                          1),
               stats::num(static_cast<double>(a.units_rescored_flap), 0),
               stats::num(a.publish_rate_hz, 1), stats::num(a.rss_mb, 0),
               a.differential_equal ? "yes" : "NO"});
    all_equal = all_equal && a.differential_equal;
    results.push_back(a);
  }
  std::printf("\n");
  std::fputs(table.render().c_str(), stdout);

  const char* out_path = std::getenv("EUM_BENCH_OUT");
  write_bench_json(results, shards, out_path != nullptr ? out_path : "BENCH_mapmaker.json");

  // Gate: differential equality is non-negotiable; speed is judged by
  // scripts/check_bench_artifact.py against the written artifact.
  return all_equal && !results.empty() ? 0 : 1;
}
