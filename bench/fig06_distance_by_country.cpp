// Figure 6: client-LDNS distance box plots (5/25/50/75/95th percentiles)
// for the top-25 countries by demand. Paper: IN/TR/VN/MX medians over
// 1000 miles; KR/TW smallest; Western Europe in a small band; JP with a
// small median but a heavy multinational-corporation tail.
#include "bench_common.h"

#include "topo/country_data.h"

using namespace eum;

int main() {
  bench::banner("Figure 6 - client-LDNS distance by country (box plots)",
                "IN/TR/VN/MX medians > 1000 mi; KR/TW smallest; JP heavy-tailed");

  const auto& world = bench::default_world();
  stats::Table table{"country", "p5", "p25", "median", "p75", "p95"};
  for (topo::CountryId ci = 0; ci < world.countries.size(); ++ci) {
    measure::DistanceFilter filter;
    filter.country = ci;
    const auto sample = measure::client_ldns_distance_sample(world, filter);
    if (sample.empty()) continue;
    const stats::BoxPlot box = sample.box_plot();
    table.add_row({world.countries[ci].code, stats::num(box.p5, 0), stats::num(box.p25, 0),
                   stats::num(box.p50, 0), stats::num(box.p75, 0), stats::num(box.p95, 0)});
  }
  std::printf("(miles)\n%s\n", table.render().c_str());

  const auto median_of = [&](const char* code) {
    measure::DistanceFilter filter;
    filter.country = topo::country_index(world.countries, code);
    return measure::client_ldns_distance_sample(world, filter).percentile(50);
  };
  bench::compare("IN median (largest group)", 1250.0, median_of("IN"), "mi");
  bench::compare("TR median", 1100.0, median_of("TR"), "mi");
  bench::compare("KR median (smallest group)", 25.0, median_of("KR"), "mi");
  bench::compare("TW median (smallest group)", 30.0, median_of("TW"), "mi");
  return 0;
}
