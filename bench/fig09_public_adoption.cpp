// Figure 9: percent of client demand originating from public resolvers,
// by country. Paper: VN and TR heaviest (~40%+); IN/BR/AR significant
// despite huge distances; worldwide approaching 8%.
#include "bench_common.h"

#include <algorithm>

using namespace eum;

int main() {
  bench::banner("Figure 9 - public-resolver adoption by country",
                "VN/TR heaviest (~40%+); worldwide demand share approaching 8%");

  const auto& world = bench::default_world();
  struct Row {
    std::string code;
    double share;
  };
  std::vector<Row> rows;
  for (topo::CountryId ci = 0; ci < world.countries.size(); ++ci) {
    rows.push_back({world.countries[ci].code,
                    100.0 * measure::public_resolver_share(world, ci)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.share > b.share; });

  stats::Table table{"country", "% of demand from public resolvers"};
  for (const Row& row : rows) table.add_row({row.code, stats::num(row.share, 1)});
  std::printf("%s\n", table.render().c_str());

  const auto share_of = [&](const char* code) {
    for (const Row& row : rows) {
      if (row.code == code) return row.share;
    }
    return 0.0;
  };
  bench::compare("worldwide public-resolver demand share", 8.0,
                 100.0 * measure::public_resolver_share(world), "%");
  bench::compare("VN share (heaviest)", 45.0, share_of("VN"), "%");
  bench::compare("TR share", 40.0, share_of("TR"), "%");
  bench::compare("KR share (lightest)", 1.5, share_of("KR"), "%");
  return 0;
}
