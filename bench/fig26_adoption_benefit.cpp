// §4.5 (the paper's EDNS0-adoption extrapolation, presented as numbers in
// prose rather than a numbered figure): among NON-public-resolver
// clients, 6.2% of demand has its LDNS >= 1000 miles away (expect ~50%
// RTT/download reduction if its ISP adopted ECS), 5.3% at 500-1000 miles
// (~24%), and 54% has a local LDNS and would see no benefit.
//
// We both recompute the demand buckets from the world and *measure* the
// per-bucket RTT improvement by mapping each bucket's sessions through
// the real mapping system with NS-based vs end-user mapping.
#include "bench_common.h"

#include "util/rng.h"

using namespace eum;

int main() {
  bench::banner("§4.5 - benefits of broader EDNS0 adoption (ISP resolvers)",
                ">=1000mi: 6.2% of demand, ~50% RTT cut; 500-1000mi: 5.3%, ~24%; 54% local");

  const auto& world = bench::default_world();
  cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 600);
  cdn::MappingSystem mapping{&world, &network, &bench::default_latency(), cdn::MappingConfig{}};
  measure::RumSimulator rum{&world, &mapping, &bench::default_latency()};

  struct Bucket {
    const char* label;
    double lo;
    double hi;
    double demand = 0.0;
    double ns_rtt = 0.0;
    double eu_rtt = 0.0;
    std::size_t sessions = 0;
  };
  std::vector<Bucket> buckets{{"< 100 mi (local LDNS)", 0.0, 100.0},
                              {"100 - 500 mi", 100.0, 500.0},
                              {"500 - 1000 mi", 500.0, 1000.0},
                              {">= 1000 mi", 1000.0, 1e9}};

  util::Rng rng{99};
  double nonpublic_demand = 0.0;
  for (const auto& block : world.blocks) {
    for (const auto& use : world.ldns_uses(block)) {
      const auto& ldns = world.ldnses[use.ldns];
      if (ldns.type == topo::LdnsType::public_site) continue;  // already rolled out
      const double demand = block.demand * use.fraction;
      nonpublic_demand += demand;
      const double miles = geo::great_circle_miles(block.location, ldns.location);
      for (Bucket& bucket : buckets) {
        if (miles >= bucket.lo && miles < bucket.hi) {
          bucket.demand += demand;
          // Sample a fraction of pairs to keep the bench quick.
          if (bucket.sessions < 4000 && rng.chance(0.25)) {
            const auto ns = rum.session(block.id, use.ldns, false, rng);
            const auto eu = rum.session(block.id, use.ldns, true, rng);
            if (ns && eu) {
              bucket.ns_rtt += ns->rtt_ms;
              bucket.eu_rtt += eu->rtt_ms;
              ++bucket.sessions;
            }
          }
          break;
        }
      }
    }
  }

  stats::Table table{"client-LDNS distance", "% of ISP-resolver demand", "RTT cut if ECS adopted"};
  for (const Bucket& bucket : buckets) {
    const double share = 100.0 * bucket.demand / nonpublic_demand;
    const double cut = bucket.sessions > 0 ? 100.0 * (1.0 - bucket.eu_rtt / bucket.ns_rtt) : 0.0;
    table.add_row({bucket.label, stats::num(share, 1) + "%", stats::num(cut, 0) + "%"});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("demand with LDNS >= 1000 mi", 6.2,
                 100.0 * buckets[3].demand / nonpublic_demand, "%");
  bench::compare("demand with LDNS 500-1000 mi", 5.3,
                 100.0 * buckets[2].demand / nonpublic_demand, "%");
  bench::compare("demand with local LDNS (no benefit)", 54.0,
                 100.0 * buckets[0].demand / nonpublic_demand, "%");
  bench::compare("RTT cut for >= 1000 mi bucket", 50.0,
                 buckets[3].sessions ? 100.0 * (1.0 - buckets[3].eu_rtt / buckets[3].ns_rtt)
                                     : 0.0,
                 "%");
  bench::compare("RTT cut for 500-1000 mi bucket", 24.0,
                 buckets[2].sessions ? 100.0 * (1.0 - buckets[2].eu_rtt / buckets[2].ns_rtt)
                                     : 0.0,
                 "%");
  return 0;
}
