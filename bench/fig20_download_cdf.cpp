// Figure 20: content download time CDFs before/after the roll-out.
// Paper: p75 high: 272 -> 157 ms; p75 low: 192 -> 102 ms.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 20 - content download time CDFs before/after roll-out",
                "p75 high: 272 -> 157 ms; p75 low: 192 -> 102 ms");
  const auto& result = bench::rollout_bundle().result;
  bench::print_cdfs(result, &sim::MetricPools::download, "ms");

  std::printf("\n");
  bench::compare("high-exp p75 download before", 272.0,
                 result.high_before.download.percentile(75), "ms");
  bench::compare("high-exp p75 download after", 157.0,
                 result.high_after.download.percentile(75), "ms");
  bench::compare("low-exp p75 download before", 192.0,
                 result.low_before.download.percentile(75), "ms");
  bench::compare("low-exp p75 download after", 102.0,
                 result.low_after.download.percentile(75), "ms");
  return 0;
}
