// Figure 13: daily mean mapping distance before/during/after the
// end-user mapping roll-out (Mar 28 - Apr 15 2014). Paper: the
// high-expectation group's mean fell from >2000 mi to ~250 mi; the low
// group from ~400 to ~200 mi.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 13 - daily mean mapping distance during the roll-out",
                "high-expectation mean 2000 -> 250 mi; low 400 -> 200 mi");
  const auto& result = bench::rollout_bundle().result;
  bench::print_timeline(result, &sim::DailyMetrics::mapping_distance_miles, "mi");

  const double high_before = result.high_before.mapping_distance.mean();
  const double high_after = result.high_after.mapping_distance.mean();
  std::printf("\n");
  bench::compare("high-exp mean before roll-out", 2000.0, high_before, "mi");
  bench::compare("high-exp mean after roll-out", 250.0, high_after, "mi");
  bench::compare("high-exp improvement factor", 8.0, high_before / high_after, "x");
  bench::compare("low-exp mean before", 400.0, result.low_before.mapping_distance.mean(), "mi");
  bench::compare("low-exp mean after", 200.0, result.low_after.mapping_distance.mean(), "mi");
  return 0;
}
