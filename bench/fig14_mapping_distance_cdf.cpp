// Figure 14: CDFs of mapping distance before vs after the roll-out for
// both expectation groups. Paper: all percentiles improve; the
// high-expectation 90th percentile drops from 4573 to 936 miles.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 14 - mapping distance CDFs before/after roll-out",
                "high-exp 90th percentile: 4573 -> 936 mi; every percentile improves");
  const auto& result = bench::rollout_bundle().result;
  bench::print_cdfs(result, &sim::MetricPools::mapping_distance, "miles");

  std::printf("\n");
  bench::compare("high-exp p90 before", 4573.0,
                 result.high_before.mapping_distance.percentile(90), "mi");
  bench::compare("high-exp p90 after", 936.0,
                 result.high_after.mapping_distance.percentile(90), "mi");
  bool all_improve = true;
  for (double q = 10; q <= 95; q += 5) {
    all_improve = all_improve && result.high_after.mapping_distance.percentile(q) <=
                                     result.high_before.mapping_distance.percentile(q) + 1.0;
  }
  std::printf("\nshape check: all percentiles improve %s\n", all_improve ? "[OK]" : "[MISMATCH]");
  return 0;
}
