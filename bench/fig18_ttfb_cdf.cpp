// Figure 18: TTFB CDFs before/after the roll-out. Paper: high-exp 75th
// percentile 1399 -> 1072 ms; low-exp 830 -> 667 ms.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 18 - TTFB CDFs before/after roll-out",
                "p75 high: 1399 -> 1072 ms; p75 low: 830 -> 667 ms");
  const auto& result = bench::rollout_bundle().result;
  bench::print_cdfs(result, &sim::MetricPools::ttfb, "ms");

  std::printf("\n");
  bench::compare("high-exp p75 TTFB before", 1399.0, result.high_before.ttfb.percentile(75), "ms");
  bench::compare("high-exp p75 TTFB after", 1072.0, result.high_after.ttfb.percentile(75), "ms");
  bench::compare("low-exp p75 TTFB before", 830.0, result.low_before.ttfb.percentile(75), "ms");
  bench::compare("low-exp p75 TTFB after", 667.0, result.low_after.ttfb.percentile(75), "ms");
  return 0;
}
