// Figure 10: median client-LDNS distance as a function of AS size
// (demand share buckets 2^-10 .. 2^-1 percent). Paper: small ASes have
// much larger distances because they outsource their resolvers.
#include "bench_common.h"

#include <cmath>
#include <map>

using namespace eum;

int main() {
  bench::banner("Figure 10 - client-LDNS distance vs AS size",
                "small ASes outsource DNS: distances shrink as AS demand share grows");

  const auto& world = bench::default_world();
  // Per-AS distance samples, demand-weighted.
  std::vector<stats::WeightedSample> per_as(world.ases.size());
  for (const auto& block : world.blocks) {
    for (const auto& use : world.ldns_uses(block)) {
      per_as[block.as_index].add(
          geo::great_circle_miles(block.location, world.ldnses[use.ldns].location),
          block.demand * use.fraction);
    }
  }

  // Bucket ASes by log2 of their demand share in percent (paper's x-axis).
  std::map<int, stats::WeightedSample> buckets;
  for (std::size_t ai = 0; ai < world.ases.size(); ++ai) {
    if (per_as[ai].empty()) continue;
    const double share_percent = world.ases[ai].demand_share * 100.0;
    int bucket = static_cast<int>(std::floor(std::log2(std::max(share_percent, 1e-6))));
    bucket = std::clamp(bucket, -10, -1);
    buckets[bucket].add(per_as[ai].percentile(50), per_as[ai].total_weight());
  }

  stats::Table table{"AS demand share", "median client-LDNS distance (mi)", "ASes' demand"};
  double small_median = 0.0;
  double large_median = 0.0;
  for (const auto& [bucket, sample] : buckets) {
    table.add_row({util::format("2^%d %%", bucket), stats::num(sample.percentile(50), 0),
                   stats::num(sample.total_weight(), 0)});
    if (bucket == buckets.begin()->first) small_median = sample.percentile(50);
    large_median = sample.percentile(50);
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("smallest-AS bucket median", 1500.0, small_median, "mi");
  bench::compare("largest-AS bucket median", 150.0, large_median, "mi");
  std::printf("\nshape check: small-AS median should exceed large-AS median %s\n",
              small_median > large_median ? "[OK]" : "[MISMATCH]");
  return 0;
}
