// Ablation (DESIGN.md §5 / paper §2.2): capacity-aware global load
// balancing under a regional flash crowd. The mapping system "combines
// [scoring] with liveness, capacity, and other real-time information";
// this bench overloads the most popular country's clusters and measures
// how far clients spill and what it costs them in latency — then repeats
// with a mass cluster failure.
#include "bench_common.h"

#include "geo/coords.h"

using namespace eum;

namespace {

struct SpillStats {
  double mean_distance_mi = 0.0;
  double mean_rtt_ms = 0.0;
  double served_fraction = 1.0;
};

SpillStats measure_spill(const topo::World& world, cdn::MappingSystem& mapping,
                         const std::vector<topo::BlockId>& blocks, double load_per_session) {
  SpillStats stats;
  int served = 0;
  for (const topo::BlockId id : blocks) {
    const auto result = mapping.map_block(id, "flash.event.example", load_per_session);
    if (!result) continue;
    ++served;
    const auto& deployment = mapping.network().deployments()[result->deployment];
    stats.mean_distance_mi +=
        geo::great_circle_miles(world.blocks[id].location, deployment.location);
    stats.mean_rtt_ms += result->expected_rtt_ms;
  }
  if (served > 0) {
    stats.mean_distance_mi /= served;
    stats.mean_rtt_ms /= served;
  }
  stats.served_fraction = static_cast<double>(served) / static_cast<double>(blocks.size());
  return stats;
}

}  // namespace

int main() {
  bench::banner("load-balancing ablation - flash crowd and mass failure",
                "global LB combines scoring with liveness and capacity (§2.2)");

  const auto& world = bench::default_world();

  // The flash crowd: every US block requests simultaneously.
  std::vector<topo::BlockId> us_blocks;
  for (const auto& block : world.blocks) {
    if (world.countries[block.country].code == "US") us_blocks.push_back(block.id);
  }

  stats::Table table{"scenario", "served", "mean distance (mi)", "mean est. RTT (ms)"};
  const auto run = [&](const char* label, double cluster_capacity, double session_load,
                       double kill_fraction) {
    cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 600, 8, cluster_capacity);
    cdn::MappingConfig config;
    config.global_lb.load_aware = true;
    cdn::MappingSystem mapping{&world, &network, &bench::default_latency(), config};
    if (kill_fraction > 0.0) {
      util::Rng rng{5};
      for (std::size_t d = 0; d < network.size(); ++d) {
        if (rng.chance(kill_fraction)) {
          network.set_cluster_alive(static_cast<cdn::DeploymentId>(d), false);
        }
      }
    }
    const SpillStats stats = measure_spill(world, mapping, us_blocks, session_load);
    table.add_row({label, stats::num(100.0 * stats.served_fraction, 1) + "%",
                   stats::num(stats.mean_distance_mi, 0), stats::num(stats.mean_rtt_ms, 1)});
    return stats;
  };

  const SpillStats baseline = run("ample capacity", 1e9, 1.0, 0.0);
  const SpillStats tight = run("tight capacity (spill to neighbors)",
                               static_cast<double>(us_blocks.size()) / 250.0, 1.0, 0.0);
  const SpillStats choked = run("severe shortage", static_cast<double>(us_blocks.size()) / 1200.0,
                                1.0, 0.0);
  const SpillStats failures = run("30% of clusters dead", 1e9, 1.0, 0.30);
  std::printf("%s\n", table.render().c_str());

  std::printf("shape checks:\n");
  std::printf("  spill raises distance monotonically         %s\n",
              baseline.mean_distance_mi < tight.mean_distance_mi &&
                      tight.mean_distance_mi < choked.mean_distance_mi
                  ? "[OK]" : "[MISMATCH]");
  std::printf("  every client still served while capacity>0  %s\n",
              tight.served_fraction >= 0.999 && failures.served_fraction >= 0.999
                  ? "[OK]" : "[MISMATCH]");
  std::printf("  mass failure costs less than mass overload   %s\n",
              failures.mean_distance_mi < choked.mean_distance_mi ? "[OK]" : "[MISMATCH]");
  return 0;
}
