// mc_audit: run the lock-free protocol model-check suite and the
// memory-order minimality audit, and emit AUDIT_memory_orders.json
// (schema-checked by scripts/check_bench_artifact.py, gated in
// scripts/check.sh's [mc] step).
//
// Usage: mc_audit [output.json]
//   No argument writes the JSON to stdout. Exit code 0 iff the audit is
//   clean: baselines pass, every mutation is caught, and every site is
//   load_bearing or minimal.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "mc/audit.h"

int main(int argc, char** argv) {
  const eum::mc::AuditReport report = eum::mc::run_audit();
  const std::string json = eum::mc::to_json(report);

  if (argc > 1) {
    std::ofstream out{argv[1]};
    if (!out) {
      std::cerr << "mc_audit: cannot open " << argv[1] << " for writing\n";
      return 2;
    }
    out << json;
  } else {
    std::cout << json;
  }

  std::size_t load_bearing = 0;
  std::size_t minimal = 0;
  for (const auto& site : report.sites) {
    if (site.verdict == "load_bearing") ++load_bearing;
    if (site.verdict == "minimal") ++minimal;
  }
  std::uint64_t executions = 0;
  for (const auto& check : report.checks) executions += check.executions;
  std::fprintf(stderr,
               "mc_audit: %zu scenarios (%llu executions at shipped orders), "
               "%zu/%zu mutations caught, sites: %zu load_bearing / %zu minimal / %zu total\n",
               report.checks.size(), static_cast<unsigned long long>(executions),
               report.mutation_results.size() -
                   static_cast<std::size_t>(
                       std::count_if(report.mutation_results.begin(),
                                     report.mutation_results.end(),
                                     [](const auto& m) { return !m.caught; })),
               report.mutation_results.size(), load_bearing, minimal, report.sites.size());
  for (const auto& problem : report.problems) {
    std::fprintf(stderr, "mc_audit: PROBLEM: %s\n", problem.c_str());
  }
  return report.ok ? 0 : 1;
}
