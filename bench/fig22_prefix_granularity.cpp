// Figure 22: the mapping-unit granularity tradeoff. (a) cluster radius
// CDF for /x client blocks, x in {8..24}; (b) number of /x units with
// non-zero demand. Plus the §5.1 BGP-CIDR aggregation (3.76M /24s ->
// 444K units, 8.5:1). Paper: /20 is a worthy option — 3x fewer units
// than /24 while 87.3% of demand stays in clusters of radius <= 100 mi.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 22 - /x granularity: cluster radius vs unit count",
                "/20: 3x fewer units than /24, 87.3% of demand in radius <= 100 mi");

  const auto& world = bench::default_world();
  stats::Table table{"prefix", "units", "median radius (mi)", "p90 radius (mi)",
                     "demand w/ radius<=100mi"};
  std::size_t units24 = 0;
  std::size_t units20 = 0;
  double frac20 = 0.0;
  for (const int len : {24, 22, 20, 18, 16, 14, 12, 10, 8}) {
    const auto sweep = measure::prefix_clusters(world, len);
    if (len == 24) units24 = sweep.cluster_count;
    if (len == 20) {
      units20 = sweep.cluster_count;
      frac20 = sweep.radii.cdf_at(100.0);
    }
    table.add_row({util::format("/%d", len), util::with_commas(static_cast<long>(sweep.cluster_count)),
                   stats::num(sweep.radii.percentile(50), 1),
                   stats::num(sweep.radii.percentile(90), 1),
                   stats::num(100.0 * sweep.radii.cdf_at(100.0), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("/24 -> /20 unit reduction", 3.0,
                 static_cast<double>(units24) / static_cast<double>(units20), "x");
  bench::compare("/20 demand in metro clusters (<=100mi)", 87.3, 100.0 * frac20, "%");

  const std::size_t bgp_units = measure::bgp_aggregated_unit_count(world);
  std::printf("\nBGP-CIDR aggregation (§5.1): %s /24 blocks -> %s units\n",
              util::with_commas(static_cast<long>(world.blocks.size())).c_str(),
              util::with_commas(static_cast<long>(bgp_units)).c_str());
  bench::compare("BGP aggregation ratio", 8.5,
                 static_cast<double>(world.blocks.size()) / static_cast<double>(bgp_units), "x");
  return 0;
}
