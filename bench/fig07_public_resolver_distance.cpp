// Figure 7: client-LDNS distance histogram for clients of public
// resolvers only. Paper: median 1028 miles (vs 162 overall) — the case
// for end-user mapping.
#include "bench_common.h"

#include "stats/histogram.h"

using namespace eum;

int main() {
  bench::banner("Figure 7 - client-LDNS distance, public-resolver clients",
                "median 1028 mi for public-resolver users vs 162 mi overall");

  const auto& world = bench::default_world();
  stats::LogHistogram histogram{10.0, 10000.0, 24};
  for (const auto& block : world.blocks) {
    for (const auto& use : world.ldns_uses(block)) {
      const auto& ldns = world.ldnses[use.ldns];
      if (ldns.type != topo::LdnsType::public_site) continue;
      histogram.add(geo::great_circle_miles(block.location, ldns.location),
                    block.demand * use.fraction);
    }
  }
  std::printf("distance (mi)            %% of public-resolver demand\n%s\n",
              stats::render_histogram(histogram.bins(), histogram.total_weight()).c_str());

  measure::DistanceFilter public_only;
  public_only.public_only = true;
  const auto pub = measure::client_ldns_distance_sample(world, public_only);
  const auto all = measure::client_ldns_distance_sample(world);
  bench::compare("median distance via public resolvers", 1028.0, pub.percentile(50), "mi");
  bench::compare("median distance overall", 162.0, all.percentile(50), "mi");
  bench::compare("public/overall median ratio", 1028.0 / 162.0,
                 pub.percentile(50) / all.percentile(50), "x");
  return 0;
}
