// Figure 11: CDFs of per-LDNS client-cluster radius and mean client-LDNS
// distance, for all LDNSes and for public resolvers. Paper: 99% of public
// resolver demand comes from clusters with radii 470-3800 miles, and the
// mean client-LDNS distance exceeds the radius (the resolver is not at
// the cluster centroid) — why even client-aware NS mapping cannot fix
// public resolvers.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 11 - LDNS client-cluster radius and mean distance CDFs",
                "public clusters: radii 470-3800 mi for 99% of demand; LDNS off-centroid");

  const auto& world = bench::default_world();
  const auto clusters = measure::ldns_clusters(world);

  stats::WeightedSample radius_all;
  stats::WeightedSample distance_all;
  stats::WeightedSample radius_pub;
  stats::WeightedSample distance_pub;
  for (const auto& [ldns_id, cs] : clusters) {
    radius_all.add(cs.radius_miles, cs.demand);
    distance_all.add(cs.mean_client_ldns_miles, cs.demand);
    if (world.ldnses[ldns_id].type == topo::LdnsType::public_site) {
      radius_pub.add(cs.radius_miles, cs.demand);
      distance_pub.add(cs.mean_client_ldns_miles, cs.demand);
    }
  }

  stats::Table table{"distance (mi)", "radius all", "dist all", "radius public",
                     "dist public"};
  for (const double x : {10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 3000.0, 5000.0}) {
    table.add_row({stats::num(x, 0), stats::num(100.0 * radius_all.cdf_at(x), 1) + "%",
                   stats::num(100.0 * distance_all.cdf_at(x), 1) + "%",
                   stats::num(100.0 * radius_pub.cdf_at(x), 1) + "%",
                   stats::num(100.0 * distance_pub.cdf_at(x), 1) + "%"});
  }
  std::printf("(cumulative %% of client demand with value <= x)\n%s\n", table.render().c_str());

  bench::compare("public cluster radius p0.5 (paper ~470)", 470.0, radius_pub.percentile(0.5),
                 "mi");
  bench::compare("public cluster radius p99.5 (paper ~3800)", 3800.0,
                 radius_pub.percentile(99.5), "mi");
  bench::compare("public mean client-LDNS dist / radius", 1.2,
                 distance_pub.mean() / radius_pub.mean(), "x");
  std::printf("\nshape check: LDNS off-centroid (mean distance > radius) %s\n",
              distance_pub.mean() > radius_pub.mean() ? "[OK]" : "[MISMATCH]");
  return 0;
}
