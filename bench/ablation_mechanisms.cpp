// Ablation (paper §7): end-user mapping vs the pre-ECS client-aware
// mechanisms — metafile redirection (the circa-2000 video CDN) and HTTP
// redirection — and plain NS-based DNS, priced over the same mapping
// system for a sweep of object sizes. The paper's qualitative claims:
// the redirect penalty "is acceptable only for larger downloads such as
// media files and software downloads", while ECS "removes the overhead
// of explicit client-LDNS discovery [and] avoids a redirection
// performance penalty".
#include "bench_common.h"

#include "measure/alt_mechanisms.h"

using namespace eum;

int main() {
  bench::banner("§7 ablation - routing mechanisms vs object size",
                "redirects only pay off for large objects; ECS wins at every size");

  const auto& world = bench::default_world();
  cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 600);
  cdn::MappingSystem mapping{&world, &network, &bench::default_latency(), cdn::MappingConfig{}};
  const measure::RumConfig rum_config;

  // Qualified population: public-resolver clients (where mechanisms differ).
  std::vector<std::pair<topo::BlockId, topo::LdnsId>> pairs;
  for (const auto& block : world.blocks) {
    for (const auto& use : world.ldns_uses(block)) {
      if (world.ldnses[use.ldns].type == topo::LdnsType::public_site) {
        pairs.emplace_back(block.id, use.ldns);
      }
    }
  }

  const std::vector<std::pair<const char*, std::size_t>> objects{
      {"API call (2 KB)", 2'000},
      {"web page assets (100 KB)", 100'000},
      {"image-heavy page (1 MB)", 1'000'000},
      {"software download (50 MB)", 50'000'000},
  };
  const std::vector<measure::RoutingMechanism> mechanisms{
      measure::RoutingMechanism::ns_dns, measure::RoutingMechanism::eu_dns,
      measure::RoutingMechanism::http_redirect, measure::RoutingMechanism::metafile};

  stats::Table table{"object", "NS-based DNS", "end-user DNS", "HTTP redirect",
                     "metafile"};
  for (const auto& [label, bytes] : objects) {
    std::vector<std::string> row{label};
    for (const auto mechanism : mechanisms) {
      util::Rng rng{1234};
      double total = 0.0;
      int n = 0;
      for (std::size_t i = 0; i < pairs.size(); i += std::max<std::size_t>(1, pairs.size() / 400)) {
        const auto outcome = measure::price_download(mechanism, world, mapping,
                                                     bench::default_latency(), pairs[i].first,
                                                     pairs[i].second, bytes, rum_config, rng);
        if (!outcome) continue;
        total += outcome->total_ms();
        ++n;
      }
      row.push_back(stats::num(total / n, 0) + " ms");
    }
    table.add_row(std::move(row));
  }
  std::printf("(mean total delivery time over ~400 public-resolver clients)\n%s\n",
              table.render().c_str());
  std::printf(
      "reading: HTTP redirect loses to plain NS DNS on small objects (the 302\n"
      "costs two extra round trips) and wins on large ones (the transfer runs\n"
      "at the near server's RTT); end-user DNS gets the near server with no\n"
      "penalty at all — the §7 case for the EDNS0 extension.\n");
  return 0;
}
