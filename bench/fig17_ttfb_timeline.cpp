// Figure 17: daily mean time-to-first-byte during the roll-out. Paper:
// high-expectation mean TTFB fell from ~1000 ms to ~700 ms — a 30%
// improvement, smaller than RTT's because page construction time is not
// affected by mapping.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 17 - daily mean TTFB during the roll-out",
                "high-expectation mean TTFB 1000 -> 700 ms (30%)");
  const auto& result = bench::rollout_bundle().result;
  bench::print_timeline(result, &sim::DailyMetrics::ttfb_ms, "ms");

  const double before = result.high_before.ttfb.mean();
  const double after = result.high_after.ttfb.mean();
  std::printf("\n");
  bench::compare("high-exp mean TTFB before", 1000.0, before, "ms");
  bench::compare("high-exp mean TTFB after", 700.0, after, "ms");
  bench::compare("high-exp TTFB improvement", 30.0, 100.0 * (1.0 - after / before), "%");
  return 0;
}
