// Figure 24: query-rate increase factor vs (domain, LDNS) pair popularity
// (pre-roll-out queries per TTL, 0..1). Paper: pairs near 1 query/TTL
// (cache saturated before ECS) increase by up to 100-1000x; unpopular
// pairs barely change; the top-popularity bucket held only 11% of total
// pre-roll-out queries, which is why the aggregate factor stays ~8x.
#include "bench_common.h"

#include "sim/query_rate.h"

using namespace eum;

int main() {
  bench::banner("Figure 24 - query-rate increase vs pair popularity",
                "factor grows toward 100-1000x near 1 query/TTL; aggregate only 8x");

  const auto& world = bench::default_world();
  cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 300);
  cdn::MappingSystem mapping{&world, &network, &bench::default_latency(), cdn::MappingConfig{}};

  sim::QueryRateConfig config;
  config.isp_ldns_sample = 120;
  config.domain_count = 40;
  config.horizon_seconds = 1800.0;
  config.queries_per_demand_unit = 0.001;
  const auto result = sim::run_query_rate_study(world, mapping, config);

  // Factors over ECS-capable (public) pairs — the population the
  // roll-out multiplied; query shares still cover every pair.
  const auto buckets = result.popularity_buckets(10, /*ecs_pairs_only=*/true);
  stats::Table table{"popularity (q/TTL)", "mean factor", "pairs", "share of pre-rollout queries"};
  for (const auto& bucket : buckets) {
    table.add_row({util::format("%.1f-%.1f", bucket.popularity_lo, bucket.popularity_hi),
                   stats::num(bucket.mean_factor, 1) + "x",
                   std::to_string(bucket.pair_count),
                   stats::num(100.0 * bucket.pre_query_share, 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());

  const auto& top = buckets.back();
  const auto& bottom = buckets.front();
  bench::compare("top-bucket mean factor", 100.0, top.mean_factor, "x");
  bench::compare("bottom-bucket mean factor", 1.0, bottom.mean_factor, "x");
  bench::compare("top-bucket share of pre-rollout queries", 11.0,
                 100.0 * top.pre_query_share, "%");
  std::printf("\nshape check: factor increases with popularity %s\n",
              top.mean_factor > 3.0 * std::max(1.0, bottom.mean_factor) ? "[OK]" : "[MISMATCH]");
  return 0;
}
