// Figure 21: number of /24 client blocks or LDNSes needed to cover a
// given percent of total demand. Paper: 95% of demand needs the top
// 25K LDNSes (of 584K) but 2.2M /24 blocks (of 3.76M); 50% needs 1800
// LDNSes vs 430K blocks — the core scaling cost of end-user mapping.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 21 - mapping units needed per demand coverage",
                "95%: 25K LDNS vs 2.2M blocks; 50%: 1800 LDNS vs 430K blocks");

  const auto& world = bench::default_world();
  const auto blocks = measure::block_coverage(world);
  const auto ldns = measure::ldns_coverage(world);
  const auto n_blocks = static_cast<double>(blocks.sorted_demand.size());
  const auto n_ldns = static_cast<double>(ldns.sorted_demand.size());

  stats::Table table{"demand covered", "blocks needed", "blocks %", "LDNS needed", "LDNS %",
                     "blocks/LDNS"};
  for (const double f : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const std::size_t b = blocks.units_for_fraction(f);
    const std::size_t l = ldns.units_for_fraction(f);
    table.add_row({stats::num(100.0 * f, 0) + "%", util::with_commas(static_cast<long>(b)),
                   stats::num(100.0 * static_cast<double>(b) / n_blocks, 1),
                   util::with_commas(static_cast<long>(l)),
                   stats::num(100.0 * static_cast<double>(l) / n_ldns, 2),
                   stats::num(static_cast<double>(b) / static_cast<double>(l), 0) + "x"});
  }
  std::printf("%s\n", table.render().c_str());

  bench::compare("blocks fraction for 95% of demand", 58.5,
                 100.0 * static_cast<double>(blocks.units_for_fraction(0.95)) / n_blocks, "%");
  bench::compare("blocks fraction for 50% of demand", 11.4,
                 100.0 * static_cast<double>(blocks.units_for_fraction(0.5)) / n_blocks, "%");
  bench::compare("LDNS fraction for 95% of demand", 4.3,
                 100.0 * static_cast<double>(ldns.units_for_fraction(0.95)) / n_ldns, "%");
  bench::compare("LDNS fraction for 50% of demand", 0.31,
                 100.0 * static_cast<double>(ldns.units_for_fraction(0.5)) / n_ldns, "%");
  std::printf(
      "\nnote: the paper's 584K-LDNS population is ~100x more skewed than a\n"
      "%zu-LDNS scale model can be; the block-vs-LDNS gap direction and the\n"
      "block-side fractions are the preserved shape.\n",
      ldns.sorted_demand.size());
  return 0;
}
