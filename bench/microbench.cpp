// Microbenchmarks of the hot paths (google-benchmark): DNS wire codec,
// name compression, prefix-trie lookups, resolver cache, mapping
// decisions, and the local load balancer — plus the cache-affinity
// ablation called out in DESIGN.md (rendezvous hashing vs random server
// choice and its effect on per-server content spread), and the
// observability layer (counter/histogram recording cost, instrumented
// vs uninstrumented authority handle()).
#include <benchmark/benchmark.h>

#include <set>

#include "cdn/mapping.h"
#include "dnsserver/resolver.h"
#include "dnsserver/zone_file.h"
#include "dnsserver/transport.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "topo/world_gen.h"
#include "topo/world_io.h"

#include <sstream>
#include "util/rng.h"

namespace {

using namespace eum;

const topo::World& bench_world() {
  static const topo::World world = [] {
    topo::WorldGenConfig config;
    config.seed = 5;
    config.target_blocks = 8000;
    config.target_ases = 300;
    config.ping_targets = 800;
    config.deployment_universe = 300;
    return topo::generate_world(config);
  }();
  return world;
}

const topo::LatencyModel& bench_latency() {
  static const topo::LatencyModel model{topo::LatencyParams{}, 5};
  return model;
}

dns::Message sample_response() {
  const auto ecs = dns::ClientSubnetOption::for_query(*net::IpAddr::parse("203.0.113.7"), 24);
  dns::Message response = dns::Message::make_response(dns::Message::make_query(
      7, dns::DnsName::from_text("e123.g.cdn.example"), dns::RecordType::A, ecs));
  for (int i = 0; i < 2; ++i) {
    response.answers.push_back(dns::ResourceRecord{
        dns::DnsName::from_text("e123.g.cdn.example"), dns::RecordType::A,
        dns::RecordClass::IN, 20,
        dns::ARecord{net::IpV4Addr{203, 0, 0, static_cast<std::uint8_t>(i + 1)}}});
  }
  response.edns->set_client_subnet(ecs.with_scope(24));
  return response;
}

void BM_DnsEncode(benchmark::State& state) {
  const dns::Message message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(message.encode());
  }
}
BENCHMARK(BM_DnsEncode);

void BM_DnsDecode(benchmark::State& state) {
  const auto wire = sample_response().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::decode(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_DnsDecode);

void BM_NameCompressionEncode(benchmark::State& state) {
  // A message with many names sharing suffixes: compression-heavy.
  dns::Message message;
  message.header.is_response = true;
  for (int i = 0; i < 12; ++i) {
    message.answers.push_back(dns::ResourceRecord{
        dns::DnsName::from_text("e" + std::to_string(i) + ".g.cdn.example"),
        dns::RecordType::CNAME, dns::RecordClass::IN, 60,
        dns::CnameRecord{dns::DnsName::from_text("target.g.cdn.example")}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(message.encode());
  }
}
BENCHMARK(BM_NameCompressionEncode);

void BM_TrieLongestMatch(benchmark::State& state) {
  const topo::World& world = bench_world();
  util::Rng rng{11};
  std::vector<net::IpAddr> probes;
  for (int i = 0; i < 1024; ++i) {
    const auto& block = world.blocks[rng.below(world.blocks.size())];
    probes.emplace_back(net::IpV4Addr{block.prefix.address().v4().value() + 5});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.geodb.lookup(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_MappingDecisionEndUser(benchmark::State& state) {
  const topo::World& world = bench_world();
  static cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 200);
  static cdn::MappingSystem mapping{&world, &network, &bench_latency(), cdn::MappingConfig{}};
  util::Rng rng{12};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto block = static_cast<topo::BlockId>((i++ * 2654435761U) % world.blocks.size());
    benchmark::DoNotOptimize(mapping.map_block(block, "www.shop.example"));
  }
}
BENCHMARK(BM_MappingDecisionEndUser);

void BM_MappingDecisionNsBased(benchmark::State& state) {
  const topo::World& world = bench_world();
  static cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 200);
  static cdn::MappingSystem mapping{&world, &network, &bench_latency(), cdn::MappingConfig{}};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto ldns = static_cast<topo::LdnsId>((i++ * 2654435761U) % world.ldnses.size());
    benchmark::DoNotOptimize(mapping.map_ldns(ldns, "www.shop.example"));
  }
}
BENCHMARK(BM_MappingDecisionNsBased);

void BM_ResolverCacheHit(benchmark::State& state) {
  const topo::World& world = bench_world();
  static cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 200);
  static cdn::MappingSystem mapping{&world, &network, &bench_latency(), cdn::MappingConfig{}};
  static dnsserver::AuthoritativeServer authority;
  static const bool authority_init = [] {
    authority.add_dynamic_domain(dns::DnsName::from_text("g.cdn.example"), mapping.dns_handler());
    return true;
  }();
  (void)authority_init;
  static dnsserver::AuthorityDirectory directory = [] {
    dnsserver::AuthorityDirectory d;
    d.add_authority(dns::DnsName::from_text("g.cdn.example"), &authority);
    return d;
  }();
  util::SimClock clock;
  dnsserver::ResolverConfig config;
  config.ecs_enabled = true;
  dnsserver::RecursiveResolver resolver{config, &clock, &directory,
                                        world.ldnses.front().address};
  const auto query =
      dns::Message::make_query(1, dns::DnsName::from_text("www.g.cdn.example"),
                               dns::RecordType::A);
  const net::IpAddr client{net::IpV4Addr{world.blocks.front().prefix.address().v4().value() + 1}};
  (void)resolver.resolve(query, client);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve(query, client));
  }
}
BENCHMARK(BM_ResolverCacheHit);

/// An authority with a constant-cost dynamic handler, for measuring the
/// observability overhead of handle() itself. One shared engine: the
/// instrumented/uninstrumented benches toggle its knobs, so both measure
/// the exact same zone/domain configuration.
dnsserver::AuthoritativeServer& obs_bench_authority() {
  static dnsserver::AuthoritativeServer server;
  static const bool initialized = [] {
    server.add_dynamic_domain(
        dns::DnsName::from_text("g.cdn.example"),
        [](const dnsserver::DynamicQuery&) -> std::optional<dnsserver::DynamicAnswer> {
          dnsserver::DynamicAnswer answer;
          answer.ttl = 20;
          answer.ecs_scope_len = 24;
          answer.addresses = {net::IpAddr{net::IpV4Addr{203, 0, 0, 1}},
                              net::IpAddr{net::IpV4Addr{203, 0, 0, 2}}};
          return answer;
        });
    return true;
  }();
  (void)initialized;
  return server;
}

dns::Message obs_bench_query() {
  const auto ecs = dns::ClientSubnetOption::for_query(*net::IpAddr::parse("10.1.2.0"), 24);
  return dns::Message::make_query(9, dns::DnsName::from_text("www.g.cdn.example"),
                                  dns::RecordType::A, ecs);
}

/// Fully instrumented serving path: 1-in-16-sampled latency histogram
/// recording, plus a 1-in-128-sampled structured query log — the
/// production setup. The acceptance bar is <5% overhead vs
/// BM_AuthHandleUninstrumented.
void BM_AuthHandleInstrumented(benchmark::State& state) {
  dnsserver::AuthoritativeServer& authority = obs_bench_authority();
  static obs::QueryLog query_log{obs::QueryLogConfig{4096, 8, 128}};
  authority.set_latency_tracking(true);
  authority.set_query_log(&query_log);
  const dns::Message query = obs_bench_query();
  const net::IpAddr resolver{net::IpV4Addr{192, 0, 2, 53}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(authority.handle(query, resolver));
  }
  authority.set_query_log(nullptr);
}
BENCHMARK(BM_AuthHandleInstrumented);

/// Same engine with latency tracking and the query log off: the clock
/// reads, the sampling tick, and the histogram record are skipped
/// entirely (counters stay on — they are single relaxed atomics).
void BM_AuthHandleUninstrumented(benchmark::State& state) {
  dnsserver::AuthoritativeServer& authority = obs_bench_authority();
  authority.set_latency_tracking(false);
  authority.set_query_log(nullptr);
  const dns::Message query = obs_bench_query();
  const net::IpAddr resolver{net::IpV4Addr{192, 0, 2, 53}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(authority.handle(query, resolver));
  }
  authority.set_latency_tracking(true);
}
BENCHMARK(BM_AuthHandleUninstrumented);

void BM_ObsCounterAdd(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_counter_total");
  for (auto _ : state) {
    counter.add();
  }
}
BENCHMARK(BM_ObsCounterAdd);

/// Wait-free histogram recording; Threads(4) shows the per-thread shard
/// assignment keeping concurrent recorders off each other's cache lines.
void BM_ObsHistogramRecord(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::LatencyHistogram& histogram = registry.histogram("bench_latency_us");
  std::uint64_t v = static_cast<std::uint64_t>(state.thread_index()) * 2654435761U;
  for (auto _ : state) {
    histogram.record(v++ & 0xFFFF);
  }
}
BENCHMARK(BM_ObsHistogramRecord)->Threads(1)->Threads(4);

/// Full registry snapshot + percentile estimation, the exposition path
/// (periodic dumps / SIGUSR1 — not the hot path, but worth tracking).
void BM_ObsSnapshotPercentiles(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  static const bool initialized = [] {
    obs::LatencyHistogram& histogram = registry.histogram("bench_snapshot_latency_us");
    for (std::uint64_t v = 0; v < 100'000; ++v) histogram.record(v & 0x3FFF);
    for (int i = 0; i < 8; ++i) {
      registry.counter("bench_snapshot_total", "", {{"worker", std::to_string(i)}})
          .add(static_cast<std::uint64_t>(i));
    }
    return true;
  }();
  (void)initialized;
  for (auto _ : state) {
    const obs::MetricsSnapshot snapshot = registry.snapshot();
    benchmark::DoNotOptimize(snapshot.histograms.front().hist.percentile(99));
  }
}
BENCHMARK(BM_ObsSnapshotPercentiles);

dnsserver::ScopedEcsCache::Entry cache_bench_entry(std::uint32_t answer,
                                                   std::optional<net::IpPrefix> scope) {
  dnsserver::ScopedEcsCache::Entry entry;
  entry.scope = scope;
  entry.answers.push_back(dns::ResourceRecord{
      dns::DnsName::from_text("www.g.cdn.example"), dns::RecordType::A,
      dns::RecordClass::IN, 300, dns::ARecord{net::IpV4Addr{answer}}});
  entry.inserted = util::SimTime{0};
  entry.expires = util::SimTime{300};
  return entry;
}

/// Longest-scope-match lookup against a key holding `Arg` scoped slots
/// (the per-name entry counts ECS multiplies, paper §5.2).
void BM_ScopedCacheLookupHit(benchmark::State& state) {
  dnsserver::ScopedEcsCache cache{dnsserver::ScopedCacheConfig{1 << 16, 8}};
  const dnsserver::ScopedEcsCache::Key key{dns::DnsName::from_text("www.g.cdn.example"),
                                           dns::RecordType::A};
  const auto slots = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < slots; ++i) {
    cache.store(key, cache_bench_entry(0xCB000000U + i,
                                       net::IpPrefix{net::IpAddr{net::IpV4Addr{0x0A000000U + (i << 8)}}, 24}));
  }
  const net::IpAddr client{net::IpV4Addr{0x0A000000U + ((slots - 1) << 8) + 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key, client, util::SimTime{1}));
  }
}
BENCHMARK(BM_ScopedCacheLookupHit)->Arg(1)->Arg(16)->Arg(64);

/// Steady-state store into a full cache: every insert evicts the LRU
/// tail, exercising the unlink/reap path.
void BM_ScopedCacheStoreEvict(benchmark::State& state) {
  dnsserver::ScopedEcsCache cache{dnsserver::ScopedCacheConfig{4096, 8}};
  std::uint32_t i = 0;
  for (auto _ : state) {
    const dnsserver::ScopedEcsCache::Key key{
        dns::DnsName::from_text("h" + std::to_string(i & 0x3FFF) + ".g.cdn.example"),
        dns::RecordType::A};
    cache.store(key, cache_bench_entry(0xCB000000U + i, std::nullopt));
    ++i;
  }
}
BENCHMARK(BM_ScopedCacheStoreEvict);

/// Shard contention: parallel threads hitting a shared cache, mostly
/// lookups. Compare Threads(1) vs Threads(4) to see sharding pay off.
void BM_ScopedCacheParallelMixed(benchmark::State& state) {
  static dnsserver::ScopedEcsCache cache{dnsserver::ScopedCacheConfig{1 << 14, 8}};
  if (state.thread_index() == 0) {
    cache.clear();
    for (std::uint32_t i = 0; i < 1024; ++i) {
      const dnsserver::ScopedEcsCache::Key key{
          dns::DnsName::from_text("h" + std::to_string(i) + ".g.cdn.example"),
          dns::RecordType::A};
      cache.store(key, cache_bench_entry(0xCB000000U + i, std::nullopt));
    }
  }
  std::uint32_t i = static_cast<std::uint32_t>(state.thread_index()) * 2654435761U;
  const net::IpAddr client{net::IpV4Addr{0x0A000009U}};
  for (auto _ : state) {
    const dnsserver::ScopedEcsCache::Key key{
        dns::DnsName::from_text("h" + std::to_string(i++ & 1023) + ".g.cdn.example"),
        dns::RecordType::A};
    if ((i & 15U) == 0) {
      cache.store(key, cache_bench_entry(i, std::nullopt));
    } else {
      benchmark::DoNotOptimize(cache.lookup(key, client, util::SimTime{1}));
    }
  }
}
BENCHMARK(BM_ScopedCacheParallelMixed)->Threads(1)->Threads(4);

void BM_WorldGeneration(benchmark::State& state) {
  for (auto _ : state) {
    topo::WorldGenConfig config;
    config.seed = 77;
    config.target_blocks = static_cast<std::size_t>(state.range(0));
    config.target_ases = std::max<std::size_t>(50, config.target_blocks / 33);
    config.ping_targets = 300;
    config.deployment_universe = 100;
    benchmark::DoNotOptimize(topo::generate_world(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorldGeneration)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_PingMesh(benchmark::State& state) {
  const topo::World& world = bench_world();
  const cdn::CdnNetwork network = cdn::CdnNetwork::build(world, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdn::PingMesh::measure(world, network, bench_latency()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(world.ping_targets.size()));
}
BENCHMARK(BM_PingMesh)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

// Ablation: rendezvous hashing vs random-2 server choice. The metric that
// matters for a CDN cluster is how many distinct servers a domain's
// objects land on (cache duplication); rendezvous keeps it at 2.
void BM_LocalLbRendezvousSpread(benchmark::State& state) {
  cdn::CdnNetwork network = cdn::CdnNetwork::build(bench_world(), 1, 16);
  cdn::Deployment& cluster = network.deployments()[0];
  const cdn::LocalLoadBalancer lb{2};
  std::size_t spread_total = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    std::set<std::uint32_t> servers;
    for (int rep = 0; rep < 50; ++rep) {  // 50 requests for the same domain
      for (const auto& addr : lb.pick_servers(cluster, "assets.media.example")) {
        servers.insert(addr.v4().value());
      }
    }
    spread_total += servers.size();
    ++rounds;
    benchmark::DoNotOptimize(servers);
  }
  state.counters["servers_per_domain"] =
      static_cast<double>(spread_total) / static_cast<double>(rounds);
}
BENCHMARK(BM_LocalLbRendezvousSpread);

void BM_LocalLbRandomSpread(benchmark::State& state) {
  cdn::CdnNetwork network = cdn::CdnNetwork::build(bench_world(), 1, 16);
  cdn::Deployment& cluster = network.deployments()[0];
  util::Rng rng{13};
  std::size_t spread_total = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    std::set<std::uint32_t> servers;
    for (int rep = 0; rep < 50; ++rep) {
      for (int k = 0; k < 2; ++k) {
        servers.insert(cluster.servers[rng.below(cluster.servers.size())].address.value());
      }
    }
    spread_total += servers.size();
    ++rounds;
    benchmark::DoNotOptimize(servers);
  }
  state.counters["servers_per_domain"] =
      static_cast<double>(spread_total) / static_cast<double>(rounds);
}
BENCHMARK(BM_LocalLbRandomSpread);

void BM_ZoneFileParse(benchmark::State& state) {
  std::string text = "$ORIGIN perf.example.\n$TTL 300\n@ SOA ns1 host 1 3600 600 86400 30\n";
  for (int i = 0; i < 200; ++i) {
    text += "h" + std::to_string(i) + " A 10.0." + std::to_string(i / 250) + "." +
            std::to_string(i % 250 + 1) + "\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnsserver::parse_zone_file(text));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ZoneFileParse);

void BM_TwoTierResolution(benchmark::State& state) {
  const topo::World& world = bench_world();
  static cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 200);
  static cdn::MappingSystem mapping{&world, &network, &bench_latency(), cdn::MappingConfig{}};
  static dnsserver::AuthoritativeServer top;
  static dnsserver::AuthoritativeServer low;
  static dnsserver::AuthorityDirectory directory = [] {
    dnsserver::AuthorityDirectory d;
    mapping.install_two_tier(d, top, low, dns::DnsName::from_text("b.cdn.example"));
    return d;
  }();
  util::SimClock clock;
  dnsserver::ResolverConfig config;
  dnsserver::RecursiveResolver resolver{config, &clock, &directory,
                                        world.ldnses.front().address};
  const net::IpAddr client{net::IpV4Addr{world.blocks.front().prefix.address().v4().value() + 1}};
  std::uint64_t serial = 0;
  for (auto _ : state) {
    // Fresh name each iteration: full delegation chase, no cache hit.
    const auto query = dns::Message::make_query(
        1, dns::DnsName::from_text("e" + std::to_string(serial++) + ".b.cdn.example"),
        dns::RecordType::A);
    benchmark::DoNotOptimize(resolver.resolve(query, client));
  }
}
BENCHMARK(BM_TwoTierResolution);

void BM_WorldSaveLoad(benchmark::State& state) {
  const topo::World& world = bench_world();
  for (auto _ : state) {
    std::stringstream stream;
    topo::save_world(world, stream);
    benchmark::DoNotOptimize(topo::load_world(stream));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(world.blocks.size()));
}
BENCHMARK(BM_WorldSaveLoad)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
