// Figure 25: mean/95th/99th percentile client latency of the three
// mapping schemes (NS, CANS, EU) as a function of deployment-location
// count, 40..2560 drawn from a 2642-site universe, averaged over random
// runs. Paper: all schemes improve with more deployments; means are
// nearly identical; at the 99th percentile NS-based mapping plateaus near
// 186 ms beyond ~160 locations while EU keeps improving — a CDN with more
// deployments gains more from end-user mapping.
#include "bench_common.h"

#include <cstring>

#include "sim/deployment_study.h"

using namespace eum;

int main(int argc, char** argv) {
  bench::banner("Figure 25 - NS / CANS / EU latency vs number of deployments",
                "NS p99 floors ~186 ms beyond 160 sites; EU keeps improving");

  sim::DeploymentStudyConfig config;
  config.runs = 12;  // paper: 100; the shape stabilizes far earlier
  if (argc > 1) config.runs = std::strtoull(argv[1], nullptr, 10);

  const auto rows =
      sim::run_deployment_study(bench::default_world(), bench::default_latency(), config);

  stats::Table table{"deployments", "NS mean", "CANS mean", "EU mean", "NS p95", "CANS p95",
                     "EU p95", "NS p99", "CANS p99", "EU p99"};
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.deployments), stats::num(row.ns.mean_ms, 1),
                   stats::num(row.cans.mean_ms, 1), stats::num(row.eu.mean_ms, 1),
                   stats::num(row.ns.p95_ms, 1), stats::num(row.cans.p95_ms, 1),
                   stats::num(row.eu.p95_ms, 1), stats::num(row.ns.p99_ms, 1),
                   stats::num(row.cans.p99_ms, 1), stats::num(row.eu.p99_ms, 1)});
  }
  std::printf("(ping latency, ms; %zu runs)\n%s\n", config.runs, table.render().c_str());

  const auto& first = rows.front();
  const auto& last = rows.back();
  bench::compare("EU mean at max deployments", 10.0, last.eu.mean_ms, "ms");
  bench::compare("EU mean at min deployments", 35.0, first.eu.mean_ms, "ms");
  bench::compare("NS p99 plateau at max deployments", 186.0, last.ns.p99_ms, "ms");
  std::printf("\nshape checks:\n");
  // "Mean ping latency is nearly identical for all three mapping schemes"
  // — i.e. the scheme differences live in the tail, not the mean.
  std::printf("  mean gap tiny vs p99 gap (tail story)       %s\n",
              (last.ns.mean_ms - last.eu.mean_ms) < 0.25 * (last.ns.p99_ms - last.eu.p99_ms)
                  ? "[OK]" : "[MISMATCH]");
  std::printf("  EU beats NS at p99 for every count         %s\n",
              [&] {
                for (const auto& row : rows) {
                  if (row.eu.p99_ms > row.ns.p99_ms + 0.5) return false;
                }
                return true;
              }() ? "[OK]" : "[MISMATCH]");
  const double ns_tail_gain = first.ns.p99_ms - last.ns.p99_ms;
  const double eu_tail_gain = first.eu.p99_ms - last.eu.p99_ms;
  std::printf("  EU p99 improves more with deployments      %s (NS gain %.1f ms, EU gain %.1f ms)\n",
              eu_tail_gain > ns_tail_gain ? "[OK]" : "[MISMATCH]", ns_tail_gain, eu_tail_gain);
  std::printf("  CANS between NS and EU at p99 (max count)  %s\n",
              last.cans.p99_ms <= last.ns.p99_ms + 0.5 &&
                      last.cans.p99_ms >= last.eu.p99_ms - 0.5
                  ? "[OK]" : "[MISMATCH]");
  return 0;
}
