// Figure 2: client requests served and DNS queries resolved by the
// mapping system over a mid-January window (paper: ~30M requests/s and
// ~1.6M DNS queries/s, a ~19:1 ratio).
#include "bench_common.h"

#include "sim/op_rates.h"

using namespace eum;

int main() {
  bench::banner("Figure 2 - client requests and DNS queries per second",
                "~30M client req/s vs ~1.6M DNS q/s over Jan 07-19; ~19 requests per query");

  const auto series = sim::operational_rates(bench::default_world(), util::Date{2014, 1, 7},
                                             util::Date{2014, 1, 20});
  stats::Table table{"date", "client req/s (M)", "DNS queries/s (M)", "ratio"};
  double req_sum = 0.0;
  double dns_sum = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    req_sum += series[i].client_requests_per_s;
    dns_sum += series[i].dns_queries_per_s;
    if ((i + 1) % 24 == 0) {  // daily mean
      const auto date = util::date_from_day_index(static_cast<int>(series[i].time.days()));
      table.add_row({util::to_string(date), stats::num(req_sum / 24 / 1e6, 2),
                     stats::num(dns_sum / 24 / 1e6, 3),
                     stats::num(req_sum / dns_sum, 1)});
      req_sum = dns_sum = 0.0;
    }
  }
  std::printf("%s\n", table.render().c_str());

  double mean_req = 0.0;
  double mean_dns = 0.0;
  for (const auto& p : series) {
    mean_req += p.client_requests_per_s;
    mean_dns += p.dns_queries_per_s;
  }
  mean_req /= static_cast<double>(series.size());
  mean_dns /= static_cast<double>(series.size());
  bench::compare("mean client requests per second (M)", 30.0, mean_req / 1e6, "M/s");
  bench::compare("mean DNS queries per second (M)", 1.6, mean_dns / 1e6, "M/s");
  bench::compare("requests per DNS query", 18.75, mean_req / mean_dns, "x");
  return 0;
}
