// Fault sweep: resolver availability vs injected upstream loss.
//
// The paper's roll-out discipline (§4) was "measure availability before
// and after, ship only if it holds". This bench quantifies the retry
// machinery the same way: a FaultInjector drops 0-20% of upstream
// queries and the resolver runs one mapping-unit-per-query workload
// (every query a distinct client /24 with ECS, so the cache never
// shields the upstream path) twice — with the default retry budget and
// with retries disabled. Per loss point it reports success rate, retry
// volume, and client-observed latency percentiles.
//
// Results land in BENCH_fault_sweep.json (EUM_BENCH_OUT overrides the
// path). The process exits non-zero if the retry arm's success rate at
// 10% loss falls below 99.9%, or if the no-retry arm is not measurably
// worse there — either would mean the retry path stopped earning its
// keep. Both fault and jitter streams are seeded, so runs are exactly
// reproducible.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dnsserver/fault.h"
#include "dnsserver/resolver.h"
#include "dnsserver/transport.h"
#include "util/sim_clock.h"

namespace {

using namespace eum;
using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;

constexpr int kQueriesPerPoint = 20'000;
constexpr int kRetryAttempts = 4;  // 10% loss -> 1e-4 residual failure
constexpr double kLossPoints[] = {0.0, 0.025, 0.05, 0.10, 0.15, 0.20};
constexpr double kGateLoss = 0.10;
constexpr double kGateSuccess = 0.999;

struct PointResult {
  double loss = 0.0;
  int queries = 0;
  int successes = 0;
  std::uint64_t retries = 0;
  std::uint64_t upstream_failures = 0;
  std::uint64_t injected_drops = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;

  [[nodiscard]] double success_rate() const {
    return queries == 0 ? 0.0 : static_cast<double>(successes) / queries;
  }
};

double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

/// One sweep point: a fresh authority/injector/resolver stack, every
/// query a distinct client /24 so each resolution crosses the faulty
/// upstream path.
PointResult run_point(double loss, int attempts) {
  dnsserver::AuthoritativeServer authority;
  authority.add_dynamic_domain(
      DnsName::from_text("g.cdn.example"),
      [](const dnsserver::DynamicQuery& query) -> std::optional<dnsserver::DynamicAnswer> {
        dnsserver::DynamicAnswer answer;
        if (query.client_block) {
          const auto base = query.client_block->address().v4().value();
          answer.addresses = {net::IpAddr{net::IpV4Addr{0xCB000000U | (base >> 8 & 0xFFFF)}}};
        } else {
          answer.addresses = {net::IpAddr{net::IpV4Addr{203, 0, 113, 99}}};
        }
        return answer;
      });
  dnsserver::AuthorityDirectory directory;
  directory.add_authority(DnsName::from_text("g.cdn.example"), &authority);

  dnsserver::FaultSpec faults;
  faults.drop = loss;
  dnsserver::FaultInjectorConfig fault_config;
  fault_config.faults = faults;
  fault_config.seed = 0xFA017EEDULL + static_cast<std::uint64_t>(loss * 1000.0);
  dnsserver::FaultInjector injector{&directory, fault_config};

  util::SimClock clock;
  dnsserver::ResolverConfig config;
  config.ecs_enabled = true;
  config.retry.attempts = attempts;
  config.retry.backoff_initial = std::chrono::microseconds{200};
  config.retry.backoff_max = std::chrono::microseconds{2000};
  dnsserver::RecursiveResolver resolver{config, &clock, &injector,
                                        *net::IpAddr::parse("202.0.0.1")};

  PointResult result;
  result.loss = loss;
  result.queries = kQueriesPerPoint;
  std::vector<double> latencies_us;
  latencies_us.reserve(kQueriesPerPoint);
  for (int i = 0; i < kQueriesPerPoint; ++i) {
    // Distinct /24 per query: the mapping-unit workload that defeats the
    // scoped cache and keeps every resolution on the upstream path.
    const net::IpAddr client{
        net::IpV4Addr{0x0A000000U + (static_cast<std::uint32_t>(i) << 8) + 1}};
    const Message query = Message::make_query(static_cast<std::uint16_t>(i),
                                              DnsName::from_text("www.g.cdn.example"),
                                              RecordType::A);
    const auto start = std::chrono::steady_clock::now();
    const Message response = resolver.resolve(query, client);
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    latencies_us.push_back(static_cast<double>(elapsed.count()) / 1000.0);
    if (response.header.rcode == Rcode::no_error) ++result.successes;
  }
  const dnsserver::ResolverStats stats = resolver.stats();
  result.retries = stats.retries;
  result.upstream_failures = stats.upstream_failures;
  result.injected_drops = injector.stats().drops;
  result.p50_us = percentile(latencies_us, 0.50);
  result.p90_us = percentile(latencies_us, 0.90);
  result.p99_us = percentile(latencies_us, 0.99);
  return result;
}

void print_arm(const char* title, const std::vector<PointResult>& points) {
  std::printf("%s\n", title);
  std::printf("  %-6s %-9s %-10s %-9s %-9s %-9s %-9s\n", "loss", "success", "retries",
              "drops", "p50_us", "p90_us", "p99_us");
  for (const PointResult& p : points) {
    std::printf("  %-6.3f %-9.5f %-10llu %-9llu %-9.1f %-9.1f %-9.1f\n", p.loss,
                p.success_rate(), static_cast<unsigned long long>(p.retries),
                static_cast<unsigned long long>(p.injected_drops), p.p50_us, p.p90_us,
                p.p99_us);
  }
}

void write_json(const std::vector<PointResult>& with_retries,
                const std::vector<PointResult>& no_retries, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::perror("fault_sweep: fopen bench artifact");
    return;
  }
  const auto arm_json = [out](const char* name, int attempts,
                              const std::vector<PointResult>& points) {
    std::fprintf(out, "  \"%s\": {\"attempts\": %d, \"points\": [\n", name, attempts);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const PointResult& p = points[i];
      std::fprintf(out,
                   "    {\"loss\": %.3f, \"queries\": %d, \"success_rate\": %.5f, "
                   "\"retries\": %llu, \"upstream_failures\": %llu, \"injected_drops\": "
                   "%llu, \"p50_us\": %.1f, \"p90_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   p.loss, p.queries, p.success_rate(),
                   static_cast<unsigned long long>(p.retries),
                   static_cast<unsigned long long>(p.upstream_failures),
                   static_cast<unsigned long long>(p.injected_drops), p.p50_us, p.p90_us,
                   p.p99_us, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]}");
  };
  std::fprintf(out, "{\n  \"bench\": \"fault_sweep\",\n  \"queries_per_point\": %d,\n",
               kQueriesPerPoint);
  arm_json("with_retries", kRetryAttempts, with_retries);
  std::fprintf(out, ",\n");
  arm_json("no_retries", 1, no_retries);
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

const PointResult* at_loss(const std::vector<PointResult>& points, double loss) {
  for (const PointResult& p : points) {
    if (p.loss == loss) return &p;
  }
  return nullptr;
}

}  // namespace

int main() {
  std::vector<PointResult> with_retries;
  std::vector<PointResult> no_retries;
  for (const double loss : kLossPoints) {
    with_retries.push_back(run_point(loss, kRetryAttempts));
    no_retries.push_back(run_point(loss, 1));
  }
  print_arm("retry arm (attempts=4)", with_retries);
  print_arm("no-retry arm (attempts=1)", no_retries);

  const char* out_path = std::getenv("EUM_BENCH_OUT");
  write_json(with_retries, no_retries,
             out_path != nullptr ? out_path : "BENCH_fault_sweep.json");

  // Availability gate at 10% loss: retries must hold >= 99.9% success
  // and the no-retry arm must be measurably worse (it sits near 90%).
  const PointResult* gated = at_loss(with_retries, kGateLoss);
  const PointResult* baseline = at_loss(no_retries, kGateLoss);
  if (gated == nullptr || baseline == nullptr) {
    std::fprintf(stderr, "fault_sweep: gate loss point missing from sweep\n");
    return 1;
  }
  if (gated->success_rate() < kGateSuccess) {
    std::fprintf(stderr, "fault_sweep: FAIL success %.5f < %.3f at %.0f%% loss\n",
                 gated->success_rate(), kGateSuccess, kGateLoss * 100.0);
    return 1;
  }
  if (baseline->success_rate() >= gated->success_rate()) {
    std::fprintf(stderr,
                 "fault_sweep: FAIL no-retry arm (%.5f) not degraded vs retries (%.5f)\n",
                 baseline->success_rate(), gated->success_rate());
    return 1;
  }
  std::printf("gate ok: %.5f success at %.0f%% loss with retries, %.5f without\n",
              gated->success_rate(), kGateLoss * 100.0, baseline->success_rate());
  return 0;
}
