// Shared setup for the figure-reproduction benches.
//
// Every bench binary regenerates one paper exhibit from the same default
// world (seed 42, 50K /24 blocks — a 1:75 scale model of the paper's
// 3.76M-block dataset). Worlds are deterministic, so figures are exactly
// reproducible run to run. Set EUM_BLOCKS / EUM_SEED to rescale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "cdn/mapping.h"
#include "control/rollout_controller.h"
#include "measure/analysis.h"
#include "measure/rum.h"
#include "sim/rollout.h"
#include "stats/table.h"
#include "topo/world_gen.h"
#include "util/rng.h"
#include "util/strings.h"

namespace eum::bench {

inline topo::WorldGenConfig default_world_config() {
  topo::WorldGenConfig config;
  config.seed = 42;
  config.target_blocks = 50'000;
  config.target_ases = 2500;
  config.ping_targets = 3000;
  config.deployment_universe = 2642;
  if (const char* blocks = std::getenv("EUM_BLOCKS")) {
    config.target_blocks = std::strtoull(blocks, nullptr, 10);
    config.target_ases = std::max<std::size_t>(100, config.target_blocks / 20);
  }
  if (const char* seed = std::getenv("EUM_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  return config;
}

inline const topo::World& default_world() {
  static const topo::World world = topo::generate_world(default_world_config());
  return world;
}

inline const topo::LatencyModel& default_latency() {
  static const topo::LatencyModel model{topo::LatencyParams{},
                                        default_world_config().seed};
  return model;
}

/// Seeded per-client block sampler for bench client loops: Zipf(s)
/// popularity over a world's client blocks, so the query mix is
/// hot-block-skewed like real traffic instead of a uniform stride.
/// Client `index` forks its own util::Rng stream off the shared seed —
/// threads never share state, and every run replays exactly. Benches
/// draw from this instead of ad-hoc `(c * prime + i) % n` arithmetic.
class BlockSampler {
 public:
  BlockSampler(const topo::World& world, std::uint64_t seed, std::uint64_t index,
               double zipf_s = 1.0)
      : rng_(util::Rng{seed}.fork(index)),
        zipf_(world.blocks.size(), zipf_s),
        world_(&world) {}

  const topo::ClientBlock& next() { return world_->blocks[zipf_.sample(rng_) - 1]; }

 private:
  util::Rng rng_;
  util::ZipfSampler zipf_;
  const topo::World* world_;
};

/// Print the standard bench banner.
inline void banner(const char* figure, const char* paper_summary) {
  std::printf("=== %s ===\n", figure);
  std::printf("paper: %s\n", paper_summary);
  std::printf("world: %zu blocks, %zu LDNSes, seed %llu\n\n", default_world().blocks.size(),
              default_world().ldnses.size(),
              static_cast<unsigned long long>(default_world_config().seed));
}

/// One paper-vs-measured comparison line.
inline void compare(const char* metric, double paper_value, double measured,
                    const char* unit) {
  std::printf("  %-44s paper %10.1f %-6s measured %10.1f %s\n", metric, paper_value, unit,
              measured, unit);
}

/// The roll-out simulation shared by Figures 13-20: the paper's Jan 1 -
/// Jun 30 2014 timeline with the Mar 28 - Apr 15 ramp, over a 600-cluster
/// CDN. Runs once per bench binary.
struct RolloutBundle {
  std::unique_ptr<cdn::CdnNetwork> network;
  std::unique_ptr<cdn::MappingSystem> mapping;
  std::unique_ptr<measure::RumSimulator> rum;
  std::unique_ptr<control::RolloutController> controller;
  sim::RolloutResult result;
};

inline const RolloutBundle& rollout_bundle() {
  static const RolloutBundle bundle = [] {
    const topo::World& world = default_world();
    RolloutBundle b;
    b.network = std::make_unique<cdn::CdnNetwork>(cdn::CdnNetwork::build(world, 600));
    b.mapping = std::make_unique<cdn::MappingSystem>(&world, b.network.get(),
                                                     &default_latency(), cdn::MappingConfig{});
    b.rum = std::make_unique<measure::RumSimulator>(&world, b.mapping.get(),
                                                    &default_latency());
    // The ramp runs through the real control plane: the same
    // RolloutController that gates end-user mapping per-LDNS on the live
    // DNS path drives the simulated Mar 28 - Apr 15 cohort flips.
    const sim::RolloutConfig config{};
    control::RolloutRampConfig ramp;
    ramp.ramp_start = config.ramp_start;
    ramp.ramp_end = config.ramp_end;
    ramp.seed = config.seed;
    b.controller = std::make_unique<control::RolloutController>(ramp);
    sim::RolloutSimulator simulator{&world, b.rum.get(), config, b.controller.get()};
    b.result = simulator.run();
    return b;
  }();
  return bundle;
}

/// Print a daily-mean time series as a sparse table (every `stride` days)
/// for the two expectation groups.
inline void print_timeline(const sim::RolloutResult& result,
                           double sim::DailyMetrics::*metric, const char* unit,
                           int stride = 7) {
  stats::Table table{"date", std::string("high-exp (") + unit + ")",
                     std::string("low-exp (") + unit + ")"};
  for (std::size_t i = 0; i < result.high_daily.size(); i += static_cast<std::size_t>(stride)) {
    table.add_row({util::to_string(result.high_daily[i].date),
                   stats::num(result.high_daily[i].*metric, 1),
                   stats::num(result.low_daily[i].*metric, 1)});
  }
  std::printf("%s", table.render().c_str());
}

/// Print before/after CDFs for one metric over both groups (the shared
/// format of Figures 14/16/18/20).
inline void print_cdfs(const sim::RolloutResult& result,
                       stats::WeightedSample sim::MetricPools::*metric, const char* unit) {
  stats::Table table{"percentile", "high before", "high after", "low before", "low after"};
  for (const double q : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    table.add_row({stats::num(q, 0) + "%",
                   stats::num((result.high_before.*metric).percentile(q), 1),
                   stats::num((result.high_after.*metric).percentile(q), 1),
                   stats::num((result.low_before.*metric).percentile(q), 1),
                   stats::num((result.low_after.*metric).percentile(q), 1)});
  }
  std::printf("(values in %s)\n%s", unit, table.render().c_str());
}

}  // namespace eum::bench
