// Latency under load: open-loop QPS sweep against the real mapping stack.
//
// The historical udp_throughput bench is closed-loop: every client waits
// for its answer before sending the next query, so when the server
// stalls, the *offered load politely stops* — queueing delay is silently
// omitted from the latency record (coordinated omission). This bench
// drives the batched + answer-cached serving path the way the paper's
// authorities actually experience traffic: an `OpenLoopSchedule` fixes
// every query's send instant up front (Poisson arrivals at a configured
// QPS), `run_open_loop` charges latency from the *scheduled* send time,
// and queries the server never answers are counted as drops instead of
// vanishing.
//
// Output: a throughput-vs-latency curve (p50/p99/p999 per offered-QPS
// point), the max offered QPS whose p999 stays under the SLO
// (EUM_LOADGEN_SLO_US, default 2000 us) with a drop rate under 1%, and
// an open-vs-closed comparison arm at a matched rate that quantifies the
// coordinated-omission error. Everything lands in BENCH_loadgen.json
// (EUM_BENCH_OUT overrides the path), gated by
// scripts/check_bench_artifact.py.
//
// Knobs (all environment variables, all optional):
//   EUM_LOADGEN_BASE_QPS   first sweep point        (default 2000)
//   EUM_LOADGEN_POINTS     sweep points, doubling   (default 6, min 5)
//   EUM_LOADGEN_WINDOW_MS  per-point window         (default 400)
//   EUM_LOADGEN_SLO_US     p999 SLO in microseconds (default 2000)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cdn/mapping.h"
#include "control/map_maker.h"
#include "dnsserver/udp.h"
#include "load/driver.h"
#include "load/schedule.h"
#include "load/traffic.h"
#include "obs/metrics.h"
#include "stats/table.h"
#include "topo/world_gen.h"

namespace {

using namespace std::chrono_literals;
using namespace eum;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

/// One point on the offered-QPS curve.
struct CurvePoint {
  load::LoadReport report;
  bool meets_slo = false;
};

/// The serving stack under test: the same setup as udp_throughput's
/// churn section — real mapping system behind the MapMaker's RCU
/// snapshot fast path — plus the batched serve path's wire answer cache
/// keyed to the published map version. This is the configuration the
/// max-QPS-under-SLO number describes.
struct Stack {
  topo::World world;
  std::unique_ptr<topo::LatencyModel> latency;
  std::unique_ptr<cdn::CdnNetwork> network;
  std::unique_ptr<cdn::MappingSystem> mapping;
  std::unique_ptr<control::MapMaker> maker;
  std::unique_ptr<dnsserver::AuthoritativeServer> engine;
  std::unique_ptr<dnsserver::UdpAuthorityServer> server;

  static Stack build() {
    Stack s;
    topo::WorldGenConfig world_config;
    world_config.seed = 42;
    world_config.target_blocks = 4000;
    world_config.target_ases = 220;
    world_config.ping_targets = 400;
    s.world = topo::generate_world(world_config);
    s.latency = std::make_unique<topo::LatencyModel>(topo::LatencyParams{},
                                                     world_config.seed);
    s.network = std::make_unique<cdn::CdnNetwork>(cdn::CdnNetwork::build(s.world, 150));
    s.mapping = std::make_unique<cdn::MappingSystem>(&s.world, s.network.get(),
                                                     s.latency.get(), cdn::MappingConfig{});
    s.maker = std::make_unique<control::MapMaker>(s.mapping.get(), nullptr,
                                                  control::MapMakerConfig{});
    s.maker->install_fast_path();  // serving reads the RCU snapshot, lock-free

    s.engine = std::make_unique<dnsserver::AuthoritativeServer>();
    s.engine->set_latency_tracking(false);
    // Load-generator flows bind ephemeral loopback ports, so the peer
    // address the server sees is never a world LDNS; patch unknown
    // resolvers to a fixed fallback (as run_churn does). The diversity
    // that reaches the mapping decision is what the wire carries: the
    // qname mix and the per-LDNS ECS prefixes — which is exactly the
    // end-user-mapping regime the paper argues for.
    const topo::Ldns& fallback_ldns = s.world.ldnses.front();
    const topo::World* world = &s.world;
    auto inner = s.mapping->dns_handler();
    s.engine->add_dynamic_domain(
        dns::DnsName::from_text("g.cdn.example"),
        [world, &fallback_ldns, inner](const dnsserver::DynamicQuery& query)
            -> std::optional<dnsserver::DynamicAnswer> {
          dnsserver::DynamicQuery patched = query;
          if (world->ldns_by_address(query.resolver) == nullptr) {
            patched.resolver = fallback_ldns.address;
          }
          return inner(patched);
        });

    dnsserver::UdpServerConfig config;
    config.workers = 4;
    config.batch = 32;
    config.answer_cache_entries = 4096;
    config.map_version = &s.maker->version_cell();
    s.server = std::make_unique<dnsserver::UdpAuthorityServer>(
        s.engine.get(), dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0}, config);
    s.server->start();
    return s;
  }
};

void write_bench_json(const load::TrafficModel& model,
                      const std::vector<CurvePoint>& curve, double slo_us,
                      double max_qps_under_slo,
                      const load::ClosedLoopReport& closed,
                      const load::LoadReport& open_matched,
                      const dnsserver::UdpServerStats& stats, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::perror("loadgen: fopen bench artifact");
    return;
  }
  const auto& tc = model.config();
  std::fprintf(out, "{\n  \"bench\": \"loadgen\",\n  \"open_loop\": true,\n");
  std::fprintf(out,
               "  \"server\": {\"workers\": 4, \"batch\": 32, "
               "\"answer_cache_entries\": 4096, \"blocks\": 4000, "
               "\"mapping\": \"rcu_fast_path\"},\n");
  std::fprintf(out,
               "  \"traffic\": {\"seed\": %llu, \"qnames\": %zu, \"ldnses\": %zu, "
               "\"edns_fraction\": %.2f, \"ecs_fraction\": %.2f},\n",
               static_cast<unsigned long long>(tc.seed), tc.qnames,
               model.population().size(), tc.edns_fraction, tc.ecs_fraction);
  std::fprintf(out, "  \"slo_p999_us\": %.0f,\n  \"curve\": [\n", slo_us);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const load::LoadReport& r = curve[i].report;
    std::fprintf(out,
                 "    {\"offered_qps\": %.0f, \"achieved_qps\": %.0f, "
                 "\"sent\": %llu, \"received\": %llu, \"dropped\": %llu, "
                 "\"late\": %llu, \"drop_rate\": %.4f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
                 "\"send_lag_p99_us\": %.1f, \"meets_slo\": %s}%s\n",
                 r.offered_qps, r.achieved_qps(),
                 static_cast<unsigned long long>(r.sent),
                 static_cast<unsigned long long>(r.received),
                 static_cast<unsigned long long>(r.dropped),
                 static_cast<unsigned long long>(r.late), r.drop_rate(),
                 r.latency_us.percentile(50), r.latency_us.percentile(99),
                 r.latency_us.percentile(99.9), r.send_lag_us.percentile(99),
                 curve[i].meets_slo ? "true" : "false",
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"max_qps_under_slo\": %.0f,\n", max_qps_under_slo);
  std::fprintf(out, "  \"kernel_drops\": %llu,\n",
               static_cast<unsigned long long>(stats.kernel_drops));
  const double closed_p999 = closed.latency_us.percentile(99.9);
  const double open_p999 = open_matched.latency_us.percentile(99.9);
  std::fprintf(out,
               "  \"open_vs_closed\": {\"matched_qps\": %.0f, "
               "\"closed_loop_p999_us\": %.1f, \"open_loop_p999_us\": %.1f, "
               "\"p999_delta_us\": %.1f, \"p999_ratio\": %.3f, "
               "\"closed_loop_timeouts\": %llu, \"open_loop_dropped\": %llu}\n}\n",
               closed.achieved_qps(), closed_p999, open_p999, open_p999 - closed_p999,
               closed_p999 == 0.0 ? 0.0 : open_p999 / closed_p999,
               static_cast<unsigned long long>(closed.timeouts),
               static_cast<unsigned long long>(open_matched.dropped));
  std::fclose(out);
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main() {
  const double base_qps = static_cast<double>(env_u64("EUM_LOADGEN_BASE_QPS", 2000));
  const std::size_t points =
      std::max<std::uint64_t>(5, env_u64("EUM_LOADGEN_POINTS", 6));
  const auto window = std::chrono::milliseconds{env_u64("EUM_LOADGEN_WINDOW_MS", 400)};
  const double slo_us = static_cast<double>(env_u64("EUM_LOADGEN_SLO_US", 2000));
  const double window_s = std::chrono::duration<double>(window).count();

  Stack stack = Stack::build();

  load::TrafficConfig traffic_config;
  traffic_config.seed = 42;
  load::LdnsPopulation population =
      load::LdnsPopulation::from_world(stack.world, traffic_config);
  load::TrafficModel model{std::move(population), traffic_config};

  load::DriverConfig driver;
  driver.server = stack.server->endpoint();
  driver.flows = 4;
  driver.timeout = 500ms;

  std::cout << "Open-loop latency under load: real mapping stack, 4 workers, "
               "batch 32, answer cache 4096 entries\n"
            << "traffic: " << model.population().size() << " LDNSes, "
            << traffic_config.qnames << " qnames, Poisson arrivals, "
            << window.count() << " ms per point, SLO p999 < " << slo_us << " us\n\n";

  // Warm the serve path + answer cache before the measured sweep.
  {
    const auto specs = model.generate(static_cast<std::size_t>(base_qps * window_s));
    const auto sched = load::OpenLoopSchedule::make(load::Arrivals::poisson, base_qps,
                                                    specs.size(), traffic_config.seed);
    (void)load::run_open_loop(model, specs, sched, driver);
  }

  std::vector<CurvePoint> curve;
  double max_qps_under_slo = 0.0;
  double qps = base_qps;
  for (std::size_t point = 0; point < points; ++point, qps *= 2.0) {
    const auto count = static_cast<std::size_t>(qps * window_s);
    const auto specs = model.generate(count);
    const auto sched = load::OpenLoopSchedule::make(load::Arrivals::poisson, qps, count,
                                                    traffic_config.seed + point);
    CurvePoint cp;
    cp.report = load::run_open_loop(model, specs, sched, driver);
    cp.meets_slo = cp.report.latency_us.percentile(99.9) < slo_us &&
                   cp.report.drop_rate() < 0.01;
    if (cp.meets_slo) max_qps_under_slo = std::max(max_qps_under_slo, qps);
    curve.push_back(std::move(cp));
  }

  stats::Table table{{"offered_qps", "achieved_qps", "recv", "drop", "late", "p50_us",
                      "p99_us", "p999_us", "send_lag_p99", "slo"}};
  for (const CurvePoint& cp : curve) {
    const load::LoadReport& r = cp.report;
    table.add_row({stats::num(r.offered_qps, 0), stats::num(r.achieved_qps(), 0),
                   std::to_string(r.received), std::to_string(r.dropped),
                   std::to_string(r.late), stats::num(r.latency_us.percentile(50), 0),
                   stats::num(r.latency_us.percentile(99), 0),
                   stats::num(r.latency_us.percentile(99.9), 0),
                   stats::num(r.send_lag_us.percentile(99), 0),
                   cp.meets_slo ? "ok" : "VIOLATED"});
  }
  std::cout << table.render() << '\n'
            << "max offered QPS with p999 < " << slo_us
            << " us and drop rate < 1%: " << stats::num(max_qps_under_slo, 0) << '\n';

  // Open-vs-closed comparison arm: run the naive closed-loop client,
  // then replay an open-loop schedule at the rate it achieved. The
  // closed-loop arm cannot see queueing delay it never caused; the
  // open-loop arm at the *same* rate charges it. The p999 gap is the
  // coordinated-omission error of every closed-loop bench in this repo.
  const std::size_t arm_count = static_cast<std::size_t>(base_qps * window_s);
  const auto arm_specs = model.generate(arm_count);
  load::DriverConfig arm_driver = driver;
  arm_driver.flows = 8;
  const load::ClosedLoopReport closed =
      load::run_closed_loop(model, arm_specs, arm_driver);
  const double matched_qps = std::max(closed.achieved_qps(), 1.0);
  const auto arm_sched = load::OpenLoopSchedule::make(load::Arrivals::poisson, matched_qps,
                                                      arm_count, traffic_config.seed + 97);
  const load::LoadReport open_matched =
      load::run_open_loop(model, arm_specs, arm_sched, driver);
  const double closed_p999 = closed.latency_us.percentile(99.9);
  const double open_p999 = open_matched.latency_us.percentile(99.9);
  std::cout << "\nopen vs closed loop at matched rate (" << stats::num(matched_qps, 0)
            << " qps): closed-loop p999 " << stats::num(closed_p999, 0)
            << " us (timeouts omitted: " << closed.timeouts << "), open-loop p999 "
            << stats::num(open_p999, 0) << " us (drops charged: " << open_matched.dropped
            << "), delta " << stats::num(open_p999 - closed_p999, 0) << " us\n";

  const dnsserver::UdpServerStats stats = stack.server->stats();
  std::cout << "kernel receive-queue drops over the whole run (SO_RXQ_OVFL): "
            << stats.kernel_drops << '\n';

  const char* out_path = std::getenv("EUM_BENCH_OUT");
  write_bench_json(model, curve, slo_us, max_qps_under_slo, closed, open_matched, stats,
                   out_path != nullptr ? out_path : "BENCH_loadgen.json");
  stack.server->stop();

  // Gate: the serving stack must hold the SLO at at least one measured
  // point, and the curve must be a real sweep.
  return max_qps_under_slo > 0.0 && curve.size() >= 5 ? 0 : 1;
}
