// Ablation: mapping-answer TTL vs steering responsiveness vs DNS load.
//
// CDN mapping answers carry short TTLs so the system can steer traffic
// away from failed or overloaded clusters quickly (MappingConfig's
// answer_ttl, tens of seconds in production). The price is query volume:
// every TTL expiry is another authoritative query. This bench kills a
// client's assigned cluster mid-run and measures, through the real
// recursive-resolver cache, how long clients keep being handed dead
// servers — and what each TTL costs in upstream queries per hour.
#include "bench_common.h"

#include "dnsserver/resolver.h"
#include "dnsserver/transport.h"

using namespace eum;

namespace {

struct TtlOutcome {
  std::uint32_t ttl = 0;
  double stale_seconds = 0.0;      ///< window during which dead servers were served
  double upstream_per_hour = 0.0;  ///< authoritative queries per client per hour
};

TtlOutcome run_with_ttl(std::uint32_t ttl) {
  const topo::World& world = bench::default_world();
  static const topo::LatencyModel& latency = bench::default_latency();
  cdn::CdnNetwork network = cdn::CdnNetwork::build(world, 600);
  cdn::MappingConfig config;
  config.answer_ttl = ttl;
  cdn::MappingSystem mapping{&world, &network, &latency, config};

  dnsserver::AuthoritativeServer authority;
  const auto domain = dns::DnsName::from_text("www.live.cdn.example");
  authority.add_dynamic_domain(dns::DnsName::from_text("cdn.example"), mapping.dns_handler());
  dnsserver::AuthorityDirectory directory;
  directory.add_authority(dns::DnsName::from_text("cdn.example"), &authority);

  // One client block resolving through its ISP resolver every second.
  const topo::ClientBlock& block = world.blocks.front();
  const topo::Ldns& ldns = world.primary_ldns(block);
  util::SimClock clock;
  dnsserver::ResolverConfig resolver_config;
  dnsserver::RecursiveResolver resolver{resolver_config, &clock, &directory, ldns.address};
  dnsserver::StubClient stub{&resolver,
                             net::IpAddr{net::IpV4Addr{block.prefix.address().v4().value() + 1}}};

  constexpr int kFailAt = 400;
  constexpr int kHorizon = 1200;
  TtlOutcome outcome;
  outcome.ttl = ttl;
  int last_stale = -1;
  for (int second = 0; second < kHorizon; ++second) {
    clock.set(util::SimTime{second});
    if (second == kFailAt) {
      // The serving cluster dies; the mapping system notices immediately.
      const auto current = stub.lookup(domain);
      if (!current.empty()) {
        network.set_cluster_alive(network.deployment_of(current.front())->id, false);
      }
    }
    const auto servers = stub.lookup(domain);
    if (servers.empty()) continue;
    const cdn::Deployment* deployment = network.deployment_of(servers.front());
    if (second >= kFailAt && deployment != nullptr && !deployment->alive) {
      last_stale = second;
    }
  }
  outcome.stale_seconds = last_stale >= kFailAt ? last_stale - kFailAt + 1 : 0;
  outcome.upstream_per_hour =
      static_cast<double>(resolver.stats().upstream_queries) * 3600.0 / kHorizon;
  return outcome;
}

}  // namespace

int main() {
  bench::banner("TTL ablation - steering responsiveness vs DNS query cost",
                "short mapping TTLs bound how long clients stay on dead clusters");

  stats::Table table{"answer TTL (s)", "stale window after failure (s)",
                     "upstream queries / client / hour"};
  std::vector<TtlOutcome> outcomes;
  for (const std::uint32_t ttl : {10U, 20U, 60U, 120U, 300U}) {
    outcomes.push_back(run_with_ttl(ttl));
    table.add_row({std::to_string(ttl), stats::num(outcomes.back().stale_seconds, 0),
                   stats::num(outcomes.back().upstream_per_hour, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  bool stale_bounded = true;
  bool cost_monotone = true;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    stale_bounded = stale_bounded && outcomes[i].stale_seconds <= outcomes[i].ttl + 1;
    if (i > 0) {
      cost_monotone =
          cost_monotone && outcomes[i].upstream_per_hour <= outcomes[i - 1].upstream_per_hour;
    }
  }
  std::printf("shape checks:\n");
  std::printf("  stale window bounded by the TTL            %s\n",
              stale_bounded ? "[OK]" : "[MISMATCH]");
  std::printf("  query cost falls as TTL grows              %s\n",
              cost_monotone ? "[OK]" : "[MISMATCH]");
  std::printf("\nthe production choice (~20 s) keeps failure exposure under half a\n"
              "minute at ~180 queries/client/hour — why CDN mapping TTLs are short.\n");
  return 0;
}
