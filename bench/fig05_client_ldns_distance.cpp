// Figure 5: histogram of client-LDNS distance across the global Internet
// (percent of client demand, log-scale distance axis 10..10000 miles).
// Paper: nearly half of demand very close to its LDNS; a noteworthy bump
// at 200-300 miles; a small transoceanic bump near 5000 miles.
#include "bench_common.h"

#include "stats/histogram.h"

using namespace eum;

int main() {
  bench::banner("Figure 5 - client-LDNS distance histogram (all clients)",
                "median 162 mi; mass at metro distances, bumps at ~250 and ~5000 mi");

  const auto sample = measure::client_ldns_distance_sample(bench::default_world());
  stats::LogHistogram histogram{10.0, 10000.0, 24};
  // Re-accumulate into the histogram (the sample and histogram share the
  // same demand weighting).
  const auto& world = bench::default_world();
  for (const auto& block : world.blocks) {
    for (const auto& use : world.ldns_uses(block)) {
      const double miles =
          geo::great_circle_miles(block.location, world.ldnses[use.ldns].location);
      histogram.add(miles, block.demand * use.fraction);
    }
  }
  std::printf("distance (mi)            %% of client demand\n%s\n",
              stats::render_histogram(histogram.bins(), histogram.total_weight()).c_str());

  bench::compare("median client-LDNS distance", 162.0, sample.percentile(50), "mi");
  bench::compare("demand within 100 mi of its LDNS (%)", 45.0, 100.0 * sample.cdf_at(100.0),
                 "%");
  bench::compare("demand beyond 4000 mi (transoceanic) (%)", 3.0,
                 100.0 * (1.0 - sample.cdf_at(4000.0)), "%");
  return 0;
}
