// Figure 15: daily mean client-server RTT during the roll-out. Paper:
// high-expectation mean RTT fell from ~200 ms to ~100 ms (2x); the low
// group improved modestly.
#include "bench_common.h"

using namespace eum;

int main() {
  bench::banner("Figure 15 - daily mean RTT during the roll-out",
                "high-expectation mean RTT 200 -> 100 ms (2x)");
  const auto& result = bench::rollout_bundle().result;
  bench::print_timeline(result, &sim::DailyMetrics::rtt_ms, "ms");

  std::printf("\n");
  bench::compare("high-exp mean RTT before", 200.0, result.high_before.rtt.mean(), "ms");
  bench::compare("high-exp mean RTT after", 100.0, result.high_after.rtt.mean(), "ms");
  bench::compare("high-exp RTT improvement", 2.0,
                 result.high_before.rtt.mean() / result.high_after.rtt.mean(), "x");
  bench::compare("low-exp mean RTT before", 65.0, result.low_before.rtt.mean(), "ms");
  bench::compare("low-exp mean RTT after", 55.0, result.low_after.rtt.mean(), "ms");
  return 0;
}
