// Figure 12: qualified RUM measurements per month, split into high/low
// expectation groups. Paper: 33M growing to 58M per month, Jan-Jun 2014.
#include "bench_common.h"

#include "sim/op_rates.h"

using namespace eum;

int main() {
  bench::banner("Figure 12 - RUM measurements per month",
                "33M (Jan) growing to 58M (Jun); split by expectation group");

  const auto& world = bench::default_world();
  const auto high = measure::high_expectation_countries(world);
  const auto months = sim::rum_measurement_volumes(world, high);

  stats::Table table{"month", "high-exp (M)", "low-exp (M)", "total (M)"};
  for (const auto& m : months) {
    table.add_row({util::month_name(m.month), stats::num(m.high_expectation_millions, 1),
                   stats::num(m.low_expectation_millions, 1),
                   stats::num(m.high_expectation_millions + m.low_expectation_millions, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  double total = 0.0;
  for (const auto& m : months) {
    total += m.high_expectation_millions + m.low_expectation_millions;
  }
  bench::compare("total measurements Jan-Jun (M)", 273.0, total, "M");
  bench::compare("June total (M)", 58.0,
                 months.back().high_expectation_millions + months.back().low_expectation_millions,
                 "M");
  return 0;
}
