#include "cdn/network.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace eum::cdn {

namespace {

constexpr std::uint32_t kServerBase = 0xCB000000;  // 203.0.0.0

}  // namespace

CdnNetwork CdnNetwork::build(const topo::World& world, std::size_t site_count,
                             std::size_t servers_per_cluster, double cluster_capacity) {
  if (site_count > world.deployment_universe.size()) {
    throw std::invalid_argument{"CdnNetwork::build: more sites requested than universe holds"};
  }
  std::vector<std::uint32_t> sites(site_count);
  std::iota(sites.begin(), sites.end(), 0U);
  return build_at(world, sites, servers_per_cluster, cluster_capacity);
}

CdnNetwork CdnNetwork::build_at(const topo::World& world, const std::vector<std::uint32_t>& sites,
                                std::size_t servers_per_cluster, double cluster_capacity) {
  if (servers_per_cluster == 0 || servers_per_cluster > 250) {
    throw std::invalid_argument{"CdnNetwork::build_at: servers_per_cluster must be in [1, 250]"};
  }
  CdnNetwork network;
  network.deployments_.reserve(sites.size());
  for (std::size_t k = 0; k < sites.size(); ++k) {
    const topo::DeploymentSite& site = world.deployment_universe.at(sites[k]);
    Deployment deployment;
    deployment.id = static_cast<DeploymentId>(k);
    deployment.site_id = site.id;
    deployment.country = site.country;
    deployment.location = site.location;
    const std::uint32_t block24 = kServerBase + (static_cast<std::uint32_t>(k) << 8);
    deployment.server_block = net::IpPrefix{net::IpV4Addr{block24}, 24};
    deployment.capacity = cluster_capacity;
    deployment.servers.reserve(servers_per_cluster);
    for (std::size_t s = 0; s < servers_per_cluster; ++s) {
      deployment.servers.push_back(
          Server{net::IpV4Addr{block24 + static_cast<std::uint32_t>(s) + 1}, 0.0, true});
    }
    network.deployments_.push_back(std::move(deployment));
  }
  return network;
}

const Deployment* CdnNetwork::deployment_of(const net::IpAddr& server) const noexcept {
  net::IpAddr probe = server;
  if (server.is_v6()) {
    const auto embedded = v4_of_alias(server.v6());
    if (!embedded) return nullptr;
    probe = net::IpAddr{*embedded};
  }
  for (const Deployment& d : deployments_) {
    if (d.server_block.contains(probe)) return &d;
  }
  return nullptr;
}

net::IpV6Addr CdnNetwork::v6_alias(net::IpV4Addr v4) noexcept {
  net::IpV6Addr::Bytes bytes{};
  bytes[0] = 0x20;
  bytes[1] = 0x01;
  bytes[2] = 0x0d;
  bytes[3] = 0xb8;
  bytes[4] = 0x00;
  bytes[5] = 0xcd;
  const auto v4_bytes = v4.bytes();
  std::copy(v4_bytes.begin(), v4_bytes.end(), bytes.begin() + 12);
  return net::IpV6Addr{bytes};
}

std::optional<net::IpV4Addr> CdnNetwork::v4_of_alias(const net::IpV6Addr& v6) noexcept {
  const auto& bytes = v6.bytes();
  const net::IpV6Addr::Bytes prefix = v6_alias(net::IpV4Addr{}).bytes();
  for (int i = 0; i < 12; ++i) {
    if (bytes[static_cast<std::size_t>(i)] != prefix[static_cast<std::size_t>(i)]) {
      return std::nullopt;
    }
  }
  return net::IpV4Addr{bytes[12], bytes[13], bytes[14], bytes[15]};
}

void CdnNetwork::set_cluster_alive(DeploymentId id, bool alive) {
  deployments_.at(id).alive = alive;
}

void CdnNetwork::set_server_alive(DeploymentId id, std::size_t server_index, bool alive) {
  deployments_.at(id).servers.at(server_index).alive = alive;
}

void CdnNetwork::reset_load() noexcept {
  for (Deployment& d : deployments_) {
    d.load = 0.0;
    for (Server& s : d.servers) s.load = 0.0;
  }
}

}  // namespace eum::cdn
