#include "cdn/scoring.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace eum::cdn {

namespace {

/// Keep the best `k` candidates from a full score column. Ties break by
/// deployment id so the result is a pure function of the scores — the
/// control plane's incremental rebuilds rely on full and delta scoring
/// passes producing bit-identical candidate tables.
void select_top_k(std::vector<Candidate>& scratch, std::size_t k, Candidate* out) {
  const std::size_t keep = std::min(k, scratch.size());
  std::partial_sort(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(keep),
                    scratch.end(), [](const Candidate& a, const Candidate& b) {
                      if (a.score_ms != b.score_ms) return a.score_ms < b.score_ms;
                      return a.deployment < b.deployment;
                    });
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = i < keep ? scratch[i] : Candidate{0, std::numeric_limits<float>::infinity()};
  }
}

}  // namespace

float path_score(TrafficClass klass, float rtt_ms, float loss_rate) noexcept {
  switch (klass) {
    case TrafficClass::web:
      return rtt_ms;
    case TrafficClass::video:
      // Mathis et al.: TCP throughput ~ MSS / (RTT * sqrt(p)); minimizing
      // RTT*sqrt(p) maximizes it. Floor the loss so pristine paths still
      // rank by latency.
      return rtt_ms * std::sqrt(std::max(loss_rate, 1e-4F));
  }
  return rtt_ms;
}

Scoring Scoring::build(const topo::World& world, const CdnNetwork& network, const PingMesh& mesh,
                       std::size_t top_k, TrafficClass klass, bool cluster_scores) {
  if (top_k == 0) throw std::invalid_argument{"Scoring::build: top_k must be positive"};
  if (mesh.deployment_count() != network.size() ||
      mesh.target_count() != world.ping_targets.size()) {
    throw std::invalid_argument{"Scoring::build: mesh does not match world/network"};
  }
  Scoring scoring;
  scoring.top_k_ = top_k;
  scoring.target_count_ = mesh.target_count();
  const std::size_t n_dep = mesh.deployment_count();

  // Per ping target: one column scan of the mesh.
  scoring.by_target_.resize(scoring.target_count_ * top_k);
  std::vector<Candidate> scratch(n_dep);
  for (std::size_t t = 0; t < scoring.target_count_; ++t) {
    const auto target = static_cast<topo::PingTargetId>(t);
    for (std::size_t d = 0; d < n_dep; ++d) {
      scratch[d] = Candidate{static_cast<DeploymentId>(d),
                             path_score(klass, mesh.rtt_ms(d, target),
                                        mesh.loss_rate(d, target))};
    }
    select_top_k(scratch, top_k, &scoring.by_target_[t * top_k]);
  }

  // Per LDNS cluster: traffic-weighted member targets.
  // Member weights: demand x use-fraction of each block, grouped by the
  // block's ping target. Skipped (cluster_scores=false) for non-CANS
  // deployments at paper scale — the aggregation walks every association
  // entry per deployment, the dominant cost at millions of blocks;
  // cluster_candidates then falls back to per-target lists.
  const std::size_t n_ldns = world.ldnses.size();
  scoring.cluster_has_data_.resize(n_ldns, false);
  scoring.ldns_target_.resize(n_ldns, 0);
  for (std::size_t l = 0; l < n_ldns; ++l) {
    scoring.ldns_target_[l] = world.ldnses[l].ping_target;
  }
  if (!cluster_scores) return scoring;
  std::vector<std::unordered_map<topo::PingTargetId, double>> members(n_ldns);
  for (const topo::ClientBlock& block : world.blocks) {
    for (const topo::LdnsUse& use : world.ldns_uses(block)) {
      members[use.ldns][block.ping_target] += block.demand * use.fraction;
    }
  }
  scoring.by_cluster_.resize(n_ldns * top_k);
  for (std::size_t l = 0; l < n_ldns; ++l) {
    if (members[l].empty()) continue;
    scoring.cluster_has_data_[l] = true;
    double wsum = 0.0;
    for (const auto& [target, weight] : members[l]) wsum += weight;
    for (std::size_t d = 0; d < n_dep; ++d) {
      double score = 0.0;
      for (const auto& [target, weight] : members[l]) {
        score += weight * static_cast<double>(
                              path_score(klass, mesh.rtt_ms(d, target), mesh.loss_rate(d, target)));
      }
      scratch[d] = Candidate{static_cast<DeploymentId>(d), static_cast<float>(score / wsum)};
    }
    select_top_k(scratch, top_k, &scoring.by_cluster_[l * top_k]);
  }
  return scoring;
}

std::span<const Candidate> Scoring::target_candidates(topo::PingTargetId target) const {
  if (target >= target_count_) throw std::out_of_range{"Scoring: unknown ping target"};
  return {by_target_.data() + static_cast<std::size_t>(target) * top_k_, top_k_};
}

std::span<const Candidate> Scoring::cluster_candidates(topo::LdnsId ldns) const {
  if (ldns >= cluster_has_data_.size()) throw std::out_of_range{"Scoring: unknown LDNS"};
  if (!cluster_has_data_[ldns]) return target_candidates(ldns_target_[ldns]);
  return {by_cluster_.data() + static_cast<std::size_t>(ldns) * top_k_, top_k_};
}

}  // namespace eum::cdn
