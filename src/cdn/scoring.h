// Scoring: ranking candidate deployments per mapping unit (paper §2.2).
//
// "The topological map is then used to evaluate what performance clients
// of each LDNS is likely to see if they are assigned to each Akamai
// server cluster, a process called scoring." We precompute, for every
// ping target (the unit of EU and NS mapping) and for every LDNS client
// cluster (the unit of CANS mapping, §6), the top-K deployments by
// expected latency; the load balancer then walks these candidate lists.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdn/network.h"
#include "cdn/ping_mesh.h"
#include "topo/world.h"

namespace eum::cdn {

/// "Different scoring functions that incorporate bandwidth, latency,
/// packet loss, etc can be used for different traffic classes (web,
/// video, applications)" — §2.2.
enum class TrafficClass : std::uint8_t {
  web,    ///< latency-optimized: score = expected RTT
  video,  ///< throughput-optimized: score ~ 1/Mathis-throughput = RTT*sqrt(loss)
};

/// The score of one (deployment, target) path under a traffic class
/// (lower is better; the unit depends on the class).
[[nodiscard]] float path_score(TrafficClass klass, float rtt_ms, float loss_rate) noexcept;

struct Candidate {
  DeploymentId deployment = 0;
  float score_ms = 0.0F;  ///< class-dependent score (lower is better)

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

class Scoring {
 public:
  /// Build candidate lists. `top_k` deployments are retained per unit,
  /// ranked by the traffic class's scoring function. `cluster_scores`
  /// controls the per-LDNS CANS aggregation — the one pass that walks
  /// every block-LDNS association per deployment. Paper-scale worlds that
  /// only need per-target lists (EU/NS mapping) turn it off;
  /// cluster_candidates then falls back to the LDNS's own target list.
  static Scoring build(const topo::World& world, const CdnNetwork& network, const PingMesh& mesh,
                       std::size_t top_k = 8, TrafficClass klass = TrafficClass::web,
                       bool cluster_scores = true);

  /// Candidates for a ping target, best first (EU and NS mapping units).
  [[nodiscard]] std::span<const Candidate> target_candidates(topo::PingTargetId target) const;

  /// Candidates for an LDNS's client cluster, best first: deployments
  /// minimizing the traffic-weighted mean latency to the clients behind
  /// that LDNS (CANS mapping, §6 scheme 3). LDNSes with no clients fall
  /// back to their own ping target's list.
  [[nodiscard]] std::span<const Candidate> cluster_candidates(topo::LdnsId ldns) const;

  [[nodiscard]] std::size_t top_k() const noexcept { return top_k_; }

  /// The LDNS's own ping target (the fallback mapping unit for a cluster).
  [[nodiscard]] topo::PingTargetId ldns_target(topo::LdnsId ldns) const {
    return ldns_target_.at(ldns);
  }

  /// Same candidate tables (the map maker's publish-skip check).
  friend bool operator==(const Scoring&, const Scoring&) = default;

 private:
  std::size_t top_k_ = 0;
  std::size_t target_count_ = 0;
  std::vector<Candidate> by_target_;   ///< target_count x top_k
  std::vector<Candidate> by_cluster_;  ///< ldns_count x top_k
  std::vector<bool> cluster_has_data_;
  std::vector<topo::PingTargetId> ldns_target_;  ///< fallback unit per LDNS
};

}  // namespace eum::cdn
