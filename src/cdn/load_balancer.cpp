#include "cdn/load_balancer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/hash.h"

namespace eum::cdn {

GlobalLoadBalancer::GlobalLoadBalancer(CdnNetwork* network, const Scoring* scoring,
                                       const PingMesh* mesh, GlobalLbConfig config)
    : network_(network), scoring_(scoring), mesh_(mesh), config_(config) {
  if (network_ == nullptr || scoring_ == nullptr || mesh_ == nullptr) {
    throw std::invalid_argument{"GlobalLoadBalancer: network/scoring/mesh are required"};
  }
}

bool GlobalLoadBalancer::usable(const Deployment& d, double load_units) const noexcept {
  if (!d.alive || d.alive_servers() == 0) return false;
  if (!config_.load_aware) return true;
  return d.load + load_units <= d.capacity * config_.overload_factor;
}

std::optional<DeploymentId> GlobalLoadBalancer::pick(std::span<const Candidate> candidates,
                                                     topo::PingTargetId fallback_target,
                                                     double load_units) {
  for (const Candidate& candidate : candidates) {
    if (!std::isfinite(candidate.score_ms)) break;
    Deployment& d = network_->deployments()[candidate.deployment];
    if (usable(d, load_units)) {
      d.load += load_units;
      return candidate.deployment;
    }
  }
  // Every precomputed candidate is unavailable: full scan of the mesh
  // column (rare; covers mass failures and hot spots).
  std::optional<DeploymentId> best;
  float best_score = std::numeric_limits<float>::infinity();
  for (std::size_t d = 0; d < network_->size(); ++d) {
    const float score = mesh_->rtt_ms(d, fallback_target);
    if (score < best_score && usable(network_->deployments()[d], load_units)) {
      best = static_cast<DeploymentId>(d);
      best_score = score;
    }
  }
  if (best) network_->deployments()[*best].load += load_units;
  return best;
}

std::optional<DeploymentId> GlobalLoadBalancer::assign_for_target(topo::PingTargetId target,
                                                                  double load_units) {
  return pick(scoring_->target_candidates(target), target, load_units);
}

std::optional<DeploymentId> GlobalLoadBalancer::assign_for_cluster(topo::LdnsId ldns,
                                                                   double load_units) {
  // The full-scan fallback unit for a cluster is the LDNS's own ping target.
  return pick(scoring_->cluster_candidates(ldns), scoring_->ldns_target(ldns), load_units);
}

std::vector<net::IpAddr> LocalLoadBalancer::pick_servers(Deployment& deployment,
                                                         std::string_view domain,
                                                         double load_units,
                                                         double server_capacity) const {
  // Rendezvous hashing: rank servers by hash(domain, server); the top
  // ranks are the domain's "home" servers in this cluster.
  struct Ranked {
    std::uint64_t weight;
    std::size_t index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(deployment.servers.size());
  const std::uint64_t domain_hash = util::fnv1a64(domain);
  for (std::size_t i = 0; i < deployment.servers.size(); ++i) {
    const Server& server = deployment.servers[i];
    if (!server.alive) continue;
    if (server_capacity > 0.0 && server.load + load_units > server_capacity) continue;
    ranked.push_back(Ranked{
        util::hash_combine(domain_hash, static_cast<std::uint64_t>(server.address.value())), i});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.weight > b.weight; });

  std::vector<net::IpAddr> picked;
  const std::size_t want = std::min(servers_per_answer_, ranked.size());
  picked.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    Server& server = deployment.servers[ranked[i].index];
    server.load += load_units / static_cast<double>(want);
    picked.emplace_back(server.address);
  }
  return picked;
}

}  // namespace eum::cdn
