// Two-level load balancing (paper §2.2, "Server Assignment").
//
// Global load balancing assigns a server *cluster* to each mapping unit,
// combining the scoring candidates with liveness and capacity. Local load
// balancing then picks servers *within* the cluster via rendezvous
// (highest-random-weight) hashing on the domain name — the cache-affinity
// property: the same domain lands on the same servers of a cluster, so a
// cluster stores each object on few disks. Two or more servers are
// returned "as additional precaution against transient failures" (§1).
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "cdn/network.h"
#include "cdn/ping_mesh.h"
#include "cdn/scoring.h"

namespace eum::cdn {

struct GlobalLbConfig {
  /// When true, clusters loaded beyond capacity are skipped and load is
  /// tracked per assignment.
  bool load_aware = true;
  /// A cluster is considered full at load >= overload_factor * capacity.
  double overload_factor = 1.0;
};

class GlobalLoadBalancer {
 public:
  /// `network`, `scoring` and `mesh` are borrowed and must outlive the LB.
  GlobalLoadBalancer(CdnNetwork* network, const Scoring* scoring, const PingMesh* mesh,
                     GlobalLbConfig config = {});

  /// Choose a cluster for a ping-target mapping unit (EU / NS units),
  /// charging `load_units` to it. Falls back to a full mesh-column scan
  /// when every precomputed candidate is dead or full; returns nullopt
  /// only when no live cluster has spare capacity.
  [[nodiscard]] std::optional<DeploymentId> assign_for_target(topo::PingTargetId target,
                                                              double load_units);

  /// Same for an LDNS client-cluster unit (CANS).
  [[nodiscard]] std::optional<DeploymentId> assign_for_cluster(topo::LdnsId ldns,
                                                               double load_units);

 private:
  [[nodiscard]] bool usable(const Deployment& d, double load_units) const noexcept;
  [[nodiscard]] std::optional<DeploymentId> pick(std::span<const Candidate> candidates,
                                                 topo::PingTargetId fallback_target,
                                                 double load_units);

  CdnNetwork* network_;
  const Scoring* scoring_;
  const PingMesh* mesh_;
  GlobalLbConfig config_;
};

/// Local load balancing within one cluster.
class LocalLoadBalancer {
 public:
  explicit LocalLoadBalancer(std::size_t servers_per_answer = 2)
      : servers_per_answer_(servers_per_answer) {}

  /// Pick `servers_per_answer` live servers for `domain` by rendezvous
  /// hashing, skipping servers loaded beyond `server_capacity` when
  /// positive. Returns fewer (possibly zero) when the cluster is degraded.
  [[nodiscard]] std::vector<net::IpAddr> pick_servers(Deployment& deployment,
                                                      std::string_view domain,
                                                      double load_units = 0.0,
                                                      double server_capacity = 0.0) const;

  [[nodiscard]] std::size_t servers_per_answer() const noexcept { return servers_per_answer_; }

 private:
  std::size_t servers_per_answer_;
};

}  // namespace eum::cdn
