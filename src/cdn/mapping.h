// The mapping system: the paper's central contribution.
//
// Implements the time-varying functions of Equations 1 and 2:
//
//   MAP_t  : Σ_internet x Σ_cdn x Domain x LDNS   -> IPs   (NS-based)
//   EUMAP_t: Σ_internet x Σ_cdn x Domain x Client -> IPs   (end-user)
//
// plus the client-aware NS hybrid of §6. Σ_internet is the World +
// latency model; Σ_cdn is the CdnNetwork with liveness/load. The facade
// wires scoring and the two load-balancing levels together and exposes a
// DynamicAnswerFn so an AuthoritativeServer can serve it over DNS: with
// an ECS option present (and end-user mapping enabled) the client block
// decides the answer; otherwise the resolver address does.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "cdn/load_balancer.h"
#include "cdn/network.h"
#include "cdn/ping_mesh.h"
#include "cdn/scoring.h"
#include "dnsserver/authoritative.h"
#include "dnsserver/transport.h"
#include "topo/latency.h"
#include "topo/world.h"

namespace eum::cdn {

enum class MappingPolicy : std::uint8_t {
  ns_based,         ///< map by the LDNS's own location (Equation 1)
  end_user,         ///< map by the client /24 block via ECS (Equation 2)
  client_aware_ns,  ///< map by the LDNS's client cluster (§6 CANS)
};

struct MappingConfig {
  MappingPolicy policy = MappingPolicy::end_user;
  /// ECS scope returned on dynamic answers (ablation knob; /24 mirrors
  /// query granularity, shorter scopes trade accuracy for cacheability).
  int ecs_scope_len = 24;
  /// TTL of dynamic answers, seconds. CDN mapping TTLs are short so the
  /// system can steer traffic quickly (tens of seconds in production).
  std::uint32_t answer_ttl = 20;
  std::size_t servers_per_answer = 2;
  std::size_t scoring_top_k = 8;
  /// Scoring function for this mapping system's traffic (§2.2).
  TrafficClass traffic_class = TrafficClass::web;
  /// Precompute per-LDNS cluster candidate lists (CANS, §6). The
  /// aggregation is O(deployments x block-LDNS associations) — the
  /// dominant startup cost at millions of blocks — so paper-scale runs
  /// that never use client_aware_ns mapping disable it; cluster lookups
  /// then fall back to the LDNS's own ping-target list.
  bool precompute_cluster_scores = true;
  /// Also offer the chosen servers' IPv6 aliases, so AAAA questions are
  /// answerable (the ECS wire format is family-agnostic either way).
  bool serve_ipv6 = true;
  GlobalLbConfig global_lb;
};

struct MapResult {
  DeploymentId deployment = 0;
  std::vector<net::IpAddr> servers;
  float expected_rtt_ms = 0.0F;  ///< mesh RTT from the chosen cluster to the unit
};

/// A thread-safe replacement for the mapping hot path. When installed
/// (control::MapMaker::install_fast_path), every map() / DNS-handler
/// decision is resolved against an immutable published map snapshot
/// instead of this object's mutable scoring/LB state, so UDP workers
/// serve lock-free while the control plane rebuilds in the background.
using FastMapFn = std::function<std::optional<MapResult>(
    topo::LdnsId, std::optional<topo::BlockId>, std::string_view domain, double load_units)>;

/// Per-LDNS end-user gate (control::RolloutController): returning false
/// answers the resolver's clients NS-based even when ECS is present —
/// the paper's staged roll-out on the live DNS path.
using EndUserGateFn = std::function<bool(topo::LdnsId)>;

class MappingSystem {
 public:
  /// `world`, `network` and `latency` are borrowed and must outlive the
  /// mapping system. Builds the ping mesh and scoring tables up front
  /// (the paper's periodic topology-discovery/scoring cycle).
  MappingSystem(const topo::World* world, CdnNetwork* network,
                const topo::LatencyModel* latency, MappingConfig config);

  /// NS-based mapping for the given LDNS.
  [[nodiscard]] std::optional<MapResult> map_ldns(topo::LdnsId ldns, std::string_view domain,
                                                  double load_units = 0.0);

  /// End-user mapping for the given client block.
  [[nodiscard]] std::optional<MapResult> map_block(topo::BlockId block, std::string_view domain,
                                                   double load_units = 0.0);

  /// Client-aware NS mapping for the given LDNS's client cluster.
  [[nodiscard]] std::optional<MapResult> map_cluster(topo::LdnsId ldns, std::string_view domain,
                                                     double load_units = 0.0);

  /// Policy-dispatching entry: uses the configured policy, falling back to
  /// NS-based when end-user mapping lacks a client block.
  [[nodiscard]] std::optional<MapResult> map(topo::LdnsId ldns,
                                             std::optional<topo::BlockId> client_block,
                                             std::string_view domain, double load_units = 0.0);

  /// Adapter for AuthoritativeServer::add_dynamic_domain: resolves the
  /// querying LDNS by address and the client block by ECS prefix.
  [[nodiscard]] dnsserver::DynamicAnswerFn dns_handler();

  // --- two-tier name server hierarchy (paper §2.2 part 3) ---------------
  //
  // "The authority for [an Akamai] domain is in turn delegated to an
  // Akamai name server that is typically located in an Akamai cluster
  // that is close to the client's LDNS. This delegation step implements
  // the global load balancer choice of cluster... Finally, the delegated
  // name server returns 'A' records for two or more server IPs,
  // implementing the choices made by the local load balancer."

  /// The unicast address of a cluster's in-cluster nameserver (the last
  /// host of its server /24).
  [[nodiscard]] net::IpAddr cluster_ns_address(DeploymentId deployment) const;

  /// Top-level handler: answers every query with a referral to the
  /// nameserver of the globally-load-balanced cluster (ECS-aware: the
  /// client block steers the delegation under the end_user policy).
  /// `suffix` names the delegated zone's nameservers (ns<k>.<suffix>).
  [[nodiscard]] dnsserver::DynamicAnswerFn top_level_handler(const dns::DnsName& suffix);

  /// Low-level handler: the cluster identified by the queried server
  /// address answers with its own servers (local load balancing only).
  [[nodiscard]] dnsserver::DynamicAnswerFn cluster_ns_handler();

  /// Wire the full hierarchy into a directory: `top` becomes the
  /// suffix's delegating authority; `low` answers at every cluster's
  /// nameserver address.
  void install_two_tier(dnsserver::AuthorityDirectory& directory,
                        dnsserver::AuthoritativeServer& top,
                        dnsserver::AuthoritativeServer& low, const dns::DnsName& suffix);

  [[nodiscard]] const PingMesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const Scoring& scoring() const noexcept { return scoring_; }
  [[nodiscard]] const MappingConfig& config() const noexcept { return config_; }
  [[nodiscard]] CdnNetwork& network() noexcept { return *network_; }
  [[nodiscard]] const CdnNetwork& network() const noexcept { return *network_; }
  [[nodiscard]] const topo::World& world() const noexcept { return *world_; }

  /// Re-run scoring after liveness/topology changes (the paper's periodic
  /// refresh; load state is preserved). Synchronous and unsafe against
  /// concurrent map() calls — the control plane's MapMaker is the
  /// serving-safe replacement.
  void rescore();

  // --- control-plane hooks (src/control) --------------------------------

  /// Install (or clear, with nullptr) the snapshot-reading fast path.
  /// Setup-time only: install before serving threads start.
  void set_fast_path(FastMapFn fast_path) { fast_path_ = std::move(fast_path); }

  /// Install (or clear) the per-LDNS end-user gate. Setup-time only; the
  /// gate itself must be safe to call from serving threads.
  void set_end_user_gate(EndUserGateFn gate) { end_user_gate_ = std::move(gate); }

  /// Is end-user mapping active for this resolver right now (policy says
  /// end_user and the roll-out gate, if any, has flipped it on)?
  [[nodiscard]] bool end_user_active(topo::LdnsId ldns) const {
    return config_.policy == MappingPolicy::end_user &&
           (!end_user_gate_ || end_user_gate_(ldns));
  }

 private:
  [[nodiscard]] std::optional<MapResult> finish(std::optional<DeploymentId> deployment,
                                                topo::PingTargetId unit_target,
                                                std::string_view domain, double load_units);

  const topo::World* world_;
  CdnNetwork* network_;
  const topo::LatencyModel* latency_;
  MappingConfig config_;
  PingMesh mesh_;
  Scoring scoring_;
  std::unique_ptr<GlobalLoadBalancer> global_lb_;
  LocalLoadBalancer local_lb_;
  FastMapFn fast_path_;
  EndUserGateFn end_user_gate_;
};

}  // namespace eum::cdn
