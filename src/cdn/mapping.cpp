#include "cdn/mapping.h"

#include <stdexcept>

#include "obs/trace.h"
#include "util/strings.h"

namespace eum::cdn {

namespace {

/// Null-check that runs before any member construction dereferences.
template <typename T>
T* require(T* pointer, const char* what) {
  if (pointer == nullptr) {
    throw std::invalid_argument{std::string{"MappingSystem: "} + what + " is required"};
  }
  return pointer;
}

}  // namespace

MappingSystem::MappingSystem(const topo::World* world, CdnNetwork* network,
                             const topo::LatencyModel* latency, MappingConfig config)
    : world_(require(world, "world")),
      network_(require(network, "network")),
      latency_(require(latency, "latency")),
      config_(config),
      mesh_(PingMesh::measure(*world_, *network_, *latency_)),
      scoring_(Scoring::build(*world_, *network_, mesh_, config.scoring_top_k,
                              config.traffic_class, config.precompute_cluster_scores)),
      local_lb_(config.servers_per_answer) {
  global_lb_ = std::make_unique<GlobalLoadBalancer>(network_, &scoring_, &mesh_,
                                                    config_.global_lb);
}

void MappingSystem::rescore() {
  scoring_ = Scoring::build(*world_, *network_, mesh_, config_.scoring_top_k,
                            config_.traffic_class, config_.precompute_cluster_scores);
  global_lb_ =
      std::make_unique<GlobalLoadBalancer>(network_, &scoring_, &mesh_, config_.global_lb);
}

std::optional<MapResult> MappingSystem::finish(std::optional<DeploymentId> deployment,
                                               topo::PingTargetId unit_target,
                                               std::string_view domain, double load_units) {
  if (!deployment) return std::nullopt;
  Deployment& cluster = network_->deployments()[*deployment];
  MapResult result;
  result.deployment = *deployment;
  result.expected_rtt_ms = mesh_.rtt_ms(*deployment, unit_target);
  result.servers = local_lb_.pick_servers(cluster, domain, load_units);
  if (result.servers.empty()) return std::nullopt;
  return result;
}

std::optional<MapResult> MappingSystem::map_ldns(topo::LdnsId ldns, std::string_view domain,
                                                 double load_units) {
  const topo::PingTargetId unit = world_->ldnses.at(ldns).ping_target;
  return finish(global_lb_->assign_for_target(unit, load_units), unit, domain, load_units);
}

std::optional<MapResult> MappingSystem::map_block(topo::BlockId block, std::string_view domain,
                                                  double load_units) {
  const topo::PingTargetId unit = world_->blocks.at(block).ping_target;
  return finish(global_lb_->assign_for_target(unit, load_units), unit, domain, load_units);
}

std::optional<MapResult> MappingSystem::map_cluster(topo::LdnsId ldns, std::string_view domain,
                                                    double load_units) {
  // The reported RTT estimate uses the LDNS's own target as reference unit.
  const topo::PingTargetId unit = scoring_.ldns_target(ldns);
  return finish(global_lb_->assign_for_cluster(ldns, load_units), unit, domain, load_units);
}

std::optional<MapResult> MappingSystem::map(topo::LdnsId ldns,
                                            std::optional<topo::BlockId> client_block,
                                            std::string_view domain, double load_units) {
  // Staged roll-out: resolvers whose cohort has not flipped yet are
  // answered NS-based even when the client block is known.
  if (client_block && end_user_gate_ && !end_user_gate_(ldns)) client_block.reset();
  // Control-plane fast path: resolve against the published immutable
  // snapshot (lock-free) instead of the mutable scoring/LB state.
  if (fast_path_) return fast_path_(ldns, client_block, domain, load_units);
  switch (config_.policy) {
    case MappingPolicy::end_user:
      if (client_block) return map_block(*client_block, domain, load_units);
      return map_ldns(ldns, domain, load_units);  // no ECS: degrade to NS
    case MappingPolicy::client_aware_ns:
      return map_cluster(ldns, domain, load_units);
    case MappingPolicy::ns_based:
      break;
  }
  return map_ldns(ldns, domain, load_units);
}

dnsserver::DynamicAnswerFn MappingSystem::dns_handler() {
  return [this](const dnsserver::DynamicQuery& query) -> std::optional<dnsserver::DynamicAnswer> {
    // Identify the querying LDNS.
    const topo::Ldns* ldns = world_->ldns_by_address(query.resolver);
    if (ldns == nullptr) return std::nullopt;

    // Identify the client block from ECS (end-user mapping path). The
    // announced source block may be broader than /24; we look up the /24
    // at its base address — our worlds allocate clients at /24. The
    // roll-out gate is applied here, not just in map(), so an ungated
    // resolver's answer also carries the right (client-independent) scope.
    std::optional<topo::BlockId> block;
    if (query.client_block && end_user_active(ldns->id)) {
      const net::IpPrefix block24{query.client_block->address(), 24};
      if (const topo::ClientBlock* found = world_->block_by_prefix(block24)) {
        block = found->id;
      }
    }

    const auto result = map(ldns->id, block, query.qname.to_string());
    // Flight-recorder span (thread-local tracer; null on untraced
    // transports): the decision's policy inputs and outcome. This is the
    // slow path — the wire answer cache absorbed repeats — so the detail
    // string's allocation is acceptable here.
    if (obs::QueryTracer* tracer = obs::current_tracer()) {
      if (obs::TraceSpan* span = tracer->span(obs::TraceStage::map_decision)) {
        span->code = block ? 1 : 0;
        span->value = result ? static_cast<std::int64_t>(result->deployment) : -1;
        span->set_detail(util::format(
            "ldns=%u ecs=/%d rtt=%.1f", static_cast<unsigned>(ldns->id),
            block ? config_.ecs_scope_len : 0,
            result ? static_cast<double>(result->expected_rtt_ms) : -1.0));
      }
    }
    if (!result) return std::nullopt;

    dnsserver::DynamicAnswer answer;
    answer.addresses = result->servers;
    if (config_.serve_ipv6) {
      // Dual stack: the same servers under their IPv6 aliases. The
      // authoritative engine filters by question type, so A questions
      // see only the v4 set and AAAA questions only the v6 set.
      for (const net::IpAddr& server : result->servers) {
        if (server.is_v4()) answer.addresses.emplace_back(CdnNetwork::v6_alias(server.v4()));
      }
    }
    answer.ttl = config_.answer_ttl;
    // Scope: client-specific answers carry the configured scope; answers
    // that ignored the client (NS fallback) are valid for everyone.
    answer.ecs_scope_len = block ? config_.ecs_scope_len : 0;
    return answer;
  };
}

net::IpAddr MappingSystem::cluster_ns_address(DeploymentId deployment) const {
  const Deployment& cluster = network_->deployments().at(deployment);
  return net::IpAddr{
      net::IpV4Addr{cluster.server_block.address().v4().value() + 254U}};
}

dnsserver::DynamicAnswerFn MappingSystem::top_level_handler(const dns::DnsName& suffix) {
  return [this, suffix](const dnsserver::DynamicQuery& query)
             -> std::optional<dnsserver::DynamicAnswer> {
    const topo::Ldns* ldns = world_->ldns_by_address(query.resolver);
    if (ldns == nullptr) return std::nullopt;
    std::optional<topo::BlockId> block;
    if (query.client_block && end_user_active(ldns->id)) {
      const net::IpPrefix block24{query.client_block->address(), 24};
      if (const topo::ClientBlock* found = world_->block_by_prefix(block24)) block = found->id;
    }
    const auto result = map(ldns->id, block, query.qname.to_string());
    if (!result) return std::nullopt;

    dnsserver::DynamicAnswer answer;
    answer.ttl = config_.answer_ttl;
    answer.ecs_scope_len = block ? config_.ecs_scope_len : 0;
    answer.referral.push_back(dnsserver::DynamicReferral{
        suffix.child("ns" + std::to_string(result->deployment)),
        cluster_ns_address(result->deployment)});
    return answer;
  };
}

dnsserver::DynamicAnswerFn MappingSystem::cluster_ns_handler() {
  return [this](const dnsserver::DynamicQuery& query)
             -> std::optional<dnsserver::DynamicAnswer> {
    // Which cluster is answering? The queried server address says.
    const Deployment* cluster = network_->deployment_of(query.server_address);
    if (cluster == nullptr) return std::nullopt;
    dnsserver::DynamicAnswer answer;
    answer.ttl = config_.answer_ttl;
    // The global choice was made by the delegation; this answer holds for
    // any client the resolver asks for.
    answer.ecs_scope_len = 0;
    answer.addresses = local_lb_.pick_servers(network_->deployments()[cluster->id],
                                              query.qname.to_string());
    if (answer.addresses.empty()) return std::nullopt;
    if (config_.serve_ipv6) {
      const std::size_t v4_count = answer.addresses.size();
      for (std::size_t i = 0; i < v4_count; ++i) {
        if (answer.addresses[i].is_v4()) {
          answer.addresses.emplace_back(CdnNetwork::v6_alias(answer.addresses[i].v4()));
        }
      }
    }
    return answer;
  };
}

void MappingSystem::install_two_tier(dnsserver::AuthorityDirectory& directory,
                                     dnsserver::AuthoritativeServer& top,
                                     dnsserver::AuthoritativeServer& low,
                                     const dns::DnsName& suffix) {
  top.add_dynamic_domain(suffix, top_level_handler(suffix));
  low.add_dynamic_domain(suffix, cluster_ns_handler());
  directory.add_authority(suffix, &top);
  for (const Deployment& cluster : network_->deployments()) {
    directory.add_server(cluster_ns_address(cluster.id), &low);
  }
}

}  // namespace eum::cdn
