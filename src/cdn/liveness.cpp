#include "cdn/liveness.h"

#include <stdexcept>

namespace eum::cdn {

LivenessMonitor::LivenessMonitor(CdnNetwork* network, const util::SimClock* clock,
                                 HealthOracle oracle, LivenessConfig config)
    : network_(network), clock_(clock), oracle_(std::move(oracle)), config_(config) {
  if (network_ == nullptr || clock_ == nullptr || !oracle_) {
    throw std::invalid_argument{"LivenessMonitor: network, clock and oracle are required"};
  }
  if (config_.probe_interval_s <= 0 || config_.down_threshold <= 0 ||
      config_.up_threshold <= 0) {
    throw std::invalid_argument{"LivenessMonitor: intervals and thresholds must be positive"};
  }
  streaks_.resize(network_->size());
  for (std::size_t d = 0; d < network_->size(); ++d) {
    streaks_[d].assign(network_->deployments()[d].servers.size(), 0);
  }
  next_probe_ = clock_->now();
}

std::size_t LivenessMonitor::tick() {
  std::size_t applied = 0;
  while (clock_->now() >= next_probe_) {
    for (std::size_t d = 0; d < network_->size(); ++d) {
      Deployment& deployment = network_->deployments()[d];
      for (std::size_t s = 0; s < deployment.servers.size(); ++s) {
        ++probes_;
        const bool healthy = oracle_(static_cast<DeploymentId>(d), s);
        int& streak = streaks_[d][s];
        // Positive streak counts consecutive failures; negative successes.
        streak = healthy ? std::min(streak, 0) - 1 : std::max(streak, 0) + 1;
        Server& server = deployment.servers[s];
        if (server.alive && streak >= config_.down_threshold) {
          server.alive = false;
          ++transitions_;
          ++applied;
        } else if (!server.alive && -streak >= config_.up_threshold) {
          server.alive = true;
          ++transitions_;
          ++applied;
        }
      }
      // Cluster liveness follows its servers.
      const bool any_alive = deployment.alive_servers() > 0;
      if (deployment.alive != any_alive) {
        deployment.alive = any_alive;
        ++transitions_;
        ++applied;
      }
    }
    next_probe_ += config_.probe_interval_s;
  }
  return applied;
}

}  // namespace eum::cdn
