// Real-time liveness monitoring (paper §2.2, "Network Measurement" (v):
// "Liveness and load information of all components of Akamai's CDN is
// collected in real-time, including servers and routers").
//
// The monitor probes every server each tick; `down_threshold` consecutive
// missed probes mark a server dead, and `up_threshold` consecutive
// successes bring it back (hysteresis against flapping). Cluster liveness
// follows its servers. Probe outcomes come from a caller-supplied health
// oracle, so tests and simulations inject failures; a production build
// would plug in real pings.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cdn/network.h"
#include "util/sim_clock.h"

namespace eum::cdn {

struct LivenessConfig {
  std::int64_t probe_interval_s = 2;
  int down_threshold = 3;  ///< consecutive failures before marking dead
  int up_threshold = 2;    ///< consecutive successes before marking alive
};

/// Ground truth for a probe: is (deployment, server) healthy right now?
using HealthOracle = std::function<bool(DeploymentId, std::size_t server_index)>;

class LivenessMonitor {
 public:
  /// `network` and `clock` are borrowed and must outlive the monitor.
  LivenessMonitor(CdnNetwork* network, const util::SimClock* clock, HealthOracle oracle,
                  LivenessConfig config = {});

  /// Run all probes due at the current clock time (no-op when called
  /// before the next probe interval elapses). Returns the number of
  /// liveness transitions applied to the network.
  std::size_t tick();

  /// Probes performed so far.
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// Transitions applied so far (dead->alive + alive->dead).
  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }

  /// Worst-case detection latency implied by the configuration.
  [[nodiscard]] std::int64_t detection_latency_s() const noexcept {
    return config_.probe_interval_s * config_.down_threshold;
  }

 private:
  CdnNetwork* network_;
  const util::SimClock* clock_;
  HealthOracle oracle_;
  LivenessConfig config_;
  util::SimTime next_probe_;
  /// Per (deployment, server): consecutive failures (+) or successes (-).
  std::vector<std::vector<int>> streaks_;
  std::uint64_t probes_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace eum::cdn
