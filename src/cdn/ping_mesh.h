// The network-measurement component of the mapping system (paper §2.2):
// latency measurements from every deployment to every ping target.
//
// "We then perform latency measurements using pings from each deployment
// U to each of the 8K ping targets. For any client or LDNS, we find the
// closest of the 8K ping targets and use that as a proxy for latency
// measurements" (§6). The mesh stores expected RTTs as a dense
// row-major matrix (deployments x targets) of floats.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cdn/network.h"
#include "topo/latency.h"
#include "topo/world.h"

namespace eum::cdn {

class PingMesh {
 public:
  /// Measure every (deployment, ping target) pair of `network` against
  /// `world` using the latency model.
  static PingMesh measure(const topo::World& world, const CdnNetwork& network,
                          const topo::LatencyModel& latency);

  /// Measure from explicit deployment locations (used by the §6 study,
  /// which sweeps deployment subsets without instantiating clusters).
  static PingMesh measure_sites(const topo::World& world,
                                std::span<const topo::DeploymentSite> sites,
                                const topo::LatencyModel& latency);

  [[nodiscard]] std::size_t deployment_count() const noexcept { return rows_; }
  [[nodiscard]] std::size_t target_count() const noexcept { return cols_; }

  /// Expected RTT in ms from deployment row `d` to ping target `t`.
  [[nodiscard]] float rtt_ms(std::size_t d, topo::PingTargetId t) const noexcept {
    return data_[d * cols_ + t];
  }

  /// Expected packet-loss rate of the same path (0..1).
  [[nodiscard]] float loss_rate(std::size_t d, topo::PingTargetId t) const noexcept {
    return loss_[d * cols_ + t];
  }

  /// Full latency row for one deployment.
  [[nodiscard]] std::span<const float> row(std::size_t d) const noexcept {
    return {data_.data() + d * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
  std::vector<float> loss_;
};

}  // namespace eum::cdn
