// The CDN's server platform: deployment locations, clusters and servers.
//
// A deployment is a server cluster at one location (the paper's unit for
// global load balancing); each cluster holds several content servers
// (the unit for local load balancing). Clusters are instantiated from a
// subset of the world's deployment universe (§6).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/coords.h"
#include "net/prefix.h"
#include "topo/world.h"

namespace eum::cdn {

using DeploymentId = std::uint32_t;

struct Server {
  net::IpV4Addr address;
  double load = 0.0;  ///< current assigned traffic units
  bool alive = true;
};

struct Deployment {
  DeploymentId id = 0;
  std::uint32_t site_id = 0;  ///< id within the world's deployment universe
  topo::CountryId country = 0;
  geo::GeoPoint location;
  net::IpPrefix server_block;  ///< /24 housing this cluster's servers
  std::vector<Server> servers;
  double capacity = 1e9;  ///< traffic units the cluster can absorb
  double load = 0.0;
  bool alive = true;

  [[nodiscard]] std::size_t alive_servers() const noexcept {
    std::size_t n = 0;
    for (const Server& s : servers) n += s.alive ? 1 : 0;
    return n;
  }
};

class CdnNetwork {
 public:
  /// Instantiate clusters at the first `site_count` sites of the world's
  /// deployment universe (or at explicit site indices with the second
  /// overload). Server /24s are carved from 203.0.0.0/8.
  static CdnNetwork build(const topo::World& world, std::size_t site_count,
                          std::size_t servers_per_cluster = 8, double cluster_capacity = 1e9);
  static CdnNetwork build_at(const topo::World& world, const std::vector<std::uint32_t>& sites,
                             std::size_t servers_per_cluster = 8, double cluster_capacity = 1e9);

  [[nodiscard]] const std::vector<Deployment>& deployments() const noexcept {
    return deployments_;
  }
  [[nodiscard]] std::vector<Deployment>& deployments() noexcept { return deployments_; }
  [[nodiscard]] std::size_t size() const noexcept { return deployments_.size(); }

  /// Find the deployment owning a server address — either the IPv4
  /// address or its IPv6 alias (nullptr when unknown).
  [[nodiscard]] const Deployment* deployment_of(const net::IpAddr& server) const noexcept;

  /// Dual-stack aliasing: every content server is also reachable over
  /// IPv6 at a deterministic alias (2001:db8:cd::/96 with the IPv4
  /// address in the low 32 bits), so AAAA answers need no extra state.
  [[nodiscard]] static net::IpV6Addr v6_alias(net::IpV4Addr v4) noexcept;
  /// Inverse of v6_alias; nullopt if `v6` is not an alias.
  [[nodiscard]] static std::optional<net::IpV4Addr> v4_of_alias(const net::IpV6Addr& v6) noexcept;

  /// Mark a whole cluster (or one server) dead/alive.
  void set_cluster_alive(DeploymentId id, bool alive);
  void set_server_alive(DeploymentId id, std::size_t server_index, bool alive);

  /// Clear all load counters.
  void reset_load() noexcept;

 private:
  std::vector<Deployment> deployments_;
};

}  // namespace eum::cdn
