#include "cdn/ping_mesh.h"

#include "util/hash.h"

namespace eum::cdn {

PingMesh PingMesh::measure(const topo::World& world, const CdnNetwork& network,
                           const topo::LatencyModel& latency) {
  PingMesh mesh;
  mesh.rows_ = network.size();
  mesh.cols_ = world.ping_targets.size();
  mesh.data_.resize(mesh.rows_ * mesh.cols_);
  mesh.loss_.resize(mesh.rows_ * mesh.cols_);
  for (std::size_t d = 0; d < mesh.rows_; ++d) {
    const Deployment& deployment = network.deployments()[d];
    for (std::size_t t = 0; t < mesh.cols_; ++t) {
      // Salt by the universe-wide site id so measurements are identical
      // whether taken through a CdnNetwork or a raw site list.
      const std::uint64_t salt = util::hash_combine(util::mix64(0xdeb107 + deployment.site_id),
                                                    static_cast<std::uint64_t>(t));
      mesh.data_[d * mesh.cols_ + t] = static_cast<float>(latency.expected_rtt_ms(
          deployment.location, world.ping_targets[t].location, salt));
      mesh.loss_[d * mesh.cols_ + t] = static_cast<float>(latency.expected_loss_rate(
          deployment.location, world.ping_targets[t].location, salt));
    }
  }
  return mesh;
}

PingMesh PingMesh::measure_sites(const topo::World& world,
                                 std::span<const topo::DeploymentSite> sites,
                                 const topo::LatencyModel& latency) {
  PingMesh mesh;
  mesh.rows_ = sites.size();
  mesh.cols_ = world.ping_targets.size();
  mesh.data_.resize(mesh.rows_ * mesh.cols_);
  mesh.loss_.resize(mesh.rows_ * mesh.cols_);
  for (std::size_t d = 0; d < mesh.rows_; ++d) {
    for (std::size_t t = 0; t < mesh.cols_; ++t) {
      // Salt by the universe-wide site id so a site's measurements do not
      // depend on which subset it appears in.
      const std::uint64_t salt =
          util::hash_combine(util::mix64(0xdeb107 + sites[d].id), static_cast<std::uint64_t>(t));
      mesh.data_[d * mesh.cols_ + t] = static_cast<float>(
          latency.expected_rtt_ms(sites[d].location, world.ping_targets[t].location, salt));
      mesh.loss_[d * mesh.cols_ + t] = static_cast<float>(latency.expected_loss_rate(
          sites[d].location, world.ping_targets[t].location, salt));
    }
  }
  return mesh;
}

}  // namespace eum::cdn
