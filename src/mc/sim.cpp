// Scheduler + explorer + operational memory model behind mc::atomic.
// See sim.h for the model's scope and its documented limits.
//
// Execution engine: virtual threads are OS threads under strict handoff
// (exactly one runnable entity at any instant — the driver or one
// vthread), so "interleaving" is a deterministic sequence of scheduler
// choices, not real concurrency. Worker threads are pooled per check()
// call and reused across executions; an execution is: reset state, run
// the body (driver), prime each vthread to its first operation, then
// loop picking which parked thread executes its pending operation.
//
// Memory model (relacy-class, operational):
//   - modification order per location = execution order of its stores;
//   - a load enumerates every coherence-admissible entry [floor..latest]
//     as an explicit read-from choice, where floor is the newest entry
//     the reader is already bound to (own coherence history, any entry
//     that happens-before the load, SC floors, SC-fence floors);
//   - happens-before via vector clocks: release-ish stores stamp the
//     writer's clock on the entry, acquire-ish loads join it; relaxed
//     loads accumulate into pending_acq, claimed by a later acquire
//     fence; a release fence stamps subsequent relaxed stores; RMWs read
//     the latest entry and carry the release sequence;
//   - seq_cst: the single total order S is the execution order. SC loads
//     floor at the latest SC store to the location; SC fences flush each
//     location's last store by the fencing thread into a global floor
//     that later SC fences/loads pick up (Dekker works, and demoting a
//     Dekker op below seq_cst yields a violating schedule);
//   - mc::racy data uses FastTrack-style epoch/VC race detection.
#include "mc/sim.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mc/hooks.h"

namespace eum::mc {

namespace detail {

namespace {

constexpr std::size_t kSlots = Sim::kMaxThreads + 1;  // slot 0 = driver

using VC = std::array<std::uint32_t, kSlots>;

void vc_join(VC& into, const VC& from) {
  for (std::size_t i = 0; i < kSlots; ++i) into[i] = std::max(into[i], from[i]);
}

bool is_acquire(std::memory_order order) {
  return order == std::memory_order_acquire || order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst || order == std::memory_order_consume;
}

bool is_release(std::memory_order order) {
  return order == std::memory_order_release || order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

}  // namespace

const char* order_name(std::memory_order order) noexcept {
  switch (order) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

[[noreturn]] void fail(std::string message) { throw McFailure{std::move(message)}; }

// ---------------------------------------------------------------------------
// Choices, traces, explorers
// ---------------------------------------------------------------------------

struct Choice {
  char kind;    // 't' schedule, 'r' read-from, 's' spurious CAS
  int chosen;
  int options;
};

/// The bounds are part of the trace: forced-stay (preemption budget
/// spent) and spurious-budget-exhausted steps consume no choice, so the
/// choice-point structure only replays under the same bounds.
struct ParsedTrace {
  int preemption_bound = -1;
  int spurious_budget = 1;
  int stale_depth = -1;
  int stale_budget = -1;
  std::vector<Choice> choices;
};

std::string serialize_trace(const std::vector<Choice>& choices, int preemption_bound,
                            int spurious_budget, int stale_depth, int stale_budget) {
  std::string out = "b" + std::to_string(preemption_bound) + " u" +
                    std::to_string(spurious_budget) + " k" + std::to_string(stale_depth) +
                    " f" + std::to_string(stale_budget);
  for (const Choice& c : choices) {
    out += ' ';
    out += c.kind;
    out += std::to_string(c.chosen);
    out += '/';
    out += std::to_string(c.options);
  }
  return out;
}

ParsedTrace parse_trace(std::string_view text) {
  ParsedTrace out;
  std::istringstream in{std::string{text}};
  std::string token;
  while (in >> token) {
    const char kind = token[0];
    if (kind == 'b' || kind == 'u' || kind == 'k' || kind == 'f') {
      const int value = std::stoi(token.substr(1));
      (kind == 'b'   ? out.preemption_bound
       : kind == 'u' ? out.spurious_budget
       : kind == 'k' ? out.stale_depth
                     : out.stale_budget) = value;
      continue;
    }
    if (kind != 't' && kind != 'r' && kind != 's') {
      throw std::invalid_argument("mc: unknown trace token kind: " + token);
    }
    const std::size_t slash = token.find('/');
    if (slash == std::string::npos || slash < 2 || slash + 1 >= token.size()) {
      throw std::invalid_argument("mc: malformed trace token: " + token);
    }
    Choice c{};
    c.kind = kind;
    c.chosen = std::stoi(token.substr(1, slash - 1));
    c.options = std::stoi(token.substr(slash + 1));
    if (c.options < 2 || c.chosen < 0 || c.chosen >= c.options) {
      throw std::invalid_argument("mc: out-of-range trace token: " + token);
    }
    out.choices.push_back(c);
  }
  return out;
}

/// Choice source. pick() is only consulted for genuine branches
/// (options >= 2); single-option steps are deterministic and unrecorded,
/// which keeps traces short and DFS branching tight.
class Explorer {
 public:
  virtual ~Explorer() = default;

  int pick(char kind, int options) {
    const int chosen = choose(kind, options);
    trail_.push_back(Choice{kind, chosen, options});
    return chosen;
  }

  [[nodiscard]] const std::vector<Choice>& trail() const { return trail_; }
  void begin_execution() {
    trail_.clear();
    on_begin();
  }

 protected:
  virtual int choose(char kind, int options) = 0;
  virtual void on_begin() {}

 private:
  std::vector<Choice> trail_;  // choices consumed by the current execution
};

/// Exhaustive DFS over the choice tree. The persistent stack holds the
/// schedule being explored; each execution replays the prefix and takes
/// option 0 at every fresh choice point. advance() backtracks: pop
/// exhausted tails, bump the deepest non-exhausted choice.
class DfsExplorer final : public Explorer {
 public:
  bool advance() {
    while (!stack_.empty() && stack_.back().chosen + 1 >= stack_.back().options) {
      stack_.pop_back();
    }
    if (stack_.empty()) return false;
    ++stack_.back().chosen;
    return true;
  }

 protected:
  int choose(char kind, int options) override {
    if (cursor_ < stack_.size()) {
      const Choice& c = stack_[cursor_];
      if (c.kind != kind || c.options != options) {
        throw std::logic_error(
            "mc: nondeterministic test body (choice sequence diverged between executions)");
      }
      ++cursor_;
      return c.chosen;
    }
    stack_.push_back(Choice{kind, 0, options});
    ++cursor_;
    return 0;
  }
  void on_begin() override { cursor_ = 0; }

 private:
  std::vector<Choice> stack_;
  std::size_t cursor_ = 0;
};

/// Seeded random walk (splitmix64) for state spaces too large to
/// exhaust. Every execution reseeds deterministically from (seed, index).
class RandomExplorer final : public Explorer {
 public:
  explicit RandomExplorer(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

 protected:
  int choose(char /*kind*/, int options) override {
    return static_cast<int>(next() % static_cast<std::uint64_t>(options));
  }

 private:
  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t state_;
};

/// Replays a recorded choice sequence byte-for-byte; any divergence from
/// the recording body is a hard determinism error.
class ReplayExplorer final : public Explorer {
 public:
  explicit ReplayExplorer(std::vector<Choice> tokens) : tokens_(std::move(tokens)) {}

 protected:
  int choose(char kind, int options) override {
    if (position_ >= tokens_.size()) {
      throw std::logic_error("mc: replay trace exhausted before the body finished");
    }
    const Choice& c = tokens_[position_];
    if (c.kind != kind || c.options != options) {
      throw std::logic_error("mc: replay diverged from the recorded trace");
    }
    ++position_;
    return c.chosen;
  }
  void on_begin() override { position_ = 0; }

 private:
  std::vector<Choice> tokens_;
  std::size_t position_ = 0;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// The execution-scoped world
// ---------------------------------------------------------------------------

namespace {

thread_local Sim* tls_sim = nullptr;
thread_local int tls_slot = 0;

}  // namespace

struct Sim::Impl {
  using VC = detail::VC;

  struct Entry {
    VC release{};  // joined by acquire-ish readers (release-sequence aware)
    int writer = 0;
    std::uint32_t ts = 0;
  };

  struct Location {
    std::vector<Entry> entries;  // modification order; [0] is the init value
    std::array<int, detail::kSlots> last_seen{};     // per-thread coherence floor
    std::array<int, detail::kSlots> last_written{};  // per-thread newest own store
    int sc_floor = 0;  // newest seq_cst store (floors seq_cst loads)
    int sc_flush = 0;  // newest entry flushed by any seq_cst fence
  };

  struct RacyObj {
    int last_writer = 0;
    std::uint32_t write_ts = 0;
    VC reads{};  // per-thread timestamp of the last read
  };

  struct ThreadState {
    VC clock{};
    VC pending_acq{};            // release clocks of relaxed reads, claimed by acquire fence
    VC rel_fence{};              // clock at the last release fence (stamps relaxed stores)
    std::vector<int> fence_floor;  // per-location floor installed by seq_cst fences
    int stale_left = -1;  // remaining non-latest reads (Options::stale_budget)
    std::function<void()> fn;
    bool finished = true;
  };

  // ---- handoff pool ------------------------------------------------------
  std::mutex mu;
  std::condition_variable cv;
  int running = 0;  // slot currently allowed to run; 0 = driver
  bool shutdown = false;
  std::vector<std::thread> workers;  // workers[i] serves slot i+1

  // ---- per-execution state ----------------------------------------------
  detail::Explorer* explorer = nullptr;
  int nthreads = 0;
  std::array<ThreadState, detail::kSlots> threads;
  std::vector<Location> locations;
  std::vector<RacyObj> racies;
  std::function<void()> after_fn;
  Sim* sim = nullptr;
  bool aborting = false;
  bool failed = false;
  std::string failure;
  int last_run = -1;
  int preemptions = 0;
  int preemption_bound = -1;
  int spurious_left = 0;
  int stale_depth = -1;
  bool log_events = false;
  std::vector<std::string> events;

  ~Impl() {
    {
      std::unique_lock<std::mutex> lock(mu);
      shutdown = true;
      cv.notify_all();
    }
    for (std::thread& w : workers) w.join();
  }

  void record_failure(std::string message) {
    if (!failed) {
      failed = true;
      failure = std::move(message);
    }
    aborting = true;
  }

  // ---- scheduling --------------------------------------------------------

  /// Hand control to `slot` and wait until it parks or finishes.
  void resume(int slot) {
    std::unique_lock<std::mutex> lock(mu);
    running = slot;
    cv.notify_all();
    cv.wait(lock, [&] { return running == 0; });
  }

  /// The single scheduling point: park before executing the pending
  /// operation; when the driver picks this thread, wake, stamp the op's
  /// timestamp, and let the caller apply its effects.
  void preop() {
    const int me = tls_slot;
    if (me == 0) {  // driver (body construction / after()): no scheduling
      ++threads[0].clock[0];
      return;
    }
    if (aborting) throw detail::AbortExecution{};
    {
      std::unique_lock<std::mutex> lock(mu);
      running = 0;
      cv.notify_all();
      cv.wait(lock, [&] { return running == me || shutdown; });
      if (shutdown) throw detail::AbortExecution{};
    }
    if (aborting) throw detail::AbortExecution{};
    ++threads[me].clock[static_cast<std::size_t>(me)];
  }

  void worker_main(int slot) {
    tls_slot = slot;
    while (true) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return shutdown || (running == slot && static_cast<bool>(threads[slot].fn));
        });
        if (shutdown) return;
        job = std::move(threads[slot].fn);
        threads[slot].fn = nullptr;
      }
      tls_sim = sim;
      try {
        job();
      } catch (const detail::McFailure& f) {
        record_failure(f.message);
      } catch (const detail::AbortExecution&) {
      } catch (const std::exception& e) {
        record_failure(std::string{"mc: unexpected exception in virtual thread: "} + e.what());
      } catch (...) {
        record_failure("mc: unexpected non-standard exception in virtual thread");
      }
      tls_sim = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        threads[slot].finished = true;
        running = 0;
        cv.notify_all();
      }
    }
  }

  void ensure_workers(int count) {
    while (static_cast<int>(workers.size()) < count) {
      const int slot = static_cast<int>(workers.size()) + 1;
      workers.emplace_back([this, slot] { worker_main(slot); });
    }
  }

  /// Run one execution of `body` under `ex`. Returns true iff it passed.
  bool run_execution(const Options& options, const std::function<void(Sim&)>& body,
                     detail::Explorer& ex) {
    locations.clear();
    racies.clear();
    {
      // Parked workers read threads[slot].fn inside their wait
      // predicate; mutate thread state only under the pool mutex.
      std::lock_guard<std::mutex> lock(mu);
      for (ThreadState& t : threads) {
        t = ThreadState{};
        t.stale_left = options.stale_budget;
      }
    }
    after_fn = nullptr;
    nthreads = 0;
    aborting = false;
    failed = false;
    failure.clear();
    last_run = -1;
    preemptions = 0;
    preemption_bound = options.preemption_bound;
    spurious_left = options.spurious_cas_budget;
    stale_depth = options.stale_depth;
    explorer = &ex;
    events.clear();

    Sim s(this);
    sim = &s;
    tls_sim = &s;
    tls_slot = 0;

    try {
      body(s);
    } catch (const detail::McFailure& f) {
      record_failure(f.message);
    }

    if (!failed) {
      ensure_workers(nthreads);
      {
        std::lock_guard<std::mutex> lock(mu);
        for (int i = 1; i <= nthreads; ++i) {
          threads[i].finished = false;
          threads[i].clock[static_cast<std::size_t>(i)] = 1;
          // Everything the driver did while constructing state happens-
          // before every virtual thread.
          threads[i].clock[0] = threads[0].clock[0];
        }
      }
      // Prime: advance each thread to its first operation (zero events).
      for (int i = 1; i <= nthreads; ++i) resume(i);

      try {
        // Fairness yield threshold: a thread that runs this many
        // consecutive ops while peers are enabled is spinning on a
        // parked peer (Vyukov push is not wait-free against a suspended
        // consumer); deterministically yield to the next enabled slot —
        // no explorer choice, no preemption charge. Without this, both
        // the spin and the DFS over its per-op schedule choices diverge.
        constexpr int kFairnessYield = 32;
        int consecutive = 0;
        while (!aborting) {
          int enabled[detail::kSlots];
          int count = 0;
          for (int i = 1; i <= nthreads; ++i) {
            if (!threads[i].finished) enabled[count++] = i;
          }
          if (count == 0) break;
          int chosen;
          const bool last_enabled = last_run > 0 && !threads[last_run].finished;
          if (count == 1) {
            chosen = enabled[0];
          } else if (last_enabled && consecutive >= kFairnessYield) {
            chosen = last_run;  // placeholder; replaced by the next slot below
            for (int i = 0; i < count; ++i) {
              if (enabled[i] == last_run) {
                chosen = enabled[(i + 1) % count];
                break;
              }
            }
          } else if (last_enabled && preemption_bound >= 0 && preemptions >= preemption_bound) {
            chosen = last_run;  // budget spent: forced stay, no choice consumed
          } else {
            chosen = enabled[ex.pick('t', count)];
            if (last_enabled && chosen != last_run) ++preemptions;
          }
          consecutive = chosen == last_run ? consecutive + 1 : 0;
          last_run = chosen;
          resume(chosen);
        }
      } catch (const std::logic_error& e) {
        record_failure(e.what());
      }
      if (aborting) {
        // Drain: wake the rest in slot order; each aborts at its next
        // preop. Consumes no explorer choices, so traces stay replayable.
        for (int i = 1; i <= nthreads; ++i) {
          while (!threads[i].finished) resume(i);
        }
      }
    }

    if (!failed && after_fn) {
      // The post-join check sees everything: join all thread clocks so
      // reads are deterministic (latest entry) and race-free.
      for (int i = 1; i <= nthreads; ++i) detail::vc_join(threads[0].clock, threads[i].clock);
      tls_sim = &s;
      tls_slot = 0;
      try {
        after_fn();
      } catch (const detail::McFailure& f) {
        record_failure(f.message);
      }
    }

    tls_sim = nullptr;
    sim = nullptr;
    explorer = nullptr;
    return !failed;
  }

  // ---- memory model ------------------------------------------------------

  [[nodiscard]] int fence_floor_of(int slot, int loc) const {
    const std::vector<int>& floors = threads[slot].fence_floor;
    return static_cast<std::size_t>(loc) < floors.size() ? floors[static_cast<std::size_t>(loc)]
                                                         : 0;
  }

  int do_register_location() {
    Location loc;
    Entry init;
    init.writer = tls_slot;
    init.ts = threads[tls_slot].clock[static_cast<std::size_t>(tls_slot)];
    loc.entries.push_back(init);
    locations.push_back(std::move(loc));
    return static_cast<int>(locations.size()) - 1;
  }

  int do_register_racy() {
    RacyObj obj;
    obj.last_writer = tls_slot;
    obj.write_ts = threads[tls_slot].clock[static_cast<std::size_t>(tls_slot)];
    racies.push_back(obj);
    return static_cast<int>(racies.size()) - 1;
  }

  int do_load(int loc, std::memory_order order) {
    preop();
    const int me = tls_slot;
    Location& L = locations[static_cast<std::size_t>(loc)];
    ThreadState& T = threads[me];
    const int latest = static_cast<int>(L.entries.size()) - 1;
    int floor = L.last_seen[static_cast<std::size_t>(me)];
    // Newest entry that happens-before this load binds the floor (scan
    // from the top: the first hit is the max).
    for (int i = latest; i > floor; --i) {
      const Entry& e = L.entries[static_cast<std::size_t>(i)];
      if (T.clock[static_cast<std::size_t>(e.writer)] >= e.ts) {
        floor = i;
        break;
      }
    }
    if (order == std::memory_order_seq_cst) {
      floor = std::max(floor, std::max(L.sc_floor, L.sc_flush));
    }
    floor = std::max(floor, fence_floor_of(me, loc));
    // Bounded staleness (Options::stale_depth): cap how far behind the
    // newest entry the read-from choice may reach. A floor raised here
    // only prunes choices — hb/coherence floors above stay exact.
    if (stale_depth >= 0) floor = std::max(floor, latest - stale_depth);
    // Bounded unfairness (Options::stale_budget): out of budget means
    // this thread now reads latest values only (memory fairness), which
    // is what makes adversarially-starved retry loops terminate.
    if (T.stale_left == 0) floor = latest;
    const int span = latest - floor + 1;
    const int choice = span > 1 ? explorer->pick('r', span) : 0;
    const int index = latest - choice;  // choice 0 = the most recent value
    if (index < latest && T.stale_left > 0) --T.stale_left;
    L.last_seen[static_cast<std::size_t>(me)] =
        std::max(L.last_seen[static_cast<std::size_t>(me)], index);
    const Entry& e = L.entries[static_cast<std::size_t>(index)];
    if (detail::is_acquire(order)) detail::vc_join(T.clock, e.release);
    detail::vc_join(T.pending_acq, e.release);
    return index;
  }

  int append_store(int loc, std::memory_order order, const Entry* rmw_read) {
    const int me = tls_slot;
    Location& L = locations[static_cast<std::size_t>(loc)];
    ThreadState& T = threads[me];
    Entry e;
    e.writer = me;
    e.ts = T.clock[static_cast<std::size_t>(me)];
    e.release = detail::is_release(order) ? T.clock : T.rel_fence;
    if (rmw_read != nullptr) detail::vc_join(e.release, rmw_read->release);  // release sequence
    L.entries.push_back(e);
    const int index = static_cast<int>(L.entries.size()) - 1;
    L.last_seen[static_cast<std::size_t>(me)] = index;
    L.last_written[static_cast<std::size_t>(me)] = index;
    if (order == std::memory_order_seq_cst) L.sc_floor = index;
    return index;
  }

  int do_store(int loc, std::memory_order order) {
    preop();
    return append_store(loc, order, nullptr);
  }

  std::pair<int, int> rmw_effects(int loc, std::memory_order order) {
    const int me = tls_slot;
    Location& L = locations[static_cast<std::size_t>(loc)];
    ThreadState& T = threads[me];
    const int read = static_cast<int>(L.entries.size()) - 1;  // RMW atomicity
    const Entry read_entry = L.entries[static_cast<std::size_t>(read)];
    if (detail::is_acquire(order)) detail::vc_join(T.clock, read_entry.release);
    detail::vc_join(T.pending_acq, read_entry.release);
    const int index = append_store(loc, order, &read_entry);
    return {read, index};
  }

  std::pair<int, int> do_rmw(int loc, std::memory_order order) {
    preop();
    return rmw_effects(loc, order);
  }

  int do_cas_begin(int loc) {
    preop();
    return static_cast<int>(locations[static_cast<std::size_t>(loc)].entries.size()) - 1;
  }

  int do_cas_fail(int loc, std::memory_order order) {
    // Load-of-latest with the failure order. Model simplification
    // (documented in sim.h): a failed CAS reads the latest entry rather
    // than enumerating stale candidates.
    const int me = tls_slot;
    Location& L = locations[static_cast<std::size_t>(loc)];
    ThreadState& T = threads[me];
    const int index = static_cast<int>(L.entries.size()) - 1;
    L.last_seen[static_cast<std::size_t>(me)] =
        std::max(L.last_seen[static_cast<std::size_t>(me)], index);
    const Entry& e = L.entries[static_cast<std::size_t>(index)];
    if (detail::is_acquire(order)) detail::vc_join(T.clock, e.release);
    detail::vc_join(T.pending_acq, e.release);
    return index;
  }

  bool do_cas_try_spurious(int /*loc*/) {
    if (spurious_left <= 0) return false;
    if (explorer->pick('s', 2) == 0) return false;
    --spurious_left;
    return true;
  }

  void do_fence(std::memory_order order) {
    preop();
    const int me = tls_slot;
    ThreadState& T = threads[me];
    if (detail::is_acquire(order)) detail::vc_join(T.clock, T.pending_acq);
    if (detail::is_release(order)) T.rel_fence = T.clock;
    if (order == std::memory_order_seq_cst) {
      T.fence_floor.resize(locations.size(), 0);
      for (std::size_t l = 0; l < locations.size(); ++l) {
        Location& L = locations[l];
        // Loads after this fence see at least what earlier SC fences /
        // SC stores flushed...
        T.fence_floor[l] = std::max(T.fence_floor[l], std::max(L.sc_flush, L.sc_floor));
        // ...and this thread's own prior stores become visible to later
        // SC fences and SC loads.
        L.sc_flush = std::max(L.sc_flush, L.last_written[static_cast<std::size_t>(me)]);
      }
    }
  }

  void do_racy_access(int obj, bool is_write) {
    const int me = tls_slot;
    RacyObj& R = racies[static_cast<std::size_t>(obj)];
    const ThreadState& T = threads[me];
    const auto report = [&](int other, const char* other_op, const char* my_op) {
      detail::fail("data race on racy object #" + std::to_string(obj) + ": thread " +
                   std::to_string(me) + " " + my_op + " is unordered with thread " +
                   std::to_string(other) + " " + other_op);
    };
    if (R.last_writer != me &&
        T.clock[static_cast<std::size_t>(R.last_writer)] < R.write_ts) {
      report(R.last_writer, "write", is_write ? "write" : "read");
    }
    if (is_write) {
      for (std::size_t u = 0; u < detail::kSlots; ++u) {
        if (static_cast<int>(u) != me && R.reads[u] > 0 && T.clock[u] < R.reads[u]) {
          report(static_cast<int>(u), "read", "write");
        }
      }
      R.last_writer = me;
      R.write_ts = T.clock[static_cast<std::size_t>(me)];
    } else {
      R.reads[static_cast<std::size_t>(me)] = T.clock[static_cast<std::size_t>(me)];
    }
  }

  void log(std::string line) {
    if (log_events) events.push_back(std::move(line));
  }
};

// ---------------------------------------------------------------------------
// Sim public surface
// ---------------------------------------------------------------------------

Sim* Sim::current() noexcept { return tls_sim; }

void Sim::thread(std::function<void()> fn) {
  Impl& I = impl();
  if (I.nthreads >= static_cast<int>(kMaxThreads)) {
    detail::fail("mc: too many virtual threads (max " + std::to_string(kMaxThreads) + ")");
  }
  ++I.nthreads;
  std::lock_guard<std::mutex> lock(I.mu);  // parked workers read fn in their predicate
  I.threads[static_cast<std::size_t>(I.nthreads)].fn = std::move(fn);
}

void Sim::after(std::function<void()> fn) { impl().after_fn = std::move(fn); }

// ---------------------------------------------------------------------------
// Hooks (the atomic.h seam)
// ---------------------------------------------------------------------------

namespace detail {

namespace {

Sim::Impl& impl_now() {
  Sim* sim = Sim::current();
  if (sim == nullptr) {
    throw std::logic_error("mc: atomic operation outside a check() body");
  }
  return sim->impl();
}

}  // namespace

int register_location() { return impl_now().do_register_location(); }
int register_racy() { return impl_now().do_register_racy(); }
int on_load(int loc, std::memory_order order) { return impl_now().do_load(loc, order); }
int on_store(int loc, std::memory_order order) { return impl_now().do_store(loc, order); }
std::pair<int, int> on_rmw(int loc, std::memory_order order) {
  return impl_now().do_rmw(loc, order);
}
int on_cas_begin(int loc) { return impl_now().do_cas_begin(loc); }
int on_cas_success(int loc, std::memory_order order) {
  return impl_now().rmw_effects(loc, order).second;
}
int on_cas_fail(int loc, std::memory_order order) {
  return impl_now().do_cas_fail(loc, order);
}
bool on_cas_try_spurious(int loc) { return impl_now().do_cas_try_spurious(loc); }
void on_racy_read(int obj) { impl_now().do_racy_access(obj, /*is_write=*/false); }
void on_racy_write(int obj) { impl_now().do_racy_access(obj, /*is_write=*/true); }
void on_fence(std::memory_order order) { impl_now().do_fence(order); }

bool logging() noexcept {
  Sim* sim = Sim::current();
  return sim != nullptr && sim->impl().log_events;
}

void log_op(int loc, const char* op, std::memory_order order, const std::string& value,
            int index) {
  impl_now().log("T" + std::to_string(tls_slot) + " a" + std::to_string(loc) + "." + op + "(" +
                 order_name(order) + ") = " + value + " [#" + std::to_string(index) + "]");
}

void log_plain(int obj, const char* op) {
  impl_now().log("T" + std::to_string(tls_slot) + " racy" + std::to_string(obj) + "." + op);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// check / replay drivers
// ---------------------------------------------------------------------------

namespace {

Result run_replay(Sim::Impl& impl, const Options& options, std::string_view trace,
                  const std::function<void(Sim&)>& body) {
  Result r;
  r.trace = std::string{trace};
  detail::ParsedTrace parsed = detail::parse_trace(trace);
  Options replay_options = options;
  replay_options.preemption_bound = parsed.preemption_bound;
  replay_options.spurious_cas_budget = parsed.spurious_budget;
  replay_options.stale_depth = parsed.stale_depth;
  replay_options.stale_budget = parsed.stale_budget;
  detail::ReplayExplorer ex(std::move(parsed.choices));
  ex.begin_execution();
  impl.log_events = true;
  const bool passed = impl.run_execution(replay_options, body, ex);
  impl.log_events = false;
  r.ok = passed;
  r.executions = 1;
  r.failure = impl.failure;
  r.events = std::move(impl.events);
  return r;
}

}  // namespace

Result check(const Options& options, const std::function<void(Sim&)>& body) {
  Sim::Impl impl;
  Result r;

  const auto finish_failure = [&](detail::Explorer& ex) {
    r.ok = false;
    r.failure = impl.failure;
    r.trace = detail::serialize_trace(ex.trail(), options.preemption_bound,
                                      options.spurious_cas_budget, options.stale_depth,
                                      options.stale_budget);
    // Re-run the failing schedule with logging to fill the event log;
    // determinism means it fails identically.
    Result replayed = run_replay(impl, options, r.trace, body);
    r.events = std::move(replayed.events);
  };

  if (options.mode == Options::Mode::exhaustive) {
    detail::DfsExplorer ex;
    while (true) {
      if (r.executions >= options.max_executions) {
        r.ok = false;
        r.failure = "mc: exploration cap of " + std::to_string(options.max_executions) +
                    " executions exceeded without exhausting the state space; shrink the "
                    "protocol or lower the preemption bound";
        return r;
      }
      ex.begin_execution();
      const bool passed = impl.run_execution(options, body, ex);
      ++r.executions;
      if (!passed) {
        finish_failure(ex);
        return r;
      }
      if (!ex.advance()) break;
    }
    r.ok = true;
    return r;
  }

  for (std::size_t i = 0; i < options.iterations; ++i) {
    detail::RandomExplorer ex(options.seed + 0x100000001b3ULL * (i + 1));
    ex.begin_execution();
    const bool passed = impl.run_execution(options, body, ex);
    ++r.executions;
    if (!passed) {
      finish_failure(ex);
      return r;
    }
  }
  r.ok = true;
  return r;
}

Result replay(std::string_view trace, const std::function<void(Sim&)>& body) {
  Sim::Impl impl;
  Options options;  // bounds are irrelevant: the trace dictates every choice
  return run_replay(impl, options, trace, body);
}

std::string Result::summary() const {
  std::string out;
  if (ok) {
    out = "mc: OK after " + std::to_string(executions) + " execution(s)";
    return out;
  }
  out = "mc: FAILED after " + std::to_string(executions) + " execution(s): " + failure;
  if (!trace.empty()) out += "\n  trace: " + trace;
  for (const std::string& e : events) out += "\n  " + e;
  return out;
}

}  // namespace eum::mc
