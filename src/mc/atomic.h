// mc::atomic<T> / mc::racy<T>: the instrumented stand-ins for
// std::atomic<T> and plain shared data inside a model-checked protocol.
//
// mc::atomic<T> mirrors the std::atomic call surface the extracted
// lock-free kernels use (load/store/exchange/fetch_add/fetch_sub/
// compare_exchange_{weak,strong}, all with explicit std::memory_order),
// so the identical kernel template compiles against either type via its
// atomics policy. Values live here; ordering metadata (modification
// order, vector clocks, read-from choices) lives in the Sim (sim.cpp)
// behind the hooks.h seam.
//
// mc::racy<T> wraps data that the protocol intends to protect by
// ordering rather than by atomics (ring payloads, RCU snapshot fields).
// Every get()/set() is race-checked against the happens-before relation;
// an unordered pair fails the execution with the schedule that exposed
// it. This is how a dropped release manifests as a hard, replayable
// failure instead of a silently stale value.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "mc/hooks.h"

namespace eum::mc {

namespace detail {

template <class T>
std::string render_value(const T& value) {
  if constexpr (std::is_integral_v<T> || std::is_floating_point_v<T>) {
    return std::to_string(value);
  } else if constexpr (std::is_pointer_v<T>) {
    return value == nullptr ? "null" : "ptr";
  } else if constexpr (std::is_enum_v<T>) {
    return std::to_string(static_cast<long long>(value));
  } else {
    return "<obj>";
  }
}

}  // namespace detail

template <class T>
class atomic {
 public:
  atomic() : atomic(T{}) {}
  explicit atomic(T initial) : loc_(detail::register_location()) {
    values_.push_back(initial);  // modification-order entry 0 (the init)
  }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order) const {
    const int index = detail::on_load(loc_, order);
    const T value = values_[static_cast<std::size_t>(index)];
    if (detail::logging()) {
      detail::log_op(loc_, "load", order, detail::render_value(value), index);
    }
    return value;
  }

  void store(T value, std::memory_order order) {
    const int index = detail::on_store(loc_, order);
    values_.push_back(value);
    if (detail::logging()) {
      detail::log_op(loc_, "store", order, detail::render_value(value), index);
    }
  }

  T exchange(T value, std::memory_order order) {
    const auto [read, index] = detail::on_rmw(loc_, order);
    const T previous = values_[static_cast<std::size_t>(read)];
    values_.push_back(value);
    if (detail::logging()) {
      detail::log_op(loc_, "exchange", order, detail::render_value(value), index);
    }
    return previous;
  }

  T fetch_add(T delta, std::memory_order order) {
    return fetch_op("fetch_add", order, [&](T v) { return static_cast<T>(v + delta); });
  }
  T fetch_sub(T delta, std::memory_order order) {
    return fetch_op("fetch_sub", order, [&](T v) { return static_cast<T>(v - delta); });
  }
  T fetch_or(T bits, std::memory_order order) {
    return fetch_op("fetch_or", order, [&](T v) { return static_cast<T>(v | bits); });
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order success,
                               std::memory_order failure) {
    return cas(expected, desired, success, failure, /*weak=*/false);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return cas(expected, desired, success, failure, /*weak=*/true);
  }

 private:
  template <class Fn>
  T fetch_op(const char* name, std::memory_order order, const Fn& fn) {
    const auto [read, index] = detail::on_rmw(loc_, order);
    const T previous = values_[static_cast<std::size_t>(read)];
    values_.push_back(fn(previous));
    if (detail::logging()) {
      detail::log_op(loc_, name, order, detail::render_value(values_.back()), index);
    }
    return previous;
  }

  bool cas(T& expected, T desired, std::memory_order success, std::memory_order failure,
           bool weak) {
    const int latest = detail::on_cas_begin(loc_);
    const T current = values_[static_cast<std::size_t>(latest)];
    const bool matches = current == expected;
    if (matches && !(weak && detail::on_cas_try_spurious(loc_))) {
      const int index = detail::on_cas_success(loc_, success);
      values_.push_back(desired);
      if (detail::logging()) {
        detail::log_op(loc_, weak ? "cas_weak:ok" : "cas:ok", success,
                       detail::render_value(desired), index);
      }
      return true;
    }
    const int read = detail::on_cas_fail(loc_, failure);
    expected = values_[static_cast<std::size_t>(read)];
    if (detail::logging()) {
      detail::log_op(loc_, weak ? "cas_weak:fail" : "cas:fail", failure,
                     detail::render_value(expected), read);
    }
    return false;
  }

  int loc_;
  // Modification order: values_[i] pairs with the Sim's entry metadata i.
  // mutable so load() on a const atomic (kernels take const refs to
  // version cells) stays instrumentable.
  mutable std::vector<T> values_;
};

/// Plain shared data under race detection. The protocol must order every
/// get()/set() pair via its atomics (or fences); an unordered pair is a
/// data race and fails the execution.
template <class T>
class racy {
 public:
  racy() : racy(T{}) {}
  explicit racy(T initial) : obj_(detail::register_racy()), value_(initial) {}

  racy(const racy&) = delete;
  racy& operator=(const racy&) = delete;

  [[nodiscard]] T get() const {
    detail::on_racy_read(obj_);
    if (detail::logging()) detail::log_plain(obj_, "read");
    return value_;
  }

  void set(T value) {
    detail::on_racy_write(obj_);
    if (detail::logging()) detail::log_plain(obj_, "write");
    value_ = value;
  }

 private:
  int obj_;
  T value_;
};

inline void fence(std::memory_order order) { detail::on_fence(order); }

}  // namespace eum::mc
