// McAtomicsPolicy: binds the extracted lock-free kernels
// (src/lockfree/*.h) to the model checker — mc::atomic cells, mc::racy
// payloads, and per-site memory orders resolved through a mutable
// OrderTable instead of StdAtomicsPolicy's constexpr passthrough.
//
// The OrderTable is the memory-order minimality auditor's knob: it
// overrides exactly one site at a time with a one-step-weaker order and
// the checker is asked to exhibit a violating schedule. No override
// means the site runs at its shipped default, so the same protocol
// bodies serve both the regression suite (defaults must pass
// exhaustively) and the audit (weakened sites must fail).
#pragma once

#include <array>
#include <atomic>
#include <optional>

#include "lockfree/sites.h"
#include "mc/atomic.h"

namespace eum::mc {

/// Process-wide per-site order overrides. Checker runs are single-
/// threaded from the caller's perspective (virtual threads run under
/// strict handoff), so plain storage suffices.
class OrderTable {
 public:
  static OrderTable& instance() {
    static OrderTable table;
    return table;
  }

  void set(lockfree::Site site, std::memory_order order) {
    overrides_[static_cast<std::size_t>(site)] = order;
  }
  void clear(lockfree::Site site) {
    overrides_[static_cast<std::size_t>(site)].reset();
  }
  void clear_all() {
    for (auto& entry : overrides_) entry.reset();
  }

  [[nodiscard]] std::memory_order effective(lockfree::Site site,
                                            std::memory_order def) const {
    const auto& entry = overrides_[static_cast<std::size_t>(site)];
    return entry.has_value() ? *entry : def;
  }

 private:
  std::array<std::optional<std::memory_order>, lockfree::kSiteCount> overrides_;
};

struct McAtomicsPolicy {
  template <class T>
  using Atomic = mc::atomic<T>;

  template <class T>
  using Racy = mc::racy<T>;

  template <lockfree::Site S>
  [[nodiscard]] static std::memory_order order(std::memory_order def) {
    return OrderTable::instance().effective(S, def);
  }

  static void fence(std::memory_order order) { mc::fence(order); }
};

/// RAII single-site weakening, used by the auditor and the downgrade-pin
/// regression tests.
class ScopedOrderOverride {
 public:
  ScopedOrderOverride(lockfree::Site site, std::memory_order order) : site_(site) {
    OrderTable::instance().set(site, order);
  }
  ~ScopedOrderOverride() { OrderTable::instance().clear(site_); }
  ScopedOrderOverride(const ScopedOrderOverride&) = delete;
  ScopedOrderOverride& operator=(const ScopedOrderOverride&) = delete;

 private:
  lockfree::Site site_;
};

}  // namespace eum::mc
