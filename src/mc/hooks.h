// Internal seam between the mc::atomic / mc::racy templates (atomic.h)
// and the scheduler (sim.cpp). Everything here routes through the
// calling thread's current Sim; calling any of it outside a check()
// body is a logic error and throws.
//
// Contract: exactly one scheduling point per source-level operation.
// The *_begin functions (and the plain on_* ones) contain it; the
// follow-up CAS outcome functions (on_cas_success / on_cas_fail /
// on_cas_try_spurious) never re-enter the scheduler, so a CAS is one
// atomic event no matter how the template decomposes it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

namespace eum::mc::detail {

/// Register an atomic location / plain (racy) object with the current
/// Sim; returns its id. Registration order is deterministic because the
/// body constructs state deterministically.
[[nodiscard]] int register_location();
[[nodiscard]] int register_racy();

/// Atomic load: scheduling point, coherence-floor computation, read-from
/// choice, clock effects. Returns the modification-order index to read.
[[nodiscard]] int on_load(int loc, std::memory_order order);

/// Atomic store: scheduling point, appends a modification-order entry.
/// Returns the new entry's index.
int on_store(int loc, std::memory_order order);

/// Atomic RMW (exchange / fetch_op): scheduling point; reads the LATEST
/// entry (RMW atomicity), appends the new one, carries the release
/// sequence. Returns {read_index, new_index}.
[[nodiscard]] std::pair<int, int> on_rmw(int loc, std::memory_order order);

/// CAS step 1: the scheduling point. Returns the latest entry index for
/// the value comparison; no clock effects yet.
[[nodiscard]] int on_cas_begin(int loc);
/// CAS step 2a (values matched, not spurious): RMW effects with the
/// success order. Returns the new entry's index.
int on_cas_success(int loc, std::memory_order order);
/// CAS step 2b: load-of-latest effects with the failure order. Returns
/// the entry index actually read.
[[nodiscard]] int on_cas_fail(int loc, std::memory_order order);
/// For compare_exchange_weak on a matching value: true = fail spuriously
/// (an enumerated choice, bounded by Options::spurious_cas_budget).
[[nodiscard]] bool on_cas_try_spurious(int loc);

/// Plain-data accesses: vector-clock race detection (reports and aborts
/// the execution on an unordered pair). Not scheduling points — a race
/// is unordered regardless of where the scheduler interleaves it.
void on_racy_read(int obj);
void on_racy_write(int obj);

/// Fence: scheduling point + fence clock effects.
void on_fence(std::memory_order order);

/// Event logging (enabled only while replaying a failing schedule).
[[nodiscard]] bool logging() noexcept;
void log_op(int loc, const char* op, std::memory_order order, const std::string& value,
            int index);
void log_plain(int obj, const char* op);

[[nodiscard]] const char* order_name(std::memory_order order) noexcept;

}  // namespace eum::mc::detail
