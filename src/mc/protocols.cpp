#include "mc/protocols.h"

#include <array>
#include <cstdint>
#include <memory>

#include "lockfree/job_claim.h"
#include "lockfree/mpmc_ring.h"
#include "lockfree/pending_table.h"
#include "lockfree/versioned_rcu.h"
#include "mc/atomic.h"
#include "mc/policy.h"

namespace eum::mc {

namespace {

using lockfree::Site;

Options exhaustive(int preemption_bound = -1, int spurious = 1, int stale_depth = -1,
                   int stale_budget = -1) {
  Options options;
  options.mode = Options::Mode::exhaustive;
  options.preemption_bound = preemption_bound;
  options.spurious_cas_budget = spurious;
  options.stale_depth = stale_depth;
  options.stale_budget = stale_budget;
  return options;
}

// ---------------------------------------------------------------------------
// versioned_rcu — MapMaker publish / serve-path read / cache invalidation
// ---------------------------------------------------------------------------

/// A two-field snapshot payload: torn visibility shows up as a != b, and
/// missing ordering shows up as a data race on the racy fields.
struct Snap {
  mc::racy<std::uint64_t> a{0};
  mc::racy<std::uint64_t> b{0};
};

/// One writer publishes generation 2 while two serve threads take the
/// RCU read path (MapMaker::current() -> MapSnapshot::map()).
void rcu_read_path_body(Sim& sim) {
  struct World {
    std::array<Snap, 2> snaps;
    lockfree::VersionedRcu<McAtomicsPolicy, const Snap*> rcu;
  };
  auto w = std::make_shared<World>();
  w->snaps[0].a.set(1);
  w->snaps[0].b.set(1);
  w->rcu.publish(&w->snaps[0], 1);

  sim.thread([w] {
    w->snaps[1].a.set(2);
    w->snaps[1].b.set(2);
    w->rcu.publish(&w->snaps[1], 2);
  });
  for (int r = 0; r < 2; ++r) {
    sim.thread([w] {
      const Snap* snap = w->rcu.snapshot();
      const std::uint64_t a = snap->a.get();
      const std::uint64_t b = snap->b.get();
      MC_ASSERT(a == b);  // never a torn / half-built snapshot
    });
  }
}

/// The AnswerCache invalidation contract: a consumer that observes
/// version V via the acquire read then load()s must get generation >= V
/// (PR 6 shipped the two publish stores swapped; see the
/// rcu_version_before_snapshot mutation).
void rcu_invalidation_body(Sim& sim) {
  struct World {
    std::array<Snap, 2> snaps;
    lockfree::VersionedRcu<McAtomicsPolicy, const Snap*> rcu;
  };
  auto w = std::make_shared<World>();
  w->snaps[0].a.set(1);  // snap[g].a doubles as the generation marker
  w->rcu.publish(&w->snaps[0], 1);

  sim.thread([w] {
    w->snaps[1].a.set(2);
    w->rcu.publish(&w->snaps[1], 2);
  });
  sim.thread([w] {
    const std::uint64_t version = w->rcu.version_sync();
    const Snap* snap = w->rcu.snapshot();
    MC_ASSERT(snap->a.get() >= version);
  });
  sim.thread([w] {
    // The monitoring read carries no ordering obligations; pair it with
    // the synced path so both version sites run in one scenario.
    const std::uint64_t monitor = w->rcu.version();
    MC_ASSERT(monitor <= 2);
    const std::uint64_t version = w->rcu.version_sync();
    const Snap* snap = w->rcu.snapshot();
    MC_ASSERT(snap->a.get() >= version);
  });
}

// ---------------------------------------------------------------------------
// mpmc_ring — FlightRecorder bounded ring (push / pop / eviction)
// ---------------------------------------------------------------------------

using McRing = lockfree::MpmcRing<McAtomicsPolicy, std::uint64_t>;

struct RingWorld {
  McRing ring;
  std::array<std::uint64_t, 8> got{};  ///< popped values, in claim order
  std::size_t npop = 0;
  std::size_t discarded = 0;

  void drain() {
    std::uint64_t value = 0;
    while (ring.pop(value)) got[npop++] = value;
  }

  /// Popped values must be distinct members of [lo, hi], and every push
  /// must be accounted for as either popped or evicted.
  void check(std::uint64_t lo, std::uint64_t hi, std::size_t pushes) const {
    MC_ASSERT(npop + discarded == pushes);
    for (std::size_t i = 0; i < npop; ++i) {
      MC_ASSERT(got[i] >= lo && got[i] <= hi);
      for (std::size_t j = i + 1; j < npop; ++j) MC_ASSERT(got[i] != got[j]);
    }
  }
};

/// Two producers race for cells while a consumer pops concurrently.
void ring_mpmc_basic_body(Sim& sim) {
  auto w = std::make_shared<RingWorld>();
  w->ring.init(2);
  for (std::uint64_t p = 1; p <= 2; ++p) {
    sim.thread([w, p] { w->discarded += w->ring.push(100 + p); });
  }
  sim.thread([w] {
    std::uint64_t value = 0;
    while (w->ring.pop(value)) w->got[w->npop++] = value;
  });
  sim.after([w] { w->drain(); w->check(101, 102, 2); });
}

/// Single producer wraps a capacity-2 ring while the consumer pops: cell
/// reuse means the consumer's release store on the cell sequence is what
/// keeps the producer's fresh payload write ordered after the consumer's
/// read of the old one.
void ring_spsc_wrap_body(Sim& sim) {
  auto w = std::make_shared<RingWorld>();
  w->ring.init(2);
  sim.thread([w] {
    for (std::uint64_t i = 1; i <= 3; ++i) w->discarded += w->ring.push(i);
  });
  sim.thread([w] {
    std::uint64_t value = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (w->ring.pop(value)) w->got[w->npop++] = value;
    }
  });
  sim.after([w] { w->drain(); w->check(1, 3, 3); });
}

/// Full-ring eviction with cross-thread cell reuse: producer P fills the
/// ring, A evicts the oldest record, and B (not A) may claim the freed
/// cell — B's payload write is ordered after P's only through A's
/// release store on the evicted cell's sequence.
void ring_evict_reuse_body(Sim& sim) {
  auto w = std::make_shared<RingWorld>();
  w->ring.init(2);
  sim.thread([w] {
    w->discarded += w->ring.push(1);
    w->discarded += w->ring.push(2);
  });
  sim.thread([w] { w->discarded += w->ring.push(3); });
  sim.thread([w] { w->discarded += w->ring.push(4); });
  sim.after([w] { w->drain(); w->check(1, 4, 4); });
}

// ---------------------------------------------------------------------------
// pending_table — load generator outstanding-query slot lifecycle
// ---------------------------------------------------------------------------

/// One sender wraps an id onto the same slot (arm 100, then arm 200)
/// while two receivers race to claim. A claim must return exactly the
/// sched of the arm it retired — the property the seed's two-cell
/// protocol violated (see the pending_split_sched_state mutation).
void pending_lifecycle_body(Sim& sim) {
  struct World {
    lockfree::PendingSlot<McAtomicsPolicy> slot;
    std::array<std::uint64_t, 2> scheds{};
    std::size_t claims = 0;
    bool overwrote = false;
    bool swept = false;
  };
  auto w = std::make_shared<World>();
  sim.thread([w] {
    MC_ASSERT(!w->slot.arm(100));  // fresh slot: no overwrite
    w->overwrote = w->slot.arm(200);
  });
  for (int r = 0; r < 2; ++r) {
    sim.thread([w] {
      std::uint64_t sched = 0;
      if (w->slot.claim(sched)) w->scheds[w->claims++] = sched;
    });
  }
  sim.after([w] {
    w->swept = w->slot.swept_unanswered();
    MC_ASSERT(w->claims <= 2);
    for (std::size_t i = 0; i < w->claims; ++i) {
      MC_ASSERT(w->scheds[i] == 100 || w->scheds[i] == 200);
      // An overwrite means arm(100) was never claimed.
      MC_ASSERT(!(w->scheds[i] == 100 && w->overwrote));
      for (std::size_t j = i + 1; j < w->claims; ++j) {
        MC_ASSERT(w->scheds[i] != w->scheds[j]);  // each arm claimed once
      }
    }
    // Every arm is claimed, charged as an overwrite, or swept.
    MC_ASSERT(w->claims + (w->overwrote ? 1U : 0U) + (w->swept ? 1U : 0U) == 2);
  });
}

// ---------------------------------------------------------------------------
// job_claim — ShardPool batch cursor
// ---------------------------------------------------------------------------

/// Three workers drain a 3-job batch; every index claimed exactly once.
void job_claim_body(Sim& sim) {
  struct World {
    lockfree::JobClaim<McAtomicsPolicy> cursor;
    std::array<int, 3> marks{};
  };
  auto w = std::make_shared<World>();
  w->cursor.reset();
  for (int t = 0; t < 3; ++t) {
    sim.thread([w] {
      for (;;) {
        const std::size_t job = w->cursor.claim();
        if (job >= w->marks.size()) break;
        w->marks[job] += 1;
      }
    });
  }
  sim.after([w] {
    for (const int mark : w->marks) MC_ASSERT(mark == 1);
  });
}

// ---------------------------------------------------------------------------
// Hand-built broken variants (mutations without a site override)
// ---------------------------------------------------------------------------

/// The PR 6 bug class: version published BEFORE the snapshot, so a
/// cache that observes the new version can still load the old map.
void version_before_snapshot_body(Sim& sim) {
  struct World {
    std::array<Snap, 2> snaps;
    mc::atomic<const Snap*> current{nullptr};
    mc::atomic<std::uint64_t> version{0};
  };
  auto w = std::make_shared<World>();
  w->snaps[0].a.set(1);
  w->current.store(&w->snaps[0], std::memory_order_release);
  w->version.store(1, std::memory_order_release);

  sim.thread([w] {
    w->snaps[1].a.set(2);
    w->version.store(2, std::memory_order_release);  // WRONG ORDER
    w->current.store(&w->snaps[1], std::memory_order_release);
  });
  sim.thread([w] {
    const std::uint64_t version = w->version.load(std::memory_order_acquire);
    const Snap* snap = w->current.load(std::memory_order_acquire);
    MC_ASSERT(snap->a.get() >= version);
  });
}

/// Fence-based message passing with the release fence dropped: the
/// relaxed flag store publishes nothing, so the reader's payload read is
/// a data race.
void missing_release_fence_body(Sim& sim) {
  struct World {
    mc::racy<int> data{0};
    mc::atomic<int> flag{0};
  };
  auto w = std::make_shared<World>();
  sim.thread([w] {
    w->data.set(42);
    // MISSING: mc::fence(std::memory_order_release);
    w->flag.store(1, std::memory_order_relaxed);
  });
  sim.thread([w] {
    if (w->flag.load(std::memory_order_acquire) == 1) {
      MC_ASSERT(w->data.get() == 42);
    }
  });
}

/// Relaxed failure order on a weak CAS whose failure path consumes the
/// observed value: a spurious failure still reports expected == 1, but
/// without acquire the payload read is unordered.
void cas_failure_order_relaxed_body(Sim& sim) {
  struct World {
    mc::racy<int> data{0};
    mc::atomic<int> flag{0};
  };
  auto w = std::make_shared<World>();
  sim.thread([w] {
    w->data.set(42);
    w->flag.store(1, std::memory_order_release);
  });
  sim.thread([w] {
    int expected = 1;
    if (w->flag.compare_exchange_weak(expected, 2, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      MC_ASSERT(w->data.get() == 42);
    } else if (expected == 1) {
      // Spurious failure: we DID observe flag == 1, but through the
      // relaxed failure order — this read races with the writer.
      MC_ASSERT(w->data.get() == 42);
    }
  });
}

/// The seed's pending-slot protocol, verbatim shape: state machine and
/// sched_ns in separate cells, receiver reads sched AFTER winning the
/// claim CAS. A wrapping re-arm overwrites sched under that read, so a
/// response gets charged against the wrong scheduled send time.
void pending_split_sched_state_body(Sim& sim) {
  constexpr std::uint64_t kArmed = 1;
  constexpr std::uint64_t kDone = 2;
  struct World {
    mc::atomic<std::uint64_t> state{0};
    mc::atomic<std::uint64_t> sched{0};
    bool overwrote = false;
    bool claimed = false;
    std::uint64_t got = 0;
  };
  auto w = std::make_shared<World>();
  sim.thread([w] {
    const auto arm = [&](std::uint64_t sched_ns) {
      const bool prior = w->state.load(std::memory_order_relaxed) == kArmed;
      w->sched.store(sched_ns, std::memory_order_relaxed);
      w->state.store(kArmed, std::memory_order_release);
      return prior;
    };
    (void)arm(100);
    w->overwrote = arm(200);  // the id wrap
  });
  sim.thread([w] {
    std::uint64_t expected = kArmed;
    if (w->state.compare_exchange_strong(expected, kDone, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      w->claimed = true;
      w->got = w->sched.load(std::memory_order_relaxed);
    }
  });
  sim.after([w] {
    if (w->claimed && !w->overwrote) {
      // No overwrite means the claim retired arm(100) — yet the re-arm
      // can slip its sched store under the post-CAS read.
      MC_ASSERT(w->got == 100);
    }
  });
}

/// Dekker's mutual exclusion demoted from seq_cst to release/acquire:
/// both threads can miss each other's flag and enter together.
void dekker_store_release_body(Sim& sim) {
  struct World {
    mc::atomic<int> fa{0};
    mc::atomic<int> fb{0};
    int critical = 0;
  };
  auto w = std::make_shared<World>();
  sim.thread([w] {
    w->fa.store(1, std::memory_order_release);  // WRONG: needs seq_cst
    if (w->fb.load(std::memory_order_acquire) == 0) w->critical += 1;
  });
  sim.thread([w] {
    w->fb.store(1, std::memory_order_release);  // WRONG: needs seq_cst
    if (w->fa.load(std::memory_order_acquire) == 0) w->critical += 1;
  });
  sim.after([w] { MC_ASSERT(w->critical <= 1); });
}

}  // namespace

const std::vector<ProtocolCheck>& protocol_checks() {
  static const std::vector<ProtocolCheck> checks = [] {
    std::vector<ProtocolCheck> v;
    v.push_back({"rcu_read_path", "versioned_rcu", exhaustive(), rcu_read_path_body});
    v.push_back({"rcu_invalidation", "versioned_rcu", exhaustive(), rcu_invalidation_body});
    // Ring state spaces are bounded three ways (all disclosed in the
    // trace header): CHESS preemption bound 2, read-from staleness depth
    // 2 (every ring ordering bug manifests within two writes of the
    // newest entry — old payload / reused cell are one step back), and a
    // per-thread stale-read budget of 2 (memory fairness; unbounded
    // stale retries make CAS loops — and DFS — diverge).
    v.push_back({"ring_spsc_wrap", "mpmc_ring", exhaustive(2, 0, 2, 2), ring_spsc_wrap_body});
    v.push_back({"ring_mpmc_basic", "mpmc_ring", exhaustive(2, 1, 2, 2), ring_mpmc_basic_body});
    // Tighter staleness (1/1) than the two-thread scenarios: the evict
    // ordering bugs manifest on all-latest reads, and three pushing
    // threads multiply the schedule count.
    v.push_back({"ring_evict_reuse", "mpmc_ring", exhaustive(2, 0, 1, 1), ring_evict_reuse_body});
    v.push_back({"pending_lifecycle", "pending_table", exhaustive(), pending_lifecycle_body});
    v.push_back({"job_claim_batch", "job_claim", exhaustive(), job_claim_body});
    return v;
  }();
  return checks;
}

std::vector<const ProtocolCheck*> checks_for_kernel(std::string_view kernel) {
  std::vector<const ProtocolCheck*> out;
  for (const ProtocolCheck& check : protocol_checks()) {
    if (check.kernel == kernel) out.push_back(&check);
  }
  return out;
}

const std::vector<MutationCheck>& mutations() {
  static const std::vector<MutationCheck> all = [] {
    std::vector<MutationCheck> v;
    v.push_back({"rcu_publish_dropped_release",
                 "snapshot publish store demoted to relaxed: serve threads race the builder",
                 exhaustive(), rcu_read_path_body,
                 {{Site::rcu_snapshot_publish, std::memory_order_relaxed}}});
    v.push_back({"rcu_version_before_snapshot",
                 "publish stores swapped (the PR 6 bug): new version, old map",
                 exhaustive(), version_before_snapshot_body, {}});
    v.push_back({"ring_pop_seq_store_relaxed",
                 "consumer's cell-release store demoted: producer reuses the cell while "
                 "the consumer still reads it",
                 exhaustive(2, 0, 2, 2), ring_spsc_wrap_body,
                 {{Site::ring_pop_seq_store, std::memory_order_relaxed}}});
    v.push_back({"mp_missing_release_fence",
                 "fence-based message passing with the release fence dropped",
                 exhaustive(), missing_release_fence_body, {}});
    v.push_back({"cas_failure_order_relaxed",
                 "weak CAS failure order relaxed where the failure path consumes the value",
                 exhaustive(), cas_failure_order_relaxed_body, {}});
    v.push_back({"pending_split_sched_state",
                 "the seed's two-cell pending slot: wrapping re-arm races the claimed "
                 "sched read, charging the wrong send time",
                 exhaustive(), pending_split_sched_state_body, {}});
    v.push_back({"dekker_store_release",
                 "Dekker flags demoted below seq_cst: mutual exclusion fails",
                 exhaustive(), dekker_store_release_body, {}});
    return v;
  }();
  return all;
}

Result run_mutation(const MutationCheck& mutation) {
  if (mutation.weaken.has_value()) {
    const ScopedOrderOverride weaken{mutation.weaken->first, mutation.weaken->second};
    return check(mutation.options, mutation.body);
  }
  return check(mutation.options, mutation.body);
}

}  // namespace eum::mc
