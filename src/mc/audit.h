// Memory-order minimality auditor.
//
// For every site in the extracted lock-free kernels (lockfree/sites.h),
// weaken the shipped order one step down the ladder
// (seq_cst -> acq_rel -> acquire/release -> relaxed) and require the
// model checker to exhibit a violating schedule in at least one of that
// kernel's protocol scenarios. Verdicts:
//
//   load_bearing — every one-step weakening has a recorded violating
//                  schedule (the trace is in the report, replayable);
//   minimal      — the site already runs relaxed; nothing to weaken;
//   over_strong  — some weakening passed exhaustive checking, so the
//                  shipped order is stronger than the protocol needs
//                  (a finding: downgrade it or add the scenario that
//                  makes it load-bearing). Fails the audit gate.
//
// run_audit() also runs the baseline protocol suite (shipped orders must
// pass) and the mutation suite (broken variants must be caught) so one
// artifact carries the whole modelcheck verdict; scripts/check.sh gates
// on report.ok via scripts/check_bench_artifact.py.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eum::mc {

/// A baseline protocol scenario run at shipped orders (must pass).
struct CheckOutcome {
  std::string name;
  bool ok = false;
  std::uint64_t executions = 0;
  std::string failure;  ///< empty when ok
  std::string trace;    ///< replayable schedule when !ok
};

/// A deliberately-broken variant run (must be caught).
struct MutationOutcome {
  std::string name;
  std::string description;
  bool caught = false;
  std::uint64_t executions = 0;
  std::string failure;  ///< the violation the checker found
  std::string trace;    ///< the replayable violating schedule
};

/// One one-step weakening of one site.
struct WeakeningOutcome {
  std::string to;  ///< the weaker order tried
  bool violated = false;
  std::string check;    ///< scenario that violated (or last scenario run)
  std::uint64_t executions = 0;
  std::string failure;
  std::string trace;
};

struct SiteAudit {
  std::string site;
  std::string kernel;
  std::string op;
  std::string order;    ///< shipped default
  std::string verdict;  ///< "load_bearing" | "minimal" | "over_strong"
  std::vector<WeakeningOutcome> weakenings;
};

struct AuditReport {
  bool ok = false;  ///< baselines pass, mutations caught, no over_strong
  std::vector<CheckOutcome> checks;
  std::vector<MutationOutcome> mutation_results;
  std::vector<SiteAudit> sites;
  std::vector<std::string> problems;  ///< human-readable gate failures
};

/// Run the full audit: baseline suite, mutation suite, then the
/// per-site weakening sweep. Deterministic (exhaustive mode throughout).
[[nodiscard]] AuditReport run_audit();

/// Serialize as the BENCH-artifact-style JSON consumed by
/// scripts/check_bench_artifact.py ({"bench": "mc_audit", ...}).
[[nodiscard]] std::string to_json(const AuditReport& report);

}  // namespace eum::mc
