// The model-checked protocol suites for the extracted lock-free kernels
// (src/lockfree/*.h), plus the deliberately-broken mutation variants the
// checker must flag (the self-test mirroring the invariant linter's
// fixture tests).
//
// Every scenario body instantiates the REAL kernel template against
// McAtomicsPolicy — the same code production compiles against
// std::atomic — so a pass here is a statement about the shipped
// protocol, not a model of it. The memory-order minimality auditor
// (audit.h) re-runs these same scenarios with single sites weakened.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lockfree/sites.h"
#include "mc/sim.h"

namespace eum::mc {

/// One exhaustively-checked scenario over an extracted kernel.
struct ProtocolCheck {
  std::string name;
  std::string kernel;  ///< matches SiteInfo::kernel of the sites it exercises
  Options options;
  std::function<void(Sim&)> body;
};

/// The real-kernel scenarios. All are exhaustive; the acceptance gate is
/// that every one passes (and keeps passing in CI's modelcheck job).
[[nodiscard]] const std::vector<ProtocolCheck>& protocol_checks();

/// The scenarios that exercise `kernel` (what the auditor re-runs when
/// weakening one of that kernel's sites).
[[nodiscard]] std::vector<const ProtocolCheck*> checks_for_kernel(std::string_view kernel);

/// A deliberately-broken protocol variant. Either a hand-built wrong
/// protocol (dropped fence, swapped publish, legacy pending table) or a
/// real kernel run with one site overridden to a weaker order. The
/// checker MUST find a failing schedule for every one of these.
struct MutationCheck {
  std::string name;
  std::string description;
  Options options;
  std::function<void(Sim&)> body;
  /// When set, run `body` with this site forced to the given order.
  std::optional<std::pair<lockfree::Site, std::memory_order>> weaken;
};

[[nodiscard]] const std::vector<MutationCheck>& mutations();

/// Run one mutation (applies its override, if any) and return the
/// checker's result — callers assert !result.ok.
[[nodiscard]] Result run_mutation(const MutationCheck& mutation);

}  // namespace eum::mc
