// Deterministic model checker for the repo's lock-free protocols.
//
// The serve path answers queries off hand-rolled atomic protocols (RCU
// snapshot publish, Vyukov MPMC rings, the loadgen pending table, shard
// job claiming). TSan only sees interleavings that happen to occur on
// the test machine; this module *enumerates* them. A protocol test body
// builds shared state, spawns a handful of virtual threads, and asserts
// invariants; mc::check() then runs that body under every schedule (DFS
// with a configurable preemption bound) or under a seeded random walk,
// simulating the C++ memory model closely enough to exhibit the bugs a
// wrong memory_order admits:
//
//   - every mc::atomic keeps its full modification-order history; a load
//     may read any coherence-admissible stale value, enumerated as an
//     explicit choice point (this is how a missing release/acquire pair
//     becomes a *visible* wrong value, not a latent one);
//   - vector clocks track happens-before; plain data wrapped in
//     mc::racy<T> reports a data race the moment two unordered accesses
//     touch it (torn publishes, reads of half-built snapshots);
//   - seq_cst operations additionally respect the single total order
//     (execution order), so Dekker-style protocols fail when demoted to
//     acq_rel; release/acquire/seq_cst fences are modeled;
//   - weak CAS can fail spuriously (bounded per execution, enumerated).
//
// Any failing schedule is replayable byte-for-byte: Result::trace is the
// exact choice sequence, and mc::replay(trace, body) re-executes it,
// producing the same event log every time.
//
// The model is operational (relacy-class): executions are interleavings
// plus stale-read choices. It exhibits message-passing, coherence, RMW
// atomicity, release-sequence, fence, and SC-order violations; it does
// not generate out-of-thin-air or load-buffering behaviors. Exploration
// can additionally be bounded in how stale a read may be (stale_depth)
// and how often a thread may read stale at all (stale_budget — the
// memory-fairness assumption real machines satisfy; without it a
// CAS-retry loop fed adversarially stale values never terminates and
// neither does DFS). Every bound rides in the trace header. Verdicts that
// *weaken* an order on the strength of an exhaustive pass (the auditor,
// audit.h) are therefore proofs within this model, and are documented as
// such.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace eum::mc {

class Sim;

/// Exploration configuration.
struct Options {
  enum class Mode : std::uint8_t {
    exhaustive,  ///< DFS over every schedule + read-from + spurious choice
    random,      ///< seeded random walk, `iterations` executions
  };
  Mode mode = Mode::exhaustive;
  /// Hard cap on exhaustive executions. Exceeding it FAILS the check
  /// (the state space was not exhausted, so "no bug found" means
  /// nothing) — shrink the protocol or lower the preemption bound.
  std::size_t max_executions = 2'000'000;
  /// Executions in random mode.
  std::size_t iterations = 20'000;
  /// Max context switches away from a still-runnable thread (-1 =
  /// unbounded). Bound 2-3 catches almost all real interleaving bugs
  /// (CHESS) while keeping exhaustive DFS tractable.
  int preemption_bound = -1;
  /// Spurious weak-CAS failures allowed per execution (each one is an
  /// enumerated branch; unbounded would make DFS infinite).
  int spurious_cas_budget = 1;
  /// Max stale entries (behind the newest) a load's read-from choice may
  /// reach back, -1 = unlimited. Bounding this is the staleness analogue
  /// of the preemption bound: real relaxed-ordering bugs manifest within
  /// a couple of writes, while full enumeration makes every relaxed load
  /// a multiplicative branch. Like the other bounds it is recorded in
  /// the trace header ("k..."), so failing schedules replay exactly.
  int stale_depth = -1;
  /// Max non-latest (stale) reads each virtual thread may take per
  /// execution, -1 = unlimited. C++ promises no read fairness, so a
  /// CAS-retry loop fed adversarially stale values can spin forever —
  /// and DFS would faithfully enumerate those unbounded executions. A
  /// small budget is the memory-fairness assumption every real machine
  /// satisfies (stores become visible eventually), and it makes retry
  /// loops terminate. Recorded in the trace header ("f...").
  int stale_budget = -1;
  std::uint64_t seed = 1;
};

/// Outcome of a check() / replay() run.
struct Result {
  bool ok = true;
  std::size_t executions = 0;
  /// Human-readable description of the first failure (assert text, race
  /// report, or exploration-cap overflow); empty when ok.
  std::string failure;
  /// Replayable choice sequence of the failing schedule; empty when ok.
  std::string trace;
  /// Per-step event log of the failing schedule (replay of `trace` with
  /// logging on). Deterministic: replaying the same trace yields a
  /// byte-identical log.
  std::vector<std::string> events;

  [[nodiscard]] std::string summary() const;
};

/// Explore every schedule of `body` under `options`. The body runs once
/// per execution: it constructs fresh shared state, registers virtual
/// threads via Sim::thread(), and optionally a post-join invariant via
/// Sim::after().
Result check(const Options& options, const std::function<void(Sim&)>& body);

/// Re-execute one recorded schedule with event logging. The trace must
/// come from a Result produced by the same body (a divergent body fails
/// with a determinism error).
Result replay(std::string_view trace, const std::function<void(Sim&)>& body);

namespace detail {

/// Thrown by MC_ASSERT / race detection inside a virtual thread; caught
/// by the scheduler, never by user code.
struct McFailure {
  std::string message;
};

/// Thrown into still-running threads once the execution is being torn
/// down after a failure.
struct AbortExecution {};

[[noreturn]] void fail(std::string message);

}  // namespace detail

/// Protocol invariant assertion: records the failure (with the failing
/// schedule) and aborts the current execution.
#define MC_ASSERT(cond)                                                         \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::eum::mc::detail::fail(std::string{"MC_ASSERT failed: "} + #cond + " (" + \
                              __FILE__ + ":" + std::to_string(__LINE__) + ")"); \
    }                                                                           \
  } while (0)

/// The execution-scoped world. Test bodies receive it; mc::atomic /
/// mc::racy find it through a thread-local set for the body's duration.
class Sim {
 public:
  /// Register a virtual thread. Threads start only after the body
  /// returns; at most kMaxThreads.
  void thread(std::function<void()> fn);

  /// Register the post-join invariant check. Runs after every virtual
  /// thread finished, with full happens-before visibility (reads there
  /// never race).
  void after(std::function<void()> fn);

  static constexpr std::size_t kMaxThreads = 8;

  // ---- internal API (mc::atomic / mc::racy / fence) -------------------
  struct Impl;
  [[nodiscard]] Impl& impl() noexcept { return *impl_; }

  /// The Sim the calling thread is executing under (nullptr outside a
  /// check() body / virtual thread).
  [[nodiscard]] static Sim* current() noexcept;

 private:
  friend Result check(const Options&, const std::function<void(Sim&)>&);
  friend Result replay(std::string_view, const std::function<void(Sim&)>&);
  explicit Sim(Impl* impl) : impl_(impl) {}
  Impl* impl_;
};

}  // namespace eum::mc
