#include "mc/audit.h"

#include <atomic>
#include <cstddef>
#include <string_view>
#include <utility>

#include "lockfree/sites.h"
#include "mc/hooks.h"
#include "mc/policy.h"
#include "mc/protocols.h"
#include "mc/sim.h"

namespace eum::mc {

namespace {

using lockfree::Site;
using lockfree::SiteInfo;
using lockfree::SiteOp;

/// The one-step weakening ladder. Consume_* is never shipped, so the
/// ladder is seq_cst -> acq_rel -> acquire/release -> relaxed, projected
/// onto what the operation shape admits.
std::vector<std::memory_order> one_step_weaker(SiteOp op, std::memory_order order) {
  using enum std::memory_order;
  switch (op) {
    case SiteOp::load:
    case SiteOp::cas_fail:
      if (order == seq_cst) return {acquire};
      if (order == acquire) return {relaxed};
      return {};
    case SiteOp::store:
      if (order == seq_cst) return {release};
      if (order == release) return {relaxed};
      return {};
    case SiteOp::rmw:
      if (order == seq_cst) return {acq_rel};
      if (order == acq_rel) return {acquire, release};
      if (order == acquire || order == release) return {relaxed};
      return {};
  }
  return {};
}

const char* op_name(SiteOp op) {
  switch (op) {
    case SiteOp::load: return "load";
    case SiteOp::store: return "store";
    case SiteOp::rmw: return "rmw";
    case SiteOp::cas_fail: return "cas_fail";
  }
  return "?";
}

/// Weaken one site and run that kernel's scenarios until one violates.
WeakeningOutcome try_weakening(const SiteInfo& info, std::memory_order weaker) {
  WeakeningOutcome outcome;
  outcome.to = detail::order_name(weaker);
  const Site site = [&] {
    for (std::size_t i = 0; i < lockfree::kSiteCount; ++i) {
      const auto s = static_cast<Site>(i);
      if (std::string_view{lockfree::site_info(s).name} == info.name) return s;
    }
    return Site::kCount;  // unreachable: info came from site_info
  }();
  const ScopedOrderOverride weaken{site, weaker};
  for (const ProtocolCheck* check : checks_for_kernel(info.kernel)) {
    const Result result = mc::check(check->options, check->body);
    outcome.executions += result.executions;
    outcome.check = check->name;
    if (!result.ok) {
      outcome.violated = true;
      outcome.failure = result.failure;
      outcome.trace = result.trace;
      break;
    }
  }
  return outcome;
}

// --- minimal JSON writer (no deps; traces/names are plain ASCII) -----------

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';  // control chars never appear; keep the writer total
        } else {
          out += c;
        }
    }
  }
}

void json_str(std::string& out, std::string_view s) {
  out += '"';
  json_escape(out, s);
  out += '"';
}

void json_kv(std::string& out, const char* key, std::string_view value, bool comma = true) {
  json_str(out, key);
  out += ':';
  json_str(out, value);
  if (comma) out += ',';
}

void json_kv(std::string& out, const char* key, bool value, bool comma = true) {
  json_str(out, key);
  out += value ? ":true" : ":false";
  if (comma) out += ',';
}

void json_kv(std::string& out, const char* key, std::uint64_t value, bool comma = true) {
  json_str(out, key);
  out += ':';
  out += std::to_string(value);
  if (comma) out += ',';
}

}  // namespace

AuditReport run_audit() {
  AuditReport report;
  report.ok = true;
  OrderTable::instance().clear_all();

  // Baseline: every protocol scenario must pass at shipped orders —
  // exhaustively within its bounds, then a seeded random walk with the
  // preemption bound lifted to sample schedules the bounded DFS cannot
  // reach (the staleness budgets stay, so every walk terminates).
  bool baselines_ok = true;
  for (const ProtocolCheck& check : protocol_checks()) {
    Options random_options = check.options;
    random_options.mode = Options::Mode::random;
    random_options.preemption_bound = -1;
    random_options.iterations = 1500;
    random_options.seed = 1;
    const std::pair<const char*, Options> arms[] = {
        {"", check.options}, {"@random", random_options}};
    for (const auto& [suffix, options] : arms) {
      const Result result = mc::check(options, check.body);
      CheckOutcome outcome;
      outcome.name = check.name + suffix;
      outcome.ok = result.ok;
      outcome.executions = result.executions;
      if (!result.ok) {
        outcome.failure = result.failure;
        outcome.trace = result.trace;
        report.ok = false;
        baselines_ok = false;
        report.problems.push_back("baseline scenario failed: " + outcome.name +
                                  " — " + result.failure);
      }
      report.checks.push_back(std::move(outcome));
    }
  }

  // Mutations: every deliberately-broken variant must be caught.
  for (const MutationCheck& mutation : mutations()) {
    const Result result = run_mutation(mutation);
    MutationOutcome outcome;
    outcome.name = mutation.name;
    outcome.description = mutation.description;
    outcome.caught = !result.ok;
    outcome.executions = result.executions;
    outcome.failure = result.failure;
    outcome.trace = result.trace;
    if (result.ok) {
      report.ok = false;
      report.problems.push_back("mutation NOT caught: " + mutation.name);
    }
    report.mutation_results.push_back(std::move(outcome));
  }

  // The weakening sweep. Skipped if baselines are broken — verdicts
  // would be meaningless against failing scenarios.
  for (std::size_t i = 0; i < lockfree::kSiteCount; ++i) {
    const auto site = static_cast<Site>(i);
    const SiteInfo info = lockfree::site_info(site);
    SiteAudit audit;
    audit.site = info.name;
    audit.kernel = info.kernel;
    audit.op = op_name(info.op);
    audit.order = detail::order_name(info.default_order);

    const std::vector<std::memory_order> ladder =
        one_step_weaker(info.op, info.default_order);
    if (ladder.empty()) {
      audit.verdict = "minimal";
    } else if (!baselines_ok) {
      audit.verdict = "unknown";  // baselines broken; gate already failed
    } else {
      bool all_violated = true;
      for (const std::memory_order weaker : ladder) {
        WeakeningOutcome outcome = try_weakening(info, weaker);
        all_violated = all_violated && outcome.violated;
        audit.weakenings.push_back(std::move(outcome));
      }
      audit.verdict = all_violated ? "load_bearing" : "over_strong";
      if (!all_violated) {
        report.ok = false;
        report.problems.push_back(
            std::string{"site "} + info.name +
            " survives a one-step weakening: shipped order is over-strong "
            "(downgrade it, or add the scenario that makes it load-bearing)");
      }
    }
    report.sites.push_back(std::move(audit));
  }

  return report;
}

std::string to_json(const AuditReport& report) {
  std::string out;
  out.reserve(16 * 1024);
  out += "{";
  json_kv(out, "bench", std::string_view{"mc_audit"});
  json_kv(out, "ok", report.ok);

  out += "\"checks\":[";
  for (std::size_t i = 0; i < report.checks.size(); ++i) {
    const CheckOutcome& c = report.checks[i];
    if (i != 0) out += ',';
    out += '{';
    json_kv(out, "name", c.name);
    json_kv(out, "ok", c.ok);
    json_kv(out, "executions", c.executions);
    json_kv(out, "failure", c.failure);
    json_kv(out, "trace", c.trace, /*comma=*/false);
    out += '}';
  }
  out += "],";

  out += "\"mutations\":[";
  for (std::size_t i = 0; i < report.mutation_results.size(); ++i) {
    const MutationOutcome& m = report.mutation_results[i];
    if (i != 0) out += ',';
    out += '{';
    json_kv(out, "name", m.name);
    json_kv(out, "description", m.description);
    json_kv(out, "caught", m.caught);
    json_kv(out, "executions", m.executions);
    json_kv(out, "failure", m.failure);
    json_kv(out, "trace", m.trace, /*comma=*/false);
    out += '}';
  }
  out += "],";

  out += "\"sites\":[";
  for (std::size_t i = 0; i < report.sites.size(); ++i) {
    const SiteAudit& s = report.sites[i];
    if (i != 0) out += ',';
    out += '{';
    json_kv(out, "site", s.site);
    json_kv(out, "kernel", s.kernel);
    json_kv(out, "op", s.op);
    json_kv(out, "order", s.order);
    json_kv(out, "verdict", s.verdict);
    out += "\"weakenings\":[";
    for (std::size_t j = 0; j < s.weakenings.size(); ++j) {
      const WeakeningOutcome& w = s.weakenings[j];
      if (j != 0) out += ',';
      out += '{';
      json_kv(out, "to", w.to);
      json_kv(out, "violated", w.violated);
      json_kv(out, "check", w.check);
      json_kv(out, "executions", w.executions);
      json_kv(out, "failure", w.failure);
      json_kv(out, "trace", w.trace, /*comma=*/false);
      out += '}';
    }
    out += "]}";
  }
  out += "],";

  out += "\"problems\":[";
  for (std::size_t i = 0; i < report.problems.size(); ++i) {
    if (i != 0) out += ',';
    json_str(out, report.problems[i]);
  }
  out += "]}";
  out += '\n';
  return out;
}

}  // namespace eum::mc
