#include "load/driver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

#include "lockfree/atomics_policy.h"
#include "lockfree/pending_table.h"

namespace eum::load {

namespace {

using Clock = std::chrono::steady_clock;

/// DNS message ids are 16 bits, so a flow can have at most 65536 queries
/// outstanding distinguishably; the pending table has one slot per id.
constexpr std::size_t kIdSpace = 65536;

// Slot lifecycle: empty -> armed (sender) -> done (receiver claim).
// Re-arming a still-armed slot means the id wrapped while its previous
// query was unanswered; the sender charges that query as dropped and
// takes the slot over. The protocol lives in lockfree::PendingSlot —
// sched and state packed in one word so a claim atomically captures the
// sched it retires (the old two-cell variant let a wrapping re-arm race
// the claimed sched read; the model checker exhibits that schedule, see
// mc/protocols.cpp pending_split_sched_state).
using PendingSlot = lockfree::PendingSlot<lockfree::StdAtomicsPolicy>;

struct Flow {
  explicit Flow(const dnsserver::UdpEndpoint& bind)
      : socket(bind), pending(std::make_unique<PendingSlot[]>(kIdSpace)) {}

  dnsserver::UdpSocket socket;
  std::unique_ptr<PendingSlot[]> pending;
  // Sender-side tallies (written by the sender thread only, read after join).
  std::uint64_t sent = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t overwrites = 0;  ///< id wrapped onto an unanswered query
  // Receiver-side tallies (written by the receiver thread only).
  std::uint64_t received = 0;
  std::uint64_t late = 0;
  std::uint64_t last_recv_ns = 0;
};

[[nodiscard]] std::uint64_t since_ns(Clock::time_point start) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count());
}

/// Sleep coarsely, then spin the final stretch: sleep_until overshoots
/// by the kernel timer slack (~50us), which at high offered rates would
/// turn every gap into lag. Past-due targets return immediately.
void wait_until_offset(Clock::time_point start, std::uint64_t offset_ns) {
  constexpr std::uint64_t kSpinWindowNs = 60'000;
  const auto target = start + std::chrono::nanoseconds{offset_ns};
  const auto coarse = target - std::chrono::nanoseconds{kSpinWindowNs};
  if (Clock::now() < coarse) std::this_thread::sleep_until(coarse);
  while (Clock::now() < target) {
    // spin — bounded by kSpinWindowNs
  }
}

}  // namespace

LoadReport run_open_loop(const TrafficModel& model, const std::vector<QuerySpec>& specs,
                         const OpenLoopSchedule& schedule, const DriverConfig& config) {
  if (specs.size() != schedule.size()) {
    throw std::invalid_argument{"run_open_loop: specs and schedule sizes differ"};
  }
  const std::size_t n = specs.size();
  const std::size_t flow_count = std::clamp<std::size_t>(config.flows, 1, 64);
  const auto timeout_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(config.timeout).count());

  // Pre-encode every query once (id patched per send), so the send loop
  // does no DNS encoding work that could distort the schedule.
  std::vector<std::vector<std::uint8_t>> wires;
  wires.reserve(n);
  for (const auto& spec : specs) wires.push_back(model.encode(spec, 0));

  std::vector<std::unique_ptr<Flow>> flows;
  flows.reserve(flow_count);
  for (std::size_t f = 0; f < flow_count; ++f) {
    flows.push_back(std::make_unique<Flow>(dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0}));
  }

  obs::LatencyHistogram latency{8};
  obs::LatencyHistogram send_lag{8};

  // Receivers run until the drain deadline, which the main thread sets
  // once the senders are done (UINT64_MAX = not yet known).
  std::atomic<std::uint64_t> drain_deadline_ns{~std::uint64_t{0}};
  // Responses matched so far across all flows; lets the drain finish as
  // soon as nothing is outstanding instead of sitting out the timeout.
  std::atomic<std::uint64_t> matched{0};

  // Small start lead so the first scheduled sends are not already late.
  const auto start = Clock::now() + std::chrono::milliseconds{5};

  std::vector<std::thread> receivers;
  receivers.reserve(flow_count);
  for (std::size_t f = 0; f < flow_count; ++f) {
    receivers.emplace_back([&, f] {
      Flow& flow = *flows[f];
      dnsserver::UdpBatch batch{32};
      for (;;) {
        const std::size_t got = flow.socket.receive_batch(batch, std::chrono::milliseconds{10});
        for (std::size_t i = 0; i < got; ++i) {
          const auto datagram = batch.datagram(i);
          if (datagram.size() < 2) continue;
          const std::uint16_t id =
              static_cast<std::uint16_t>((datagram[0] << 8) | datagram[1]);
          PendingSlot& slot = flow.pending[id];
          std::uint64_t sched = 0;
          if (!slot.claim(sched)) {
            continue;  // duplicate, stray, or already-expired claim
          }
          const std::uint64_t now = since_ns(start);
          flow.received += 1;
          matched.fetch_add(1, std::memory_order_relaxed);
          flow.last_recv_ns = std::max(flow.last_recv_ns, now);
          if (now > sched + timeout_ns) flow.late += 1;
          // The open-loop charge: from the *scheduled* send instant.
          latency.record((now - sched) / 1000);
        }
        if (since_ns(start) >= drain_deadline_ns.load(std::memory_order_acquire)) break;
      }
    });
  }

  std::vector<std::thread> senders;
  senders.reserve(flow_count);
  for (std::size_t f = 0; f < flow_count; ++f) {
    senders.emplace_back([&, f] {
      Flow& flow = *flows[f];
      std::uint32_t seq = 0;
      for (std::size_t i = f; i < n; i += flow_count) {
        const std::uint64_t sched = schedule.offset_ns(i);
        wait_until_offset(start, sched);
        const auto id = static_cast<std::uint16_t>(seq & 0xffff);
        seq += 1;
        PendingSlot& slot = flow.pending[id];
        if (slot.arm(sched)) {
          flow.overwrites += 1;  // previous occupant of this id: never answered
        }
        auto& wire = wires[i];
        wire[0] = static_cast<std::uint8_t>(id >> 8);
        wire[1] = static_cast<std::uint8_t>(id & 0xff);
        try {
          flow.socket.send_to(wire, config.server);
          flow.sent += 1;
        } catch (const std::exception&) {
          flow.send_errors += 1;  // slot stays armed -> swept as dropped
        }
        const std::uint64_t now = since_ns(start);
        if (now > sched) send_lag.record((now - sched) / 1000);
      }
    });
  }

  for (auto& t : senders) t.join();
  std::uint64_t answerable = 0;
  for (const auto& flow_ptr : flows) answerable += flow_ptr->sent;
  const auto drain_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(config.drain_slack).count());
  const std::uint64_t hard_deadline = since_ns(start) + timeout_ns + drain_ns;
  // Wait out the last deadline — but cut the drain short the moment
  // every sent query has been matched (minus id-reuse casualties, which
  // can never be matched; treat them as already settled).
  std::uint64_t settled = 0;
  for (const auto& flow_ptr : flows) settled += flow_ptr->overwrites;
  while (since_ns(start) < hard_deadline &&
         matched.load(std::memory_order_relaxed) + settled < answerable) {
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  drain_deadline_ns.store(since_ns(start), std::memory_order_release);
  for (auto& t : receivers) t.join();

  LoadReport report;
  report.offered = n;
  report.offered_qps = schedule.offered_qps();
  std::uint64_t last_recv_ns = 0;
  for (auto& flow_ptr : flows) {
    Flow& flow = *flow_ptr;
    report.sent += flow.sent;
    report.send_errors += flow.send_errors;
    report.received += flow.received;
    report.late += flow.late;
    report.dropped += flow.overwrites;
    last_recv_ns = std::max(last_recv_ns, flow.last_recv_ns);
    // End-of-run sweep: anything still armed was never answered.
    for (std::size_t id = 0; id < kIdSpace; ++id) {
      if (flow.pending[id].swept_unanswered()) report.dropped += 1;
    }
  }
  report.seconds = static_cast<double>(std::max(schedule.span_ns(), last_recv_ns)) / 1e9;
  report.latency_us = latency.snapshot();
  report.send_lag_us = send_lag.snapshot();
  return report;
}

ClosedLoopReport run_closed_loop(const TrafficModel& model,
                                 const std::vector<QuerySpec>& specs,
                                 const DriverConfig& config) {
  const std::size_t n = specs.size();
  const std::size_t flow_count = std::clamp<std::size_t>(config.flows, 1, 64);

  std::vector<std::vector<std::uint8_t>> wires;
  wires.reserve(n);
  for (const auto& spec : specs) wires.push_back(model.encode(spec, 0));

  obs::LatencyHistogram latency{8};
  struct Tally {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t timeouts = 0;
  };
  std::vector<Tally> tallies(flow_count);

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(flow_count);
  for (std::size_t f = 0; f < flow_count; ++f) {
    workers.emplace_back([&, f] {
      dnsserver::UdpSocket socket{dnsserver::UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0}};
      Tally& tally = tallies[f];
      std::uint32_t seq = 0;
      for (std::size_t i = f; i < n; i += flow_count) {
        const auto id = static_cast<std::uint16_t>(seq & 0xffff);
        seq += 1;
        auto& wire = wires[i];
        wire[0] = static_cast<std::uint8_t>(id >> 8);
        wire[1] = static_cast<std::uint8_t>(id & 0xff);
        const auto sent_at = Clock::now();
        try {
          socket.send_to(wire, config.server);
        } catch (const std::exception&) {
          tally.timeouts += 1;
          continue;
        }
        tally.sent += 1;
        const auto deadline = sent_at + config.timeout;
        bool answered = false;
        while (!answered) {
          const auto now = Clock::now();
          if (now >= deadline) break;
          const auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
          dnsserver::UdpEndpoint peer;
          const auto response =
              socket.receive(std::max(remaining, std::chrono::milliseconds{1}), peer);
          if (!response) break;
          if (response->size() < 2) continue;
          const std::uint16_t rid =
              static_cast<std::uint16_t>(((*response)[0] << 8) | (*response)[1]);
          if (rid != id) continue;  // stale response to an earlier timeout
          answered = true;
          // The naive charge: from the *actual* send instant, and
          // timeouts leave no sample at all — coordinated omission.
          latency.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - sent_at)
                  .count()));
        }
        if (answered) {
          tally.received += 1;
        } else {
          tally.timeouts += 1;
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  ClosedLoopReport report;
  for (const auto& tally : tallies) {
    report.sent += tally.sent;
    report.received += tally.received;
    report.timeouts += tally.timeouts;
  }
  report.seconds = static_cast<double>(since_ns(start)) / 1e9;
  report.latency_us = latency.snapshot();
  return report;
}

}  // namespace eum::load
