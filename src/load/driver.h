// Open-loop and closed-loop UDP load drivers.
//
// `run_open_loop` realizes an `OpenLoopSchedule` against a live UDP
// authority: decoupled sender/receiver thread pairs ("flows"), a
// lock-free id -> deadline pending table, and latency charged from each
// query's *scheduled* send time — so when the server stalls, the
// queries that should have been sent (and their queueing delay) are
// measured rather than silently omitted. `run_closed_loop` is the
// deliberately naive one-in-flight-per-flow measurement our historical
// benches used; running both at a matched rate quantifies the
// coordinated-omission error.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "dnsserver/udp.h"
#include "load/schedule.h"
#include "load/traffic.h"
#include "obs/metrics.h"

namespace eum::load {

struct DriverConfig {
  dnsserver::UdpEndpoint server;
  /// Sender/receiver thread pairs; queries are dealt round-robin across
  /// flows, each with its own socket and 65536-slot id table.
  std::size_t flows = 2;
  /// A query unanswered this long past its scheduled send is charged as
  /// a timeout/drop.
  std::chrono::milliseconds timeout{1000};
  /// Extra receive-drain slack after the last deadline.
  std::chrono::milliseconds drain_slack{50};
};

/// Outcome of one open-loop run.
struct LoadReport {
  std::uint64_t offered = 0;   ///< queries the schedule called for
  std::uint64_t sent = 0;      ///< datagrams actually handed to the kernel
  std::uint64_t received = 0;  ///< responses matched to a pending query
  std::uint64_t late = 0;      ///< responses that arrived past their deadline
  std::uint64_t dropped = 0;   ///< queries never answered (incl. send failures)
  std::uint64_t send_errors = 0;  ///< sendto refusals (counted into dropped)
  double offered_qps = 0.0;
  double seconds = 0.0;  ///< scheduled span or last response, whichever is later

  /// Latency charged from the *scheduled* send instant (microseconds).
  /// Late responses are still recorded — that is the whole point.
  obs::HistogramSnapshot latency_us;
  /// Actual-send minus scheduled-send (microseconds): sender lag. Large
  /// values mean the generator itself could not hold the offered rate.
  obs::HistogramSnapshot send_lag_us;

  [[nodiscard]] double achieved_qps() const noexcept {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(received) / seconds;
  }
  [[nodiscard]] double drop_rate() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped) / static_cast<double>(offered);
  }
};

/// Drive `specs[i]` at `schedule.offset_ns(i)` against `config.server`.
/// Requires specs.size() == schedule.size(); throws std::invalid_argument
/// otherwise. Blocks until every query is answered or past deadline.
[[nodiscard]] LoadReport run_open_loop(const TrafficModel& model,
                                       const std::vector<QuerySpec>& specs,
                                       const OpenLoopSchedule& schedule,
                                       const DriverConfig& config);

/// Outcome of one closed-loop (one-in-flight-per-flow) run.
struct ClosedLoopReport {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t timeouts = 0;
  double seconds = 0.0;
  /// Naive latency charged from the *actual* send instant — the
  /// coordinated-omission-blind measurement.
  obs::HistogramSnapshot latency_us;

  [[nodiscard]] double achieved_qps() const noexcept {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(received) / seconds;
  }
};

/// Send each query as soon as the previous one on the same flow is
/// answered (or times out): the classic closed-loop client. Exists as
/// the comparison arm for the coordinated-omission delta.
[[nodiscard]] ClosedLoopReport run_closed_loop(const TrafficModel& model,
                                               const std::vector<QuerySpec>& specs,
                                               const DriverConfig& config);

}  // namespace eum::load
