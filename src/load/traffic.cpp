#include "load/traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "dns/types.h"

namespace eum::load {

namespace {

/// Wider-than-block ECS announcements shave 4 bits off the block length
/// (a /24 becomes a /20), floored so the announcement stays meaningful.
[[nodiscard]] int wide_source_len(int block_len) noexcept {
  return std::max(8, block_len - 4);
}

}  // namespace

LdnsPopulation LdnsPopulation::from_world(const topo::World& world,
                                          const TrafficConfig& config) {
  if (world.blocks.empty() || world.ldnses.empty()) {
    throw std::invalid_argument{"LdnsPopulation: world has no blocks or no LDNSes"};
  }
  // Aggregate query volume per LDNS across the client->LDNS association:
  // a block contributes demand x use-fraction to each resolver it uses.
  std::unordered_map<topo::LdnsId, std::size_t> index;
  std::vector<LdnsSource> sources;
  for (const auto& block : world.blocks) {
    for (const auto& use : world.ldns_uses(block)) {
      auto [it, inserted] = index.try_emplace(use.ldns, sources.size());
      if (inserted) {
        const auto& ldns = world.ldnses.at(use.ldns);
        LdnsSource source;
        source.address = ldns.address;
        source.weight = 0.0;
        source.supports_ecs = ldns.supports_ecs;
        sources.push_back(std::move(source));
      }
      LdnsSource& source = sources[it->second];
      const double volume = block.demand * use.fraction;
      source.weight += volume;
      source.blocks.push_back(block.prefix);
      source.block_weights.push_back(volume);
    }
  }
  std::sort(sources.begin(), sources.end(),
            [](const LdnsSource& a, const LdnsSource& b) { return a.weight > b.weight; });
  if (config.max_ldnses > 0 && sources.size() > config.max_ldnses) {
    sources.resize(config.max_ldnses);
  }
  LdnsPopulation population;
  population.sources_ = std::move(sources);
  return population;
}

LdnsPopulation LdnsPopulation::synthetic(std::size_t ldns_count,
                                         std::size_t blocks_per_ldns,
                                         const TrafficConfig& config) {
  if (ldns_count == 0 || blocks_per_ldns == 0) {
    throw std::invalid_argument{"LdnsPopulation: synthetic population must be non-empty"};
  }
  LdnsPopulation population;
  population.sources_.reserve(ldns_count);
  for (std::size_t i = 0; i < ldns_count; ++i) {
    LdnsSource source;
    // Resolvers live in 10.64.0.0/16-ish space; client /24s in 11.0.0.0/8.
    source.address = net::IpV4Addr{static_cast<std::uint32_t>(0x0a400000U + i)};
    source.weight = 1.0 / std::pow(static_cast<double>(i + 1), config.ldns_zipf_s);
    source.supports_ecs = true;
    for (std::size_t j = 0; j < blocks_per_ldns; ++j) {
      const auto base =
          static_cast<std::uint32_t>(0x0b000000U + ((i * blocks_per_ldns + j) << 8));
      source.blocks.emplace_back(net::IpAddr{net::IpV4Addr{base}}, 24);
      source.block_weights.push_back(1.0 / static_cast<double>(j + 1));
    }
    population.sources_.push_back(std::move(source));
  }
  return population;
}

TrafficModel::TrafficModel(LdnsPopulation population, TrafficConfig config)
    : population_(std::move(population)),
      config_(std::move(config)),
      qname_zipf_(config_.qnames == 0 ? 1 : config_.qnames, config_.qname_zipf_s) {
  if (population_.size() == 0) {
    throw std::invalid_argument{"TrafficModel: empty LDNS population"};
  }
  if (config_.qnames == 0) {
    throw std::invalid_argument{"TrafficModel: need at least one qname"};
  }
  std::vector<double> weights;
  weights.reserve(population_.size());
  block_pickers_.reserve(population_.size());
  for (const auto& source : population_.sources()) {
    weights.push_back(source.weight);
    block_pickers_.emplace_back(source.block_weights);
  }
  ldns_picker_ = util::WeightedPicker{weights};
  qnames_.reserve(config_.qnames);
  for (std::size_t rank = 1; rank <= config_.qnames; ++rank) {
    std::string text = "q";
    text += std::to_string(rank);
    text += '.';
    text += config_.zone;
    qnames_.push_back(dns::DnsName::from_text(text));
  }
}

QuerySpec TrafficModel::draw(util::Rng& rng) const {
  QuerySpec spec;
  spec.ldns = static_cast<std::uint32_t>(ldns_picker_.pick(rng));
  spec.qname_rank = static_cast<std::uint32_t>(qname_zipf_.sample(rng));
  spec.edns = rng.chance(config_.edns_fraction);
  const LdnsSource& source = population_.sources()[spec.ldns];
  if (spec.edns && source.supports_ecs && !source.blocks.empty() &&
      rng.chance(config_.ecs_fraction)) {
    const auto& picker = block_pickers_[spec.ldns];
    const net::IpPrefix& block =
        source.blocks[picker.empty() ? 0 : picker.pick(rng)];
    int source_len = block.length();
    net::IpAddr addr = block.address();
    if (block.family() == net::Family::v4) {
      if (rng.chance(config_.ecs_host_fraction)) {
        // Announce a full host address inside the block.
        const auto span = std::uint64_t{1} << (32 - block.length());
        addr = net::IpV4Addr{static_cast<std::uint32_t>(block.address().v4().value() +
                                                        rng.below(span))};
        source_len = 32;
      } else if (rng.chance(config_.ecs_wide_fraction)) {
        source_len = wide_source_len(block.length());
      }
    }
    spec.ecs = dns::ClientSubnetOption::for_query(addr, source_len);
  }
  return spec;
}

std::vector<QuerySpec> TrafficModel::generate(std::size_t n) const {
  util::Rng rng{config_.seed};
  std::vector<QuerySpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) specs.push_back(draw(rng));
  return specs;
}

dns::Message TrafficModel::to_message(const QuerySpec& spec, std::uint16_t id) const {
  dns::Message msg =
      dns::Message::make_query(id, qname(spec.qname_rank), dns::RecordType::A, spec.ecs);
  if (spec.edns && !msg.edns) msg.edns = dns::EdnsRecord{};
  return msg;
}

std::vector<std::uint8_t> TrafficModel::encode(const QuerySpec& spec,
                                               std::uint16_t id) const {
  return to_message(spec, id).encode();
}

}  // namespace eum::load
