// Open-loop arrival schedules.
//
// An open-loop load generator decides *when* to send before it sees any
// response: query i has a fixed scheduled send offset, and its latency
// is charged from that scheduled instant. If the server stalls, queued
// queries accumulate scheduled-time debt that shows up in the tail —
// the coordinated-omission error a closed-loop client silently hides.
// `OpenLoopSchedule` precomputes the whole offset sequence (Poisson or
// uniformly paced) from a seed, so a run is exactly replayable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eum::load {

enum class Arrivals : std::uint8_t {
  poisson,  ///< exponential inter-arrival gaps with mean 1/qps
  paced,    ///< uniform gaps of exactly 1/qps
};

class OpenLoopSchedule {
 public:
  /// Precompute `count` monotone send offsets (nanoseconds from run
  /// start) at the given offered rate. The seed only matters for
  /// `Arrivals::poisson`. Throws std::invalid_argument on qps <= 0.
  [[nodiscard]] static OpenLoopSchedule make(Arrivals arrivals, double offered_qps,
                                             std::size_t count, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return offsets_ns_.size(); }
  [[nodiscard]] std::uint64_t offset_ns(std::size_t i) const { return offsets_ns_.at(i); }
  [[nodiscard]] std::span<const std::uint64_t> offsets_ns() const noexcept {
    return offsets_ns_;
  }
  [[nodiscard]] double offered_qps() const noexcept { return offered_qps_; }
  [[nodiscard]] Arrivals arrivals() const noexcept { return arrivals_; }
  /// Scheduled span of the run: the last offset (0 when empty).
  [[nodiscard]] std::uint64_t span_ns() const noexcept {
    return offsets_ns_.empty() ? 0 : offsets_ns_.back();
  }

 private:
  std::vector<std::uint64_t> offsets_ns_;
  double offered_qps_ = 0.0;
  Arrivals arrivals_ = Arrivals::poisson;
};

}  // namespace eum::load
