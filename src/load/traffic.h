// Deterministic DNS traffic model for load generation.
//
// The paper's authorities see queries from a *population*: 584K LDNSes
// with wildly skewed query shares (§3.1), each announcing its own
// clients' prefixes via ECS, over a Zipf-ish hostname popularity law
// (§5.3). The public-resolver measurement studies in PAPERS.md
// (Al-Dalky & Rabinovich; public-resolvers-meet-CDNs) show the same
// shape: a handful of resolver sites carry most volume and the ECS
// prefix mix is diverse, not uniform. A `TrafficModel` compiles that
// shape — a heavy-tailed `LdnsPopulation` (drawn from a `topo::World`
// or synthesized), Zipf qname popularity, per-LDNS ECS prefix/scope
// diversity, and a configurable EDNS/no-EDNS mix — into a reproducible
// query stream: the same seed yields the same sequence of qnames, ECS
// options, and source resolvers, so load-generation runs are exactly
// replayable and regressions bisectable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "net/ip.h"
#include "net/prefix.h"
#include "topo/world.h"
#include "util/rng.h"

namespace eum::load {

struct TrafficConfig {
  std::uint64_t seed = 1;
  /// Zone the generated qnames live under (q1.<zone> is the hottest).
  std::string zone = "g.cdn.example";
  /// Distinct qnames; popularity is Zipf(qname_zipf_s) over ranks.
  std::size_t qnames = 64;
  double qname_zipf_s = 1.0;
  /// Synthetic-population LDNS share law (rank r gets 1/r^s volume).
  double ldns_zipf_s = 1.1;
  /// Population cap when drawing from a World (top resolvers by demand).
  std::size_t max_ldnses = 4096;
  /// Fraction of queries carrying an EDNS OPT record at all.
  double edns_fraction = 0.9;
  /// Of EDNS queries from an ECS-capable resolver, the fraction that
  /// announce a client subnet.
  double ecs_fraction = 0.8;
  /// ECS source-length diversity: most announcements use the block's own
  /// prefix length (/24 for v4); these two knobs divert a share to a
  /// full host address and to a wider-than-block prefix respectively.
  double ecs_host_fraction = 0.10;
  double ecs_wide_fraction = 0.10;
};

/// One simulated recursive resolver and the client blocks behind it.
struct LdnsSource {
  net::IpAddr address;
  double weight = 1.0;  ///< share of total query volume
  bool supports_ecs = true;
  std::vector<net::IpPrefix> blocks;  ///< client prefixes it resolves for
  std::vector<double> block_weights;  ///< demand weight per block
};

/// The resolver population a TrafficModel draws sources from.
class LdnsPopulation {
 public:
  /// Build from a generated World: one source per LDNS (top
  /// `config.max_ldnses` by aggregated client demand), each carrying the
  /// client blocks that use it, weighted by demand x use fraction.
  [[nodiscard]] static LdnsPopulation from_world(const topo::World& world,
                                                 const TrafficConfig& config);

  /// Synthetic population for tests and world-free benches: `ldns_count`
  /// sources with Zipf(config.ldns_zipf_s) volume shares, each fronting
  /// `blocks_per_ldns` distinct /24s.
  [[nodiscard]] static LdnsPopulation synthetic(std::size_t ldns_count,
                                                std::size_t blocks_per_ldns,
                                                const TrafficConfig& config);

  [[nodiscard]] const std::vector<LdnsSource>& sources() const noexcept { return sources_; }
  [[nodiscard]] std::size_t size() const noexcept { return sources_.size(); }

 private:
  std::vector<LdnsSource> sources_;
};

/// One generated query, in drawn (pre-wire) form.
struct QuerySpec {
  std::uint32_t ldns = 0;        ///< index into the population
  std::uint32_t qname_rank = 1;  ///< 1 = hottest
  bool edns = false;
  std::optional<dns::ClientSubnetOption> ecs;
};

/// Seeded query-stream generator over a population.
class TrafficModel {
 public:
  TrafficModel(LdnsPopulation population, TrafficConfig config);

  /// Draw one query using the caller's generator state.
  [[nodiscard]] QuerySpec draw(util::Rng& rng) const;

  /// Draw `n` queries from a fresh generator seeded with config.seed —
  /// the reproducible stream the load driver consumes.
  [[nodiscard]] std::vector<QuerySpec> generate(std::size_t n) const;

  /// Render a spec as a DNS query message / wire bytes with the given id.
  [[nodiscard]] dns::Message to_message(const QuerySpec& spec, std::uint16_t id) const;
  [[nodiscard]] std::vector<std::uint8_t> encode(const QuerySpec& spec,
                                                 std::uint16_t id) const;

  [[nodiscard]] const LdnsPopulation& population() const noexcept { return population_; }
  [[nodiscard]] const TrafficConfig& config() const noexcept { return config_; }
  /// The qname for a popularity rank in [1, config.qnames].
  [[nodiscard]] const dns::DnsName& qname(std::uint32_t rank) const {
    return qnames_.at(rank - 1);
  }

 private:
  LdnsPopulation population_;
  TrafficConfig config_;
  util::WeightedPicker ldns_picker_;
  std::vector<util::WeightedPicker> block_pickers_;  ///< one per source
  util::ZipfSampler qname_zipf_;
  std::vector<dns::DnsName> qnames_;  ///< rank-1 first
};

}  // namespace eum::load
