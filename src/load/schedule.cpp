#include "load/schedule.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace eum::load {

OpenLoopSchedule OpenLoopSchedule::make(Arrivals arrivals, double offered_qps,
                                        std::size_t count, std::uint64_t seed) {
  if (!(offered_qps > 0.0) || !std::isfinite(offered_qps)) {
    throw std::invalid_argument{"OpenLoopSchedule: offered_qps must be positive and finite"};
  }
  OpenLoopSchedule schedule;
  schedule.offered_qps_ = offered_qps;
  schedule.arrivals_ = arrivals;
  schedule.offsets_ns_.reserve(count);
  if (arrivals == Arrivals::poisson) {
    util::PoissonArrivals process{offered_qps, seed};
    for (std::size_t i = 0; i < count; ++i) {
      schedule.offsets_ns_.push_back(process.next_ns());
    }
  } else {
    const double gap_ns = 1e9 / offered_qps;
    for (std::size_t i = 0; i < count; ++i) {
      schedule.offsets_ns_.push_back(
          static_cast<std::uint64_t>(gap_ns * static_cast<double>(i + 1)));
    }
  }
  return schedule;
}

}  // namespace eum::load
