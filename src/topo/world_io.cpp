#include "topo/world_io.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace eum::topo {

namespace {

constexpr const char* kMagic = "eum-world";
constexpr int kVersion = 1;

// Doubles are written in hexfloat so reload is bit-exact.
void put_double(std::ostream& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  out << buffer;
}

double get_double(std::istringstream& in, const char* what) {
  std::string token;
  if (!(in >> token)) throw WorldIoError{std::string{"missing field: "} + what};
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    throw WorldIoError{std::string{"bad numeric field: "} + what};
  }
  return value;
}

template <typename T>
T get_int(std::istringstream& in, const char* what) {
  long long value = 0;
  if (!(in >> value)) throw WorldIoError{std::string{"missing field: "} + what};
  return static_cast<T>(value);
}

std::string get_token(std::istringstream& in, const char* what) {
  std::string token;
  if (!(in >> token)) throw WorldIoError{std::string{"missing field: "} + what};
  return token;
}

std::istringstream expect_line(std::istream& in, const char* what) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') return std::istringstream{line};
  }
  throw WorldIoError{std::string{"unexpected end of file, wanted "} + what};
}

}  // namespace

void save_world(const World& world, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";

  out << "countries " << world.countries.size() << "\n";
  for (const CountrySpec& c : world.countries) {
    out << c.code << " ";
    put_double(out, c.center.lat_deg);
    out << " ";
    put_double(out, c.center.lon_deg);
    for (const double value : {c.radius_miles, c.demand_share, c.isp_centralization,
                               c.public_adoption, c.enterprise_share, c.anycast_detour,
                               c.isp_offshore, c.deployment_weight}) {
      out << " ";
      put_double(out, value);
    }
    out << "\n";
  }

  out << "cities " << world.cities.size() << "\n";
  for (const City& c : world.cities) {
    out << c.id << " " << c.country << " ";
    put_double(out, c.location.lat_deg);
    out << " ";
    put_double(out, c.location.lon_deg);
    out << " ";
    put_double(out, c.population_weight);
    out << " " << (c.is_hub ? 1 : 0) << "\n";
  }

  out << "ases " << world.ases.size() << "\n";
  for (const AutonomousSystem& as : world.ases) {
    out << as.asn << " " << as.country << " ";
    put_double(out, as.demand_share);
    out << " " << static_cast<int>(as.strategy) << " " << as.announced_cidrs.size();
    for (const net::IpPrefix& cidr : as.announced_cidrs) out << " " << cidr.to_string();
    out << "\n";
  }

  out << "ldnses " << world.ldnses.size() << "\n";
  for (const Ldns& ldns : world.ldnses) {
    out << ldns.id << " " << ldns.address.to_string() << " ";
    put_double(out, ldns.location.lat_deg);
    out << " ";
    put_double(out, ldns.location.lon_deg);
    out << " " << ldns.country << " " << static_cast<int>(ldns.type) << " "
        << (ldns.supports_ecs ? 1 : 0) << " " << ldns.ping_target << "\n";
  }

  out << "blocks " << world.blocks.size() << "\n";
  for (const ClientBlock& block : world.blocks) {
    out << block.id << " " << block.prefix.to_string() << " ";
    put_double(out, block.location.lat_deg);
    out << " ";
    put_double(out, block.location.lon_deg);
    out << " " << block.country << " " << block.as_index << " " << block.city << " ";
    put_double(out, block.demand);
    const std::span<const LdnsUse> uses = world.ldns_uses(block);
    out << " " << block.ping_target << " " << uses.size();
    for (const LdnsUse& use : uses) {
      out << " " << use.ldns << " ";
      put_double(out, use.fraction);
    }
    out << "\n";
  }

  out << "ping_targets " << world.ping_targets.size() << "\n";
  for (const PingTarget& target : world.ping_targets) {
    out << target.id << " ";
    put_double(out, target.location.lat_deg);
    out << " ";
    put_double(out, target.location.lon_deg);
    out << " " << target.country << "\n";
  }

  out << "deployments " << world.deployment_universe.size() << "\n";
  for (const DeploymentSite& site : world.deployment_universe) {
    out << site.id << " ";
    put_double(out, site.location.lat_deg);
    out << " ";
    put_double(out, site.location.lon_deg);
    out << " " << site.country << " " << site.city << "\n";
  }

  if (!out) throw WorldIoError{"stream failure while writing world"};
}

World load_world(std::istream& in) {
  World world;
  {
    auto header = expect_line(in, "header");
    const std::string magic = get_token(header, "magic");
    const int version = get_int<int>(header, "version");
    if (magic != kMagic) throw WorldIoError{"not an eum world file"};
    if (version != kVersion) {
      throw WorldIoError{"unsupported world file version " + std::to_string(version)};
    }
  }

  const auto read_section = [&](const char* name) {
    auto line = expect_line(in, name);
    const std::string token = get_token(line, name);
    if (token != name) {
      throw WorldIoError{std::string{"expected section '"} + name + "', found '" + token + "'"};
    }
    return get_int<std::size_t>(line, "section size");
  };

  const std::size_t n_countries = read_section("countries");
  world.countries.reserve(n_countries);
  for (std::size_t i = 0; i < n_countries; ++i) {
    auto line = expect_line(in, "country");
    CountrySpec spec;
    spec.code = get_token(line, "code");
    spec.center.lat_deg = get_double(line, "lat");
    spec.center.lon_deg = get_double(line, "lon");
    spec.radius_miles = get_double(line, "radius");
    spec.demand_share = get_double(line, "demand");
    spec.isp_centralization = get_double(line, "centralization");
    spec.public_adoption = get_double(line, "adoption");
    spec.enterprise_share = get_double(line, "enterprise");
    spec.anycast_detour = get_double(line, "detour");
    spec.isp_offshore = get_double(line, "offshore");
    spec.deployment_weight = get_double(line, "deploy_weight");
    world.countries.push_back(std::move(spec));
  }

  const std::size_t n_cities = read_section("cities");
  world.cities.reserve(n_cities);
  for (std::size_t i = 0; i < n_cities; ++i) {
    auto line = expect_line(in, "city");
    City city;
    city.id = get_int<CityId>(line, "id");
    city.country = get_int<CountryId>(line, "country");
    city.location.lat_deg = get_double(line, "lat");
    city.location.lon_deg = get_double(line, "lon");
    city.population_weight = get_double(line, "weight");
    city.is_hub = get_int<int>(line, "hub") != 0;
    world.cities.push_back(city);
  }

  const std::size_t n_ases = read_section("ases");
  world.ases.reserve(n_ases);
  for (std::size_t i = 0; i < n_ases; ++i) {
    auto line = expect_line(in, "as");
    AutonomousSystem as;
    as.asn = get_int<AsId>(line, "asn");
    as.country = get_int<CountryId>(line, "country");
    as.demand_share = get_double(line, "demand");
    as.strategy = static_cast<DnsStrategy>(get_int<int>(line, "strategy"));
    const auto n_cidrs = get_int<std::size_t>(line, "cidr count");
    for (std::size_t c = 0; c < n_cidrs; ++c) {
      const auto cidr = net::IpPrefix::parse(get_token(line, "cidr"));
      if (!cidr) throw WorldIoError{"bad CIDR in AS record"};
      as.announced_cidrs.push_back(*cidr);
      world.bgp.add(*cidr);
    }
    world.ases.push_back(std::move(as));
  }

  const std::size_t n_ldns = read_section("ldnses");
  world.ldnses.reserve(n_ldns);
  for (std::size_t i = 0; i < n_ldns; ++i) {
    auto line = expect_line(in, "ldns");
    Ldns ldns;
    ldns.id = get_int<LdnsId>(line, "id");
    const auto address = net::IpAddr::parse(get_token(line, "address"));
    if (!address) throw WorldIoError{"bad LDNS address"};
    ldns.address = *address;
    ldns.location.lat_deg = get_double(line, "lat");
    ldns.location.lon_deg = get_double(line, "lon");
    ldns.country = get_int<CountryId>(line, "country");
    ldns.type = static_cast<LdnsType>(get_int<int>(line, "type"));
    ldns.supports_ecs = get_int<int>(line, "ecs") != 0;
    ldns.ping_target = get_int<PingTargetId>(line, "target");
    world.ldnses.push_back(ldns);
  }

  const std::size_t n_blocks = read_section("blocks");
  world.blocks.reserve(n_blocks);
  world.reserve_ldns_uses(n_blocks, n_blocks + n_blocks / 4);
  std::vector<LdnsUse> uses;
  for (std::size_t i = 0; i < n_blocks; ++i) {
    auto line = expect_line(in, "block");
    ClientBlock block;
    block.id = get_int<BlockId>(line, "id");
    const auto prefix = net::IpPrefix::parse(get_token(line, "prefix"));
    if (!prefix) throw WorldIoError{"bad block prefix"};
    block.prefix = *prefix;
    block.location.lat_deg = get_double(line, "lat");
    block.location.lon_deg = get_double(line, "lon");
    block.country = get_int<CountryId>(line, "country");
    block.as_index = get_int<AsId>(line, "as");
    block.city = get_int<CityId>(line, "city");
    block.demand = get_double(line, "demand");
    block.ping_target = get_int<PingTargetId>(line, "target");
    const auto n_uses = get_int<std::size_t>(line, "use count");
    uses.clear();
    for (std::size_t u = 0; u < n_uses; ++u) {
      LdnsUse use;
      use.ldns = get_int<LdnsId>(line, "use ldns");
      use.fraction = get_double(line, "use fraction");
      uses.push_back(use);
    }
    if (block.id != static_cast<BlockId>(i)) {
      throw WorldIoError{"block ids must be dense and in order"};
    }
    world.assign_ldns_uses(block.id, uses);
    world.blocks.push_back(block);
  }

  const std::size_t n_targets = read_section("ping_targets");
  world.ping_targets.reserve(n_targets);
  for (std::size_t i = 0; i < n_targets; ++i) {
    auto line = expect_line(in, "ping_target");
    PingTarget target;
    target.id = get_int<PingTargetId>(line, "id");
    target.location.lat_deg = get_double(line, "lat");
    target.location.lon_deg = get_double(line, "lon");
    target.country = get_int<CountryId>(line, "country");
    world.ping_targets.push_back(target);
  }

  const std::size_t n_sites = read_section("deployments");
  world.deployment_universe.reserve(n_sites);
  for (std::size_t i = 0; i < n_sites; ++i) {
    auto line = expect_line(in, "deployment");
    DeploymentSite site;
    site.id = get_int<std::uint32_t>(line, "id");
    site.location.lat_deg = get_double(line, "lat");
    site.location.lon_deg = get_double(line, "lon");
    site.country = get_int<CountryId>(line, "country");
    site.city = get_int<CityId>(line, "city");
    world.deployment_universe.push_back(site);
  }

  // Validate cross-references before rebuilding derived structures.
  for (const ClientBlock& block : world.blocks) {
    if (block.as_index >= world.ases.size() || block.city >= world.cities.size() ||
        block.country >= world.countries.size() ||
        block.ping_target >= world.ping_targets.size()) {
      throw WorldIoError{"block references out-of-range entity"};
    }
    for (const LdnsUse& use : world.ldns_uses(block)) {
      if (use.ldns >= world.ldnses.size()) throw WorldIoError{"block references unknown LDNS"};
    }
  }
  for (const Ldns& ldns : world.ldnses) {
    if (ldns.ping_target >= world.ping_targets.size()) {
      throw WorldIoError{"LDNS references unknown ping target"};
    }
  }

  // Rebuild the geo database and indexes.
  for (const ClientBlock& block : world.blocks) {
    world.geodb.add(block.prefix,
                    geo::GeoInfo{block.location, block.country, world.ases[block.as_index].asn});
  }
  for (const Ldns& ldns : world.ldnses) {
    world.geodb.add(net::IpPrefix{ldns.address, ldns.address.bit_width()},
                    geo::GeoInfo{ldns.location, ldns.country, 0});
  }
  world.build_indexes();
  return world;
}

void save_world_file(const World& world, const std::string& path) {
  std::ofstream out{path};
  if (!out) throw WorldIoError{"cannot open for writing: " + path};
  save_world(world, out);
}

World load_world_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw WorldIoError{"cannot open for reading: " + path};
  return load_world(in);
}

}  // namespace eum::topo
