#include "topo/latency.h"

#include <cmath>

#include "util/hash.h"

namespace eum::topo {

double LatencyModel::expected_rtt_ms(const geo::GeoPoint& a, const geo::GeoPoint& b,
                                     std::uint64_t pair_salt) const noexcept {
  const double miles = geo::great_circle_miles(a, b);
  double rtt = params_.base_ms +
               miles * params_.path_stretch / params_.miles_per_rtt_ms;
  if (miles > params_.transoceanic_threshold_miles) rtt += params_.transoceanic_penalty_ms;

  // Stable per-pair quality: lognormal multiplier derived from the pair
  // identity (not from the running RNG), so scoring sees consistent paths.
  const std::uint64_t mixed = util::mix64(pair_salt ^ seed_);
  // Two U(0,1) from the mixed bits -> one standard normal (Box-Muller).
  const double u1 =
      (static_cast<double>(mixed >> 11) + 1.0) * 0x1.0p-53;  // (0,1]
  const double u2 = static_cast<double>(util::mix64(mixed + 0x9e3779b97f4a7c15ULL) >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(6.283185307179586 * u2);
  rtt *= std::exp(params_.pair_quality_sigma * z);
  return rtt;
}

double LatencyModel::expected_loss_rate(const geo::GeoPoint& a, const geo::GeoPoint& b,
                                        std::uint64_t pair_salt) const noexcept {
  const double miles = geo::great_circle_miles(a, b);
  double loss = params_.base_loss_rate;
  if (miles > params_.transoceanic_threshold_miles) loss += params_.transoceanic_loss_rate;
  // Reuse the pair-quality draw (squared: bad paths are bad in both
  // latency and loss, and loss varies more widely).
  const std::uint64_t mixed = util::mix64(pair_salt ^ seed_ ^ 0x105eULL);
  const double u1 = (static_cast<double>(mixed >> 11) + 1.0) * 0x1.0p-53;
  const double u2 =
      static_cast<double>(util::mix64(mixed + 0x9e3779b97f4a7c15ULL) >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  loss *= std::exp(2.0 * params_.pair_quality_sigma * z);
  return std::min(loss, 0.5);
}

double LatencyModel::measure_rtt_ms(const geo::GeoPoint& a, const geo::GeoPoint& b,
                                    std::uint64_t pair_salt, util::Rng& rng) const noexcept {
  return expected_rtt_ms(a, b, pair_salt) + rng.exponential(params_.congestion_mean_ms);
}

}  // namespace eum::topo
