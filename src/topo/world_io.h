// World serialization.
//
// A generated world can be saved to a versioned, line-oriented text
// format and reloaded exactly (derived structures — geo database, BGP
// table, lookup indexes — are rebuilt on load). This pins an experiment
// world independent of generator evolution, the role the frozen
// NetSession snapshot played for the paper's analyses.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "topo/world.h"

namespace eum::topo {

class WorldIoError : public std::runtime_error {
 public:
  explicit WorldIoError(const std::string& what) : std::runtime_error(what) {}
};

/// Write `world` to `out`. Throws WorldIoError on stream failure.
void save_world(const World& world, std::ostream& out);

/// Read a world written by save_world. Throws WorldIoError on malformed
/// input, version mismatch, or stream failure.
[[nodiscard]] World load_world(std::istream& in);

/// Convenience file wrappers.
void save_world_file(const World& world, const std::string& path);
[[nodiscard]] World load_world_file(const std::string& path);

}  // namespace eum::topo
