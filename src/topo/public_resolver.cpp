#include "topo/public_resolver.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/hash.h"

namespace eum::topo {

std::vector<PublicProviderSpec> default_public_providers() {
  std::vector<PublicProviderSpec> providers(2);

  providers[0].name = "pub-a";  // large fleet, Google-Public-DNS-like
  providers[0].market_share = 0.72;
  providers[0].supports_ecs = true;
  providers[0].sites = {
      {"US", {38.95, -77.45}},   // US East
      {"US", {41.26, -95.86}},   // US Central
      {"US", {37.42, -122.08}},  // US West
      {"DE", {50.11, 8.68}},     // Frankfurt
      {"GB", {53.35, -6.26}},    // Dublin (attributed GB/IE region)
      {"NL", {60.57, 27.19}},    // Hamina (Nordic site; reached from RU/FI)
      {"SG", {1.35, 103.82}},    // Singapore
      {"TW", {25.04, 121.56}},   // Taiwan
      {"JP", {35.68, 139.69}},   // Tokyo
      {"AU", {-33.87, 151.21}},  // Sydney
  };

  providers[1].name = "pub-b";  // smaller fleet, OpenDNS-like
  providers[1].market_share = 0.28;
  providers[1].supports_ecs = true;
  providers[1].sites = {
      {"US", {37.44, -122.14}},  // Palo Alto
      {"US", {40.71, -74.00}},   // New York
      {"US", {41.88, -87.63}},   // Chicago
      {"GB", {51.50, -0.12}},    // London
      {"NL", {52.37, 4.90}},     // Amsterdam
      {"SG", {1.35, 103.82}},    // Singapore
      {"HK", {22.30, 114.20}},   // Hong Kong
  };
  return providers;
}

std::size_t anycast_select(const std::vector<PublicSiteSpec>& sites,
                           const geo::GeoPoint& client_location, const LatencyModel& latency,
                           double detour_prob, util::Rng& rng) {
  if (sites.empty()) throw std::invalid_argument{"anycast_select: provider has no sites"};
  std::vector<std::size_t> order(sites.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto salt = [&](std::size_t i) {
      return util::hash_combine(util::mix64(static_cast<std::uint64_t>(i) + 0x5174e5ULL),
                                static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(client_location.lat_deg * 1e4)));
    };
    return latency.expected_rtt_ms(client_location, sites[a].location, salt(a)) <
           latency.expected_rtt_ms(client_location, sites[b].location, salt(b));
  });
  if (sites.size() > 1 && rng.chance(detour_prob)) {
    // Mis-routed: land on a non-optimal site (rank 1..3) — usually the
    // next regional site over, occasionally another continent.
    const std::size_t hi = std::min<std::size_t>(sites.size() - 1, 3);
    const auto rank = static_cast<std::size_t>(rng.between(1, static_cast<std::int64_t>(hi)));
    return order[rank];
  }
  return order[0];
}

}  // namespace eum::topo
