// The synthetic Internet: the substitute for the paper's NetSession
// client-LDNS dataset (§3.1), Edgescape geolocation and BGP feeds.
//
// A `World` holds countries, cities, autonomous systems, /24 client
// blocks with demand weights, the LDNS population (ISP, public-resolver
// and enterprise name servers) and the client->LDNS association — every
// input the paper's analyses consume. Worlds are produced by `WorldGen`
// (world_gen.h) from a seed and are fully deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/coords.h"
#include "geo/geodb.h"
#include "net/cidr_aggregation.h"
#include "net/prefix.h"

namespace eum::topo {

using CountryId = std::uint16_t;
using CityId = std::uint32_t;
using AsId = std::uint32_t;
using LdnsId = std::uint32_t;
using BlockId = std::uint32_t;
using PingTargetId = std::uint32_t;

/// Static per-country modelling parameters (see country_data.cpp for the
/// calibrated table and the paper figures each knob is tuned against).
struct CountrySpec {
  std::string code;               ///< ISO-3166 alpha-2
  geo::GeoPoint center;           ///< population-weighted centroid
  double radius_miles = 300;      ///< geographic spread of the population
  double demand_share = 0.01;     ///< fraction of global client demand
  /// Probability that an ISP hosts its resolvers at a national hub city
  /// rather than near its clients (drives Fig 6 per-country medians).
  double isp_centralization = 0.3;
  /// Fraction of client demand using public resolvers (Fig 9 target).
  double public_adoption = 0.06;
  /// Fraction using a centralized corporate LDNS abroad (JP tail, §3.2).
  double enterprise_share = 0.02;
  /// Probability that anycast routes a public-resolver client away from
  /// its nearest site ("peering arrangements", §3.2).
  double anycast_detour = 0.10;
  /// Probability that a centralized ISP's resolvers actually sit at a
  /// foreign interconnection hub (DNS "outsourced" abroad or regional
  /// infrastructure, common in the paper's high-distance countries).
  double isp_offshore = 0.03;
  /// Relative weight for CDN deployment placement (§6 universe).
  double deployment_weight = 1.0;
};

struct City {
  CityId id = 0;
  CountryId country = 0;
  geo::GeoPoint location;
  double population_weight = 1.0;  ///< within-country demand share
  bool is_hub = false;             ///< national interconnection hub
};

/// How an AS provides DNS to its clients (paper §3.2 "Breakdown by AS").
enum class DnsStrategy : std::uint8_t {
  isp_local,        ///< resolvers deployed near clients, per city
  isp_centralized,  ///< resolvers at a hub city only
  outsourced,       ///< no own resolvers; clients use a public resolver
  enterprise,       ///< corporate network with a centralized LDNS abroad
};

struct AutonomousSystem {
  AsId asn = 0;
  CountryId country = 0;
  double demand_share = 0.0;  ///< fraction of global demand
  DnsStrategy strategy = DnsStrategy::isp_local;
  /// BGP-announced CIDRs covering this AS's client blocks.
  std::vector<net::IpPrefix> announced_cidrs;
};

enum class LdnsType : std::uint8_t {
  isp,         ///< ISP resolver (local or centralized)
  public_site, ///< a public-resolver anycast site (unicast address known)
  enterprise,  ///< corporate centralized resolver
};

struct Ldns {
  LdnsId id = 0;
  net::IpAddr address;
  geo::GeoPoint location;
  CountryId country = 0;
  LdnsType type = LdnsType::isp;
  /// ECS support: public resolvers supported the extension during the
  /// paper's roll-out; ISP resolvers generally did not (§4.5).
  bool supports_ecs = false;
  PingTargetId ping_target = 0;
};

/// Client->LDNS association entry: one LDNS used by a block, with the
/// relative frequency with which it appears (§3.1).
struct LdnsUse {
  LdnsId ldns = 0;
  double fraction = 1.0;

  friend bool operator==(const LdnsUse&, const LdnsUse&) = default;
};

/// A /24 client block. The client->LDNS association lives in the World's
/// flattened SoA arrays (World::ldns_uses), not here: at paper scale
/// (millions of blocks) a per-block heap vector costs a 24-byte header
/// plus one allocation per block and scatters the association across the
/// heap; two contiguous arrays keep a 4M-block world cache- and
/// memory-friendly.
struct ClientBlock {
  BlockId id = 0;
  net::IpPrefix prefix;  ///< the /24
  geo::GeoPoint location;
  CountryId country = 0;
  AsId as_index = 0;  ///< index into World::ases
  CityId city = 0;
  double demand = 0.0;  ///< client demand weight (traffic units)
  PingTargetId ping_target = 0;
};

/// A latency-measurement proxy point: "we choose around 20K /24 IP blocks
/// ... and further cluster them into 8K ping targets" (§6).
struct PingTarget {
  PingTargetId id = 0;
  geo::GeoPoint location;
  CountryId country = 0;
};

/// A candidate CDN deployment location (§6's universe U).
struct DeploymentSite {
  std::uint32_t id = 0;
  geo::GeoPoint location;
  CountryId country = 0;
  CityId city = 0;
};

class World {
 public:
  std::vector<CountrySpec> countries;
  std::vector<City> cities;
  std::vector<AutonomousSystem> ases;
  std::vector<ClientBlock> blocks;
  std::vector<Ldns> ldnses;
  std::vector<PingTarget> ping_targets;
  std::vector<DeploymentSite> deployment_universe;
  geo::GeoDatabase geodb;  ///< blocks + LDNS addresses registered
  net::CidrTable bgp;      ///< all announced CIDRs

  /// Total demand over all blocks.
  [[nodiscard]] double total_demand() const;

  /// Demand-weighted expected LDNS of a block (highest-fraction entry).
  [[nodiscard]] const Ldns& primary_ldns(const ClientBlock& block) const;

  /// Demand served through public resolvers, per the client->LDNS map.
  [[nodiscard]] double public_resolver_demand() const;

  // --- client->LDNS association (flattened SoA; see ClientBlock) -------

  /// The LDNS associations of a block (empty when none were assigned).
  [[nodiscard]] std::span<const LdnsUse> ldns_uses(BlockId block) const noexcept {
    if (static_cast<std::size_t>(block) + 1 >= ldns_use_offsets_.size()) return {};
    return {ldns_use_data_.data() + ldns_use_offsets_[block],
            ldns_use_offsets_[static_cast<std::size_t>(block) + 1] - ldns_use_offsets_[block]};
  }
  [[nodiscard]] std::span<const LdnsUse> ldns_uses(const ClientBlock& block) const noexcept {
    return ldns_uses(block.id);
  }

  /// Assign a block's LDNS associations. Writers (the generator, the
  /// world loader, hand-built test worlds) must assign in increasing
  /// block-id order; skipped ids keep an empty association. Throws
  /// std::logic_error on out-of-order assignment.
  void assign_ldns_uses(BlockId block, std::span<const LdnsUse> uses);

  /// Pre-size the association arrays (streamed generation at 1M+ blocks).
  void reserve_ldns_uses(std::size_t block_count, std::size_t use_count);

  /// Total association entries across all blocks.
  [[nodiscard]] std::size_t ldns_use_count() const noexcept { return ldns_use_data_.size(); }

  /// Look up a block by /24 prefix (nullptr when absent).
  [[nodiscard]] const ClientBlock* block_by_prefix(const net::IpPrefix& prefix) const;

  /// Look up an LDNS by its unicast address (nullptr when absent).
  [[nodiscard]] const Ldns* ldns_by_address(const net::IpAddr& addr) const;

  /// Index caches; called once by the generator.
  void build_indexes();

 private:
  // Association SoA: entry i of block b lives at
  // ldns_use_data_[ldns_use_offsets_[b] + i]. offsets has one trailing
  // sentinel, so a block's span is [offsets[b], offsets[b+1]).
  std::vector<std::uint32_t> ldns_use_offsets_{0};
  std::vector<LdnsUse> ldns_use_data_;

  // Blocks are looked up through a sorted permutation + binary search: an
  // unordered_map of 4M IpPrefix keys costs hundreds of MB of node and
  // bucket overhead, the permutation is 4 bytes per block.
  std::vector<BlockId> blocks_by_prefix_;
  std::unordered_map<net::IpPrefix, LdnsId, net::IpPrefixHash> ldns_index_;
};

}  // namespace eum::topo
