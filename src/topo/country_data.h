// Calibrated country table for the synthetic world.
#pragma once

#include <vector>

#include "topo/world.h"

namespace eum::topo {

/// The paper's top-25 countries by client demand (Figure 6), with
/// modelling knobs calibrated against the published per-country data:
/// Fig 6 (client-LDNS distance), Fig 8 (public-resolver distance),
/// Fig 9 (public-resolver adoption). Demand shares are normalized by the
/// world generator.
[[nodiscard]] std::vector<CountrySpec> default_countries();

/// Index of a country code within a spec vector; throws if absent.
[[nodiscard]] CountryId country_index(const std::vector<CountrySpec>& specs,
                                      const std::string& code);

}  // namespace eum::topo
