// Seeded generator for synthetic Worlds (see world.h).
//
// Everything downstream (the client-LDNS analyses of §3, the roll-out
// simulation of §4, the scaling study of §5 and the deployment study of
// §6) consumes a World. The generator is deterministic in the seed and
// calibrated so that the published aggregate distributions emerge:
//   - the client-LDNS distance mix of Figs 5-8 (via per-country ISP
//     centralization, public-resolver adoption and anycast detours),
//   - the demand concentration of Fig 21 (Zipf across ASes, lognormal
//     within), and
//   - the AS-size effect of Fig 10 (small ASes outsource DNS).
#pragma once

#include <cstdint>

#include "topo/public_resolver.h"
#include "topo/world.h"

namespace eum::topo {

struct WorldGenConfig {
  std::uint64_t seed = 42;

  /// Approximate number of /24 client blocks (paper: 3.76M; default is a
  /// laptop-scale world preserving the distributions).
  std::size_t target_blocks = 100'000;
  /// Approximate number of autonomous systems (paper: 37,294).
  std::size_t target_ases = 3000;
  /// Candidate CDN deployment locations (§6 universe: 2642).
  std::size_t deployment_universe = 2642;
  /// Latency-measurement proxy points (paper: 8K).
  std::size_t ping_targets = 4000;

  /// Lognormal sigma of within-AS block demand (Fig 21 calibration).
  double block_demand_sigma = 1.3;
  /// Zipf exponent of AS demand within a country (Fig 10/21 calibration).
  double as_zipf_exponent = 1.12;
  /// Median displacement of an in-city ISP resolver from its clients'
  /// city scales with the country's size (regional resolver farms in big
  /// countries): median = max(floor, radius * factor). Fig 5: the typical
  /// client-LDNS distance is metro scale, not zero.
  double isp_local_median_floor_miles = 30.0;
  double isp_local_radius_factor = 0.09;
  double isp_local_sigma = 0.9;
  /// Probability that a LOW-demand block is served by its own dedicated
  /// small resolver (long, thin tail of the Fig 21 LDNS curve).
  double small_resolver_prob = 0.25;
  /// Fraction of a country's ASes (the smallest ones) eligible to
  /// outsource DNS to a public resolver.
  double small_as_fraction = 0.40;
  /// Outsourcing probability for those small ASes (Fig 10 effect).
  double small_as_outsource_prob = 0.45;
  /// Probability a block uses a second LDNS with minority share.
  double secondary_ldns_prob = 0.15;
  /// Number of centralized multinational-corporation LDNSes.
  std::size_t enterprise_ldns_count = 120;

  /// Register blocks and LDNS addresses in the geo database (a per-prefix
  /// trie node each). Paper-scale runs that never geolocate (the map-maker
  /// scale bench) turn this off: at 4M blocks the trie dominates resident
  /// memory. With it off, geodb lookups simply find nothing.
  bool build_geodb = true;

  LatencyParams latency;
};

/// Generate a world. Throws std::invalid_argument on nonsensical configs.
[[nodiscard]] World generate_world(const WorldGenConfig& config);

}  // namespace eum::topo
