#include "topo/world_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "topo/country_data.h"
#include "util/hash.h"

namespace eum::topo {

namespace {

constexpr std::uint32_t kClientBase = 0x01000000;          // 1.0.0.0, /24s upward
constexpr std::uint32_t kIspLdnsBase = 0xC8000000;         // 200.0.0.0
constexpr std::uint32_t kEnterpriseLdnsBase = 0xC9000000;  // 201.0.0.0
constexpr std::uint32_t kPublicLdnsBase = 0xCA000000;      // 202.0.0.0

/// Offset a point by a 2-D gaussian with the given standard deviation in
/// miles (adequate for sub-continental jitters).
geo::GeoPoint jitter(const geo::GeoPoint& base, double sigma_miles, util::Rng& rng) {
  const double dlat_miles = rng.normal(0.0, sigma_miles);
  const double dlon_miles = rng.normal(0.0, sigma_miles);
  const double lat = std::clamp(base.lat_deg + dlat_miles / 69.0, -89.0, 89.0);
  const double cos_lat = std::max(0.2, std::cos(lat * 0.017453292519943295));
  double lon = base.lon_deg + dlon_miles / (69.0 * cos_lat);
  if (lon > 180.0) lon -= 360.0;
  if (lon < -180.0) lon += 360.0;
  return geo::GeoPoint{lat, lon};
}

/// Offset by a lognormal radial distance in a uniform direction.
geo::GeoPoint displace(const geo::GeoPoint& base, double median_miles, double sigma,
                       util::Rng& rng) {
  const double distance = rng.lognormal(std::log(median_miles), sigma);
  const double bearing = rng.uniform(0.0, 6.283185307179586);
  const double dlat_miles = distance * std::cos(bearing);
  const double dlon_miles = distance * std::sin(bearing);
  const double lat = std::clamp(base.lat_deg + dlat_miles / 69.0, -89.0, 89.0);
  const double cos_lat = std::max(0.2, std::cos(lat * 0.017453292519943295));
  double lon = base.lon_deg + dlon_miles / (69.0 * cos_lat);
  if (lon > 180.0) lon -= 360.0;
  if (lon < -180.0) lon += 360.0;
  return geo::GeoPoint{lat, lon};
}

/// Largest-remainder apportionment of `total` items over `weights`.
std::vector<std::size_t> apportion(std::size_t total, const std::vector<double>& weights,
                                   std::size_t minimum) {
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::size_t> counts(weights.size(), minimum);
  if (sum <= 0.0 || total <= minimum * weights.size()) return counts;
  const std::size_t distributable = total - minimum * weights.size();
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(distributable) * weights[i] / sum;
    const auto whole = static_cast<std::size_t>(exact);
    counts[i] += whole;
    assigned += whole;
    remainders.emplace_back(exact - static_cast<double>(whole), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t k = 0; assigned < distributable && k < remainders.size(); ++k, ++assigned) {
    ++counts[remainders[k].second];
  }
  return counts;
}

struct ProviderRuntime {
  PublicProviderSpec spec;
  std::vector<LdnsId> site_ldns;  ///< parallel to spec.sites
};

}  // namespace

World generate_world(const WorldGenConfig& config) {
  if (config.target_blocks == 0 || config.target_ases == 0 || config.ping_targets == 0) {
    throw std::invalid_argument{"generate_world: sizes must be positive"};
  }
  util::Rng master{config.seed};
  World world;
  world.countries = default_countries();

  // Normalize country demand shares.
  {
    double sum = 0.0;
    for (const CountrySpec& c : world.countries) sum += c.demand_share;
    for (CountrySpec& c : world.countries) c.demand_share /= sum;
  }
  const LatencyModel latency{config.latency, util::mix64(config.seed ^ 0x1a7e9c)};

  // ---- Cities ----------------------------------------------------------
  util::Rng city_rng = master.fork(1);
  std::vector<std::vector<CityId>> country_cities(world.countries.size());
  for (CountryId ci = 0; ci < world.countries.size(); ++ci) {
    const CountrySpec& spec = world.countries[ci];
    const auto n_cities =
        static_cast<std::size_t>(std::clamp(3.0 + spec.radius_miles / 130.0, 3.0, 14.0));
    for (std::size_t k = 0; k < n_cities; ++k) {
      City city;
      city.id = static_cast<CityId>(world.cities.size());
      city.country = ci;
      city.is_hub = (k == 0);
      if (k == 0) {
        city.location = jitter(spec.center, spec.radius_miles * 0.12, city_rng);
      } else {
        city.location = jitter(spec.center, spec.radius_miles * 0.55, city_rng);
      }
      city.population_weight = 1.0 / std::pow(static_cast<double>(k + 1), 0.85);
      country_cities[ci].push_back(city.id);
      world.cities.push_back(city);
    }
    double wsum = 0.0;
    for (const CityId id : country_cities[ci]) wsum += world.cities[id].population_weight;
    for (const CityId id : country_cities[ci]) world.cities[id].population_weight /= wsum;
  }

  // ---- Autonomous systems ----------------------------------------------
  util::Rng as_rng = master.fork(2);
  {
    // AS counts skew toward big internet economies but sublinearly.
    std::vector<double> weights;
    weights.reserve(world.countries.size());
    for (const CountrySpec& c : world.countries) weights.push_back(std::sqrt(c.demand_share));
    const auto counts = apportion(config.target_ases, weights, 4);
    AsId next_asn = 100;
    for (CountryId ci = 0; ci < world.countries.size(); ++ci) {
      const CountrySpec& spec = world.countries[ci];
      const std::size_t n = counts[ci];
      std::vector<double> as_weights(n);
      double wsum = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        as_weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), config.as_zipf_exponent);
        wsum += as_weights[r];
      }
      for (std::size_t r = 0; r < n; ++r) {
        AutonomousSystem as;
        as.asn = next_asn++;
        as.country = ci;
        as.demand_share = spec.demand_share * as_weights[r] / wsum;
        const bool small = r >= static_cast<std::size_t>(
                                    static_cast<double>(n) * (1.0 - config.small_as_fraction));
        if (small && as_rng.chance(config.small_as_outsource_prob)) {
          as.strategy = DnsStrategy::outsourced;
        } else if (small && as_rng.chance(0.08)) {
          as.strategy = DnsStrategy::enterprise;
        } else if (as_rng.chance(spec.isp_centralization)) {
          as.strategy = DnsStrategy::isp_centralized;
        } else {
          as.strategy = DnsStrategy::isp_local;
        }
        world.ases.push_back(as);
      }
    }
  }

  // ---- Client blocks ----------------------------------------------------
  // Each (AS, city) group is allocated at a /20 boundary, so /20 and finer
  // aggregates stay metro-local (Fig 22), and the AS announces the minimal
  // cover of its /20s as its BGP CIDRs (§5.1 aggregation).
  util::Rng block_rng = master.fork(3);
  std::uint32_t next_block24 = kClientBase >> 8;  // /24 counter
  {
    std::vector<double> as_weights;
    as_weights.reserve(world.ases.size());
    for (const AutonomousSystem& as : world.ases) as_weights.push_back(as.demand_share);
    const auto counts = apportion(config.target_blocks, as_weights, 1);
    world.blocks.reserve(std::accumulate(counts.begin(), counts.end(), std::size_t{0}));

    for (std::size_t ai = 0; ai < world.ases.size(); ++ai) {
      AutonomousSystem& as = world.ases[ai];
      const std::size_t n_blocks = counts[ai];
      const auto& cities = country_cities[as.country];

      std::vector<double> cweights;
      cweights.reserve(cities.size());
      for (const CityId id : cities) cweights.push_back(world.cities[id].population_weight);
      const util::WeightedPicker city_picker{cweights};
      std::vector<CityId> block_cities(n_blocks);
      for (auto& c : block_cities) c = cities[city_picker.pick(block_rng)];
      std::sort(block_cities.begin(), block_cities.end());

      std::vector<double> demands(n_blocks);
      double dsum = 0.0;
      for (auto& d : demands) {
        d = block_rng.lognormal(0.0, config.block_demand_sigma);
        dsum += d;
      }

      std::vector<net::IpPrefix> covering19s;
      // ASes announce /19-or-coarser CIDRs; align each AS to a /18 so its
      // announcements never cover another AS's space.
      next_block24 = (next_block24 + 63U) & ~63U;
      CityId previous_city = block_cities.empty() ? 0 : block_cities.front();
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (b == 0 || block_cities[b] != previous_city) {
          // Mostly /20-aligned so /20 aggregates stay metro-local; an
          // occasional /21 alignment lets some /20s straddle two cities
          // (Fig 22a: 87.3%, not 100%, of /20 demand has radius <= 100mi).
          const std::uint32_t align = block_rng.chance(0.85) ? 16U : 8U;
          next_block24 = (next_block24 + align - 1U) & ~(align - 1U);
          previous_city = block_cities[b];
        }
        if (covering19s.empty() ||
            !covering19s.back().contains(net::IpAddr{net::IpV4Addr{next_block24 << 8}})) {
          covering19s.push_back(
              net::IpPrefix{net::IpV4Addr{next_block24 << 8}, 19});
        }
        // The /24 counter walks 1.0.0.0 upward; past 255.255.255.0 the
        // shift below would silently wrap into already-used space.
        if (next_block24 > 0x00FFFFFFU) {
          throw std::invalid_argument{"generate_world: /24 client address space exhausted"};
        }
        ClientBlock block;
        block.id = static_cast<BlockId>(world.blocks.size());
        block.prefix = net::IpPrefix{net::IpV4Addr{next_block24 << 8}, 24};
        ++next_block24;
        block.country = as.country;
        block.as_index = static_cast<AsId>(ai);
        block.city = block_cities[b];
        block.location = jitter(world.cities[block_cities[b]].location, 18.0, block_rng);
        block.demand = demands[b] / dsum * as.demand_share;
        world.blocks.push_back(std::move(block));
      }
      // Announcement style varies by operator: some aggregate their /19s
      // maximally, others announce each /19 (tunes the §5.1 reduction
      // ratio to the paper's ~8.5:1).
      as.announced_cidrs = block_rng.chance(0.5) ? net::minimal_cover(std::move(covering19s))
                                                 : std::move(covering19s);
      for (const net::IpPrefix& cidr : as.announced_cidrs) world.bgp.add(cidr);
    }
  }
  // Scale demand to a fixed total of 1e6 traffic units.
  {
    const double total = world.total_demand();
    for (ClientBlock& block : world.blocks) block.demand *= 1e6 / total;
  }

  // Per-country demand shares of outsourced ASes, to correct the public
  // adoption roll: the CountrySpec target is the TOTAL public share.
  std::vector<double> outsourced_share(world.countries.size(), 0.0);
  {
    std::vector<double> country_demand(world.countries.size(), 0.0);
    for (const ClientBlock& block : world.blocks) {
      country_demand[block.country] += block.demand;
      if (world.ases[block.as_index].strategy == DnsStrategy::outsourced) {
        outsourced_share[block.country] += block.demand;
      }
    }
    for (std::size_t ci = 0; ci < world.countries.size(); ++ci) {
      if (country_demand[ci] > 0.0) outsourced_share[ci] /= country_demand[ci];
    }
  }

  // ---- Ping targets ------------------------------------------------------
  util::Rng target_rng = master.fork(4);
  std::vector<std::vector<PingTargetId>> city_targets(world.cities.size());
  {
    std::vector<double> city_demand(world.cities.size(), 0.0);
    for (const ClientBlock& block : world.blocks) city_demand[block.city] += block.demand;
    const std::size_t want = std::max(config.ping_targets, world.cities.size());
    const auto counts = apportion(want, city_demand, 1);
    for (CityId ci = 0; ci < world.cities.size(); ++ci) {
      for (std::size_t k = 0; k < counts[ci]; ++k) {
        PingTarget target;
        target.id = static_cast<PingTargetId>(world.ping_targets.size());
        target.location = jitter(world.cities[ci].location, 12.0, target_rng);
        target.country = world.cities[ci].country;
        city_targets[ci].push_back(target.id);
        world.ping_targets.push_back(target);
      }
    }
    for (ClientBlock& block : world.blocks) {
      const auto& targets = city_targets[block.city];
      block.ping_target = targets[target_rng.below(targets.size())];
    }
  }

  // ---- LDNS population ---------------------------------------------------
  util::Rng ldns_rng = master.fork(5);
  std::uint32_t next_isp_ldns = kIspLdnsBase + 1;
  std::uint32_t next_ent_ldns = kEnterpriseLdnsBase + 1;
  std::uint32_t next_pub_ldns = kPublicLdnsBase + 1;

  const auto new_ping_target = [&](const geo::GeoPoint& where, CountryId country) {
    PingTarget target;
    target.id = static_cast<PingTargetId>(world.ping_targets.size());
    target.location = where;
    target.country = country;
    world.ping_targets.push_back(target);
    return target.id;
  };

  const auto add_ldns = [&](net::IpAddr addr, const geo::GeoPoint& where, CountryId country,
                            LdnsType type, bool ecs, PingTargetId target) {
    Ldns ldns;
    ldns.id = static_cast<LdnsId>(world.ldnses.size());
    ldns.address = addr;
    ldns.location = where;
    ldns.country = country;
    ldns.type = type;
    ldns.supports_ecs = ecs;
    ldns.ping_target = target;
    world.ldnses.push_back(ldns);
    return ldns.id;
  };

  // Public-resolver sites.
  std::vector<ProviderRuntime> providers;
  for (const PublicProviderSpec& spec : default_public_providers()) {
    ProviderRuntime runtime;
    runtime.spec = spec;
    for (const PublicSiteSpec& site : spec.sites) {
      const CountryId country = country_index(world.countries, site.country_code);
      const PingTargetId target = new_ping_target(site.location, country);
      runtime.site_ldns.push_back(add_ldns(net::IpV4Addr{next_pub_ldns++}, site.location,
                                           country, LdnsType::public_site, spec.supports_ecs,
                                           target));
    }
    providers.push_back(std::move(runtime));
  }
  std::vector<double> provider_shares;
  for (const auto& p : providers) provider_shares.push_back(p.spec.market_share);
  const util::WeightedPicker provider_picker{provider_shares};

  // Enterprise (multinational HQ) resolvers, concentrated in hub cities of
  // high-demand countries.
  std::vector<LdnsId> enterprise_pool;
  {
    std::vector<double> weights;
    for (const CountrySpec& c : world.countries) weights.push_back(c.demand_share);
    const util::WeightedPicker country_picker{weights};
    for (std::size_t k = 0; k < config.enterprise_ldns_count; ++k) {
      const auto ci = static_cast<CountryId>(country_picker.pick(ldns_rng));
      const CityId hub = country_cities[ci].front();
      const geo::GeoPoint where = jitter(world.cities[hub].location, 15.0, ldns_rng);
      const PingTargetId target = new_ping_target(where, ci);
      enterprise_pool.push_back(add_ldns(net::IpV4Addr{next_ent_ldns++}, where, ci,
                                         LdnsType::enterprise, false, target));
    }
  }

  // Foreign interconnection hubs hosting offshore ISP resolvers.
  std::vector<CountryId> offshore_hubs;
  for (const char* code : {"US", "GB", "DE", "NL", "SG", "JP", "HK"}) {
    offshore_hubs.push_back(country_index(world.countries, code));
  }

  // ISP resolvers, created on demand per (AS, city) or per AS when
  // centralized; centralized resolvers may live at a foreign hub
  // (isp_offshore), the paper's extreme-distance pattern.
  std::unordered_map<std::uint64_t, LdnsId> isp_ldns;  // key: as_index<<32 | home city
  const auto isp_ldns_for = [&](AsId as_index, CityId city) {
    const AutonomousSystem& as = world.ases[as_index];
    const CountrySpec& spec = world.countries[as.country];
    CityId home = city;
    if (as.strategy == DnsStrategy::isp_centralized) {
      // One resolver per AS: at the national hub, or offshore. The choice
      // must be stable per AS, so derive it from the AS index.
      util::Rng stable{util::mix64(config.seed ^ (0xabcdULL + as_index))};
      if (stable.chance(spec.isp_offshore)) {
        // Nearest-ish foreign hub, weighted by inverse distance.
        std::vector<double> hub_weights;
        for (const CountryId hub_country : offshore_hubs) {
          const CityId hub_city = country_cities[hub_country].front();
          const double miles = geo::great_circle_miles(world.cities[city].location,
                                                       world.cities[hub_city].location);
          hub_weights.push_back(1.0 / ((400.0 + miles) * (400.0 + miles)));
        }
        const util::WeightedPicker hub_picker{hub_weights};
        home = country_cities[offshore_hubs[hub_picker.pick(stable)]].front();
      } else {
        home = country_cities[as.country].front();
      }
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(as_index) << 32) | home;
    if (const auto it = isp_ldns.find(key); it != isp_ldns.end()) return it->second;
    const CountrySpec& home_spec = world.countries[world.cities[home].country];
    const double median_miles =
        std::max(config.isp_local_median_floor_miles,
                 home_spec.radius_miles * config.isp_local_radius_factor);
    const geo::GeoPoint where =
        displace(world.cities[home].location, median_miles, config.isp_local_sigma, ldns_rng);
    const auto& targets = city_targets[home];
    const PingTargetId target = targets[ldns_rng.below(targets.size())];
    const LdnsId id = add_ldns(net::IpAddr{net::IpV4Addr{next_isp_ldns++}},
                               where, world.cities[home].country, LdnsType::isp, false, target);
    isp_ldns.emplace(key, id);
    return id;
  };

  // ---- Client -> LDNS association ---------------------------------------
  util::Rng assoc_rng = master.fork(6);
  const double mean_block_demand = 1e6 / static_cast<double>(world.blocks.size());
  world.reserve_ldns_uses(world.blocks.size(),
                          world.blocks.size() + world.blocks.size() / 4);
  for (ClientBlock& block : world.blocks) {
    const AutonomousSystem& as = world.ases[block.as_index];
    const CountrySpec& spec = world.countries[block.country];

    const auto pick_public = [&]() {
      const std::size_t pi = provider_picker.pick(assoc_rng);
      const ProviderRuntime& provider = providers[pi];
      const std::size_t site = anycast_select(provider.spec.sites, block.location, latency,
                                              spec.anycast_detour, assoc_rng);
      return provider.site_ldns[site];
    };
    const auto pick_enterprise = [&]() {
      return enterprise_pool[assoc_rng.below(enterprise_pool.size())];
    };
    const auto pick_isp = [&]() {
      // Only low-demand blocks sit behind dedicated small resolvers, so
      // the resulting LDNS tail is numerous but carries little demand.
      if (block.demand < 0.6 * mean_block_demand &&
          assoc_rng.chance(config.small_resolver_prob)) {
        // Dedicated small resolver serving (essentially) this block.
        const geo::GeoPoint where = displace(block.location, 15.0, 0.8, assoc_rng);
        return add_ldns(net::IpAddr{net::IpV4Addr{next_isp_ldns++}}, where, block.country,
                        LdnsType::isp, false, block.ping_target);
      }
      return isp_ldns_for(block.as_index, block.city);
    };

    // Adjusted adoption: the country target includes outsourced-AS demand.
    const double adoption = std::clamp(
        (spec.public_adoption - outsourced_share[block.country]) /
            std::max(1e-9, 1.0 - outsourced_share[block.country]),
        0.0, 1.0);

    LdnsId primary = 0;
    bool primary_public = false;
    if (as.strategy == DnsStrategy::outsourced) {
      primary = pick_public();
      primary_public = true;
    } else if (as.strategy == DnsStrategy::enterprise) {
      primary = pick_enterprise();
    } else {
      const double roll = assoc_rng.uniform();
      if (roll < adoption) {
        primary = pick_public();
        primary_public = true;
      } else if (roll < adoption + spec.enterprise_share) {
        primary = pick_enterprise();
      } else {
        primary = pick_isp();
      }
    }

    LdnsUse uses[2] = {LdnsUse{primary, 1.0}, LdnsUse{}};
    std::size_t n_uses = 1;
    if (assoc_rng.chance(config.secondary_ldns_prob)) {
      // Dual-configured stubs: a minority of queries use a second resolver.
      // Public primaries fall back to the ISP resolver and vice versa
      // (with a modest public fallback rate), keeping the net public share
      // near the country target.
      std::optional<LdnsId> secondary;
      if (primary_public && as.strategy != DnsStrategy::outsourced) {
        secondary = isp_ldns_for(block.as_index, block.city);
      } else if (!primary_public && assoc_rng.chance(0.30)) {
        secondary = pick_public();
      }
      if (secondary && *secondary != primary) {
        uses[0].fraction = 0.75;
        uses[1] = LdnsUse{*secondary, 0.25};
        n_uses = 2;
      }
    }
    world.assign_ldns_uses(block.id, std::span<const LdnsUse>{uses, n_uses});
  }

  // ---- Deployment universe ----------------------------------------------
  util::Rng deploy_rng = master.fork(7);
  {
    std::vector<double> weights;
    for (const CountrySpec& c : world.countries) weights.push_back(c.deployment_weight);
    const auto counts = apportion(config.deployment_universe, weights, 2);
    for (CountryId ci = 0; ci < world.countries.size(); ++ci) {
      std::vector<double> cweights;
      for (const CityId id : country_cities[ci]) {
        cweights.push_back(world.cities[id].population_weight);
      }
      const util::WeightedPicker city_picker{cweights};
      for (std::size_t k = 0; k < counts[ci]; ++k) {
        DeploymentSite site;
        site.id = static_cast<std::uint32_t>(world.deployment_universe.size());
        site.city = country_cities[ci][city_picker.pick(deploy_rng)];
        site.country = ci;
        site.location = jitter(world.cities[site.city].location, 14.0, deploy_rng);
        world.deployment_universe.push_back(site);
      }
    }
    // Shuffle so that any prefix of the universe is a geographically
    // spread random sample (site ids stay stable; they key the latency
    // salting). CdnNetwork::build(world, N) then yields a sensible
    // N-location CDN, and the §6 study's random orderings are unbiased.
    for (std::size_t i = world.deployment_universe.size() - 1; i > 0; --i) {
      std::swap(world.deployment_universe[i],
                world.deployment_universe[deploy_rng.below(i + 1)]);
    }
  }

  // ---- Geo database -------------------------------------------------------
  if (config.build_geodb) {
    for (const ClientBlock& block : world.blocks) {
      world.geodb.add(block.prefix, geo::GeoInfo{block.location, block.country,
                                                 world.ases[block.as_index].asn});
    }
    for (const Ldns& ldns : world.ldnses) {
      world.geodb.add(net::IpPrefix{ldns.address, ldns.address.bit_width()},
                      geo::GeoInfo{ldns.location, ldns.country, 0});
    }
  }

  world.build_indexes();
  return world;
}

}  // namespace eum::topo
