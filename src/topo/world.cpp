#include "topo/world.h"

#include <algorithm>
#include <stdexcept>

namespace eum::topo {

double World::total_demand() const {
  double total = 0.0;
  for (const ClientBlock& block : blocks) total += block.demand;
  return total;
}

const Ldns& World::primary_ldns(const ClientBlock& block) const {
  if (block.ldns_uses.empty()) throw std::logic_error{"block has no LDNS association"};
  const auto it = std::max_element(
      block.ldns_uses.begin(), block.ldns_uses.end(),
      [](const LdnsUse& a, const LdnsUse& b) { return a.fraction < b.fraction; });
  return ldnses.at(it->ldns);
}

double World::public_resolver_demand() const {
  double total = 0.0;
  for (const ClientBlock& block : blocks) {
    for (const LdnsUse& use : block.ldns_uses) {
      if (ldnses.at(use.ldns).type == LdnsType::public_site) {
        total += block.demand * use.fraction;
      }
    }
  }
  return total;
}

const ClientBlock* World::block_by_prefix(const net::IpPrefix& prefix) const {
  const auto it = block_index_.find(prefix);
  return it == block_index_.end() ? nullptr : &blocks[it->second];
}

const Ldns* World::ldns_by_address(const net::IpAddr& addr) const {
  const auto it = ldns_index_.find(net::IpPrefix{addr, addr.bit_width()});
  return it == ldns_index_.end() ? nullptr : &ldnses[it->second];
}

void World::build_indexes() {
  block_index_.clear();
  block_index_.reserve(blocks.size());
  for (const ClientBlock& block : blocks) block_index_.emplace(block.prefix, block.id);
  ldns_index_.clear();
  ldns_index_.reserve(ldnses.size());
  for (const Ldns& ldns : ldnses) {
    ldns_index_.emplace(net::IpPrefix{ldns.address, ldns.address.bit_width()}, ldns.id);
  }
}

}  // namespace eum::topo
