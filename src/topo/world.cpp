#include "topo/world.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace eum::topo {

double World::total_demand() const {
  double total = 0.0;
  for (const ClientBlock& block : blocks) total += block.demand;
  return total;
}

const Ldns& World::primary_ldns(const ClientBlock& block) const {
  const std::span<const LdnsUse> uses = ldns_uses(block);
  if (uses.empty()) throw std::logic_error{"block has no LDNS association"};
  const auto it = std::max_element(
      uses.begin(), uses.end(),
      [](const LdnsUse& a, const LdnsUse& b) { return a.fraction < b.fraction; });
  return ldnses.at(it->ldns);
}

double World::public_resolver_demand() const {
  double total = 0.0;
  for (const ClientBlock& block : blocks) {
    for (const LdnsUse& use : ldns_uses(block)) {
      if (ldnses.at(use.ldns).type == LdnsType::public_site) {
        total += block.demand * use.fraction;
      }
    }
  }
  return total;
}

void World::assign_ldns_uses(BlockId block, std::span<const LdnsUse> uses) {
  const std::size_t assigned = ldns_use_offsets_.size() - 1;
  if (static_cast<std::size_t>(block) < assigned) {
    throw std::logic_error{"assign_ldns_uses: blocks must be assigned in id order"};
  }
  if (ldns_use_data_.size() + uses.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::length_error{"assign_ldns_uses: association table exceeds 2^32 entries"};
  }
  // Skipped ids get the old end offset (an empty span); the sentinel then
  // moves to the new end.
  ldns_use_offsets_.resize(static_cast<std::size_t>(block) + 2,
                           static_cast<std::uint32_t>(ldns_use_data_.size()));
  ldns_use_data_.insert(ldns_use_data_.end(), uses.begin(), uses.end());
  ldns_use_offsets_.back() = static_cast<std::uint32_t>(ldns_use_data_.size());
}

void World::reserve_ldns_uses(std::size_t block_count, std::size_t use_count) {
  ldns_use_offsets_.reserve(block_count + 1);
  ldns_use_data_.reserve(use_count);
}

const ClientBlock* World::block_by_prefix(const net::IpPrefix& prefix) const {
  const auto it = std::lower_bound(
      blocks_by_prefix_.begin(), blocks_by_prefix_.end(), prefix,
      [this](BlockId id, const net::IpPrefix& key) { return blocks[id].prefix < key; });
  if (it == blocks_by_prefix_.end() || !(blocks[*it].prefix == prefix)) return nullptr;
  return &blocks[*it];
}

const Ldns* World::ldns_by_address(const net::IpAddr& addr) const {
  const auto it = ldns_index_.find(net::IpPrefix{addr, addr.bit_width()});
  return it == ldns_index_.end() ? nullptr : &ldnses[it->second];
}

void World::build_indexes() {
  blocks_by_prefix_.resize(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    blocks_by_prefix_[i] = static_cast<BlockId>(i);
  }
  // Generated worlds emit blocks in increasing address order, so this is
  // one presorted pass; hand-built worlds may be arbitrary.
  std::sort(blocks_by_prefix_.begin(), blocks_by_prefix_.end(),
            [this](BlockId a, BlockId b) { return blocks[a].prefix < blocks[b].prefix; });
  ldns_index_.clear();
  ldns_index_.reserve(ldnses.size());
  for (const Ldns& ldns : ldnses) {
    ldns_index_.emplace(net::IpPrefix{ldns.address, ldns.address.bit_width()}, ldns.id);
  }
}

}  // namespace eum::topo
