// Network latency model.
//
// Substitute for the paper's real ping measurements (§6) and server TCP
// RTT observations (§4.1). RTT between two points decomposes into
// propagation over a non-geodesic fiber path, fixed per-hop processing,
// an inflation penalty for crossing oceans/continents, and a stable
// per-pair "path quality" factor (deterministic in the endpoints, so the
// same pair always measures a similar baseline, as real paths do).
// Per-measurement congestion noise is drawn from the caller's RNG.
#pragma once

#include <cstdint>

#include "geo/coords.h"
#include "util/rng.h"

namespace eum::topo {

struct LatencyParams {
  /// Fixed endpoint processing + last-mile, ms (one way pair cost folded in).
  double base_ms = 3.0;
  /// Fiber propagation: great-circle miles per millisecond of RTT.
  /// Light in fiber covers ~127 mi/ms one way => ~63 mi/ms of RTT.
  double miles_per_rtt_ms = 63.0;
  /// Path stretch: fiber routes are not geodesics.
  double path_stretch = 1.30;
  /// Extra RTT for intercontinental paths (> threshold), ms.
  double transoceanic_penalty_ms = 25.0;
  double transoceanic_threshold_miles = 3000.0;
  /// Lognormal sigma of the stable per-pair quality multiplier.
  double pair_quality_sigma = 0.18;
  /// Mean of per-measurement congestion noise, ms (exponential).
  double congestion_mean_ms = 4.0;
  /// Packet-loss model: base rate plus an extra rate on intercontinental
  /// paths, modulated by the same stable per-pair quality factor.
  double base_loss_rate = 0.001;
  double transoceanic_loss_rate = 0.012;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyParams params = {}, std::uint64_t seed = 0x5eedULL) noexcept
      : params_(params), seed_(seed) {}

  /// Deterministic expected RTT between two points, ms. `pair_salt`
  /// identifies the endpoint pair so the stable path-quality factor is
  /// reproducible (pass e.g. hash of the two entity ids).
  [[nodiscard]] double expected_rtt_ms(const geo::GeoPoint& a, const geo::GeoPoint& b,
                                       std::uint64_t pair_salt) const noexcept;

  /// One measured RTT: expected value plus congestion noise from `rng`.
  [[nodiscard]] double measure_rtt_ms(const geo::GeoPoint& a, const geo::GeoPoint& b,
                                      std::uint64_t pair_salt, util::Rng& rng) const noexcept;

  /// Deterministic expected packet-loss rate of the path (0..1). Long
  /// transoceanic paths lose more; the per-pair quality factor makes some
  /// paths persistently bad — what the video scoring function avoids.
  [[nodiscard]] double expected_loss_rate(const geo::GeoPoint& a, const geo::GeoPoint& b,
                                          std::uint64_t pair_salt) const noexcept;

  [[nodiscard]] const LatencyParams& params() const noexcept { return params_; }

 private:
  LatencyParams params_;
  std::uint64_t seed_;
};

}  // namespace eum::topo
