#include "topo/country_data.h"

#include <stdexcept>

namespace eum::topo {

// Knob cheat-sheet (all targets from the paper):
//   isp_centralization — raises Fig 6 medians (IN/TR/VN/MX > 1000 mi;
//     KR/TW/NL tiny; Western Europe a small band).
//   isp_offshore       — centralized resolvers at a foreign hub; drives
//     the extreme Fig 6 medians (IN/TR/VN/MX) that in-country
//     centralization alone cannot produce.
//   public_adoption    — Fig 9 (VN/TR heaviest at ~40%+, worldwide ~8%);
//     interpreted as the country's TOTAL public share including demand
//     from outsourced small ASes (the generator adjusts for it).
//   enterprise_share   — long per-country tails (JP's multinationals).
//   anycast_detour     — Fig 8: SG/MY/TH/ID/AU/JP have nearby sites yet
//     median public-resolver distances above 1000 miles, so more than
//     half of their public demand must be routed past its nearest site.
//   radius_miles       — country size; with no nearby public-resolver
//     site this alone produces large Fig 8 distances (AR/BR/IN).
std::vector<CountrySpec> default_countries() {
  return {
      //       code  center (lat, lon)  radius  demand  cent.  public  entrpr  detour  offsh  deploy
      CountrySpec{"US", {39.0, -98.0},   1150,  0.270,  0.45,  0.070,  0.030,  0.08,  0.02,  30.0},
      CountrySpec{"JP", {36.0, 138.0},    380,  0.080,  0.20,  0.020,  0.100,  0.50,  0.04,  10.0},
      CountrySpec{"GB", {53.0, -1.5},     230,  0.060,  0.25,  0.055,  0.025,  0.06,  0.03,   8.0},
      CountrySpec{"DE", {51.0, 10.0},     250,  0.052,  0.22,  0.040,  0.020,  0.05,  0.02,   8.0},
      CountrySpec{"FR", {46.6, 2.4},      300,  0.048,  0.25,  0.045,  0.020,  0.05,  0.02,   7.0},
      CountrySpec{"BR", {-14.2, -51.9},  1100,  0.048,  0.62,  0.150,  0.020,  0.20,  0.18,   5.0},
      CountrySpec{"IN", {21.0, 78.0},     950,  0.042,  0.90,  0.130,  0.025,  0.15,  0.40,   4.0},
      CountrySpec{"CA", {49.5, -96.0},   1100,  0.040,  0.40,  0.050,  0.025,  0.08,  0.04,   6.0},
      CountrySpec{"IT", {42.8, 12.5},     340,  0.035,  0.35,  0.180,  0.020,  0.06,  0.04,   5.0},
      CountrySpec{"AU", {-27.0, 140.0},  1050,  0.032,  0.55,  0.030,  0.030,  0.55,  0.10,   5.0},
      CountrySpec{"RU", {56.2, 34.0},     420,  0.030,  0.55,  0.120,  0.020,  0.04,  0.08,   4.0},
      CountrySpec{"ES", {40.2, -3.7},     330,  0.026,  0.30,  0.090,  0.020,  0.06,  0.05,   4.0},
      CountrySpec{"KR", {36.5, 127.8},    130,  0.026,  0.06,  0.015,  0.015,  0.05,  0.01,   5.0},
      CountrySpec{"NL", {52.2, 5.3},      100,  0.022,  0.15,  0.040,  0.020,  0.04,  0.01,   5.0},
      CountrySpec{"MX", {23.5, -102.0},   620,  0.020,  0.80,  0.110,  0.020,  0.18,  0.38,   3.0},
      CountrySpec{"TR", {39.0, 35.0},     430,  0.020,  0.88,  0.400,  0.020,  0.15,  0.48,   2.5},
      CountrySpec{"TW", {23.8, 121.0},    110,  0.018,  0.08,  0.080,  0.015,  0.04,  0.01,   4.0},
      CountrySpec{"ID", {-4.5, 117.0},   1150,  0.018,  0.70,  0.170,  0.020,  0.50,  0.30,   2.5},
      CountrySpec{"AR", {-34.5, -64.0},   700,  0.015,  0.65,  0.140,  0.020,  0.25,  0.22,   2.0},
      CountrySpec{"TH", {15.0, 101.0},    380,  0.015,  0.55,  0.100,  0.020,  0.55,  0.25,   2.5},
      CountrySpec{"VN", {16.2, 107.5},    480,  0.015,  0.85,  0.450,  0.020,  0.45,  0.40,   2.0},
      CountrySpec{"MY", {3.8, 102.2},     300,  0.012,  0.45,  0.160,  0.025,  0.60,  0.30,   2.5},
      CountrySpec{"CH", {46.8, 8.2},      110,  0.012,  0.15,  0.050,  0.030,  0.04,  0.01,   4.0},
      CountrySpec{"HK", {22.3, 114.2},     28,  0.012,  0.05,  0.060,  0.025,  0.08,  0.02,   4.0},
      CountrySpec{"SG", {1.35, 103.8},     16,  0.008,  0.05,  0.030,  0.030,  0.60,  0.02,   4.0},
  };
}

CountryId country_index(const std::vector<CountrySpec>& specs, const std::string& code) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].code == code) return static_cast<CountryId>(i);
  }
  throw std::out_of_range{"country_index: unknown country code " + code};
}

}  // namespace eum::topo
