// Public-resolver providers (Google Public DNS / OpenDNS analogues).
//
// Providers run anycast site fleets; clients reach the "closest" site by
// BGP anycast, which has well-known failure modes (§3.2: "IP anycast has
// many known limitations that can result in a fraction of the clients
// being routed to far away LDNS locations"). Crucially for the paper,
// the 2014-era fleets had no South American or Indian sites, which is
// what makes AR/BR/IN distances so large in Figure 8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/coords.h"
#include "topo/latency.h"
#include "util/rng.h"

namespace eum::topo {

struct PublicSiteSpec {
  std::string country_code;  ///< where the site lives
  geo::GeoPoint location;
};

struct PublicProviderSpec {
  std::string name;
  double market_share = 0.5;  ///< among public-resolver demand
  bool supports_ecs = true;   ///< the roll-out targets ECS-capable providers
  std::vector<PublicSiteSpec> sites;
};

/// The two-provider fleet used by default: a large provider with 9 sites
/// (US x3, EU x2, Asia x3, AU) and a smaller one with 7. Neither has a
/// site in South America or India.
[[nodiscard]] std::vector<PublicProviderSpec> default_public_providers();

/// Pick the anycast site a client at `client_location` is routed to.
/// Normally the lowest-latency site; with probability `detour_prob` the
/// client is mis-routed to a farther site (rank >= 2), modelling peering
/// pathologies. Returns the site index within `sites`.
[[nodiscard]] std::size_t anycast_select(const std::vector<PublicSiteSpec>& sites,
                                         const geo::GeoPoint& client_location,
                                         const LatencyModel& latency, double detour_prob,
                                         util::Rng& rng);

}  // namespace eum::topo
