#include "control/explain.h"

#include <stdexcept>
#include <utility>

#include "obs/build_info.h"
#include "util/strings.h"

namespace eum::control {
namespace {

const char* policy_name(cdn::MappingPolicy policy) noexcept {
  switch (policy) {
    case cdn::MappingPolicy::ns_based: return "ns_based";
    case cdn::MappingPolicy::end_user: return "end_user";
    case cdn::MappingPolicy::client_aware_ns: return "client_aware_ns";
  }
  return "unknown";
}

const char* source_name(DecisionExplainer::ResolverSource source) noexcept {
  switch (source) {
    case DecisionExplainer::ResolverSource::explicit_arg: return "explicit";
    case DecisionExplainer::ResolverSource::ip_is_ldns: return "ip-is-ldns";
    case DecisionExplainer::ResolverSource::client_primary: return "client-primary-ldns";
    case DecisionExplainer::ResolverSource::fallback: return "fallback";
  }
  return "unknown";
}

constexpr std::string_view kDefaultQname = "www.cdn.example.";

}  // namespace

DecisionExplainer::DecisionExplainer(const topo::World* world,
                                     const cdn::MappingSystem* mapping, MapMaker* maker,
                                     const RolloutController* rollout)
    : world_(world), mapping_(mapping), maker_(maker), rollout_(rollout) {
  if (world_ == nullptr || mapping_ == nullptr || maker_ == nullptr) {
    throw std::invalid_argument{"DecisionExplainer: world, mapping and maker are required"};
  }
}

DecisionExplainer::Explanation DecisionExplainer::explain(
    const net::IpAddr& client, std::string_view qname,
    std::optional<net::IpAddr> resolver) const {
  Explanation out;
  out.client = client;
  out.qname = std::string{qname.empty() ? kDefaultQname : qname};

  // Attribute the query to an LDNS, the way the serve path would see it:
  // the serve path knows the actual UDP source; an operator usually only
  // has the client IP, so fall back through the client->LDNS association.
  const topo::Ldns* ldns = nullptr;
  if (resolver) {
    ldns = world_->ldns_by_address(*resolver);
    if (ldns == nullptr) {
      out.error = util::format("resolver %s is not a known LDNS",
                               resolver->to_string().c_str());
      return out;
    }
    out.ldns_source = ResolverSource::explicit_arg;
  } else if ((ldns = world_->ldns_by_address(client)) != nullptr) {
    out.ldns_source = ResolverSource::ip_is_ldns;
  } else if (client.is_v4()) {
    const net::IpPrefix block24{client, 24};
    if (const topo::ClientBlock* found = world_->block_by_prefix(block24)) {
      ldns = &world_->primary_ldns(*found);
      out.ldns_source = ResolverSource::client_primary;
    }
  }
  if (ldns == nullptr && fallback_ldns_) {
    ldns = &world_->ldnses.at(*fallback_ldns_);
    out.ldns_source = ResolverSource::fallback;
  }
  if (ldns == nullptr) {
    out.error = util::format("%s matches no LDNS and no client block (no fallback set)",
                             client.to_string().c_str());
    return out;
  }
  out.ldns = ldns->id;

  // The live gate, exactly as dns_handler consults it: the client block
  // participates only when end-user mapping is on for this resolver NOW.
  out.end_user_on = mapping_->end_user_active(ldns->id);
  if (out.end_user_on && client.is_v4()) {
    const net::IpPrefix block24{client, 24};
    if (const topo::ClientBlock* found = world_->block_by_prefix(block24)) {
      out.block = found->id;
    }
  }
  out.ecs_scope = out.block ? mapping_->config().ecs_scope_len : 0;

  if (rollout_ != nullptr) {
    out.has_rollout = true;
    out.cohort = rollout_->cohort(ldns->id);
    out.enabled_cohorts = rollout_->enabled_cohorts();
    out.total_cohorts = rollout_->config().cohorts;
    out.fraction = rollout_->fraction();
    out.whitelisted = rollout_->is_whitelisted(ldns->id);
  }

  // One acquire load pins the snapshot generation for the whole report.
  const std::shared_ptr<const MapSnapshot> snapshot = maker_->current();
  out.map = snapshot->explain(ldns->id, out.block, out.qname);
  out.ok = true;
  return out;
}

std::string DecisionExplainer::render(const Explanation& explanation) {
  if (!explanation.ok) {
    return util::format("cannot explain: %s\n", explanation.error.c_str());
  }
  std::string out;
  out += util::format("client %s qname %s\n", explanation.client.to_string().c_str(),
                      explanation.qname.c_str());
  out += util::format("ldns %lu (%s)\n", static_cast<unsigned long>(explanation.ldns),
                      source_name(explanation.ldns_source));
  if (explanation.has_rollout) {
    out += util::format(
        "rollout cohort=%lu/%lu enabled=%lu fraction=%.3f whitelisted=%s\n",
        static_cast<unsigned long>(explanation.cohort),
        static_cast<unsigned long>(explanation.total_cohorts),
        static_cast<unsigned long>(explanation.enabled_cohorts), explanation.fraction,
        explanation.whitelisted ? "yes" : "no");
  }
  const auto& map = explanation.map;
  out += util::format("policy %s end_user=%s map_version=%llu\n", policy_name(map.policy),
                      explanation.end_user_on ? "on" : "off",
                      static_cast<unsigned long long>(map.version));
  if (explanation.block) {
    out += util::format("client_block %lu ecs_scope /%d unit=target:%lu\n",
                        static_cast<unsigned long>(*explanation.block), explanation.ecs_scope,
                        static_cast<unsigned long>(map.unit));
  } else {
    out += util::format("client_block none ecs_scope /0 unit=target:%lu (%s)\n",
                        static_cast<unsigned long>(map.unit),
                        map.used_client_block ? "client" : "resolver-derived");
  }
  out += util::format("mapping_unit %lu members=%zu\n",
                      static_cast<unsigned long>(map.mapping_unit), map.unit_size);
  out += util::format("candidates (%zu%s):\n", map.candidates.size(),
                      map.fallback_scan ? ", chosen via full mesh fallback scan" : "");
  for (const MapSnapshot::ExplainCandidate& candidate : map.candidates) {
    out += util::format("  %s cluster %lu score=%.2fms %s %s load=%.1f/%.1f\n",
                        candidate.chosen ? "*" : " ",
                        static_cast<unsigned long>(candidate.deployment),
                        static_cast<double>(candidate.score_ms),
                        candidate.alive ? "alive" : "dead",
                        candidate.usable ? "usable" : "full", candidate.load,
                        candidate.capacity);
  }
  if (map.result) {
    std::string servers;
    for (const net::IpAddr& server : map.result->servers) {
      if (!servers.empty()) servers += ',';
      servers += server.to_string();
    }
    out += util::format("answer cluster=%lu expected_rtt=%.2fms servers=%s\n",
                        static_cast<unsigned long>(map.result->deployment),
                        static_cast<double>(map.result->expected_rtt_ms), servers.c_str());
  } else {
    out += "answer NONE (no usable cluster)\n";
  }
  return out;
}

std::string DecisionExplainer::command(const std::vector<std::string>& args) const {
  if (args.size() < 2) {
    throw std::runtime_error{"usage: explain <client-ip> [qname] [resolver-ip]"};
  }
  const std::optional<net::IpAddr> client = net::IpAddr::parse(args[1]);
  if (!client) throw std::runtime_error{util::format("bad client ip '%s'", args[1].c_str())};
  std::string_view qname;
  if (args.size() > 2) qname = args[2];
  std::optional<net::IpAddr> resolver;
  if (args.size() > 3) {
    resolver = net::IpAddr::parse(args[3]);
    if (!resolver) {
      throw std::runtime_error{util::format("bad resolver ip '%s'", args[3].c_str())};
    }
  }
  return render(explain(*client, qname, resolver));
}

std::string snapshot_info(MapMaker& maker) {
  maker.refresh_gauges();
  const std::shared_ptr<const MapSnapshot> snapshot = maker.current();
  std::size_t alive = 0;
  for (const MapSnapshot::Cluster& cluster : snapshot->clusters()) {
    if (!cluster.servers.empty()) ++alive;
  }
  std::string out;
  out += util::format("version %llu built_at_s %lld policy %s\n",
                      static_cast<unsigned long long>(snapshot->version()),
                      static_cast<long long>(snapshot->built_at().seconds()),
                      policy_name(snapshot->config().policy));
  out += util::format("clusters %zu alive %zu servers_per_answer %zu\n",
                      snapshot->clusters().size(), alive,
                      snapshot->config().servers_per_answer);
  out += util::format("rebuilds %llu publishes %llu skipped %llu\n",
                      static_cast<unsigned long long>(maker.rebuilds()),
                      static_cast<unsigned long long>(maker.publishes()),
                      static_cast<unsigned long long>(maker.skipped_publishes()));
  std::string reasons;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto reason = static_cast<RebuildReason>(i);
    if (!reasons.empty()) reasons += ' ';
    reasons += util::format("%s=%llu", to_string(reason),
                            static_cast<unsigned long long>(maker.rebuilds_for(reason)));
  }
  out += util::format("rebuild_reasons %s\n", reasons.c_str());
  out += util::format("build %s\n", obs::build_info_string().c_str());
  return out;
}

}  // namespace eum::control
