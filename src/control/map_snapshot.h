// Immutable, versioned map state published by the map maker (paper §2.2).
//
// The paper's map maker periodically recomputes cluster scores and
// load-balancing decisions and pushes the result to the name servers.
// A MapSnapshot is one such push: a frozen copy of everything a serving
// thread needs to answer a mapping query — per-mapping-unit candidate
// lists over the live deployments, the per-cluster alive-server lists and
// capacities as of build time, and the mapping policy/config. Snapshots
// are published through an RCU-style
// `std::atomic<std::shared_ptr<const MapSnapshot>>` (see MapMaker), so
// every query resolves against exactly one consistent map version while
// the next one is being built, with no locks on the serving path.
//
// Scale structure (paper §5, "two orders of magnitude more mapping
// units"): scoring happens per MappingUnit, not per target — one
// representative column per group of latency-equivalent targets — and is
// sharded across a ShardPool. When the previous snapshot is supplied, a
// build is a *delta*: only units whose candidate lists can be affected by
// the liveness transitions since that snapshot are re-scored; the rest
// copy over. The liveness-independent CANS table and the unit partition
// itself are shared across generations.
//
// The only mutable state a snapshot touches is the LoadLedger: a shared
// array of per-cluster atomic load accumulators that survives republishes
// (the paper's load state is continuous even as scores change).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "cdn/mapping.h"
#include "cdn/ping_mesh.h"
#include "cdn/scoring.h"
#include "control/mapping_units.h"
#include "topo/world.h"
#include "util/shard_pool.h"
#include "util/sim_clock.h"

namespace eum::control {

/// Per-cluster load accounting shared by every snapshot generation.
/// Charging is a wait-free atomic add, so concurrent serving threads and
/// the map maker's usability checks never need a lock.
class LoadLedger {
 public:
  explicit LoadLedger(std::size_t clusters);

  /// Charge `units` to a cluster; returns the load after the charge.
  double add(std::size_t cluster, double units) noexcept;

  [[nodiscard]] double load(std::size_t cluster) const noexcept {
    return loads_[cluster].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_;
  std::unique_ptr<std::atomic<double>[]> loads_;
};

class MapSnapshot {
 public:
  /// One cluster's serving view as of build time. A dead cluster (or one
  /// with no live servers) has an empty server list and is skipped.
  struct Cluster {
    double capacity = 0.0;
    std::vector<net::IpAddr> servers;  ///< alive servers, frozen at build

    friend bool operator==(const Cluster&, const Cluster&) = default;
  };

  /// One candidate cluster's view in an explain() report, in the order
  /// pick() would have considered it.
  struct ExplainCandidate {
    cdn::DeploymentId deployment = 0;
    float score_ms = 0.0F;   ///< mesh RTT to the mapping unit
    bool alive = false;      ///< had live servers at snapshot build
    bool usable = false;     ///< usable() at zero marginal load
    double load = 0.0;       ///< ledger load at explain time
    double capacity = 0.0;
    bool chosen = false;     ///< this cluster is the one map() returned
  };

  /// The full decision trail for one (ldns, block, domain) query against
  /// this snapshot — what the admin channel's `explain` prints.
  struct MapExplanation {
    std::uint64_t version = 0;
    cdn::MappingPolicy policy = cdn::MappingPolicy::ns_based;
    bool used_client_block = false;  ///< EU path actually took the block unit
    topo::PingTargetId unit = 0;     ///< ping target the decision scored against
    MappingUnits::UnitId mapping_unit = 0;  ///< scoring unit of that target
    std::size_t unit_size = 0;              ///< targets sharing the unit
    bool fallback_scan = false;      ///< chosen came from the full mesh scan
    std::vector<ExplainCandidate> candidates;
    std::optional<cdn::MapResult> result;  ///< exactly what map() returns
  };

  /// Scale machinery for a build. `units` is required; `pool` (borrowed,
  /// may be null for serial builds) shards unit scoring; `previous`
  /// enables the delta path — when the same unit partition and config are
  /// shared, only units touched by the liveness transitions since
  /// `previous` are re-scored.
  struct BuildInputs {
    std::shared_ptr<const MappingUnits> units;
    util::ShardPool* pool = nullptr;
    std::shared_ptr<const MapSnapshot> previous;
  };

  /// Freeze the mapping system's current scoring + liveness state. The
  /// snapshot borrows the system's world and ping mesh (both immutable
  /// after construction) and must not outlive it; `loads` is shared
  /// across generations. Reads the mutable CdnNetwork — callers must not
  /// mutate liveness concurrently with a build (see MapMaker).
  static std::shared_ptr<const MapSnapshot> build(const cdn::MappingSystem& mapping,
                                                  std::shared_ptr<LoadLedger> loads,
                                                  std::uint64_t version, util::SimTime built_at,
                                                  const BuildInputs& inputs);

  /// Convenience build: a self-contained full (non-delta, serial) build
  /// with an exact epsilon-0 unit partition derived from the mesh.
  static std::shared_ptr<const MapSnapshot> build(const cdn::MappingSystem& mapping,
                                                  std::shared_ptr<LoadLedger> loads,
                                                  std::uint64_t version,
                                                  util::SimTime built_at);

  // --- serving (lock-free, safe from any thread) -----------------------

  /// Policy-dispatching entry, mirroring cdn::MappingSystem::map but
  /// resolved entirely against this snapshot's frozen state.
  [[nodiscard]] std::optional<cdn::MapResult> map(topo::LdnsId ldns,
                                                  std::optional<topo::BlockId> client_block,
                                                  std::string_view domain,
                                                  double load_units = 0.0) const;

  /// Map a ping-target unit (the EU / NS mapping unit).
  [[nodiscard]] std::optional<cdn::MapResult> map_target(topo::PingTargetId target,
                                                         std::string_view domain,
                                                         double load_units = 0.0) const;

  /// Map an LDNS's client cluster (the CANS unit, §6).
  [[nodiscard]] std::optional<cdn::MapResult> map_cluster(topo::LdnsId ldns,
                                                          std::string_view domain,
                                                          double load_units = 0.0) const;

  /// Replay the decision map() would make for this query and report every
  /// candidate considered. The result field IS map()'s answer at zero
  /// marginal load — the same call the serve path's dns_handler makes —
  /// so an explain is guaranteed consistent with what was served at this
  /// snapshot version. Read-only apart from the (zero-unit, no-op) ledger
  /// charge inside pick().
  [[nodiscard]] MapExplanation explain(topo::LdnsId ldns,
                                       std::optional<topo::BlockId> client_block,
                                       std::string_view domain) const;

  // --- identity --------------------------------------------------------

  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] util::SimTime built_at() const noexcept { return built_at_; }
  [[nodiscard]] const cdn::MappingConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<Cluster>& clusters() const noexcept { return clusters_; }
  [[nodiscard]] const LoadLedger& loads() const noexcept { return *loads_; }
  [[nodiscard]] const MappingUnits& units() const noexcept { return *units_; }

  /// The candidate list scored for a unit: the best top_k *live*
  /// deployments by the representative column, (score, id)-ordered,
  /// infinity-padded when fewer than top_k are alive.
  [[nodiscard]] std::span<const cdn::Candidate> unit_candidates(MappingUnits::UnitId unit) const {
    return {by_unit_.data() + static_cast<std::size_t>(unit) * top_k_, top_k_};
  }

  /// Was this build a delta (previous snapshot's tables reused)?
  [[nodiscard]] bool delta() const noexcept { return delta_; }
  /// Units actually re-scored by this build (== unit_count for a full build).
  [[nodiscard]] std::size_t units_rescored() const noexcept { return units_rescored_; }

  /// Would this snapshot serve identically to `other`? True when the
  /// unit partition, unit candidate tables, CANS tables and frozen
  /// cluster views match — the map maker skips publishing such rebuilds
  /// (version and build time are ignored).
  [[nodiscard]] bool serving_equal(const MapSnapshot& other) const;

 private:
  MapSnapshot() = default;

  [[nodiscard]] bool usable(std::size_t cluster, double load_units) const noexcept;
  [[nodiscard]] std::optional<cdn::MapResult> pick(std::span<const cdn::Candidate> candidates,
                                                   topo::PingTargetId fallback_target,
                                                   std::string_view domain,
                                                   double load_units) const;

  std::uint64_t version_ = 0;
  util::SimTime built_at_{};
  cdn::MappingConfig config_;
  const topo::World* world_ = nullptr;
  const cdn::PingMesh* mesh_ = nullptr;

  std::shared_ptr<const MappingUnits> units_;
  std::size_t top_k_ = 0;
  std::vector<cdn::Candidate> by_unit_;  ///< unit_count x top_k, live-only
  /// Liveness-independent CANS cluster table + per-LDNS fallback targets;
  /// computed once and shared across generations (liveness never moves a
  /// score, only candidate usability).
  std::shared_ptr<const cdn::Scoring> base_scoring_;
  bool delta_ = false;
  std::size_t units_rescored_ = 0;

  std::vector<Cluster> clusters_;
  std::shared_ptr<LoadLedger> loads_;
};

}  // namespace eum::control
