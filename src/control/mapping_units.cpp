#include "control/mapping_units.h"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/hash.h"

namespace eum::control {

namespace {

/// 128-bit latency-vector signature: two independently seeded 64-bit
/// chains over the quantized (rtt, loss) column. One 64-bit hash over
/// millions of targets leaves a real birthday-collision chance; two
/// independent chains push it below concern. A collision would silently
/// merge two unlike targets into one unit, so we spend the extra word.
struct Signature {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const Signature&, const Signature&) = default;
};

struct SignatureHash {
  std::size_t operator()(const Signature& s) const noexcept {
    return static_cast<std::size_t>(util::hash_combine(s.a, s.b));
  }
};

std::uint64_t quantize(float value, float step) noexcept {
  if (step <= 0.0F) return std::bit_cast<std::uint32_t>(value);
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::floor(static_cast<double>(value) / step)));
}

}  // namespace

std::shared_ptr<const MappingUnits> MappingUnits::build(const cdn::PingMesh& mesh,
                                                        const MappingUnitsConfig& config) {
  if (config.epsilon_ms < 0.0F || !std::isfinite(config.epsilon_ms)) {
    throw std::invalid_argument{"MappingUnits: epsilon_ms must be finite and >= 0"};
  }
  const std::size_t n_targets = mesh.target_count();
  const std::size_t n_deps = mesh.deployment_count();
  const float loss_step = config.epsilon_ms > 0.0F ? 1e-3F : 0.0F;

  auto units = std::shared_ptr<MappingUnits>{new MappingUnits};
  units->unit_of_.resize(n_targets);

  std::unordered_map<Signature, UnitId, SignatureHash> by_signature;
  by_signature.reserve(n_targets);
  std::vector<std::uint32_t> unit_sizes;
  for (std::size_t t = 0; t < n_targets; ++t) {
    const auto target = static_cast<topo::PingTargetId>(t);
    Signature sig{0x9e3779b97f4a7c15ULL, 0x6a09e667f3bcc909ULL};
    for (std::size_t d = 0; d < n_deps; ++d) {
      const std::uint64_t rtt_q = quantize(mesh.rtt_ms(d, target), config.epsilon_ms);
      const std::uint64_t loss_q = quantize(mesh.loss_rate(d, target), loss_step);
      sig.a = util::hash_combine(util::hash_combine(sig.a, rtt_q), loss_q);
      sig.b = util::hash_combine(util::hash_combine(sig.b, loss_q ^ 0xabcdef0123456789ULL),
                                 rtt_q ^ 0x123456789abcdefULL);
    }
    const auto [it, inserted] =
        by_signature.emplace(sig, static_cast<UnitId>(unit_sizes.size()));
    if (inserted) unit_sizes.push_back(0);
    units->unit_of_[t] = it->second;
    ++unit_sizes[it->second];
  }

  // Members grouped by unit via one counting pass (targets stay in order
  // within each unit, so representative() is the lowest member id).
  units->member_offsets_.assign(unit_sizes.size() + 1, 0);
  for (std::size_t u = 0; u < unit_sizes.size(); ++u) {
    units->member_offsets_[u + 1] = units->member_offsets_[u] + unit_sizes[u];
  }
  units->member_data_.resize(n_targets);
  std::vector<std::uint32_t> cursor(units->member_offsets_.begin(),
                                    units->member_offsets_.end() - 1);
  for (std::size_t t = 0; t < n_targets; ++t) {
    units->member_data_[cursor[units->unit_of_[t]]++] = static_cast<topo::PingTargetId>(t);
  }

  std::uint64_t fp = util::fnv1a64("mapping-units");
  fp = util::hash_combine(fp, static_cast<std::uint64_t>(unit_sizes.size()));
  for (const UnitId unit : units->unit_of_) fp = util::hash_combine(fp, unit);
  units->fingerprint_ = fp;
  return units;
}

}  // namespace eum::control
