// Mapping-decision explain: "why did THIS client get THAT answer?".
//
// The paper's roll-out (§4) was monitored by comparing what resolvers
// *would* be told under each policy. DecisionExplainer is the live
// version of that question for an operator: given a client IP (and
// optionally a qname and resolver), replay the mapping decision against
// the CURRENT published MapSnapshot and RolloutController state and
// report every input to it — which LDNS was attributed, whether the
// end-user gate was open for it (cohort, ramp fraction, whitelist),
// the ECS scope the answer would carry, and each candidate cluster with
// its score/liveness/load, with the chosen one marked.
//
// Consistency guarantee: the explanation calls the same
// MapSnapshot::map() the serve path's dns_handler calls (same snapshot
// generation, same zero marginal load), so for a given snapshot version
// the explained servers are exactly the served servers. The snapshot
// version is part of the report so an operator can tell when a
// republish landed between a query and its explain.
//
// This is the admin channel's `explain <ip> [qname] [resolver-ip]`
// command; everything here is cold-path and may allocate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/mapping.h"
#include "control/map_maker.h"
#include "control/map_snapshot.h"
#include "control/rollout_controller.h"
#include "net/ip.h"
#include "topo/world.h"

namespace eum::control {

class DecisionExplainer {
 public:
  /// How the resolver attribution in an Explanation was derived.
  enum class ResolverSource : std::uint8_t {
    explicit_arg,    ///< operator named the resolver IP
    ip_is_ldns,      ///< the queried IP is itself a known LDNS
    client_primary,  ///< the client block's highest-fraction LDNS
    fallback,        ///< the configured fallback LDNS
  };

  struct Explanation {
    bool ok = false;
    std::string error;  ///< set when !ok

    net::IpAddr client;
    std::string qname;
    topo::LdnsId ldns = 0;
    ResolverSource ldns_source = ResolverSource::fallback;
    std::optional<topo::BlockId> block;  ///< only when the gate was open
    bool end_user_on = false;            ///< end_user_active(ldns) right now
    int ecs_scope = 0;                   ///< scope the served answer carries

    // Roll-out gate detail (valid when has_rollout).
    bool has_rollout = false;
    std::uint32_t cohort = 0;
    std::uint32_t enabled_cohorts = 0;
    std::uint32_t total_cohorts = 0;
    double fraction = 0.0;
    bool whitelisted = false;

    MapSnapshot::MapExplanation map;  ///< the snapshot-level decision trail
  };

  /// All pointers are borrowed and must outlive the explainer; `rollout`
  /// may be nullptr (no staged roll-out in this deployment).
  DecisionExplainer(const topo::World* world, const cdn::MappingSystem* mapping,
                    MapMaker* maker, const RolloutController* rollout = nullptr);

  /// Resolver of last resort when the client IP can't be attributed to
  /// any LDNS (unset: such queries explain as an error).
  void set_fallback_ldns(topo::LdnsId ldns) noexcept { fallback_ldns_ = ldns; }

  /// Replay the decision. `resolver` pins the attributed LDNS; otherwise
  /// the client IP is matched against the LDNS population, then against
  /// its /24 block's primary LDNS, then the fallback.
  [[nodiscard]] Explanation explain(const net::IpAddr& client, std::string_view qname,
                                    std::optional<net::IpAddr> resolver = std::nullopt) const;

  /// Operator-facing text of an explanation (multi-line).
  [[nodiscard]] static std::string render(const Explanation& explanation);

  /// Admin-channel adapter: `explain <ip> [qname] [resolver-ip]`.
  /// Throws std::runtime_error on bad arguments (the admin server turns
  /// that into an ERROR line).
  [[nodiscard]] std::string command(const std::vector<std::string>& args) const;

 private:
  const topo::World* world_;
  const cdn::MappingSystem* mapping_;
  MapMaker* maker_;
  const RolloutController* rollout_;
  std::optional<topo::LdnsId> fallback_ldns_;
};

/// The admin channel's `snapshot.info`: identity and provenance of the
/// current map — version, build time/age, policy, cluster liveness,
/// rebuild counters by reason, and the binary's build info.
[[nodiscard]] std::string snapshot_info(MapMaker& maker);

}  // namespace eum::control
