#include "control/map_maker.h"

#include <stdexcept>

namespace eum::control {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

}  // namespace

const char* to_string(RebuildReason reason) noexcept {
  switch (reason) {
    case RebuildReason::initial: return "initial";
    case RebuildReason::periodic: return "periodic";
    case RebuildReason::liveness: return "liveness";
    case RebuildReason::requested: return "requested";
    case RebuildReason::manual: return "manual";
  }
  return "unknown";
}

MapMaker::MapMaker(cdn::MappingSystem* mapping, const util::SimClock* clock,
                   MapMakerConfig config)
    : mapping_(mapping),
      clock_(clock),
      config_(config),
      started_at_(std::chrono::steady_clock::now()) {
  if (mapping_ == nullptr) {
    throw std::invalid_argument{"MapMaker: mapping system is required"};
  }
  if (config_.registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  } else {
    registry_ = config_.registry;
  }
  map_version_ = &registry_->gauge("eum_control_map_version",
                                   "version of the currently published map snapshot");
  map_age_s_ = &registry_->gauge("eum_control_map_age_seconds",
                                 "wall-clock seconds since the current map was published");
  rebuilds_ = &registry_->counter("eum_control_rebuilds_total", "map rebuilds attempted");
  for (std::size_t i = 0; i < kRebuildReasons; ++i) {
    rebuilds_by_reason_[i] =
        &registry_->counter("eum_control_rebuilds_by_reason_total",
                            "map rebuilds attempted, by trigger",
                            {{"reason", to_string(static_cast<RebuildReason>(i))}});
  }
  publishes_ = &registry_->counter("eum_control_publishes_total", "map snapshots published");
  publishes_skipped_ = &registry_->counter("eum_control_publishes_skipped_total",
                                           "rebuilds skipped as serving-identical");
  delta_rebuilds_ = &registry_->counter("eum_control_delta_rebuilds_total",
                                        "rebuilds that took the incremental path");
  units_rescored_ = &registry_->counter("eum_control_units_rescored_total",
                                        "mapping units re-scored across all rebuilds");
  mapping_units_ = &registry_->gauge("eum_control_mapping_units",
                                     "mapping units in the scoring partition");
  rebuild_latency_ = &registry_->histogram("eum_control_rebuild_latency_us",
                                           "scoring + snapshot build latency");

  ledger_ = std::make_shared<LoadLedger>(mapping_->network().size());
  units_ = MappingUnits::build(mapping_->mesh(),
                               MappingUnitsConfig{config_.unit_epsilon_ms});
  mapping_units_->set(static_cast<std::int64_t>(units_->unit_count()));
  pool_ = std::make_unique<util::ShardPool>(config_.scoring_shards == 0
                                                ? util::ShardPool::hardware_workers()
                                                : config_.scoring_shards - 1);
  // Version 1 is published synchronously: serving can start immediately.
  (void)rebuild_with_reason(/*force=*/true, RebuildReason::initial);
}

MapMaker::~MapMaker() { stop(); }

util::SimTime MapMaker::build_time() const noexcept {
  if (clock_ != nullptr) return clock_->now();
  return util::SimTime{static_cast<std::int64_t>(elapsed_us(started_at_) / 1'000'000U)};
}

std::shared_ptr<const MapSnapshot> MapMaker::rebuild_now(bool force) {
  return rebuild_with_reason(force, RebuildReason::manual);
}

std::shared_ptr<const MapSnapshot> MapMaker::rebuild_with_reason(bool force,
                                                                 RebuildReason reason) {
  const std::scoped_lock lock{rebuild_mutex_};
  // Sample the transition counter BEFORE the build reads liveness: a
  // transition that lands while scoring runs is not in this snapshot, so
  // recording the post-build counter would silently drop it — the next
  // tick must still see it as new.
  const std::uint64_t pre_transitions = monitor_ != nullptr ? monitor_->transitions() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t next_version = published_.version() + 1;
  MapSnapshot::BuildInputs inputs;
  inputs.units = units_;
  inputs.pool = pool_.get();
  if (config_.incremental) inputs.previous = published_.snapshot();
  std::shared_ptr<const MapSnapshot> built =
      MapSnapshot::build(*mapping_, ledger_, next_version, build_time(), inputs);
  rebuild_latency_->record(elapsed_us(t0));
  if (config_.after_build_hook) config_.after_build_hook();
  rebuilds_->add();
  rebuilds_by_reason_[static_cast<std::size_t>(reason)]->add();
  if (built->delta()) delta_rebuilds_->add();
  units_rescored_->add(built->units_rescored());
  last_build_ = build_time();
  if (monitor_ != nullptr) {
    transitions_seen_.store(pre_transitions, std::memory_order_relaxed);
  }

  std::shared_ptr<const MapSnapshot> live = published_.snapshot();
  if (!force && !config_.publish_unchanged && live != nullptr &&
      live->serving_equal(*built)) {
    publishes_skipped_->add();
    return live;
  }

  // Publish order matters for version-keyed consumers (the UDP wire
  // answer cache): the snapshot must be visible BEFORE the version, so a
  // reader that observes version V via version_cell() is guaranteed
  // current() already serves generation >= V. VersionedRcu::publish
  // stores both with release (model-checked; weakening either store
  // yields a violating schedule — see AUDIT_memory_orders.json).
  published_.publish(built, next_version);
  publishes_->add();
  map_version_->set(static_cast<std::int64_t>(next_version));
  published_wall_us_.store(static_cast<std::int64_t>(elapsed_us(started_at_)),
                           std::memory_order_relaxed);
  map_age_s_->set(0);
  return built;
}

bool MapMaker::tick() {
  refresh_gauges();
  const bool transitioned =
      monitor_ != nullptr &&
      monitor_->transitions() != transitions_seen_.load(std::memory_order_relaxed);
  const bool due =
      clock_ != nullptr && clock_->now() - last_build_ >= config_.rescore_interval_s;
  if (!transitioned && !due) return false;
  // Liveness transitions must reach the serving path: force the publish.
  (void)rebuild_with_reason(/*force=*/transitioned,
                            transitioned ? RebuildReason::liveness : RebuildReason::periodic);
  return true;
}

void MapMaker::install_fast_path() {
  mapping_->set_fast_path(
      [this](topo::LdnsId ldns, std::optional<topo::BlockId> block, std::string_view domain,
             double load_units) {
        return published_.snapshot()->map(ldns, block, domain, load_units);
      });
}

void MapMaker::start(std::chrono::milliseconds interval) {
  if (thread_.joinable()) return;
  {
    const std::scoped_lock lock{wake_mutex_};
    stop_requested_ = false;
    rebuild_requested_ = false;
  }
  thread_ = std::thread{[this, interval] { run_loop(interval); }};
}

void MapMaker::run_loop(std::chrono::milliseconds interval) {
  // With a watched monitor the thread wakes on a short poll slice, drives
  // the monitor's probes itself (single-writer discipline: only this
  // thread mutates the network's liveness flags while serving runs), and
  // force-publishes on any transition — the paper's "liveness changes
  // reach the name servers in seconds" requirement. Without a monitor
  // each wake is a periodic republish, as before.
  const std::chrono::milliseconds slice =
      monitor_ != nullptr
          ? std::min(interval, std::max(std::chrono::milliseconds{1}, config_.liveness_poll))
          : interval;
  auto last_periodic = std::chrono::steady_clock::now();
  std::unique_lock lock{wake_mutex_};
  while (!stop_requested_) {
    wake_.wait_for(lock, slice,
                   [this] { return stop_requested_ || rebuild_requested_; });
    if (stop_requested_) break;
    const bool on_demand = rebuild_requested_;
    rebuild_requested_ = false;
    lock.unlock();
    bool transitioned = false;
    if (monitor_ != nullptr) {
      (void)monitor_->tick();
      transitioned =
          monitor_->transitions() != transitions_seen_.load(std::memory_order_relaxed);
    }
    const bool periodic_due = std::chrono::steady_clock::now() - last_periodic >= interval;
    if (transitioned || on_demand || periodic_due) {
      // Liveness transitions and explicit requests must publish even when
      // serving-identical; reason priority mirrors the urgency.
      const RebuildReason reason = transitioned ? RebuildReason::liveness
                                   : on_demand  ? RebuildReason::requested
                                                : RebuildReason::periodic;
      (void)rebuild_with_reason(/*force=*/transitioned || on_demand, reason);
      refresh_gauges();
      last_periodic = std::chrono::steady_clock::now();
    }
    lock.lock();
  }
}

void MapMaker::stop() {
  {
    const std::scoped_lock lock{wake_mutex_};
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MapMaker::request_rebuild() {
  {
    const std::scoped_lock lock{wake_mutex_};
    rebuild_requested_ = true;
  }
  wake_.notify_all();
}

void MapMaker::refresh_gauges() noexcept {
  const std::int64_t age_us = static_cast<std::int64_t>(elapsed_us(started_at_)) -
                              published_wall_us_.load(std::memory_order_relaxed);
  map_age_s_->set(age_us / 1'000'000);
}

}  // namespace eum::control
