#include "control/map_snapshot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/hash.h"

namespace eum::control {

namespace {

/// Keep the best `k` live candidates from a scratch column. Identical
/// ordering contract to cdn::Scoring's select_top_k — (score, id) is a
/// total order, so full and delta scoring passes are bit-identical and a
/// fresh all-alive unit list equals the live per-target list.
void select_top_k(std::vector<cdn::Candidate>& scratch, std::size_t k, cdn::Candidate* out) {
  const std::size_t keep = std::min(k, scratch.size());
  std::partial_sort(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(keep),
                    scratch.end(), [](const cdn::Candidate& a, const cdn::Candidate& b) {
                      if (a.score_ms != b.score_ms) return a.score_ms < b.score_ms;
                      return a.deployment < b.deployment;
                    });
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = i < keep ? scratch[i] : cdn::Candidate{0, std::numeric_limits<float>::infinity()};
  }
}

}  // namespace

LoadLedger::LoadLedger(std::size_t clusters)
    : size_(clusters), loads_(std::make_unique<std::atomic<double>[]>(clusters)) {
  for (std::size_t i = 0; i < size_; ++i) loads_[i].store(0.0, std::memory_order_relaxed);
}

double LoadLedger::add(std::size_t cluster, double units) noexcept {
  return loads_[cluster].fetch_add(units, std::memory_order_relaxed) + units;
}

void LoadLedger::reset() noexcept {
  for (std::size_t i = 0; i < size_; ++i) loads_[i].store(0.0, std::memory_order_relaxed);
}

std::shared_ptr<const MapSnapshot> MapSnapshot::build(const cdn::MappingSystem& mapping,
                                                      std::shared_ptr<LoadLedger> loads,
                                                      std::uint64_t version,
                                                      util::SimTime built_at) {
  BuildInputs inputs;
  inputs.units = MappingUnits::build(mapping.mesh(), MappingUnitsConfig{});
  return build(mapping, std::move(loads), version, built_at, inputs);
}

std::shared_ptr<const MapSnapshot> MapSnapshot::build(const cdn::MappingSystem& mapping,
                                                      std::shared_ptr<LoadLedger> loads,
                                                      std::uint64_t version,
                                                      util::SimTime built_at,
                                                      const BuildInputs& inputs) {
  const cdn::CdnNetwork& network = mapping.network();
  if (loads == nullptr || loads->size() != network.size()) {
    throw std::invalid_argument{"MapSnapshot: ledger must cover every cluster"};
  }
  if (inputs.units == nullptr) {
    throw std::invalid_argument{"MapSnapshot: mapping units are required"};
  }
  if (inputs.units->target_count() != mapping.mesh().target_count()) {
    throw std::invalid_argument{"MapSnapshot: unit partition does not match the mesh"};
  }

  auto snapshot = std::shared_ptr<MapSnapshot>{new MapSnapshot};
  snapshot->version_ = version;
  snapshot->built_at_ = built_at;
  snapshot->config_ = mapping.config();
  snapshot->world_ = &mapping.world();
  snapshot->mesh_ = &mapping.mesh();
  snapshot->loads_ = std::move(loads);
  snapshot->units_ = inputs.units;
  snapshot->top_k_ = snapshot->config_.scoring_top_k;

  // Frozen per-cluster serving view of the network's current liveness.
  snapshot->clusters_.resize(network.size());
  for (const cdn::Deployment& deployment : network.deployments()) {
    Cluster& cluster = snapshot->clusters_[deployment.id];
    cluster.capacity = deployment.capacity;
    if (!deployment.alive) continue;
    cluster.servers.reserve(deployment.servers.size());
    for (const cdn::Server& server : deployment.servers) {
      if (server.alive) cluster.servers.emplace_back(server.address);
    }
  }

  const MapSnapshot* prev = inputs.previous.get();
  const bool same_world =
      prev != nullptr && prev->world_ == snapshot->world_ && prev->mesh_ == snapshot->mesh_;

  // CANS cluster table + per-LDNS fallback targets: scores never depend
  // on liveness (usability is applied at pick()), so the table is built
  // once and shared by every later generation.
  if (same_world && prev->base_scoring_ != nullptr) {
    snapshot->base_scoring_ = prev->base_scoring_;
  } else {
    snapshot->base_scoring_ = std::make_shared<const cdn::Scoring>(cdn::Scoring::build(
        mapping.world(), network, mapping.mesh(), snapshot->top_k_,
        snapshot->config_.traffic_class, snapshot->config_.precompute_cluster_scores));
  }

  // Per-unit candidate lists over the live deployments.
  const std::size_t n_units = inputs.units->unit_count();
  const std::size_t n_deps = network.size();
  const cdn::PingMesh& mesh = mapping.mesh();
  const cdn::TrafficClass klass = snapshot->config_.traffic_class;
  const std::size_t top_k = snapshot->top_k_;
  snapshot->by_unit_.resize(n_units * top_k);

  std::vector<char> alive(n_deps, 0);
  for (std::size_t d = 0; d < n_deps; ++d) {
    alive[d] = snapshot->clusters_[d].servers.empty() ? 0 : 1;
  }

  const auto score_unit = [&](std::size_t u, std::vector<cdn::Candidate>& scratch) {
    const topo::PingTargetId rep = inputs.units->representative(
        static_cast<MappingUnits::UnitId>(u));
    scratch.clear();
    for (std::size_t d = 0; d < n_deps; ++d) {
      if (alive[d] == 0) continue;
      scratch.push_back(cdn::Candidate{
          static_cast<cdn::DeploymentId>(d),
          cdn::path_score(klass, mesh.rtt_ms(d, rep), mesh.loss_rate(d, rep))});
    }
    select_top_k(scratch, top_k, &snapshot->by_unit_[u * top_k]);
  };

  // Shard a unit list across the pool: contiguous stripes, one scratch
  // buffer per job (jobs outnumber workers so stripes stay balanced even
  // when some units are costlier than others).
  const auto score_all = [&](const std::vector<std::uint32_t>* subset) {
    const std::size_t count = subset != nullptr ? subset->size() : n_units;
    const auto run_range = [&](std::size_t lo, std::size_t hi) {
      std::vector<cdn::Candidate> scratch;
      scratch.reserve(n_deps);
      for (std::size_t i = lo; i < hi; ++i) {
        score_unit(subset != nullptr ? (*subset)[i] : i, scratch);
      }
    };
    if (inputs.pool != nullptr && inputs.pool->worker_count() > 0 && count >= 256) {
      const std::size_t jobs =
          std::min(count, (inputs.pool->worker_count() + 1) * std::size_t{8});
      const std::size_t stripe = (count + jobs - 1) / jobs;
      inputs.pool->run(jobs, [&](std::size_t job) {
        const std::size_t lo = job * stripe;
        run_range(lo, std::min(lo + stripe, count));
      });
    } else {
      run_range(0, count);
    }
  };

  // Delta eligibility: the previous generation must have scored the same
  // partition under the same scoring config.
  const bool delta_ok =
      same_world && prev->top_k_ == top_k && prev->config_.traffic_class == klass &&
      prev->by_unit_.size() == snapshot->by_unit_.size() &&
      (prev->units_ == snapshot->units_ ||
       prev->units_->fingerprint() == snapshot->units_->fingerprint());

  if (!delta_ok) {
    score_all(nullptr);
    snapshot->units_rescored_ = n_units;
    return snapshot;
  }

  // Diff the liveness frontier against the previous generation: a unit's
  // list can only change if a deployment on it died, or a revived one now
  // ranks at least as well as its current k-th entry (conservative on
  // score ties — re-scoring an unaffected unit is harmless, missing an
  // affected one is not; the differential test pins this).
  std::vector<std::uint32_t> died;
  std::vector<std::uint32_t> revived;
  for (std::size_t d = 0; d < n_deps; ++d) {
    const bool was_alive = !prev->clusters_[d].servers.empty();
    if (was_alive == (alive[d] != 0)) continue;
    (alive[d] != 0 ? revived : died).push_back(static_cast<std::uint32_t>(d));
  }
  snapshot->delta_ = true;
  snapshot->by_unit_ = prev->by_unit_;
  if (died.empty() && revived.empty()) {
    snapshot->units_rescored_ = 0;
    return snapshot;
  }

  std::vector<std::uint32_t> touched;
  for (std::size_t u = 0; u < n_units; ++u) {
    const cdn::Candidate* row = prev->by_unit_.data() + u * top_k;
    const cdn::Candidate& kth = row[top_k - 1];
    bool affected = !revived.empty() && !std::isfinite(kth.score_ms);
    if (!affected) {
      const topo::PingTargetId rep =
          inputs.units->representative(static_cast<MappingUnits::UnitId>(u));
      for (const std::uint32_t d : revived) {
        const float score = cdn::path_score(klass, mesh.rtt_ms(d, rep), mesh.loss_rate(d, rep));
        if (score <= kth.score_ms) {
          affected = true;
          break;
        }
      }
    }
    if (!affected) {
      for (std::size_t i = 0; i < top_k && std::isfinite(row[i].score_ms); ++i) {
        if (std::find(died.begin(), died.end(),
                      static_cast<std::uint32_t>(row[i].deployment)) != died.end()) {
          affected = true;
          break;
        }
      }
    }
    if (affected) touched.push_back(static_cast<std::uint32_t>(u));
  }
  score_all(&touched);
  snapshot->units_rescored_ = touched.size();
  return snapshot;
}

bool MapSnapshot::serving_equal(const MapSnapshot& other) const {
  if (units_->fingerprint() != other.units_->fingerprint()) return false;
  if (by_unit_ != other.by_unit_ || clusters_ != other.clusters_) return false;
  return base_scoring_ == other.base_scoring_ || *base_scoring_ == *other.base_scoring_;
}

bool MapSnapshot::usable(std::size_t cluster, double load_units) const noexcept {
  if (clusters_[cluster].servers.empty()) return false;
  if (!config_.global_lb.load_aware) return true;
  return loads_->load(cluster) + load_units <=
         clusters_[cluster].capacity * config_.global_lb.overload_factor;
}

std::optional<cdn::MapResult> MapSnapshot::pick(std::span<const cdn::Candidate> candidates,
                                                topo::PingTargetId fallback_target,
                                                std::string_view domain,
                                                double load_units) const {
  std::optional<cdn::DeploymentId> chosen;
  for (const cdn::Candidate& candidate : candidates) {
    if (!std::isfinite(candidate.score_ms)) break;
    if (usable(candidate.deployment, load_units)) {
      chosen = candidate.deployment;
      break;
    }
  }
  if (!chosen) {
    // Every precomputed candidate is dead or full: full mesh-column scan,
    // same as the live GlobalLoadBalancer's rare-path fallback.
    float best_score = std::numeric_limits<float>::infinity();
    for (std::size_t d = 0; d < clusters_.size(); ++d) {
      const float score = mesh_->rtt_ms(d, fallback_target);
      if (score < best_score && usable(d, load_units)) {
        chosen = static_cast<cdn::DeploymentId>(d);
        best_score = score;
      }
    }
  }
  if (!chosen) return std::nullopt;

  // The usable()/add() pair is not one atomic step: concurrent serving
  // threads may overshoot a cluster's capacity by a few in-flight
  // queries. The map maker's next rebuild sees the ledger and rebalances
  // — the paper's control loop, not per-query strictness.
  loads_->add(*chosen, load_units);

  const Cluster& cluster = clusters_[*chosen];
  cdn::MapResult result;
  result.deployment = *chosen;
  result.expected_rtt_ms = mesh_->rtt_ms(*chosen, fallback_target);

  // Rendezvous hashing over the frozen alive-server list, with the same
  // weight formula as the live LocalLoadBalancer so a domain keeps its
  // "home" servers whichever path answered (cache affinity).
  struct Ranked {
    std::uint64_t weight;
    std::size_t index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(cluster.servers.size());
  const std::uint64_t domain_hash = util::fnv1a64(domain);
  for (std::size_t i = 0; i < cluster.servers.size(); ++i) {
    ranked.push_back(Ranked{
        util::hash_combine(domain_hash,
                           static_cast<std::uint64_t>(cluster.servers[i].v4().value())),
        i});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.weight > b.weight; });
  const std::size_t want = std::min(config_.servers_per_answer, ranked.size());
  result.servers.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    result.servers.push_back(cluster.servers[ranked[i].index]);
  }
  if (result.servers.empty()) return std::nullopt;
  return result;
}

std::optional<cdn::MapResult> MapSnapshot::map_target(topo::PingTargetId target,
                                                      std::string_view domain,
                                                      double load_units) const {
  return pick(unit_candidates(units_->unit_of(target)), target, domain, load_units);
}

std::optional<cdn::MapResult> MapSnapshot::map_cluster(topo::LdnsId ldns,
                                                       std::string_view domain,
                                                       double load_units) const {
  return pick(base_scoring_->cluster_candidates(ldns), base_scoring_->ldns_target(ldns),
              domain, load_units);
}

MapSnapshot::MapExplanation MapSnapshot::explain(topo::LdnsId ldns,
                                                 std::optional<topo::BlockId> client_block,
                                                 std::string_view domain) const {
  MapExplanation out;
  out.version = version_;
  out.policy = config_.policy;

  // Mirror map()'s policy dispatch to find the mapping unit and the
  // precomputed candidate list pick() would walk.
  std::span<const cdn::Candidate> candidates;
  switch (config_.policy) {
    case cdn::MappingPolicy::end_user:
      if (client_block) {
        out.used_client_block = true;
        out.unit = world_->blocks.at(*client_block).ping_target;
        candidates = unit_candidates(units_->unit_of(out.unit));
        break;
      }
      [[fallthrough]];  // no ECS: degrade to NS, same as map()
    case cdn::MappingPolicy::ns_based:
      out.unit = world_->ldnses.at(ldns).ping_target;
      candidates = unit_candidates(units_->unit_of(out.unit));
      break;
    case cdn::MappingPolicy::client_aware_ns:
      out.unit = base_scoring_->ldns_target(ldns);
      candidates = base_scoring_->cluster_candidates(ldns);
      break;
  }
  out.mapping_unit = units_->unit_of(out.unit);
  out.unit_size = units_->members(out.mapping_unit).size();

  auto view_of = [this](cdn::DeploymentId d, float score) {
    ExplainCandidate view;
    view.deployment = d;
    view.score_ms = score;
    view.alive = !clusters_[d].servers.empty();
    view.usable = usable(d, 0.0);
    view.load = loads_->load(d);
    view.capacity = clusters_[d].capacity;
    return view;
  };
  for (const cdn::Candidate& candidate : candidates) {
    if (!std::isfinite(candidate.score_ms)) break;  // pick() stops here too
    out.candidates.push_back(view_of(candidate.deployment, candidate.score_ms));
  }

  // The authoritative answer: the identical call dns_handler makes
  // (load_units defaults to 0.0 there), so nothing can drift.
  out.result = map(ldns, client_block, domain, 0.0);
  if (out.result) {
    bool found = false;
    for (ExplainCandidate& view : out.candidates) {
      if (view.deployment == out.result->deployment) {
        view.chosen = true;
        found = true;
        break;
      }
    }
    if (!found) {
      // Chosen by the full mesh-column fallback scan, not the
      // precomputed list — surface it with its actual score.
      out.fallback_scan = true;
      ExplainCandidate view =
          view_of(out.result->deployment, mesh_->rtt_ms(out.result->deployment, out.unit));
      view.chosen = true;
      out.candidates.push_back(view);
    }
  }
  return out;
}

std::optional<cdn::MapResult> MapSnapshot::map(topo::LdnsId ldns,
                                               std::optional<topo::BlockId> client_block,
                                               std::string_view domain,
                                               double load_units) const {
  switch (config_.policy) {
    case cdn::MappingPolicy::end_user:
      if (client_block) {
        return map_target(world_->blocks.at(*client_block).ping_target, domain, load_units);
      }
      break;  // no ECS: degrade to NS
    case cdn::MappingPolicy::client_aware_ns:
      return map_cluster(ldns, domain, load_units);
    case cdn::MappingPolicy::ns_based:
      break;
  }
  return map_target(world_->ldnses.at(ldns).ping_target, domain, load_units);
}

}  // namespace eum::control
