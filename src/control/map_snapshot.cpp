#include "control/map_snapshot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/hash.h"

namespace eum::control {

LoadLedger::LoadLedger(std::size_t clusters)
    : size_(clusters), loads_(std::make_unique<std::atomic<double>[]>(clusters)) {
  for (std::size_t i = 0; i < size_; ++i) loads_[i].store(0.0, std::memory_order_relaxed);
}

double LoadLedger::add(std::size_t cluster, double units) noexcept {
  return loads_[cluster].fetch_add(units, std::memory_order_relaxed) + units;
}

void LoadLedger::reset() noexcept {
  for (std::size_t i = 0; i < size_; ++i) loads_[i].store(0.0, std::memory_order_relaxed);
}

std::shared_ptr<const MapSnapshot> MapSnapshot::build(const cdn::MappingSystem& mapping,
                                                      std::shared_ptr<LoadLedger> loads,
                                                      std::uint64_t version,
                                                      util::SimTime built_at) {
  const cdn::CdnNetwork& network = mapping.network();
  if (loads == nullptr || loads->size() != network.size()) {
    throw std::invalid_argument{"MapSnapshot: ledger must cover every cluster"};
  }

  auto snapshot = std::shared_ptr<MapSnapshot>{new MapSnapshot};
  snapshot->version_ = version;
  snapshot->built_at_ = built_at;
  snapshot->config_ = mapping.config();
  snapshot->world_ = &mapping.world();
  snapshot->mesh_ = &mapping.mesh();
  snapshot->loads_ = std::move(loads);

  // Fresh scoring over the network's current liveness — the map maker's
  // recompute step — then a frozen per-cluster serving view.
  snapshot->scoring_ =
      cdn::Scoring::build(mapping.world(), network, mapping.mesh(),
                          mapping.config().scoring_top_k, mapping.config().traffic_class);
  snapshot->clusters_.resize(network.size());
  for (const cdn::Deployment& deployment : network.deployments()) {
    Cluster& cluster = snapshot->clusters_[deployment.id];
    cluster.capacity = deployment.capacity;
    if (!deployment.alive) continue;
    cluster.servers.reserve(deployment.servers.size());
    for (const cdn::Server& server : deployment.servers) {
      if (server.alive) cluster.servers.emplace_back(server.address);
    }
  }
  return snapshot;
}

bool MapSnapshot::usable(std::size_t cluster, double load_units) const noexcept {
  if (clusters_[cluster].servers.empty()) return false;
  if (!config_.global_lb.load_aware) return true;
  return loads_->load(cluster) + load_units <=
         clusters_[cluster].capacity * config_.global_lb.overload_factor;
}

std::optional<cdn::MapResult> MapSnapshot::pick(std::span<const cdn::Candidate> candidates,
                                                topo::PingTargetId fallback_target,
                                                std::string_view domain,
                                                double load_units) const {
  std::optional<cdn::DeploymentId> chosen;
  for (const cdn::Candidate& candidate : candidates) {
    if (!std::isfinite(candidate.score_ms)) break;
    if (usable(candidate.deployment, load_units)) {
      chosen = candidate.deployment;
      break;
    }
  }
  if (!chosen) {
    // Every precomputed candidate is dead or full: full mesh-column scan,
    // same as the live GlobalLoadBalancer's rare-path fallback.
    float best_score = std::numeric_limits<float>::infinity();
    for (std::size_t d = 0; d < clusters_.size(); ++d) {
      const float score = mesh_->rtt_ms(d, fallback_target);
      if (score < best_score && usable(d, load_units)) {
        chosen = static_cast<cdn::DeploymentId>(d);
        best_score = score;
      }
    }
  }
  if (!chosen) return std::nullopt;

  // The usable()/add() pair is not one atomic step: concurrent serving
  // threads may overshoot a cluster's capacity by a few in-flight
  // queries. The map maker's next rebuild sees the ledger and rebalances
  // — the paper's control loop, not per-query strictness.
  loads_->add(*chosen, load_units);

  const Cluster& cluster = clusters_[*chosen];
  cdn::MapResult result;
  result.deployment = *chosen;
  result.expected_rtt_ms = mesh_->rtt_ms(*chosen, fallback_target);

  // Rendezvous hashing over the frozen alive-server list, with the same
  // weight formula as the live LocalLoadBalancer so a domain keeps its
  // "home" servers whichever path answered (cache affinity).
  struct Ranked {
    std::uint64_t weight;
    std::size_t index;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(cluster.servers.size());
  const std::uint64_t domain_hash = util::fnv1a64(domain);
  for (std::size_t i = 0; i < cluster.servers.size(); ++i) {
    ranked.push_back(Ranked{
        util::hash_combine(domain_hash,
                           static_cast<std::uint64_t>(cluster.servers[i].v4().value())),
        i});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.weight > b.weight; });
  const std::size_t want = std::min(config_.servers_per_answer, ranked.size());
  result.servers.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    result.servers.push_back(cluster.servers[ranked[i].index]);
  }
  if (result.servers.empty()) return std::nullopt;
  return result;
}

std::optional<cdn::MapResult> MapSnapshot::map_target(topo::PingTargetId target,
                                                      std::string_view domain,
                                                      double load_units) const {
  return pick(scoring_.target_candidates(target), target, domain, load_units);
}

std::optional<cdn::MapResult> MapSnapshot::map_cluster(topo::LdnsId ldns,
                                                       std::string_view domain,
                                                       double load_units) const {
  return pick(scoring_.cluster_candidates(ldns), scoring_.ldns_target(ldns), domain,
              load_units);
}

MapSnapshot::MapExplanation MapSnapshot::explain(topo::LdnsId ldns,
                                                 std::optional<topo::BlockId> client_block,
                                                 std::string_view domain) const {
  MapExplanation out;
  out.version = version_;
  out.policy = config_.policy;

  // Mirror map()'s policy dispatch to find the mapping unit and the
  // precomputed candidate list pick() would walk.
  std::span<const cdn::Candidate> candidates;
  switch (config_.policy) {
    case cdn::MappingPolicy::end_user:
      if (client_block) {
        out.used_client_block = true;
        out.unit = world_->blocks.at(*client_block).ping_target;
        candidates = scoring_.target_candidates(out.unit);
        break;
      }
      [[fallthrough]];  // no ECS: degrade to NS, same as map()
    case cdn::MappingPolicy::ns_based:
      out.unit = world_->ldnses.at(ldns).ping_target;
      candidates = scoring_.target_candidates(out.unit);
      break;
    case cdn::MappingPolicy::client_aware_ns:
      out.unit = scoring_.ldns_target(ldns);
      candidates = scoring_.cluster_candidates(ldns);
      break;
  }

  auto view_of = [this](cdn::DeploymentId d, float score) {
    ExplainCandidate view;
    view.deployment = d;
    view.score_ms = score;
    view.alive = !clusters_[d].servers.empty();
    view.usable = usable(d, 0.0);
    view.load = loads_->load(d);
    view.capacity = clusters_[d].capacity;
    return view;
  };
  for (const cdn::Candidate& candidate : candidates) {
    if (!std::isfinite(candidate.score_ms)) break;  // pick() stops here too
    out.candidates.push_back(view_of(candidate.deployment, candidate.score_ms));
  }

  // The authoritative answer: the identical call dns_handler makes
  // (load_units defaults to 0.0 there), so nothing can drift.
  out.result = map(ldns, client_block, domain, 0.0);
  if (out.result) {
    bool found = false;
    for (ExplainCandidate& view : out.candidates) {
      if (view.deployment == out.result->deployment) {
        view.chosen = true;
        found = true;
        break;
      }
    }
    if (!found) {
      // Chosen by the full mesh-column fallback scan, not the
      // precomputed list — surface it with its actual score.
      out.fallback_scan = true;
      ExplainCandidate view =
          view_of(out.result->deployment, mesh_->rtt_ms(out.result->deployment, out.unit));
      view.chosen = true;
      out.candidates.push_back(view);
    }
  }
  return out;
}

std::optional<cdn::MapResult> MapSnapshot::map(topo::LdnsId ldns,
                                               std::optional<topo::BlockId> client_block,
                                               std::string_view domain,
                                               double load_units) const {
  switch (config_.policy) {
    case cdn::MappingPolicy::end_user:
      if (client_block) {
        return map_target(world_->blocks.at(*client_block).ping_target, domain, load_units);
      }
      break;  // no ECS: degrade to NS
    case cdn::MappingPolicy::client_aware_ns:
      return map_cluster(ldns, domain, load_units);
    case cdn::MappingPolicy::ns_based:
      break;
  }
  return map_target(world_->ldnses.at(ldns).ping_target, domain, load_units);
}

}  // namespace eum::control
