// Staged end-user mapping roll-out (paper §4).
//
// Akamai flipped resolvers from NS-based to end-user mapping in cohorts
// between Mar 28 and Apr 15 2014 and watched the metrics move (Figures
// 13-20). This controller is that switchboard: every LDNS hashes into a
// stable cohort, a ramp fraction decides how many cohorts are enabled,
// and the live DNS path asks `end_user_enabled(ldns)` per query — so a
// resolver flips exactly once, at a deterministic point of the ramp, and
// stays flipped. A whitelist covers the paper's pre-ramp testing phase
// (individual resolvers enabled ahead of their cohort).
//
// The fraction is a single atomic, so the timeline driver (a simulated
// calendar, or a wall-clock ramp in examples/ecs_dns_server) can advance
// the roll-out while UDP workers consult the gate lock-free.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "cdn/mapping.h"
#include "topo/world.h"
#include "util/sim_clock.h"

namespace eum::control {

struct RolloutRampConfig {
  util::Date ramp_start{2014, 3, 28};
  util::Date ramp_end{2014, 4, 15};
  /// Resolvers flip in this many waves; higher is smoother. 64 cohorts
  /// over the paper's 18-day ramp is ~3.5 cohorts/day.
  std::uint32_t cohorts = 64;
  /// Seed of the cohort-assignment hash (which resolvers flip early).
  std::uint64_t seed = 0x5eed;
};

class RolloutController {
 public:
  /// Throws std::invalid_argument on an inverted ramp or zero cohorts.
  explicit RolloutController(RolloutRampConfig config = {});

  /// Stable cohort of an LDNS in [0, cohorts).
  [[nodiscard]] std::uint32_t cohort(topo::LdnsId ldns) const noexcept;

  /// Continuous ramp fraction on a date: 0 before ramp_start, 1 at/after
  /// ramp_end, linear in between (the paper's Fig 13 x-axis).
  [[nodiscard]] double fraction_on(const util::Date& date) const;

  /// Advance the roll-out to a calendar date (sets the fraction).
  void set_date(const util::Date& date) { set_fraction(fraction_on(date)); }

  /// Drive the ramp directly (clamped to [0,1]). Thread-safe; serving
  /// threads observe the new fraction on their next query.
  void set_fraction(double fraction) noexcept;

  [[nodiscard]] double fraction() const noexcept {
    return fraction_.load(std::memory_order_relaxed);
  }

  /// Cohorts currently enabled (floor of fraction * cohorts, all at 1.0).
  [[nodiscard]] std::uint32_t enabled_cohorts() const noexcept;

  /// Always give this resolver end-user answers, regardless of the ramp
  /// (the pre-roll-out test population). Setup-time only: not safe to
  /// call while serving threads consult the gate.
  void whitelist(topo::LdnsId ldns);

  /// Is this resolver in the pre-ramp whitelist? Introspection for the
  /// admin channel's `explain` (read-only; same setup-time caveat as
  /// whitelist() does not apply to reads after setup).
  [[nodiscard]] bool is_whitelisted(topo::LdnsId ldns) const noexcept {
    return std::binary_search(whitelist_.begin(), whitelist_.end(), ldns);
  }

  /// The per-query decision: should this resolver's clients get end-user
  /// mapping right now? Lock-free; safe from any thread.
  [[nodiscard]] bool end_user_enabled(topo::LdnsId ldns) const noexcept;

  /// Adapter for cdn::MappingSystem::set_end_user_gate. The controller
  /// must outlive the mapping system's use of the gate.
  [[nodiscard]] cdn::EndUserGateFn gate() const;

  [[nodiscard]] const RolloutRampConfig& config() const noexcept { return config_; }

 private:
  RolloutRampConfig config_;
  std::atomic<double> fraction_{0.0};
  std::vector<topo::LdnsId> whitelist_;  ///< sorted for binary search
};

}  // namespace eum::control
