#include "control/rollout_controller.h"

#include <algorithm>
#include <stdexcept>

#include "util/hash.h"

namespace eum::control {

RolloutController::RolloutController(RolloutRampConfig config) : config_(config) {
  if (util::day_index(config_.ramp_start) > util::day_index(config_.ramp_end)) {
    throw std::invalid_argument{"RolloutController: ramp_start after ramp_end"};
  }
  if (config_.cohorts == 0) {
    throw std::invalid_argument{"RolloutController: need at least one cohort"};
  }
}

std::uint32_t RolloutController::cohort(topo::LdnsId ldns) const noexcept {
  return static_cast<std::uint32_t>(
      util::hash_combine(config_.seed, static_cast<std::uint64_t>(ldns)) % config_.cohorts);
}

double RolloutController::fraction_on(const util::Date& date) const {
  const int day = util::day_index(date);
  const int ramp_lo = util::day_index(config_.ramp_start);
  const int ramp_hi = util::day_index(config_.ramp_end);
  if (day < ramp_lo) return 0.0;
  if (day >= ramp_hi) return 1.0;
  return static_cast<double>(day - ramp_lo) / static_cast<double>(ramp_hi - ramp_lo);
}

void RolloutController::set_fraction(double fraction) noexcept {
  fraction_.store(std::clamp(fraction, 0.0, 1.0), std::memory_order_relaxed);
}

std::uint32_t RolloutController::enabled_cohorts() const noexcept {
  return static_cast<std::uint32_t>(fraction() * static_cast<double>(config_.cohorts));
}

void RolloutController::whitelist(topo::LdnsId ldns) {
  const auto at = std::lower_bound(whitelist_.begin(), whitelist_.end(), ldns);
  if (at == whitelist_.end() || *at != ldns) whitelist_.insert(at, ldns);
}

bool RolloutController::end_user_enabled(topo::LdnsId ldns) const noexcept {
  if (std::binary_search(whitelist_.begin(), whitelist_.end(), ldns)) return true;
  // cohort k flips when the ramp crosses (k+1)/cohorts — cohort 0 first,
  // the last cohort exactly at fraction 1.0.
  return static_cast<double>(cohort(ldns)) <
         fraction_.load(std::memory_order_relaxed) * static_cast<double>(config_.cohorts);
}

cdn::EndUserGateFn RolloutController::gate() const {
  return [this](topo::LdnsId ldns) { return end_user_enabled(ldns); };
}

}  // namespace eum::control
