// The map maker: the control plane of the mapping system (paper §2.2).
//
// "The map maker" in the paper continuously recomputes the topology
// scores and load-balancing decisions from fresh liveness and measurement
// data and distributes the resulting map to the name servers. This class
// is that loop: it rebuilds scoring + global-LB state into an immutable
// MapSnapshot and publishes it through an RCU-style
// `std::atomic<std::shared_ptr<const MapSnapshot>>`. Serving threads load
// the pointer once per query (acquire) and answer entirely from that
// generation; retired snapshots die when their last in-flight reader
// drops the reference — no locks, no torn maps, no quiescent-state
// bookkeeping.
//
// Two drive modes share the same rebuild path:
//   - tick(): synchronous and SimClock-driven, for simulations and tests
//     (rebuild when the rescore interval elapses or the watched
//     LivenessMonitor reports transitions — the on-demand trigger).
//   - start(interval): a background thread republishing on a wall-clock
//     cadence, for the real UDP serving stack; request_rebuild() wakes it
//     early (the "push a new map now" path after an incident).
//
// Rebuilds read the mutable CdnNetwork (liveness flags): run liveness
// ticks and rebuilds from one thread, or synchronize them externally.
// The serving path never touches the network — only published snapshots.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "cdn/liveness.h"
#include "cdn/mapping.h"
#include "control/map_snapshot.h"
#include "control/mapping_units.h"
#include "lockfree/atomics_policy.h"
#include "lockfree/versioned_rcu.h"
#include "obs/metrics.h"
#include "util/shard_pool.h"
#include "util/sim_clock.h"

namespace eum::control {

struct MapMakerConfig {
  /// Periodic rebuild cadence for the SimClock-driven tick() mode.
  std::int64_t rescore_interval_s = 30;
  /// Publish rebuilds whose serving state is unchanged (version still
  /// advances). Off by default: unchanged maps are counted as skipped
  /// publishes instead. Churn/soak tests turn this on to exercise the
  /// republish path at full rate.
  bool publish_unchanged = false;
  /// Registry for the eum_control_* metrics (borrowed; must outlive the
  /// map maker). nullptr gives the maker a private registry.
  obs::MetricsRegistry* registry = nullptr;
  /// Total scoring concurrency per rebuild (workers + the rebuild thread
  /// itself). 0 sizes to the hardware; 1 scores serially.
  std::size_t scoring_shards = 0;
  /// Delta rebuilds: re-score only the mapping units the liveness
  /// transitions since the previous snapshot can affect. Exact by the
  /// shared (score, id) ordering — the differential test pins delta
  /// output == full-rebuild output.
  bool incremental = true;
  /// Latency-vector quantization for the unit partition (see
  /// MappingUnitsConfig::epsilon_ms; 0 = exact grouping).
  float unit_epsilon_ms = 0.0F;
  /// How often the background thread polls the watched LivenessMonitor
  /// between periodic rebuilds. Bounds re-map latency after a transition;
  /// clamped to the republish interval.
  std::chrono::milliseconds liveness_poll{5};
  /// Test seam: runs on the rebuild thread after the snapshot is built
  /// but before it is published — the window where a liveness transition
  /// is too late for the built map and must survive into the next tick.
  std::function<void()> after_build_hook;
};

/// Why a rebuild ran — kept per-reason so operators can tell a control
/// loop that is rebuilding on schedule from one thrashing on liveness
/// flaps (surfaced by the admin channel's `snapshot.info`).
enum class RebuildReason : std::uint8_t {
  initial,    ///< the synchronous version-1 build in the constructor
  periodic,   ///< tick() interval elapsed / background cadence fired
  liveness,   ///< a watched LivenessMonitor transition forced a publish
  requested,  ///< request_rebuild() woke the background thread
  manual,     ///< a direct rebuild_now() call
};

[[nodiscard]] const char* to_string(RebuildReason reason) noexcept;

class MapMaker {
 public:
  /// `mapping` is borrowed and must outlive the map maker; `clock` (also
  /// borrowed, may be nullptr) timestamps snapshots and paces tick().
  /// Builds and publishes version 1 synchronously, so current() is never
  /// null.
  explicit MapMaker(cdn::MappingSystem* mapping, const util::SimClock* clock = nullptr,
                    MapMakerConfig config = {});
  ~MapMaker();

  MapMaker(const MapMaker&) = delete;
  MapMaker& operator=(const MapMaker&) = delete;

  /// The current map. Lock-free acquire load; the returned snapshot is
  /// immutable and stays valid for as long as the reference is held,
  /// however many republishes happen meanwhile.
  [[nodiscard]] std::shared_ptr<const MapSnapshot> current() const {
    return published_.snapshot();
  }

  [[nodiscard]] std::uint64_t version() const noexcept { return published_.version(); }

  /// The version cell itself, for serve-path consumers that key caches
  /// on the published map generation (UdpServerConfig::map_version).
  /// Invalidation contract: rebuild_now() stores the snapshot pointer
  /// before the version (both release), so an acquire load that returns
  /// V guarantees current() already serves generation >= V — an answer
  /// computed after that load can never be cached under a version newer
  /// than the map that produced it. The protocol lives in
  /// lockfree::VersionedRcu and is model-checked (mc/protocols.cpp).
  [[nodiscard]] const std::atomic<std::uint64_t>& version_cell() const noexcept {
    return published_.version_cell();
  }

  /// The shared per-cluster load ledger (survives republishes).
  [[nodiscard]] LoadLedger& loads() noexcept { return *ledger_; }

  /// Route the mapping system's map()/DNS handlers through the published
  /// snapshot: installs a fast path that resolves every decision against
  /// current(). After this, the mapping handlers are safe to call from
  /// many serving threads with no external lock.
  void install_fast_path();

  /// Watch a liveness monitor (borrowed). tick() treats new transitions
  /// as an on-demand rebuild trigger, publishing even when the periodic
  /// interval has not elapsed; the background thread (start()) drives the
  /// monitor's probes itself and force-publishes on every transition, in
  /// liveness_poll-bounded time. Install before start() — the monitor is
  /// probed from the rebuild thread.
  void watch(cdn::LivenessMonitor* monitor) noexcept { monitor_ = monitor; }

  /// Synchronous rebuild (reason: manual). With `force` (or
  /// config.publish_unchanged) the result is always published; otherwise a
  /// serving-identical rebuild is skipped. Returns the now-current
  /// snapshot either way.
  std::shared_ptr<const MapSnapshot> rebuild_now(bool force = false);

  /// SimClock-driven drive: rebuild when the rescore interval elapsed or
  /// the watched monitor transitioned since the last build. Returns true
  /// if a rebuild ran.
  bool tick();

  /// Start the background republish thread (idempotent).
  void start(std::chrono::milliseconds interval);

  /// Stop and join the background thread; idempotent (also run by the
  /// destructor).
  void stop();

  /// Wake the background thread for an immediate forced rebuild.
  void request_rebuild();

  /// Update the map-age gauge from the wall clock (called on publish;
  /// exposition paths call it so dumped gauges are fresh).
  void refresh_gauges() noexcept;

  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return *registry_; }
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_->value(); }
  [[nodiscard]] std::uint64_t publishes() const noexcept { return publishes_->value(); }
  [[nodiscard]] std::uint64_t skipped_publishes() const noexcept {
    return publishes_skipped_->value();
  }
  [[nodiscard]] std::uint64_t rebuilds_for(RebuildReason reason) const noexcept {
    return rebuilds_by_reason_[static_cast<std::size_t>(reason)]->value();
  }
  /// The unit partition every snapshot of this maker scores against.
  [[nodiscard]] const MappingUnits& units() const noexcept { return *units_; }

 private:
  static constexpr std::size_t kRebuildReasons = 5;

  [[nodiscard]] util::SimTime build_time() const noexcept;
  std::shared_ptr<const MapSnapshot> rebuild_with_reason(bool force, RebuildReason reason);
  void run_loop(std::chrono::milliseconds interval);

  cdn::MappingSystem* mapping_;
  const util::SimClock* clock_;
  MapMakerConfig config_;
  cdn::LivenessMonitor* monitor_ = nullptr;
  std::shared_ptr<LoadLedger> ledger_;
  std::shared_ptr<const MappingUnits> units_;
  std::unique_ptr<util::ShardPool> pool_;

  /// Snapshot-before-version publish protocol (extracted lock-free
  /// kernel; identical code is model-checked under mc::atomic).
  lockfree::VersionedRcu<lockfree::StdAtomicsPolicy, std::shared_ptr<const MapSnapshot>>
      published_;

  std::mutex rebuild_mutex_;  ///< serializes rebuild_now callers
  util::SimTime last_build_{};
  /// Monitor transition count already reflected in the published map.
  /// Sampled BEFORE a build reads liveness, stored after it publishes —
  /// a transition landing mid-build stays unseen and triggers the next
  /// wake. Atomic: the background thread stores it while tick() callers
  /// (other threads in tests) read it.
  std::atomic<std::uint64_t> transitions_seen_{0};
  std::chrono::steady_clock::time_point started_at_;
  std::atomic<std::int64_t> published_wall_us_{0};  ///< since started_at_

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool rebuild_requested_ = false;

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  obs::Gauge* map_version_;
  obs::Gauge* map_age_s_;
  obs::Counter* rebuilds_;
  obs::Counter* rebuilds_by_reason_[kRebuildReasons];
  obs::Counter* publishes_;
  obs::Counter* publishes_skipped_;
  obs::Counter* delta_rebuilds_;
  obs::Counter* units_rescored_;
  obs::Gauge* mapping_units_;
  obs::LatencyHistogram* rebuild_latency_;
};

}  // namespace eum::control
