// Mapping units: the map maker's unit of scoring work (paper §2.2, §5).
//
// "The new system needed to handle an increase of two orders of magnitude
// in the number of mapping units" — scoring every /24 block (or even
// every ping target) independently on every rebuild does not scale to a
// paper-sized world. Following the clustering approach of Gürsun (see
// PAPERS.md), we partition the ping-target space by latency vector: two
// targets whose measured (rtt, loss) vectors across all deployments agree
// to within epsilon are interchangeable for mapping purposes and share
// one mapping unit. One representative target is scored per unit and the
// result serves every member.
//
// The partition is a pure function of the ping mesh and epsilon — it is
// computed once, shared across snapshot generations (liveness does not
// move a target between units), and is the granularity at which delta
// rebuilds re-score after a liveness transition.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cdn/ping_mesh.h"
#include "topo/world.h"

namespace eum::control {

struct MappingUnitsConfig {
  /// Latency-vector quantization step. 0 groups only bit-identical
  /// columns (the exactness mode: unit scoring then reproduces per-target
  /// scoring exactly); larger values trade fidelity for fewer units.
  /// Loss rates quantize at a fixed 1e-3 step whenever epsilon > 0.
  float epsilon_ms = 0.0F;
};

class MappingUnits {
 public:
  using UnitId = std::uint32_t;

  /// Partition the mesh's targets. Deterministic: the same mesh and
  /// epsilon always yield the same units with the same ids (units are
  /// numbered by first appearance in target order).
  static std::shared_ptr<const MappingUnits> build(const cdn::PingMesh& mesh,
                                                   const MappingUnitsConfig& config = {});

  /// The unit a ping target belongs to.
  [[nodiscard]] UnitId unit_of(topo::PingTargetId target) const {
    return unit_of_.at(target);
  }

  /// All member targets of a unit, in target order.
  [[nodiscard]] std::span<const topo::PingTargetId> members(UnitId unit) const {
    if (static_cast<std::size_t>(unit) + 1 >= member_offsets_.size()) return {};
    return {member_data_.data() + member_offsets_[unit],
            member_offsets_[static_cast<std::size_t>(unit) + 1] - member_offsets_[unit]};
  }

  /// The target scored on the unit's behalf (its first member).
  [[nodiscard]] topo::PingTargetId representative(UnitId unit) const {
    return member_data_.at(member_offsets_.at(unit));
  }

  [[nodiscard]] std::size_t unit_count() const noexcept { return member_offsets_.size() - 1; }
  [[nodiscard]] std::size_t target_count() const noexcept { return unit_of_.size(); }

  /// Content hash of the whole partition — equal fingerprints mean two
  /// independently built partitions agree (the determinism tests' check,
  /// and serving_equal's identity test across map makers).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

 private:
  MappingUnits() = default;

  std::vector<UnitId> unit_of_;                 ///< per target
  std::vector<std::uint32_t> member_offsets_;   ///< unit_count + 1 (sentinel)
  std::vector<topo::PingTargetId> member_data_; ///< members grouped by unit
  std::uint64_t fingerprint_ = 0;
};

}  // namespace eum::control
