// DNS query-rate scaling study (paper §5.2, Figures 23 and 24).
//
// Turning on ECS multiplies the queries an LDNS sends upstream: where a
// cached answer used to serve every client of the resolver for a full
// TTL, a scoped (/24) answer only serves clients of one block, so each
// active block costs its own upstream query per TTL. The paper measured
// an 8x increase for public resolvers (33.5K -> 270K qps).
//
// This study reproduces the effect mechanically: it instantiates the
// *real* RecursiveResolver (RFC 7871 scoped cache) per sampled LDNS,
// drives it with Poisson client arrivals drawn from the world's demand,
// and counts actual upstream queries with ECS off and on — same arrival
// realization both times.
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/mapping.h"
#include "topo/world.h"

namespace eum::sim {

struct QueryRateConfig {
  /// ISP LDNSes sampled (all public-resolver sites are always included).
  std::size_t isp_ldns_sample = 120;
  /// CDN-hosted domains and their popularity skew.
  std::size_t domain_count = 60;
  double domain_zipf = 1.0;
  /// Traffic horizon simulated per (LDNS, domain) pair, seconds.
  double horizon_seconds = 3600.0;
  /// Client DNS query rate per demand unit, queries/second.
  double queries_per_demand_unit = 0.002;
  /// TTL of the mapping system's dynamic answers.
  std::uint32_t answer_ttl = 60;
  std::uint64_t seed = 11;
};

/// Per-(domain, LDNS) outcome.
struct PairQueryStats {
  topo::LdnsId ldns = 0;
  std::size_t domain = 0;
  bool is_public = false;
  std::uint64_t client_queries = 0;
  std::uint64_t upstream_pre = 0;   ///< upstream queries, ECS off
  std::uint64_t upstream_post = 0;  ///< upstream queries, ECS on
  /// Queries per TTL prior to the roll-out (the Fig 24 popularity axis;
  /// at most ~1 since a cached answer serves a whole TTL).
  [[nodiscard]] double popularity(double horizon, std::uint32_t ttl) const {
    return static_cast<double>(upstream_pre) * static_cast<double>(ttl) / horizon;
  }
  [[nodiscard]] double factor() const {
    return upstream_pre == 0 ? 1.0
                             : static_cast<double>(upstream_post) /
                                   static_cast<double>(upstream_pre);
  }
};

struct QueryRateResult {
  std::vector<PairQueryStats> pairs;
  double horizon_seconds = 0.0;
  std::uint32_t answer_ttl = 0;
  /// Aggregate upstream qps from public resolvers, ECS off / on.
  double public_pre_qps = 0.0;
  double public_post_qps = 0.0;
  /// Aggregate upstream qps from (sampled) ISP resolvers — ECS-independent.
  double isp_qps = 0.0;
  /// Demand covered by the sampled ISP resolvers, as a fraction of all
  /// non-public demand (for scaling the Fig 23 totals).
  double isp_demand_coverage = 0.0;

  [[nodiscard]] double public_factor() const {
    return public_pre_qps > 0.0 ? public_post_qps / public_pre_qps : 1.0;
  }

  /// Fig 24: bucket pairs by popularity and report the mean factor.
  /// With `ecs_pairs_only`, factors cover only ECS-capable (public) LDNS
  /// pairs — the population the roll-out actually multiplied; the
  /// pre-roll-out query shares always cover every pair.
  struct Bucket {
    double popularity_lo = 0.0;
    double popularity_hi = 0.0;
    double mean_factor = 1.0;
    double pre_query_share = 0.0;  ///< share of total pre-roll-out queries
    std::size_t pair_count = 0;
  };
  [[nodiscard]] std::vector<Bucket> popularity_buckets(std::size_t bucket_count = 10,
                                                       bool ecs_pairs_only = false) const;
};

/// Run the study against a world and a mapping system (whose policy
/// should be end_user; its ECS scope setting is what makes post-roll-out
/// cache entries block-scoped).
[[nodiscard]] QueryRateResult run_query_rate_study(const topo::World& world,
                                                   cdn::MappingSystem& mapping,
                                                   const QueryRateConfig& config);

}  // namespace eum::sim
