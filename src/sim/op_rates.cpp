#include "sim/op_rates.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace eum::sim {

std::vector<HourlyRates> operational_rates(const topo::World& world, const util::Date& from,
                                           const util::Date& to, const OpRateConfig& config) {
  const int first = util::day_index(from);
  const int last = util::day_index(to);
  if (first >= last) throw std::invalid_argument{"operational_rates: empty period"};

  // Demand-proportional base rate at simulation scale.
  const double base_rps = world.total_demand() / 1e6 * config.base_requests_per_demand_unit * 1e6;
  util::Rng rng{config.seed};

  std::vector<HourlyRates> series;
  series.reserve(static_cast<std::size_t>(last - first) * 24);
  for (int day = first; day < last; ++day) {
    // Weekly dip: Jan 1 2014 was a Wednesday (weekday index 3).
    const int weekday = (day + 3) % 7;
    const bool weekend = weekday == 6 || weekday == 0;
    const double weekly = weekend ? 1.0 - config.weekly_amplitude : 1.0;
    for (int hour = 0; hour < 24; ++hour) {
      const double phase = 2.0 * 3.141592653589793 * (hour - 14) / 24.0;
      const double diurnal = 1.0 + config.diurnal_amplitude * std::cos(phase);
      const double noise = 1.0 + 0.02 * rng.normal();
      HourlyRates point;
      point.time = util::SimTime{(static_cast<std::int64_t>(day) * 24 + hour) * 3600};
      point.client_requests_per_s = base_rps * weekly * diurnal * noise;
      point.dns_queries_per_s = point.client_requests_per_s / config.requests_per_dns_query;
      series.push_back(point);
    }
  }
  return series;
}

std::vector<MonthlyRumVolume> rum_measurement_volumes(const topo::World& world,
                                                      const std::vector<bool>& high_expectation,
                                                      double jan_total_millions,
                                                      double jun_total_millions) {
  if (high_expectation.size() != world.countries.size()) {
    throw std::invalid_argument{"rum_measurement_volumes: classification size mismatch"};
  }
  // Split qualified (public-resolver) demand across expectation groups.
  double high_demand = 0.0;
  double low_demand = 0.0;
  for (const topo::ClientBlock& block : world.blocks) {
    for (const topo::LdnsUse& use : world.ldns_uses(block)) {
      if (world.ldnses[use.ldns].type != topo::LdnsType::public_site) continue;
      const double d = block.demand * use.fraction;
      (high_expectation[block.country] ? high_demand : low_demand) += d;
    }
  }
  const double total = high_demand + low_demand;
  const double high_share = total > 0.0 ? high_demand / total : 0.5;

  std::vector<MonthlyRumVolume> months;
  for (int m = 1; m <= 6; ++m) {
    // Measurement volume grows as more pages/clients get instrumented.
    const double t = static_cast<double>(m - 1) / 5.0;
    const double total_m = jan_total_millions +
                           (jun_total_millions - jan_total_millions) * t;
    MonthlyRumVolume volume;
    volume.month = m;
    volume.high_expectation_millions = total_m * high_share;
    volume.low_expectation_millions = total_m * (1.0 - high_share);
    months.push_back(volume);
  }
  return months;
}

}  // namespace eum::sim
