#include "sim/query_rate.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dnsserver/authoritative.h"
#include "dnsserver/resolver.h"
#include "dnsserver/transport.h"
#include "util/sim_clock.h"

namespace eum::sim {

namespace {

using dnsserver::AuthoritativeServer;
using dnsserver::AuthorityDirectory;
using dnsserver::RecursiveResolver;
using dnsserver::ResolverConfig;

/// Client arrival: time plus the querying block.
struct Arrival {
  double time_s;
  topo::BlockId block;
};

/// Members of an LDNS with their query weights.
struct LdnsMembers {
  std::vector<topo::BlockId> blocks;
  std::vector<double> weights;
  double total_weight = 0.0;
};

}  // namespace

std::vector<QueryRateResult::Bucket> QueryRateResult::popularity_buckets(
    std::size_t bucket_count, bool ecs_pairs_only) const {
  std::vector<Bucket> buckets(bucket_count);
  double total_pre = 0.0;
  for (const PairQueryStats& pair : pairs) total_pre += static_cast<double>(pair.upstream_pre);
  std::vector<double> factor_sum(bucket_count, 0.0);
  std::vector<double> pre_sum(bucket_count, 0.0);
  for (std::size_t b = 0; b < bucket_count; ++b) {
    buckets[b].popularity_lo = static_cast<double>(b) / static_cast<double>(bucket_count);
    buckets[b].popularity_hi = static_cast<double>(b + 1) / static_cast<double>(bucket_count);
  }
  for (const PairQueryStats& pair : pairs) {
    if (pair.upstream_pre == 0) continue;
    const double pop = pair.popularity(horizon_seconds, answer_ttl);
    auto b = static_cast<std::size_t>(pop * static_cast<double>(bucket_count));
    b = std::min(b, bucket_count - 1);
    pre_sum[b] += static_cast<double>(pair.upstream_pre);
    if (ecs_pairs_only && !pair.is_public) continue;
    factor_sum[b] += pair.factor();
    ++buckets[b].pair_count;
  }
  for (std::size_t b = 0; b < bucket_count; ++b) {
    if (buckets[b].pair_count > 0) {
      buckets[b].mean_factor = factor_sum[b] / static_cast<double>(buckets[b].pair_count);
    }
    buckets[b].pre_query_share = total_pre > 0.0 ? pre_sum[b] / total_pre : 0.0;
  }
  return buckets;
}

QueryRateResult run_query_rate_study(const topo::World& world, cdn::MappingSystem& mapping,
                                     const QueryRateConfig& config) {
  util::Rng rng{config.seed};
  QueryRateResult result;
  result.horizon_seconds = config.horizon_seconds;
  result.answer_ttl = config.answer_ttl;

  // ---- Sampled LDNS population -----------------------------------------
  // All public sites, plus the top ISP resolvers by demand.
  std::unordered_map<topo::LdnsId, LdnsMembers> members;
  std::unordered_map<topo::LdnsId, double> ldns_demand;
  for (const topo::ClientBlock& block : world.blocks) {
    for (const topo::LdnsUse& use : world.ldns_uses(block)) {
      auto& m = members[use.ldns];
      m.blocks.push_back(block.id);
      m.weights.push_back(block.demand * use.fraction);
      m.total_weight += block.demand * use.fraction;
      ldns_demand[use.ldns] += block.demand * use.fraction;
    }
  }
  std::vector<topo::LdnsId> sampled;
  double isp_total_demand = 0.0;
  double isp_sampled_demand = 0.0;
  {
    std::vector<std::pair<double, topo::LdnsId>> isp_by_demand;
    for (const topo::Ldns& ldns : world.ldnses) {
      const auto it = ldns_demand.find(ldns.id);
      if (it == ldns_demand.end()) continue;
      if (ldns.type == topo::LdnsType::public_site) {
        sampled.push_back(ldns.id);
      } else {
        isp_by_demand.emplace_back(it->second, ldns.id);
        isp_total_demand += it->second;
      }
    }
    std::sort(isp_by_demand.rbegin(), isp_by_demand.rend());
    for (std::size_t i = 0; i < std::min(config.isp_ldns_sample, isp_by_demand.size()); ++i) {
      sampled.push_back(isp_by_demand[i].second);
      isp_sampled_demand += isp_by_demand[i].first;
    }
  }
  result.isp_demand_coverage =
      isp_total_demand > 0.0 ? isp_sampled_demand / isp_total_demand : 0.0;

  // ---- Authority serving the CDN's dynamic domains ----------------------
  const dns::DnsName cdn_suffix = dns::DnsName::from_text("cdn.example");
  AuthoritativeServer authority;
  {
    auto inner = mapping.dns_handler();
    authority.add_dynamic_domain(
        cdn_suffix, [inner, &config](const dnsserver::DynamicQuery& query) {
          auto answer = inner(query);
          if (answer) answer->ttl = config.answer_ttl;
          return answer;
        });
  }
  AuthorityDirectory directory;
  directory.add_authority(cdn_suffix, &authority);

  // Domain popularity: Zipf over `domain_count` CDN-hosted names.
  std::vector<dns::DnsName> domains;
  std::vector<double> domain_share(config.domain_count);
  {
    double sum = 0.0;
    for (std::size_t d = 0; d < config.domain_count; ++d) {
      domains.push_back(
          dns::DnsName::from_text("e" + std::to_string(d) + ".g.cdn.example"));
      domain_share[d] = 1.0 / std::pow(static_cast<double>(d + 1), config.domain_zipf);
      sum += domain_share[d];
    }
    for (double& s : domain_share) s /= sum;
  }

  // ---- Drive each (LDNS, domain) pair through the real resolver --------
  util::SimClock clock;
  for (const topo::LdnsId ldns_id : sampled) {
    const topo::Ldns& ldns = world.ldnses[ldns_id];
    const LdnsMembers& m = members[ldns_id];
    const util::WeightedPicker block_picker{m.weights};
    const double ldns_rate = m.total_weight * config.queries_per_demand_unit;

    ResolverConfig pre_config;
    pre_config.ecs_enabled = false;
    ResolverConfig post_config;
    post_config.ecs_enabled = ldns.supports_ecs;

    for (std::size_t d = 0; d < config.domain_count; ++d) {
      const double rate = ldns_rate * domain_share[d];
      const double expected = rate * config.horizon_seconds;
      if (expected < 0.02) continue;  // negligible tail pair

      // One arrival realization, replayed under both configurations.
      util::Rng pair_rng = rng.fork((static_cast<std::uint64_t>(ldns_id) << 20) | d);
      std::vector<Arrival> arrivals;
      double t = pair_rng.exponential(1.0 / rate);
      while (t < config.horizon_seconds) {
        arrivals.push_back(Arrival{t, m.blocks[block_picker.pick(pair_rng)]});
        t += pair_rng.exponential(1.0 / rate);
      }
      if (arrivals.empty()) continue;

      PairQueryStats stats;
      stats.ldns = ldns_id;
      stats.domain = d;
      stats.is_public = ldns.type == topo::LdnsType::public_site;
      stats.client_queries = arrivals.size();

      for (const bool post : {false, true}) {
        clock.set(util::SimTime{0});
        RecursiveResolver resolver{post ? post_config : pre_config, &clock, &directory,
                                   ldns.address};
        std::uint16_t id = 1;
        for (const Arrival& arrival : arrivals) {
          clock.set(util::SimTime{static_cast<std::int64_t>(arrival.time_s)});
          const topo::ClientBlock& block = world.blocks[arrival.block];
          const auto query = dns::Message::make_query(id++, domains[d], dns::RecordType::A);
          // The client's address: first host of its /24.
          const net::IpAddr client{
              net::IpV4Addr{block.prefix.address().v4().value() + 1}};
          (void)resolver.resolve(query, client);
        }
        if (post) {
          stats.upstream_post = resolver.stats().upstream_queries;
        } else {
          stats.upstream_pre = resolver.stats().upstream_queries;
        }
      }
      if (stats.is_public) {
        result.public_pre_qps += static_cast<double>(stats.upstream_pre) / config.horizon_seconds;
        result.public_post_qps +=
            static_cast<double>(stats.upstream_post) / config.horizon_seconds;
      } else {
        result.isp_qps += static_cast<double>(stats.upstream_pre) / config.horizon_seconds;
      }
      result.pairs.push_back(stats);
    }
  }
  return result;
}

}  // namespace eum::sim
