#include "sim/deployment_study.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "stats/sample.h"

namespace eum::sim {

namespace {

/// A client-LDNS pair: the evaluation unit (weight = demand x use share).
struct Pair {
  topo::PingTargetId block_target;
  std::uint32_t ldns;
  float weight;
};

struct LdnsCluster {
  std::vector<topo::PingTargetId> targets;
  std::vector<float> weights;  ///< normalized
  topo::PingTargetId own_target = 0;
};

}  // namespace

std::vector<DeploymentStudyRow> run_deployment_study(const topo::World& world,
                                                     const topo::LatencyModel& latency,
                                                     const DeploymentStudyConfig& config) {
  if (config.runs == 0 || config.deployment_counts.empty()) {
    throw std::invalid_argument{"run_deployment_study: need runs and deployment counts"};
  }
  std::vector<std::size_t> counts = config.deployment_counts;
  std::sort(counts.begin(), counts.end());
  const std::size_t universe = world.deployment_universe.size();
  if (counts.back() > universe) {
    throw std::invalid_argument{"run_deployment_study: count exceeds deployment universe"};
  }

  const cdn::PingMesh mesh =
      cdn::PingMesh::measure_sites(world, world.deployment_universe, latency);
  const std::size_t n_targets = mesh.target_count();

  // Evaluation pairs and per-LDNS clusters.
  std::vector<Pair> pairs;
  std::unordered_map<std::uint32_t, std::unordered_map<topo::PingTargetId, double>> raw_clusters;
  for (const topo::ClientBlock& block : world.blocks) {
    for (const topo::LdnsUse& use : world.ldns_uses(block)) {
      pairs.push_back(Pair{block.ping_target, use.ldns,
                           static_cast<float>(block.demand * use.fraction)});
      raw_clusters[use.ldns][block.ping_target] += block.demand * use.fraction;
    }
  }
  // Dense LDNS cluster arrays.
  const std::size_t n_ldns = world.ldnses.size();
  std::vector<LdnsCluster> clusters(n_ldns);
  for (std::size_t l = 0; l < n_ldns; ++l) {
    clusters[l].own_target = world.ldnses[l].ping_target;
    if (const auto it = raw_clusters.find(static_cast<std::uint32_t>(l));
        it != raw_clusters.end()) {
      double sum = 0.0;
      for (const auto& [t, w] : it->second) sum += w;
      for (const auto& [t, w] : it->second) {
        clusters[l].targets.push_back(t);
        clusters[l].weights.push_back(static_cast<float>(w / sum));
      }
    }
  }

  // Accumulators: per (count index) per scheme, summed over runs.
  std::vector<DeploymentStudyRow> rows(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) rows[i].deployments = counts[i];

  util::Rng rng{config.seed};
  std::vector<std::size_t> perm(universe);
  std::iota(perm.begin(), perm.end(), 0);

  for (std::size_t run = 0; run < config.runs; ++run) {
    // Fisher-Yates shuffle of the universe ordering.
    for (std::size_t i = universe - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.below(i + 1)]);
    }

    // Incremental state as deployments are revealed.
    std::vector<float> target_min(n_targets, std::numeric_limits<float>::infinity());
    std::vector<std::uint32_t> target_argmin(n_targets, 0);
    std::vector<float> cans_best(n_ldns, std::numeric_limits<float>::infinity());
    std::vector<std::uint32_t> cans_argmin(n_ldns, 0);

    std::size_t revealed = 0;
    for (std::size_t ci = 0; ci < counts.size(); ++ci) {
      for (; revealed < counts[ci]; ++revealed) {
        const auto d = static_cast<std::uint32_t>(perm[revealed]);
        const std::span<const float> row = mesh.row(d);
        for (std::size_t t = 0; t < n_targets; ++t) {
          if (row[t] < target_min[t]) {
            target_min[t] = row[t];
            target_argmin[t] = d;
          }
        }
        for (std::size_t l = 0; l < n_ldns; ++l) {
          const LdnsCluster& cluster = clusters[l];
          if (cluster.targets.empty()) continue;
          float score = 0.0F;
          for (std::size_t m = 0; m < cluster.targets.size(); ++m) {
            score += cluster.weights[m] * row[cluster.targets[m]];
          }
          if (score < cans_best[l]) {
            cans_best[l] = score;
            cans_argmin[l] = d;
          }
        }
      }

      // Evaluate the three schemes over all client-LDNS pairs.
      stats::WeightedSample ns_sample;
      stats::WeightedSample eu_sample;
      stats::WeightedSample cans_sample;
      ns_sample.reserve(pairs.size());
      eu_sample.reserve(pairs.size());
      cans_sample.reserve(pairs.size());
      for (const Pair& pair : pairs) {
        // EU: nearest revealed deployment to the client's own target.
        eu_sample.add(target_min[pair.block_target], pair.weight);
        // NS: the deployment nearest the LDNS serves the client.
        const std::uint32_t ns_dep = target_argmin[clusters[pair.ldns].own_target];
        ns_sample.add(mesh.rtt_ms(ns_dep, pair.block_target), pair.weight);
        // CANS: the deployment minimizing the cluster-weighted latency.
        const std::uint32_t cans_dep = clusters[pair.ldns].targets.empty()
                                           ? target_argmin[clusters[pair.ldns].own_target]
                                           : cans_argmin[pair.ldns];
        cans_sample.add(mesh.rtt_ms(cans_dep, pair.block_target), pair.weight);
      }
      const auto accumulate = [](SchemeLatency& acc, const stats::WeightedSample& sample) {
        acc.mean_ms += sample.mean();
        acc.p95_ms += sample.percentile(95);
        acc.p99_ms += sample.percentile(99);
      };
      accumulate(rows[ci].eu, eu_sample);
      accumulate(rows[ci].ns, ns_sample);
      accumulate(rows[ci].cans, cans_sample);
    }
  }

  // Average across runs.
  const auto n_runs = static_cast<double>(config.runs);
  for (DeploymentStudyRow& row : rows) {
    for (SchemeLatency* scheme : {&row.ns, &row.eu, &row.cans}) {
      scheme->mean_ms /= n_runs;
      scheme->p95_ms /= n_runs;
      scheme->p99_ms /= n_runs;
    }
  }
  return rows;
}

}  // namespace eum::sim
