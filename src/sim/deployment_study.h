// The role of server deployments (paper §6, Figure 25).
//
// Methodology copied from the paper: a universe of candidate deployment
// locations is measured against every ping target; for each run the
// universe is randomly ordered, and for each N the first N deployments
// form the CDN. Three mapping schemes are compared:
//   NS   — client gets the deployment with least latency to its LDNS;
//   EU   — client gets the deployment with least latency to its own block;
//   CANS — client gets the deployment minimizing the traffic-weighted
//          mean latency to the LDNS's whole client cluster.
// Per (scheme, N): traffic-weighted mean, 95th and 99th percentile client
// latency, averaged over runs.
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/ping_mesh.h"
#include "topo/latency.h"
#include "topo/world.h"

namespace eum::sim {

struct DeploymentStudyConfig {
  std::vector<std::size_t> deployment_counts = {40, 80, 160, 320, 640, 1280, 2560};
  /// Paper: 100 random runs; the default trades a little smoothness for time.
  std::size_t runs = 20;
  std::uint64_t seed = 17;
};

struct SchemeLatency {
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

struct DeploymentStudyRow {
  std::size_t deployments = 0;
  SchemeLatency ns;    ///< NS-based mapping
  SchemeLatency eu;    ///< end-user mapping
  SchemeLatency cans;  ///< client-aware NS mapping
};

[[nodiscard]] std::vector<DeploymentStudyRow> run_deployment_study(
    const topo::World& world, const topo::LatencyModel& latency,
    const DeploymentStudyConfig& config);

}  // namespace eum::sim
