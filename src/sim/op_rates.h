// Operational-rate models (paper Figures 2 and 12).
//
// These two exhibits are descriptive statistics of the production
// platform: the DNS query and client request rates the mapping system
// serves (Fig 2), and the monthly RUM measurement volume during the study
// (Fig 12). We model them from the world's demand with diurnal/weekly
// seasonality and the study period's growth trend, scaled to the paper's
// reported magnitudes (1.6M DNS qps, 30M client rps; 33-58M RUM
// measurements/month).
#pragma once

#include <vector>

#include "topo/world.h"
#include "util/sim_clock.h"

namespace eum::sim {

struct OpRateConfig {
  /// Mean client requests per second at the simulated scale's demand.
  double base_requests_per_demand_unit = 30.0;
  /// Client content requests per DNS resolution ("multiple content
  /// requests from clients that use that LDNS may follow", Fig 2 caption).
  double requests_per_dns_query = 18.75;
  /// Weekly seasonality amplitude (weekend dip).
  double weekly_amplitude = 0.12;
  /// Diurnal amplitude (day/night swing across time zones averages out
  /// partially for a global platform).
  double diurnal_amplitude = 0.18;
  std::uint64_t seed = 23;
};

struct HourlyRates {
  util::SimTime time;
  double client_requests_per_s = 0.0;
  double dns_queries_per_s = 0.0;
};

/// Fig 2: per-hour request and query rates over [from, to).
[[nodiscard]] std::vector<HourlyRates> operational_rates(const topo::World& world,
                                                         const util::Date& from,
                                                         const util::Date& to,
                                                         const OpRateConfig& config = {});

struct MonthlyRumVolume {
  int month = 1;  ///< 1..12 of 2014
  double high_expectation_millions = 0.0;
  double low_expectation_millions = 0.0;
};

/// Fig 12: monthly qualified RUM measurement volume Jan-Jun 2014, split by
/// expectation group, with the paper's observed growth trend.
[[nodiscard]] std::vector<MonthlyRumVolume> rum_measurement_volumes(
    const topo::World& world, const std::vector<bool>& high_expectation,
    double jan_total_millions = 33.0, double jun_total_millions = 58.0);

}  // namespace eum::sim
