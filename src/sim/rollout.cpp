#include "sim/rollout.h"

#include <stdexcept>

namespace eum::sim {

RolloutSimulator::RolloutSimulator(const topo::World* world, measure::RumSimulator* rum,
                                   RolloutConfig config,
                                   control::RolloutController* controller)
    : world_(world), rum_(rum), config_(config), controller_(controller) {
  if (world_ == nullptr || rum_ == nullptr) {
    throw std::invalid_argument{"RolloutSimulator: world and rum are required"};
  }
  if (util::day_index(config_.start) > util::day_index(config_.end)) {
    throw std::invalid_argument{"RolloutSimulator: inconsistent dates"};
  }
  if (controller_ == nullptr) {
    control::RolloutRampConfig ramp;
    ramp.ramp_start = config_.ramp_start;
    ramp.ramp_end = config_.ramp_end;
    ramp.seed = config_.seed;
    owned_controller_ = std::make_unique<control::RolloutController>(ramp);
    controller_ = owned_controller_.get();
  }
}

RolloutResult RolloutSimulator::run() {
  RolloutResult result;
  result.high_expectation = measure::high_expectation_countries(*world_);
  util::Rng rng{config_.seed};

  const int first = util::day_index(config_.start);
  const int last = util::day_index(config_.end);
  const int ramp_lo = util::day_index(config_.ramp_start);
  const int ramp_hi = util::day_index(config_.ramp_end);

  for (int day = first; day <= last; ++day) {
    const util::Date date = util::date_from_day_index(day);
    // Advance the staged roll-out to this day: cohorts of resolvers flip
    // as the ramp fraction crosses their threshold (paper §4, Fig 13).
    controller_->set_date(date);

    DailyMetrics high{date, 0, 0, 0, 0, 0};
    DailyMetrics low{date, 0, 0, 0, 0, 0};
    for (std::size_t s = 0; s < config_.sessions_per_day; ++s) {
      const auto pair = rum_->sample_qualified_pair(rng);
      if (!pair) break;  // no qualified population in this world
      const bool end_user = controller_->end_user_enabled(pair->second);
      const auto sample = rum_->session(pair->first, pair->second, end_user, rng);
      if (!sample) continue;
      DailyMetrics& group = result.high_expectation[sample->country] ? high : low;
      ++group.sessions;
      group.mapping_distance_miles += sample->mapping_distance_miles;
      group.rtt_ms += sample->rtt_ms;
      group.ttfb_ms += sample->ttfb_ms;
      group.download_ms += sample->download_ms;

      // Pool pre-ramp and post-ramp samples for the CDF figures.
      MetricPools* pool = nullptr;
      if (day < ramp_lo) {
        pool = result.high_expectation[sample->country] ? &result.high_before
                                                        : &result.low_before;
      } else if (day >= ramp_hi) {
        pool = result.high_expectation[sample->country] ? &result.high_after
                                                        : &result.low_after;
      }
      if (pool != nullptr) {
        pool->mapping_distance.add(sample->mapping_distance_miles);
        pool->rtt.add(sample->rtt_ms);
        pool->ttfb.add(sample->ttfb_ms);
        pool->download.add(sample->download_ms);
      }
    }
    for (DailyMetrics* group : {&high, &low}) {
      if (group->sessions > 0) {
        const auto n = static_cast<double>(group->sessions);
        group->mapping_distance_miles /= n;
        group->rtt_ms /= n;
        group->ttfb_ms /= n;
        group->download_ms /= n;
      }
    }
    result.high_daily.push_back(high);
    result.low_daily.push_back(low);
  }
  return result;
}

}  // namespace eum::sim
