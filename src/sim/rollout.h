// The end-user mapping roll-out simulation (paper §4).
//
// Akamai enabled end-user mapping for clients of public resolvers between
// March 28 and April 15, 2014, and measured clients before, during and
// after. This simulator replays that timeline over a synthetic world: each
// simulated day draws qualified RUM sessions (public-resolver users), and
// a session is routed with end-user mapping iff its resolver's roll-out
// cohort has flipped by that date — the same control::RolloutController
// that gates the live DNS path, so the offline timeline and the serving
// stack share one ramp implementation. Daily means feed Figures
// 13/15/17/19; the pooled before/after samples feed the CDF Figures
// 14/16/18/20.
#pragma once

#include <memory>
#include <vector>

#include "control/rollout_controller.h"
#include "measure/analysis.h"
#include "measure/rum.h"
#include "stats/sample.h"
#include "util/sim_clock.h"

namespace eum::sim {

struct RolloutConfig {
  util::Date start{2014, 1, 1};
  util::Date end{2014, 6, 30};
  util::Date ramp_start{2014, 3, 28};
  util::Date ramp_end{2014, 4, 15};
  std::size_t sessions_per_day = 1500;
  std::uint64_t seed = 7;
};

/// Daily aggregate over one expectation group.
struct DailyMetrics {
  util::Date date;
  std::size_t sessions = 0;
  double mapping_distance_miles = 0.0;  ///< mean
  double rtt_ms = 0.0;
  double ttfb_ms = 0.0;
  double download_ms = 0.0;
};

/// Before/after sample pools for one expectation group.
struct MetricPools {
  stats::WeightedSample mapping_distance;
  stats::WeightedSample rtt;
  stats::WeightedSample ttfb;
  stats::WeightedSample download;
};

struct RolloutResult {
  std::vector<DailyMetrics> high_daily;  ///< high-expectation group
  std::vector<DailyMetrics> low_daily;
  MetricPools high_before, high_after;
  MetricPools low_before, low_after;
  std::vector<bool> high_expectation;  ///< per-country classification used
};

class RolloutSimulator {
 public:
  /// `rum` and its underlying world/mapping are borrowed, as is
  /// `controller` when given; with nullptr the simulator owns a
  /// controller built from the config's ramp dates.
  RolloutSimulator(const topo::World* world, measure::RumSimulator* rum, RolloutConfig config,
                   control::RolloutController* controller = nullptr);

  /// Fraction of qualified queries answered with end-user mapping on a day
  /// (0 before the ramp, 1 after, linear in between). Delegates to the
  /// roll-out controller's ramp.
  [[nodiscard]] double rollout_fraction(const util::Date& date) const {
    return controller_->fraction_on(date);
  }

  [[nodiscard]] control::RolloutController& controller() noexcept { return *controller_; }

  [[nodiscard]] RolloutResult run();

 private:
  const topo::World* world_;
  measure::RumSimulator* rum_;
  RolloutConfig config_;
  std::unique_ptr<control::RolloutController> owned_controller_;
  control::RolloutController* controller_;
};

}  // namespace eum::sim
