#include "dns/message.h"

namespace eum::dns {

namespace {

constexpr std::uint16_t kFlagQr = 0x8000;
constexpr std::uint16_t kFlagAa = 0x0400;
constexpr std::uint16_t kFlagTc = 0x0200;
constexpr std::uint16_t kFlagRd = 0x0100;
constexpr std::uint16_t kFlagRa = 0x0080;

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.is_response) flags |= kFlagQr;
  flags |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(h.opcode) & 0xF) << 11);
  if (h.authoritative) flags |= kFlagAa;
  if (h.truncated) flags |= kFlagTc;
  if (h.recursion_desired) flags |= kFlagRd;
  if (h.recursion_available) flags |= kFlagRa;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(h.rcode) & 0xF);
  return flags;
}

Header unpack_flags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.is_response = (flags & kFlagQr) != 0;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  h.authoritative = (flags & kFlagAa) != 0;
  h.truncated = (flags & kFlagTc) != 0;
  h.recursion_desired = (flags & kFlagRd) != 0;
  h.recursion_available = (flags & kFlagRa) != 0;
  h.rcode = static_cast<Rcode>(flags & 0xF);
  return h;
}

void encode_record(const ResourceRecord& record, ByteWriter& writer,
                   DnsName::CompressionMap* compression) {
  record.name.encode(writer, compression);
  writer.u16(static_cast<std::uint16_t>(rdata_type(record.rdata, record.type)));
  writer.u16(static_cast<std::uint16_t>(record.rclass));
  writer.u32(record.ttl);
  const std::size_t rdlength_at = writer.size();
  writer.u16(0);  // backpatched below
  const std::size_t rdata_start = writer.size();
  encode_rdata(record.rdata, writer, compression);
  const std::size_t rdata_size = writer.size() - rdata_start;
  if (rdata_size > 0xFFFF) throw WireError{"RDATA longer than 65535 octets"};
  writer.patch_u16(rdlength_at, static_cast<std::uint16_t>(rdata_size));
}

void encode_opt_record(const EdnsRecord& edns, ByteWriter& writer) {
  // RFC 6891 §6.1.2: NAME = root, TYPE = OPT, CLASS = UDP payload size,
  // TTL = extended-rcode | version | DO | zeros.
  writer.u8(0);  // root name
  writer.u16(static_cast<std::uint16_t>(RecordType::OPT));
  writer.u16(edns.udp_payload_size);
  std::uint32_t ttl = (std::uint32_t{edns.extended_rcode} << 24) |
                      (std::uint32_t{edns.version} << 16);
  if (edns.dnssec_ok) ttl |= 0x8000;
  writer.u32(ttl);
  const std::size_t rdlength_at = writer.size();
  writer.u16(0);
  const std::size_t rdata_start = writer.size();
  for (const EdnsOption& option : edns.options) {
    writer.u16(option.code);
    const std::size_t optlen_at = writer.size();
    writer.u16(0);
    const std::size_t opt_start = writer.size();
    if (option.client_subnet) {
      option.client_subnet->encode_data(writer);
    } else {
      writer.bytes(option.raw);
    }
    writer.patch_u16(optlen_at, static_cast<std::uint16_t>(writer.size() - opt_start));
  }
  writer.patch_u16(rdlength_at, static_cast<std::uint16_t>(writer.size() - rdata_start));
}

ResourceRecord decode_record(ByteReader& reader) {
  ResourceRecord record;
  record.name = DnsName::decode(reader);
  record.type = static_cast<RecordType>(reader.u16());
  record.rclass = static_cast<RecordClass>(reader.u16());
  record.ttl = reader.u32();
  const std::uint16_t rdlength = reader.u16();
  const std::size_t expected_end = reader.offset() + rdlength;
  record.rdata = decode_rdata(record.type, rdlength, reader);
  if (reader.offset() != expected_end) throw WireError{"RDATA over/under-read"};
  return record;
}

EdnsRecord decode_opt_record(ByteReader& reader) {
  // Caller consumed the root name and TYPE; we parse from CLASS onward.
  EdnsRecord edns;
  edns.udp_payload_size = reader.u16();
  const std::uint32_t ttl = reader.u32();
  edns.extended_rcode = static_cast<std::uint8_t>(ttl >> 24);
  edns.version = static_cast<std::uint8_t>(ttl >> 16);
  edns.dnssec_ok = (ttl & 0x8000) != 0;
  if (edns.version != 0) throw WireError{"unsupported EDNS version"};
  const std::uint16_t rdlength = reader.u16();
  const std::size_t end = reader.offset() + rdlength;
  if (end > reader.buffer().size()) throw WireError{"OPT RDATA extends past message"};
  while (reader.offset() < end) {
    EdnsOption option;
    option.code = reader.u16();
    const std::uint16_t optlen = reader.u16();
    if (reader.offset() + optlen > end) throw WireError{"EDNS option extends past OPT RDATA"};
    if (option.code == static_cast<std::uint16_t>(OptionCode::client_subnet)) {
      option.client_subnet = ClientSubnetOption::decode_data(reader, optlen);
    } else {
      const auto raw = reader.bytes(optlen);
      option.raw.assign(raw.begin(), raw.end());
    }
    edns.options.push_back(std::move(option));
  }
  return edns;
}

}  // namespace

Message Message::make_query(std::uint16_t id, const DnsName& name, RecordType type,
                            std::optional<ClientSubnetOption> ecs) {
  Message query;
  query.header.id = id;
  query.header.recursion_desired = true;
  query.questions.push_back(Question{name, type, RecordClass::IN});
  if (ecs) {
    query.edns = EdnsRecord{};
    query.edns->set_client_subnet(std::move(*ecs));
  }
  return query;
}

Message Message::make_response(const Message& query) {
  Message response;
  response.header = query.header;
  response.header.is_response = true;
  response.header.recursion_available = false;
  response.questions = query.questions;
  if (query.edns) {
    response.edns = EdnsRecord{};
    response.edns->udp_payload_size = 4096;
  }
  return response;
}

std::vector<net::IpAddr> Message::answer_addresses() const {
  std::vector<net::IpAddr> addresses;
  for (const ResourceRecord& record : answers) {
    if (const auto* a = std::get_if<ARecord>(&record.rdata)) {
      addresses.emplace_back(a->address);
    } else if (const auto* aaaa = std::get_if<AaaaRecord>(&record.rdata)) {
      addresses.emplace_back(aaaa->address);
    }
  }
  return addresses;
}

std::vector<std::uint8_t> Message::encode() const {
  ByteWriter writer;
  DnsName::CompressionMap compression;

  writer.u16(header.id);
  writer.u16(pack_flags(header));
  writer.u16(static_cast<std::uint16_t>(questions.size()));
  writer.u16(static_cast<std::uint16_t>(answers.size()));
  writer.u16(static_cast<std::uint16_t>(authorities.size()));
  writer.u16(static_cast<std::uint16_t>(additionals.size() + (edns ? 1 : 0)));

  for (const Question& q : questions) {
    q.name.encode(writer, &compression);
    writer.u16(static_cast<std::uint16_t>(q.type));
    writer.u16(static_cast<std::uint16_t>(q.rclass));
  }
  for (const ResourceRecord& r : answers) encode_record(r, writer, &compression);
  for (const ResourceRecord& r : authorities) encode_record(r, writer, &compression);
  for (const ResourceRecord& r : additionals) encode_record(r, writer, &compression);
  if (edns) encode_opt_record(*edns, writer);
  return writer.take();
}

Message Message::decode(std::span<const std::uint8_t> wire) {
  ByteReader reader{wire};
  Message message;

  const std::uint16_t id = reader.u16();
  const std::uint16_t flags = reader.u16();
  message.header = unpack_flags(id, flags);
  const std::uint16_t qdcount = reader.u16();
  const std::uint16_t ancount = reader.u16();
  const std::uint16_t nscount = reader.u16();
  const std::uint16_t arcount = reader.u16();

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    Question q;
    q.name = DnsName::decode(reader);
    q.type = static_cast<RecordType>(reader.u16());
    q.rclass = static_cast<RecordClass>(reader.u16());
    message.questions.push_back(std::move(q));
  }
  for (std::uint16_t i = 0; i < ancount; ++i) message.answers.push_back(decode_record(reader));
  for (std::uint16_t i = 0; i < nscount; ++i) message.authorities.push_back(decode_record(reader));
  for (std::uint16_t i = 0; i < arcount; ++i) {
    // Peek for an OPT record: decode the owner name, then the type.
    const std::size_t record_start = reader.offset();
    const DnsName owner = DnsName::decode(reader);
    const auto type = static_cast<RecordType>(reader.u16());
    if (type == RecordType::OPT) {
      if (!owner.is_root()) throw WireError{"OPT record with non-root owner name"};
      if (message.edns) throw WireError{"duplicate OPT record"};
      message.edns = decode_opt_record(reader);
    } else {
      reader.seek(record_start);
      message.additionals.push_back(decode_record(reader));
    }
  }
  if (!reader.exhausted()) throw WireError{"trailing bytes after message"};
  return message;
}

}  // namespace eum::dns
