// EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871).
//
// The client-subnet option is the enabler of end-user mapping (paper
// §2.1): the recursive resolver attaches a /x prefix of the client's IP
// to its upstream query; the authority answers for a /y scope with
// y <= x, and caches downstream are only allowed to reuse the answer for
// clients inside that scope block.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/wire.h"
#include "net/ip.h"
#include "net/prefix.h"

namespace eum::dns {

/// EDNS option codes (IANA registry).
enum class OptionCode : std::uint16_t {
  client_subnet = 8,  ///< RFC 7871
};

/// RFC 7871 EDNS Client Subnet (ECS) option.
///
/// In queries, `scope_prefix_len` MUST be 0. In responses, the authority
/// echoes family/address/source and sets `scope_prefix_len` to the
/// smallest prefix length its answer is valid for.
class ClientSubnetOption {
 public:
  ClientSubnetOption() = default;

  /// Build a query-side option announcing the client's /`source_len` block.
  /// The address is truncated (zero-padded) to the prefix length as the
  /// RFC requires for privacy.
  [[nodiscard]] static ClientSubnetOption for_query(const net::IpAddr& client, int source_len);

  /// Build the response-side echo with the authority's chosen scope.
  [[nodiscard]] ClientSubnetOption with_scope(int scope_len) const;

  [[nodiscard]] net::Family family() const noexcept { return family_; }
  [[nodiscard]] int source_prefix_len() const noexcept { return source_prefix_len_; }
  [[nodiscard]] int scope_prefix_len() const noexcept { return scope_prefix_len_; }

  /// The announced client block (address truncated to source_prefix_len).
  [[nodiscard]] net::IpPrefix source_block() const;

  /// The block the answer is valid for (address truncated to scope_prefix_len).
  [[nodiscard]] net::IpPrefix scope_block() const;

  /// The (zero-padded) address carried on the wire.
  [[nodiscard]] net::IpAddr address() const;

  /// Serialize option-data (the payload after OPTION-CODE/OPTION-LENGTH).
  void encode_data(ByteWriter& writer) const;

  /// Parse option-data of exactly `length` octets. Enforces RFC 7871
  /// validity: known family, prefix lengths within family bounds, address
  /// field exactly ceil(source/8) octets with trailing pad bits zero.
  [[nodiscard]] static ClientSubnetOption decode_data(ByteReader& reader, std::uint16_t length);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ClientSubnetOption&, const ClientSubnetOption&) noexcept = default;

 private:
  net::Family family_ = net::Family::v4;
  int source_prefix_len_ = 0;
  int scope_prefix_len_ = 0;
  /// ceil(source_prefix_len/8) address octets, zero-padded in the last octet.
  std::vector<std::uint8_t> address_octets_;
};

/// A generic EDNS option (ECS decoded, everything else kept raw).
struct EdnsOption {
  std::uint16_t code = 0;
  std::optional<ClientSubnetOption> client_subnet;  ///< set when code == 8
  std::vector<std::uint8_t> raw;                    ///< payload for unknown options
};

/// The EDNS0 OPT pseudo-record contents (RFC 6891 §6.1).
struct EdnsRecord {
  std::uint16_t udp_payload_size = 4096;
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  std::vector<EdnsOption> options;

  /// The ECS option, if present.
  [[nodiscard]] const ClientSubnetOption* client_subnet() const noexcept;
  /// Append/replace the ECS option.
  void set_client_subnet(ClientSubnetOption ecs);
};

}  // namespace eum::dns
