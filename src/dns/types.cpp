#include "dns/types.h"

#include "util/strings.h"

namespace eum::dns {

std::string to_string(RecordType type) {
  switch (type) {
    case RecordType::A: return "A";
    case RecordType::NS: return "NS";
    case RecordType::CNAME: return "CNAME";
    case RecordType::SOA: return "SOA";
    case RecordType::TXT: return "TXT";
    case RecordType::AAAA: return "AAAA";
    case RecordType::OPT: return "OPT";
  }
  return util::format("TYPE%u", static_cast<unsigned>(type));
}

std::string to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::no_error: return "NOERROR";
    case Rcode::form_err: return "FORMERR";
    case Rcode::serv_fail: return "SERVFAIL";
    case Rcode::nx_domain: return "NXDOMAIN";
    case Rcode::not_imp: return "NOTIMP";
    case Rcode::refused: return "REFUSED";
  }
  return util::format("RCODE%u", static_cast<unsigned>(rcode));
}

}  // namespace eum::dns
