#include "dns/rdata.h"

#include <algorithm>

namespace eum::dns {

namespace {

struct TypeVisitor {
  RecordType fallback;
  RecordType operator()(const ARecord&) const { return RecordType::A; }
  RecordType operator()(const AaaaRecord&) const { return RecordType::AAAA; }
  RecordType operator()(const NsRecord&) const { return RecordType::NS; }
  RecordType operator()(const CnameRecord&) const { return RecordType::CNAME; }
  RecordType operator()(const SoaRecord&) const { return RecordType::SOA; }
  RecordType operator()(const TxtRecord&) const { return RecordType::TXT; }
  RecordType operator()(const RawRecord&) const { return fallback; }
};

struct EncodeVisitor {
  ByteWriter& writer;
  DnsName::CompressionMap* compression;

  void operator()(const ARecord& r) const {
    const auto bytes = r.address.bytes();
    writer.bytes(bytes);
  }
  void operator()(const AaaaRecord& r) const { writer.bytes(r.address.bytes()); }
  void operator()(const NsRecord& r) const { r.nameserver.encode(writer, compression); }
  void operator()(const CnameRecord& r) const { r.target.encode(writer, compression); }
  void operator()(const SoaRecord& r) const {
    r.mname.encode(writer, compression);
    r.rname.encode(writer, compression);
    writer.u32(r.serial);
    writer.u32(r.refresh);
    writer.u32(r.retry);
    writer.u32(r.expire);
    writer.u32(r.minimum);
  }
  void operator()(const TxtRecord& r) const {
    for (const std::string& s : r.strings) {
      if (s.size() > 255) throw WireError{"TXT character-string longer than 255 octets"};
      writer.u8(static_cast<std::uint8_t>(s.size()));
      writer.bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    }
  }
  void operator()(const RawRecord& r) const { writer.bytes(r.data); }
};

}  // namespace

RecordType rdata_type(const RData& rdata, RecordType fallback) {
  return std::visit(TypeVisitor{fallback}, rdata);
}

void encode_rdata(const RData& rdata, ByteWriter& writer, DnsName::CompressionMap* compression) {
  std::visit(EncodeVisitor{writer, compression}, rdata);
}

RData decode_rdata(RecordType type, std::uint16_t rdlength, ByteReader& reader) {
  const std::size_t end = reader.offset() + rdlength;
  if (end > reader.buffer().size()) throw WireError{"RDATA extends past message"};

  const auto check_consumed = [&](const char* what) {
    if (reader.offset() != end) throw WireError{std::string{"RDATA length mismatch in "} + what};
  };

  switch (type) {
    case RecordType::A: {
      if (rdlength != 4) throw WireError{"A RDATA must be 4 octets"};
      const auto raw = reader.bytes(4);
      return ARecord{net::IpV4Addr{raw[0], raw[1], raw[2], raw[3]}};
    }
    case RecordType::AAAA: {
      if (rdlength != 16) throw WireError{"AAAA RDATA must be 16 octets"};
      const auto raw = reader.bytes(16);
      net::IpV6Addr::Bytes bytes{};
      std::copy(raw.begin(), raw.end(), bytes.begin());
      return AaaaRecord{net::IpV6Addr{bytes}};
    }
    case RecordType::NS: {
      NsRecord r{DnsName::decode(reader)};
      check_consumed("NS");
      return r;
    }
    case RecordType::CNAME: {
      CnameRecord r{DnsName::decode(reader)};
      check_consumed("CNAME");
      return r;
    }
    case RecordType::SOA: {
      SoaRecord r;
      r.mname = DnsName::decode(reader);
      r.rname = DnsName::decode(reader);
      r.serial = reader.u32();
      r.refresh = reader.u32();
      r.retry = reader.u32();
      r.expire = reader.u32();
      r.minimum = reader.u32();
      check_consumed("SOA");
      return r;
    }
    case RecordType::TXT: {
      TxtRecord r;
      while (reader.offset() < end) {
        const std::uint8_t len = reader.u8();
        if (reader.offset() + len > end) throw WireError{"TXT string extends past RDATA"};
        const auto raw = reader.bytes(len);
        r.strings.emplace_back(reinterpret_cast<const char*>(raw.data()), raw.size());
      }
      return r;
    }
    default: {
      const auto raw = reader.bytes(rdlength);
      return RawRecord{{raw.begin(), raw.end()}};
    }
  }
}

}  // namespace eum::dns
