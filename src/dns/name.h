// DNS domain names (RFC 1035 §3.1, §4.1.4).
//
// Names are sequences of labels; comparison is ASCII-case-insensitive.
// Wire encoding supports message compression (suffix pointers); decoding
// is hardened against pointer loops and forward pointers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/wire.h"

namespace eum::dns {

class DnsName {
 public:
  /// The root name (zero labels).
  DnsName() = default;

  /// From presentation form, e.g. "foo.net" or "foo.net." (root suffix
  /// optional). Throws WireError on invalid labels (>63 octets, empty
  /// interior label) or a name longer than 255 wire octets.
  [[nodiscard]] static DnsName from_text(std::string_view text);

  /// From explicit labels (already validated presentation labels).
  [[nodiscard]] static DnsName from_labels(std::vector<std::string> labels);

  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }
  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// Wire-format length in octets (sum of label lengths + length bytes + root).
  [[nodiscard]] std::size_t wire_length() const noexcept;

  /// True if this name equals `zone` or lies below it ("a.b.c" is in "b.c").
  [[nodiscard]] bool is_subdomain_of(const DnsName& zone) const noexcept;

  /// The name with the leftmost label removed. Precondition: !is_root().
  [[nodiscard]] DnsName parent() const;

  /// Prepend a label. Throws WireError if the result exceeds limits.
  [[nodiscard]] DnsName child(std::string_view label) const;

  /// Presentation form, lowercase, with no trailing dot ("" for the root).
  [[nodiscard]] std::string to_string() const;

  /// Case-insensitive equality/ordering (labels are stored lowercased, so
  /// this is plain comparison).
  friend bool operator==(const DnsName&, const DnsName&) noexcept = default;
  friend auto operator<=>(const DnsName&, const DnsName&) noexcept = default;

  // --- wire format ---

  /// Offsets of name suffixes already written, for compression.
  using CompressionMap = std::map<DnsName, std::uint16_t>;

  /// Encode with compression: longest previously written suffix becomes a
  /// pointer; newly written suffixes are registered in `compression`.
  /// Pass nullptr to disable compression (e.g. inside unknown RDATA).
  void encode(ByteWriter& writer, CompressionMap* compression) const;

  /// Decode at the reader's position, following compression pointers.
  /// On return the reader is positioned after the name as it appeared
  /// in-line (pointers do not move the cursor past their target).
  [[nodiscard]] static DnsName decode(ByteReader& reader);

 private:
  /// Labels stored lowercased.
  std::vector<std::string> labels_;
};

/// Hash for unordered containers (matches case-insensitive equality).
struct DnsNameHash {
  [[nodiscard]] std::size_t operator()(const DnsName& name) const noexcept;
};

}  // namespace eum::dns
