// Bounds-checked binary readers/writers for DNS wire format.
//
// All multi-byte integers in DNS are big-endian (network order). The
// reader throws `WireError` on any attempt to read past the end — DNS
// messages arrive from the network and must never be trusted.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace eum::dns {

/// Raised on malformed or truncated wire data.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - offset_; }
  [[nodiscard]] bool exhausted() const noexcept { return offset_ == data_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> buffer() const noexcept { return data_; }

  /// Reposition (used to follow DNS compression pointers).
  void seek(std::size_t offset) {
    if (offset > data_.size()) throw WireError{"seek past end of message"};
    offset_ = offset;
  }

  [[nodiscard]] std::uint8_t u8() {
    require(1);
    return data_[offset_++];
  }

  [[nodiscard]] std::uint16_t u16() {
    require(2);
    const std::uint16_t hi = data_[offset_];
    const std::uint16_t lo = data_[offset_ + 1];
    offset_ += 2;
    return static_cast<std::uint16_t>((hi << 8) | lo);
  }

  [[nodiscard]] std::uint32_t u32() {
    require(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value = (value << 8) | data_[offset_ + static_cast<std::size_t>(i)];
    offset_ += 4;
    return value;
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    const auto view = data_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw WireError{"truncated message"};
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

class ByteWriter {
 public:
  ByteWriter() = default;

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buffer_); }

  void u8(std::uint8_t value) { buffer_.push_back(value); }

  void u16(std::uint16_t value) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(value));
  }

  void u32(std::uint32_t value) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void bytes(std::span<const std::uint8_t> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// Overwrite a previously written 16-bit field (e.g. RDLENGTH backpatch).
  void patch_u16(std::size_t offset, std::uint16_t value) {
    if (offset + 2 > buffer_.size()) throw WireError{"patch_u16 out of range"};
    buffer_[offset] = static_cast<std::uint8_t>(value >> 8);
    buffer_[offset + 1] = static_cast<std::uint8_t>(value);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace eum::dns
