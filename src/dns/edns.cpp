#include "dns/edns.h"

#include <algorithm>

#include "util/strings.h"

namespace eum::dns {

namespace {

int family_bits(net::Family family) { return family == net::Family::v4 ? 32 : 128; }

std::vector<std::uint8_t> truncated_octets(const net::IpAddr& addr, int prefix_len) {
  const auto octet_count = static_cast<std::size_t>((prefix_len + 7) / 8);
  std::vector<std::uint8_t> octets(octet_count, 0);
  if (addr.is_v4()) {
    const auto bytes = addr.v4().bytes();
    std::copy_n(bytes.begin(), octet_count, octets.begin());
  } else {
    const auto& bytes = addr.v6().bytes();
    std::copy_n(bytes.begin(), octet_count, octets.begin());
  }
  // Zero the padding bits of the final octet (RFC 7871 §6: MUST be 0).
  if (prefix_len % 8 != 0 && !octets.empty()) {
    octets.back() &= static_cast<std::uint8_t>(0xFF << (8 - prefix_len % 8));
  }
  return octets;
}

net::IpAddr addr_from_octets(net::Family family, const std::vector<std::uint8_t>& octets) {
  if (family == net::Family::v4) {
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      value = (value << 8) | (i < octets.size() ? octets[i] : 0);
    }
    return net::IpV4Addr{value};
  }
  net::IpV6Addr::Bytes bytes{};
  std::copy_n(octets.begin(), std::min<std::size_t>(octets.size(), 16), bytes.begin());
  return net::IpV6Addr{bytes};
}

}  // namespace

ClientSubnetOption ClientSubnetOption::for_query(const net::IpAddr& client, int source_len) {
  if (source_len < 0 || source_len > client.bit_width()) {
    throw WireError{"ECS source prefix length out of range for family"};
  }
  ClientSubnetOption option;
  option.family_ = client.family();
  option.source_prefix_len_ = source_len;
  option.scope_prefix_len_ = 0;  // MUST be 0 in queries (RFC 7871 §6)
  option.address_octets_ = truncated_octets(client, source_len);
  return option;
}

ClientSubnetOption ClientSubnetOption::with_scope(int scope_len) const {
  if (scope_len < 0 || scope_len > family_bits(family_)) {
    throw WireError{"ECS scope prefix length out of range for family"};
  }
  ClientSubnetOption echo = *this;
  echo.scope_prefix_len_ = scope_len;
  return echo;
}

net::IpPrefix ClientSubnetOption::source_block() const {
  return net::IpPrefix{address(), source_prefix_len_};
}

net::IpPrefix ClientSubnetOption::scope_block() const {
  return net::IpPrefix{address(), scope_prefix_len_};
}

net::IpAddr ClientSubnetOption::address() const {
  return addr_from_octets(family_, address_octets_);
}

void ClientSubnetOption::encode_data(ByteWriter& writer) const {
  writer.u16(static_cast<std::uint16_t>(family_));
  writer.u8(static_cast<std::uint8_t>(source_prefix_len_));
  writer.u8(static_cast<std::uint8_t>(scope_prefix_len_));
  writer.bytes(address_octets_);
}

ClientSubnetOption ClientSubnetOption::decode_data(ByteReader& reader, std::uint16_t length) {
  if (length < 4) throw WireError{"ECS option shorter than fixed header"};
  ClientSubnetOption option;
  const std::uint16_t family_raw = reader.u16();
  if (family_raw != 1 && family_raw != 2) throw WireError{"ECS unknown address family"};
  option.family_ = static_cast<net::Family>(family_raw);
  option.source_prefix_len_ = reader.u8();
  option.scope_prefix_len_ = reader.u8();
  const int width = family_bits(option.family_);
  if (option.source_prefix_len_ > width || option.scope_prefix_len_ > width) {
    throw WireError{"ECS prefix length exceeds family width"};
  }
  const auto expected_octets = static_cast<std::size_t>((option.source_prefix_len_ + 7) / 8);
  if (length != 4 + expected_octets) {
    throw WireError{"ECS address field length does not match source prefix"};
  }
  const auto raw = reader.bytes(expected_octets);
  option.address_octets_.assign(raw.begin(), raw.end());
  if (option.source_prefix_len_ % 8 != 0 && !option.address_octets_.empty()) {
    const auto mask = static_cast<std::uint8_t>(0xFF << (8 - option.source_prefix_len_ % 8));
    if ((option.address_octets_.back() & ~mask) != 0) {
      throw WireError{"ECS address has non-zero padding bits"};
    }
  }
  return option;
}

std::string ClientSubnetOption::to_string() const {
  return util::format("ECS{%s/%d scope /%d}", address().to_string().c_str(), source_prefix_len_,
                      scope_prefix_len_);
}

const ClientSubnetOption* EdnsRecord::client_subnet() const noexcept {
  for (const EdnsOption& option : options) {
    if (option.code == static_cast<std::uint16_t>(OptionCode::client_subnet) &&
        option.client_subnet) {
      return &*option.client_subnet;
    }
  }
  return nullptr;
}

void EdnsRecord::set_client_subnet(ClientSubnetOption ecs) {
  for (EdnsOption& option : options) {
    if (option.code == static_cast<std::uint16_t>(OptionCode::client_subnet)) {
      option.client_subnet = std::move(ecs);
      return;
    }
  }
  EdnsOption option;
  option.code = static_cast<std::uint16_t>(OptionCode::client_subnet);
  option.client_subnet = std::move(ecs);
  options.push_back(std::move(option));
}

}  // namespace eum::dns
