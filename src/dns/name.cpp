#include "dns/name.h"

#include <algorithm>

#include "util/hash.h"
#include "util/strings.h"

namespace eum::dns {

namespace {

constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxNameWireLength = 255;
constexpr std::uint8_t kPointerTag = 0xC0;

void validate_label(std::string_view label) {
  if (label.empty()) throw WireError{"empty DNS label"};
  if (label.size() > kMaxLabelLength) throw WireError{"DNS label longer than 63 octets"};
}

}  // namespace

DnsName DnsName::from_text(std::string_view text) {
  DnsName name;
  if (text.empty() || text == ".") return name;
  if (text.back() == '.') text.remove_suffix(1);
  for (const auto label : util::split(text, '.')) {
    validate_label(label);
    name.labels_.push_back(util::to_lower(label));
  }
  if (name.wire_length() > kMaxNameWireLength) throw WireError{"DNS name longer than 255 octets"};
  return name;
}

DnsName DnsName::from_labels(std::vector<std::string> labels) {
  DnsName name;
  name.labels_.reserve(labels.size());
  for (auto& label : labels) {
    validate_label(label);
    name.labels_.push_back(util::to_lower(label));
  }
  if (name.wire_length() > kMaxNameWireLength) throw WireError{"DNS name longer than 255 octets"};
  return name;
}

std::size_t DnsName::wire_length() const noexcept {
  std::size_t length = 1;  // terminating root label
  for (const auto& label : labels_) length += 1 + label.size();
  return length;
}

bool DnsName::is_subdomain_of(const DnsName& zone) const noexcept {
  if (zone.labels_.size() > labels_.size()) return false;
  return std::equal(zone.labels_.rbegin(), zone.labels_.rend(), labels_.rbegin());
}

DnsName DnsName::parent() const {
  if (is_root()) throw WireError{"parent of root name"};
  DnsName result;
  result.labels_.assign(labels_.begin() + 1, labels_.end());
  return result;
}

DnsName DnsName::child(std::string_view label) const {
  validate_label(label);
  DnsName result;
  result.labels_.reserve(labels_.size() + 1);
  result.labels_.push_back(util::to_lower(label));
  result.labels_.insert(result.labels_.end(), labels_.begin(), labels_.end());
  if (result.wire_length() > kMaxNameWireLength) {
    throw WireError{"DNS name longer than 255 octets"};
  }
  return result;
}

std::string DnsName::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i != 0) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

void DnsName::encode(ByteWriter& writer, CompressionMap* compression) const {
  // Walk suffixes from the full name down: emit labels until a suffix is
  // found in the compression map, then emit a pointer to it.
  DnsName suffix = *this;
  while (!suffix.is_root()) {
    if (compression != nullptr) {
      if (const auto it = compression->find(suffix); it != compression->end()) {
        writer.u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      // Pointers can only address the first 16KiB-ish of the message
      // (14-bit offset); don't register suffixes beyond that.
      if (writer.size() <= 0x3FFF) {
        compression->emplace(suffix, static_cast<std::uint16_t>(writer.size()));
      }
    }
    const std::string& label = suffix.labels_.front();
    writer.u8(static_cast<std::uint8_t>(label.size()));
    writer.bytes({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
    suffix = suffix.parent();
  }
  writer.u8(0);  // root label terminator
}

DnsName DnsName::decode(ByteReader& reader) {
  DnsName name;
  std::size_t wire_length = 1;
  // After the first pointer, the cursor must stay where the in-line name
  // ended; we remember that position and restore it at the end.
  std::optional<std::size_t> resume_offset;
  int pointer_hops = 0;
  while (true) {
    const std::uint8_t length = reader.u8();
    if ((length & kPointerTag) == kPointerTag) {
      const std::uint8_t low = reader.u8();
      const std::size_t target =
          (static_cast<std::size_t>(length & 0x3F) << 8) | low;
      // Pointers must reference earlier message content; strictly-backward
      // targets guarantee termination, with a hop cap as belt and braces.
      const std::size_t pointer_pos = reader.offset() - 2;
      if (target >= pointer_pos) throw WireError{"forward compression pointer"};
      if (!resume_offset) resume_offset = reader.offset();
      if (++pointer_hops > 32) throw WireError{"compression pointer loop"};
      reader.seek(target);
      continue;
    }
    if ((length & kPointerTag) != 0) throw WireError{"reserved label type"};
    if (length == 0) break;
    if (length > kMaxLabelLength) throw WireError{"DNS label longer than 63 octets"};
    const auto raw = reader.bytes(length);
    wire_length += 1 + length;
    if (wire_length > kMaxNameWireLength) throw WireError{"DNS name longer than 255 octets"};
    std::string label(reinterpret_cast<const char*>(raw.data()), raw.size());
    name.labels_.push_back(util::to_lower(label));
  }
  if (resume_offset) reader.seek(*resume_offset);
  return name;
}

std::size_t DnsNameHash::operator()(const DnsName& name) const noexcept {
  std::uint64_t hash = 0x9ae16a3b2f90404fULL;
  for (const auto& label : name.labels()) {
    hash = util::hash_combine(hash, util::fnv1a64(label));
  }
  return static_cast<std::size_t>(hash);
}

}  // namespace eum::dns
