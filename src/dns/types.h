// DNS protocol constants (RFC 1035, RFC 6891).
#pragma once

#include <cstdint>
#include <string>

namespace eum::dns {

enum class RecordType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  TXT = 16,
  AAAA = 28,
  OPT = 41,  ///< EDNS0 pseudo-record (RFC 6891)
};

enum class RecordClass : std::uint16_t {
  IN = 1,
  ANY = 255,
};

enum class Opcode : std::uint8_t {
  query = 0,
  status = 2,
};

enum class Rcode : std::uint8_t {
  no_error = 0,
  form_err = 1,
  serv_fail = 2,
  nx_domain = 3,
  not_imp = 4,
  refused = 5,
};

[[nodiscard]] std::string to_string(RecordType type);
[[nodiscard]] std::string to_string(Rcode rcode);

}  // namespace eum::dns
