// DNS messages (RFC 1035 §4) with EDNS0 integration.
//
// `Message` is the parsed form; `encode()` produces wire bytes with name
// compression, and `Message::decode()` parses untrusted wire bytes with
// full bounds/validity checking. The OPT pseudo-record is surfaced as
// `Message::edns` rather than as an additional-section record.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/edns.h"
#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/types.h"
#include "dns/wire.h"

namespace eum::dns {

struct Header {
  std::uint16_t id = 0;
  bool is_response = false;          ///< QR
  Opcode opcode = Opcode::query;
  bool authoritative = false;        ///< AA
  bool truncated = false;            ///< TC
  bool recursion_desired = false;    ///< RD
  bool recursion_available = false;  ///< RA
  Rcode rcode = Rcode::no_error;

  friend bool operator==(const Header&, const Header&) noexcept = default;
};

struct Question {
  DnsName name;
  RecordType type = RecordType::A;
  RecordClass rclass = RecordClass::IN;

  friend bool operator==(const Question&, const Question&) noexcept = default;
};

struct ResourceRecord {
  DnsName name;
  RecordType type = RecordType::A;
  RecordClass rclass = RecordClass::IN;
  std::uint32_t ttl = 0;
  RData rdata = RawRecord{};

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) noexcept = default;
};

class Message {
 public:
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;  ///< excluding the OPT record
  std::optional<EdnsRecord> edns;

  /// Convenience: a query for one (name, type) with optional ECS.
  [[nodiscard]] static Message make_query(std::uint16_t id, const DnsName& name, RecordType type,
                                          std::optional<ClientSubnetOption> ecs = std::nullopt);

  /// Convenience: start a response to `query` (copies id/question, sets QR;
  /// echoes EDNS presence with the same payload size).
  [[nodiscard]] static Message make_response(const Message& query);

  /// All A/AAAA answer addresses, in answer order.
  [[nodiscard]] std::vector<net::IpAddr> answer_addresses() const;

  /// The ECS option carried in the EDNS record, if any.
  [[nodiscard]] const ClientSubnetOption* client_subnet() const noexcept {
    return edns ? edns->client_subnet() : nullptr;
  }

  /// Serialize to wire format with name compression.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parse wire bytes. Throws WireError on malformed input.
  [[nodiscard]] static Message decode(std::span<const std::uint8_t> wire);
};

}  // namespace eum::dns
