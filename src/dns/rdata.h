// Typed RDATA for the record types the mapping system uses.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "dns/wire.h"
#include "net/ip.h"

namespace eum::dns {

struct ARecord {
  net::IpV4Addr address;
  friend bool operator==(const ARecord&, const ARecord&) noexcept = default;
};

struct AaaaRecord {
  net::IpV6Addr address;
  friend bool operator==(const AaaaRecord&, const AaaaRecord&) noexcept = default;
};

struct NsRecord {
  DnsName nameserver;
  friend bool operator==(const NsRecord&, const NsRecord&) noexcept = default;
};

struct CnameRecord {
  DnsName target;
  friend bool operator==(const CnameRecord&, const CnameRecord&) noexcept = default;
};

struct SoaRecord {
  DnsName mname;       ///< primary name server
  DnsName rname;       ///< responsible mailbox
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;  ///< negative-caching TTL (RFC 2308)
  friend bool operator==(const SoaRecord&, const SoaRecord&) noexcept = default;
};

struct TxtRecord {
  /// Character-strings; each must be <= 255 octets.
  std::vector<std::string> strings;
  friend bool operator==(const TxtRecord&, const TxtRecord&) noexcept = default;
};

/// Unknown/opaque RDATA carried verbatim.
struct RawRecord {
  std::vector<std::uint8_t> data;
  friend bool operator==(const RawRecord&, const RawRecord&) noexcept = default;
};

using RData = std::variant<ARecord, AaaaRecord, NsRecord, CnameRecord, SoaRecord, TxtRecord,
                           RawRecord>;

/// The wire RecordType corresponding to a typed RData (RawRecord has no
/// inherent type, so the caller's record type is returned for it).
[[nodiscard]] RecordType rdata_type(const RData& rdata, RecordType fallback);

/// Encode RDATA (without the RDLENGTH prefix). Compression is applied to
/// embedded names in NS/CNAME/SOA per RFC 1035 when `compression` is given.
void encode_rdata(const RData& rdata, ByteWriter& writer, DnsName::CompressionMap* compression);

/// Decode RDATA of `type` occupying exactly `rdlength` octets at the reader.
[[nodiscard]] RData decode_rdata(RecordType type, std::uint16_t rdlength, ByteReader& reader);

}  // namespace eum::dns
