// Geolocation database (the Edgescape substitute).
//
// "Edgescape can provide the latitude, longitude, country and autonomous
// system (AS) for an IP" (paper §3.1). This is a longest-prefix-match
// store of exactly that record, populated by the synthetic world
// generator instead of registry/transaction data.
#pragma once

#include <cstdint>
#include <string>

#include "geo/coords.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace eum::geo {

/// What the database knows about an IP block.
struct GeoInfo {
  GeoPoint location;       ///< representative lat/lon for the block
  std::uint16_t country = 0;  ///< country index (world-model specific)
  std::uint32_t asn = 0;      ///< autonomous system number

  friend bool operator==(const GeoInfo&, const GeoInfo&) noexcept = default;
};

class GeoDatabase {
 public:
  GeoDatabase() = default;

  /// Register a block. More specific entries shadow broader ones on lookup.
  void add(const net::IpPrefix& prefix, const GeoInfo& info) { trie_.insert(prefix, info); }

  /// Longest-prefix-match lookup; nullptr when the address is unknown.
  [[nodiscard]] const GeoInfo* lookup(const net::IpAddr& addr) const noexcept {
    return trie_.longest_match(addr);
  }

  /// Number of registered blocks.
  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }

  /// Great-circle distance in miles between two IPs, if both are known.
  [[nodiscard]] std::optional<double> distance_miles(const net::IpAddr& a,
                                                     const net::IpAddr& b) const {
    const GeoInfo* ga = lookup(a);
    const GeoInfo* gb = lookup(b);
    if (ga == nullptr || gb == nullptr) return std::nullopt;
    return great_circle_miles(ga->location, gb->location);
  }

 private:
  net::PrefixTrie<GeoInfo> trie_;
};

}  // namespace eum::geo
