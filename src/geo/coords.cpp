#include "geo/coords.h"

#include <cmath>
#include <stdexcept>

namespace eum::geo {

namespace {

constexpr double kDegToRad = 0.017453292519943295;

}  // namespace

double great_circle_miles(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h = sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  // Clamp against rounding before the sqrt: h can exceed 1 by an ulp for
  // antipodal points.
  const double clamped = h > 1.0 ? 1.0 : (h < 0.0 ? 0.0 : h);
  return 2.0 * kEarthRadiusMiles * std::asin(std::sqrt(clamped));
}

GeoPoint centroid(std::span<const WeightedPoint> points) {
  if (points.empty()) throw std::invalid_argument{"centroid: empty point set"};
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double total = 0.0;
  for (const WeightedPoint& wp : points) {
    if (wp.weight < 0.0) throw std::invalid_argument{"centroid: negative weight"};
    const double lat = wp.point.lat_deg * kDegToRad;
    const double lon = wp.point.lon_deg * kDegToRad;
    x += wp.weight * std::cos(lat) * std::cos(lon);
    y += wp.weight * std::cos(lat) * std::sin(lon);
    z += wp.weight * std::sin(lat);
    total += wp.weight;
  }
  if (total <= 0.0) throw std::invalid_argument{"centroid: total weight must be positive"};
  const double norm = std::sqrt(x * x + y * y + z * z);
  if (norm == 0.0) {
    // Degenerate (weights cancel around the globe); fall back to the pole.
    return GeoPoint{90.0, 0.0};
  }
  return GeoPoint{std::asin(z / norm) / kDegToRad, std::atan2(y, x) / kDegToRad};
}

double mean_distance_to(std::span<const WeightedPoint> points, const GeoPoint& reference) {
  if (points.empty()) throw std::invalid_argument{"mean_distance_to: empty point set"};
  double sum = 0.0;
  double total = 0.0;
  for (const WeightedPoint& wp : points) {
    sum += wp.weight * great_circle_miles(wp.point, reference);
    total += wp.weight;
  }
  if (total <= 0.0) throw std::invalid_argument{"mean_distance_to: total weight must be positive"};
  return sum / total;
}

}  // namespace eum::geo
