// Geographic coordinates and great-circle distance.
//
// The paper derives client-LDNS and mapping distances as "the great
// circle distance between the two locations" using latitude/longitude
// from the Edgescape geolocation database, with distances reported in
// miles; this module is that computation.
#pragma once

#include <span>

namespace eum::geo {

/// Mean Earth radius in miles.
inline constexpr double kEarthRadiusMiles = 3958.7613;

/// A point on the globe in degrees.
struct GeoPoint {
  double lat_deg = 0.0;  ///< latitude, [-90, 90]
  double lon_deg = 0.0;  ///< longitude, [-180, 180]

  friend bool operator==(const GeoPoint&, const GeoPoint&) noexcept = default;
};

/// Great-circle distance between two points in miles (haversine formula).
[[nodiscard]] double great_circle_miles(const GeoPoint& a, const GeoPoint& b) noexcept;

/// A point with an associated weight (client demand, in the paper's terms).
struct WeightedPoint {
  GeoPoint point;
  double weight = 1.0;
};

/// Demand-weighted spherical centroid (3-D unit-vector mean, re-normalized).
/// Precondition: points non-empty with positive total weight.
[[nodiscard]] GeoPoint centroid(std::span<const WeightedPoint> points);

/// Weighted mean great-circle distance from each point to `reference`
/// (the paper's "cluster radius" when reference is the cluster centroid,
/// §3.3 footnote 7). Precondition: points non-empty with positive total weight.
[[nodiscard]] double mean_distance_to(std::span<const WeightedPoint> points,
                                      const GeoPoint& reference);

}  // namespace eum::geo
