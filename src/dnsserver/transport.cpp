#include "dnsserver/transport.h"

namespace eum::dnsserver {

using dns::DnsName;
using dns::Message;

void AuthorityDirectory::add_authority(DnsName suffix, AuthoritativeServer* server) {
  if (server == nullptr) {
    throw std::invalid_argument{"AuthorityDirectory::add_authority: null server"};
  }
  authorities_.emplace_back(std::move(suffix), server);
}

void AuthorityDirectory::add_server(const net::IpAddr& address, AuthoritativeServer* server) {
  if (server == nullptr) {
    throw std::invalid_argument{"AuthorityDirectory::add_server: null server"};
  }
  if (!address.is_v4()) {
    throw std::invalid_argument{"AuthorityDirectory::add_server: IPv4 addresses only"};
  }
  servers_by_address_[address.v4().value()] = server;
}

std::optional<Message> AuthorityDirectory::forward_to(const net::IpAddr& server,
                                                      const Message& query,
                                                      const net::IpAddr& source) {
  if (!server.is_v4()) return std::nullopt;
  const auto it = servers_by_address_.find(server.v4().value());
  if (it == servers_by_address_.end()) return std::nullopt;
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  const Message parsed_query = Message::decode(query.encode());
  const Message response = it->second->handle(parsed_query, source, server);
  return Message::decode(response.encode());
}

Message AuthorityDirectory::forward(const Message& query, const net::IpAddr& source) {
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  // Encode/decode both directions so all simulated traffic passes through
  // the real codec.
  const Message parsed_query = Message::decode(query.encode());

  AuthoritativeServer* target = nullptr;
  std::size_t best_labels = 0;
  if (!parsed_query.questions.empty()) {
    const DnsName& qname = parsed_query.questions.front().name;
    for (const auto& [suffix, server] : authorities_) {
      if (qname.is_subdomain_of(suffix) && (target == nullptr || suffix.label_count() > best_labels)) {
        target = server;
        best_labels = suffix.label_count();
      }
    }
  }
  if (target == nullptr) {
    Message response = Message::make_response(parsed_query);
    response.header.rcode = dns::Rcode::refused;
    return response;
  }
  const Message response = target->handle(parsed_query, source);
  return Message::decode(response.encode());
}

StubClient::StubClient(RecursiveResolver* ldns, net::IpAddr client_addr)
    : ldns_(ldns), client_addr_(client_addr) {
  if (ldns_ == nullptr) throw std::invalid_argument{"StubClient: null resolver"};
}

bool StubClient::matches(const Message& query, const Message& response) noexcept {
  return response.header.is_response && response.header.id == query.header.id &&
         response.questions == query.questions;
}

Message StubClient::query(const DnsName& name, dns::RecordType type) {
  // next_id_ wraps through 0 on its own: ID 0 is as legal as any other.
  const Message request = Message::make_query(next_id_++, name, type);
  const Message parsed = Message::decode(request.encode());
  const Message response = ldns_->resolve(parsed, client_addr_);
  Message decoded = Message::decode(response.encode());
  if (!matches(request, decoded)) {
    // Wrong ID or question echo: a crossed wire or spoofed answer.
    // Trusting it would poison the caller; fail the lookup instead.
    Message failure = Message::make_response(request);
    failure.header.rcode = dns::Rcode::serv_fail;
    return failure;
  }
  return decoded;
}

std::vector<net::IpAddr> StubClient::lookup(const DnsName& name, dns::RecordType type) {
  const Message response = query(name, type);
  if (response.header.rcode != dns::Rcode::no_error) return {};
  return response.answer_addresses();
}

}  // namespace eum::dnsserver
