#include "dnsserver/scoped_cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace eum::dnsserver {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  return std::bit_ceil(std::max<std::size_t>(n, 1));
}

}  // namespace

ScopedEcsCache::ScopedEcsCache(ScopedCacheConfig config)
    : owned_registry_(config.registry == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                 : nullptr),
      registry_(config.registry != nullptr ? config.registry : owned_registry_.get()),
      shard_count_(round_up_pow2(config.shards)),
      shard_mask_(shard_count_ - 1),
      per_shard_capacity_(std::max<std::size_t>(1, config.max_entries / shard_count_)),
      stale_window_(config.stale_window),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  if (config.max_entries == 0) {
    throw std::invalid_argument{"ScopedEcsCache: max_entries must be positive"};
  }
  if (stale_window_ < 0) {
    throw std::invalid_argument{"ScopedEcsCache: stale_window must be non-negative"};
  }
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const obs::Labels labels{{"shard", std::to_string(i)}};
    ShardMetrics& m = shards_[i].metrics;
    m.hits = &registry_->counter("eum_cache_hits_total", "scoped-cache hits", labels);
    m.misses = &registry_->counter("eum_cache_misses_total", "scoped-cache misses", labels);
    m.insertions = &registry_->counter("eum_cache_insertions_total", "entries inserted", labels);
    m.replacements =
        &registry_->counter("eum_cache_replacements_total", "same-scope refreshes", labels);
    m.evictions =
        &registry_->counter("eum_cache_evictions_total", "LRU pressure evictions", labels);
    m.expirations =
        &registry_->counter("eum_cache_expirations_total", "TTL-expired entries reaped", labels);
    m.scoped_hits =
        &registry_->counter("eum_cache_scoped_hits_total", "hits on non-global entries", labels);
    m.scope_depth_total = &registry_->counter("eum_cache_scope_depth_bits_total",
                                              "sum of matched scope lengths", labels);
    m.entries_gauge = &registry_->gauge("eum_cache_entries", "live cached entries", labels);
  }
}

ScopedEcsCache::Shard& ScopedEcsCache::shard_for(const Key& key) const noexcept {
  // Re-mix the key hash so shard choice and bucket choice use
  // independent bits.
  return shards_[util::mix64(KeyHash{}(key)) & shard_mask_];
}

void ScopedEcsCache::unlink(Shard& shard, NodeList::iterator node) {
  const auto it = shard.index.find(node->key);
  auto& slots = it->second;
  slots.erase(std::find(slots.begin(), slots.end(), node));
  if (slots.empty()) shard.index.erase(it);  // reap the key, not just the slot
  shard.lru.erase(node);
  --shard.entries;
  shard.metrics.entries_gauge->add(-1);
}

std::optional<ScopedEcsCache::Entry> ScopedEcsCache::lookup(const Key& key,
                                                            const net::IpAddr& client,
                                                            util::SimTime now) {
  Shard& shard = shard_for(key);
  const std::scoped_lock lock{shard.mutex};
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.metrics.misses->add();
    return std::nullopt;
  }
  // Reap expired entries under this key in passing, then pick the
  // longest matching scope among the survivors. A global entry (no
  // scope) matches every client with specificity -1, so any scoped
  // match beats it. With a stale window, expired entries are kept for
  // lookup_stale() until `expires + stale_window` but never returned
  // from a regular lookup.
  auto& slots = it->second;
  NodeList::iterator best = shard.lru.end();
  int best_depth = -2;
  for (std::size_t i = 0; i < slots.size();) {
    const NodeList::iterator node = slots[i];
    if (node->entry.expires + stale_window_ <= now) {
      shard.metrics.expirations->add();
      shard.lru.erase(node);
      slots[i] = slots.back();
      slots.pop_back();
      --shard.entries;
      shard.metrics.entries_gauge->add(-1);
      continue;
    }
    if (node->entry.expires <= now) {
      ++i;  // stale: retained for lookup_stale(), invisible here
      continue;
    }
    const auto& scope = node->entry.scope;
    const int depth = scope ? scope->length() : -1;
    if ((!scope || scope->contains(client)) && depth > best_depth) {
      best = node;
      best_depth = depth;
    }
    ++i;
  }
  if (slots.empty()) shard.index.erase(it);
  if (best == shard.lru.end()) {
    shard.metrics.misses->add();
    return std::nullopt;
  }
  shard.metrics.hits->add();
  if (best_depth >= 0) {
    shard.metrics.scoped_hits->add();
    shard.metrics.scope_depth_total->add(static_cast<std::uint64_t>(best_depth));
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, best);  // promote
  return best->entry;
}

std::optional<ScopedEcsCache::Entry> ScopedEcsCache::lookup_stale(const Key& key,
                                                                  const net::IpAddr& client,
                                                                  util::SimTime now) {
  if (stale_window_ == 0) return std::nullopt;
  Shard& shard = shard_for(key);
  const std::scoped_lock lock{shard.mutex};
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  // Longest matching scope among everything still inside the stale
  // window. A fresh entry stored by a racing thread between the caller's
  // failed lookup and now is equally acceptable — take it.
  NodeList::iterator best = shard.lru.end();
  int best_depth = -2;
  for (const NodeList::iterator node : it->second) {
    if (node->entry.expires + stale_window_ <= now) continue;  // next lookup reaps it
    const auto& scope = node->entry.scope;
    const int depth = scope ? scope->length() : -1;
    if ((!scope || scope->contains(client)) && depth > best_depth) {
      best = node;
      best_depth = depth;
    }
  }
  if (best == shard.lru.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, best);  // promote: still useful
  return best->entry;
}

void ScopedEcsCache::store(const Key& key, Entry entry) {
  Shard& shard = shard_for(key);
  const std::scoped_lock lock{shard.mutex};
  if (auto it = shard.index.find(key); it != shard.index.end()) {
    // Refresh in place when an entry with the identical scope exists.
    for (const NodeList::iterator node : it->second) {
      if (node->entry.scope == entry.scope) {
        node->entry = std::move(entry);
        shard.lru.splice(shard.lru.begin(), shard.lru, node);
        shard.metrics.replacements->add();
        return;
      }
    }
  }
  // Evict coldest entries until the new one fits; the LRU back is the
  // least recently touched node across every key in the shard.
  while (shard.entries >= per_shard_capacity_ && !shard.lru.empty()) {
    const auto victim = std::prev(shard.lru.end());
    const bool expired = victim->entry.expires <= entry.inserted;
    unlink(shard, victim);
    (expired ? shard.metrics.expirations : shard.metrics.evictions)->add();
  }
  shard.lru.push_front(Node{key, std::move(entry)});
  shard.index[key].push_back(shard.lru.begin());
  ++shard.entries;
  shard.metrics.entries_gauge->add(1);
  shard.metrics.insertions->add();
}

std::size_t ScopedEcsCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::scoped_lock lock{shards_[i].mutex};
    total += shards_[i].entries;
  }
  return total;
}

std::size_t ScopedEcsCache::key_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::scoped_lock lock{shards_[i].mutex};
    total += shards_[i].index.size();
  }
  return total;
}

ScopedCacheStats ScopedEcsCache::stats() const {
  // Counters are atomics: summing needs no shard locks.
  ScopedCacheStats total;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const ShardMetrics& m = shards_[i].metrics;
    total.hits += m.hits->value();
    total.misses += m.misses->value();
    total.insertions += m.insertions->value();
    total.replacements += m.replacements->value();
    total.evictions += m.evictions->value();
    total.expirations += m.expirations->value();
    total.scoped_hits += m.scoped_hits->value();
    total.scope_depth_total += m.scope_depth_total->value();
  }
  return total;
}

void ScopedEcsCache::reset_stats() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const ShardMetrics& m = shards_[i].metrics;
    m.hits->reset();
    m.misses->reset();
    m.insertions->reset();
    m.replacements->reset();
    m.evictions->reset();
    m.expirations->reset();
    m.scoped_hits->reset();
    m.scope_depth_total->reset();
    // entries_gauge deliberately untouched: entries are still cached.
  }
}

void ScopedEcsCache::clear() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::scoped_lock lock{shards_[i].mutex};
    shards_[i].lru.clear();
    shards_[i].index.clear();
    shards_[i].entries = 0;
    shards_[i].metrics.entries_gauge->set(0);
  }
}

}  // namespace eum::dnsserver
