// Sharded, LRU-evicting, RFC 7871-scoped resolver cache.
//
// This is the LDNS cache the paper's query-rate analysis hinges on
// (§5.2-5.3): with end-user mapping every /x client block gets its own
// scoped answer, so the cache must (a) key lookups by the *ECS address*
// of the query, (b) honour scope containment, and (c) when several
// cached scopes cover one client, return the **longest matching scope**
// (RFC 7871 §7.3.1's most-specific-match rule) — a /0 or non-ECS answer
// is merely the fallback of last resort, never a shadow over a
// finer-grained entry.
//
// The cache is split into independently-lockable shards (key-hashed) so
// a multithreaded front end scales without a global lock, and each shard
// runs an intrusive LRU so a full cache evicts the coldest entries one
// at a time instead of dumping all state.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/sim_clock.h"

namespace eum::dnsserver {

struct ScopedCacheConfig {
  /// Total capacity in entries across all shards (scoped answers count
  /// individually, exactly as they multiply authority load in Fig. 23).
  std::size_t max_entries = 1 << 20;
  /// Number of independently-locked shards; rounded up to a power of two.
  std::size_t shards = 8;
  /// Registry the cache records into (borrowed; must outlive the cache).
  /// nullptr gives the cache a private registry. Counters are registered
  /// per shard (eum_cache_*{shard="N"}) so each shard bumps its own
  /// cache line and a hot shard stays attributable; the ScopedCacheStats
  /// view sums them.
  obs::MetricsRegistry* registry = nullptr;
  /// RFC 8767 serve-stale retention window, seconds. Expired entries are
  /// kept (invisible to lookup(), reachable via lookup_stale()) until
  /// `expires + stale_window`, after which they are reaped as before.
  /// 0 disables retention: expired entries are reaped on sight.
  std::int64_t stale_window = 0;
};

/// Monotonic counters, aggregated over all shards — a thin snapshot view
/// over the per-shard registry counters.
struct ScopedCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t replacements = 0;      ///< same-scope overwrite (refresh)
  std::uint64_t evictions = 0;         ///< LRU pressure evictions
  std::uint64_t expirations = 0;       ///< TTL-expired entries reaped
  std::uint64_t scoped_hits = 0;       ///< hits on a non-global entry
  std::uint64_t scope_depth_total = 0; ///< sum of matched scope lengths
  /// Mean prefix length of scoped hits (0 when there were none).
  [[nodiscard]] double mean_scope_depth() const noexcept {
    return scoped_hits == 0 ? 0.0
                            : static_cast<double>(scope_depth_total) /
                                  static_cast<double>(scoped_hits);
  }
};

class ScopedEcsCache {
 public:
  struct Key {
    dns::DnsName name;
    dns::RecordType type = dns::RecordType::A;
    bool operator==(const Key&) const noexcept = default;
  };

  struct Entry {
    /// Scope the answer is valid for; nullopt = valid for every client
    /// (non-ECS answer or scope /0).
    std::optional<net::IpPrefix> scope;
    std::vector<dns::ResourceRecord> answers;
    dns::Rcode rcode = dns::Rcode::no_error;
    util::SimTime inserted;
    util::SimTime expires;
  };

  explicit ScopedEcsCache(ScopedCacheConfig config);

  /// Longest-scope-match lookup for `client` at time `now`. Expired
  /// entries under the key are reaped in passing (entries still inside
  /// the stale window are retained but never returned here); a hit is
  /// promoted to the front of its shard's LRU. Returns a copy so the
  /// entry stays valid regardless of concurrent eviction.
  [[nodiscard]] std::optional<Entry> lookup(const Key& key, const net::IpAddr& client,
                                            util::SimTime now);

  /// RFC 8767 last-resort lookup: the longest-scope match for `client`
  /// among entries still inside the stale window — expired or not — so a
  /// resolver whose every upstream attempt failed can degrade gracefully
  /// instead of answering SERVFAIL. Returns nullopt when the window is 0
  /// or nothing under the key covers the client.
  [[nodiscard]] std::optional<Entry> lookup_stale(const Key& key, const net::IpAddr& client,
                                                  util::SimTime now);

  /// Insert `entry`; an existing entry with the identical scope is
  /// replaced in place. When the shard is at capacity the least recently
  /// used entries are evicted (never a wholesale flush).
  void store(const Key& key, Entry entry);

  /// Live entries across all shards.
  [[nodiscard]] std::size_t size() const;
  /// Distinct (name, type) keys across all shards — stays bounded: a key
  /// whose last entry expires or is evicted is erased, not left behind
  /// as an empty bucket.
  [[nodiscard]] std::size_t key_count() const;

  [[nodiscard]] ScopedCacheStats stats() const;

  /// Reset contract: zero the monotonic counters; the eum_cache_entries
  /// gauges are live state and survive (entries are still cached).
  void reset_stats();

  /// Drop every cached entry (counters unaffected; entry gauges go to 0).
  void clear();

  [[nodiscard]] std::size_t shard_count() const noexcept { return shard_count_; }

  /// The registry this cache records into (its own unless one was injected).
  [[nodiscard]] obs::MetricsRegistry& registry() const noexcept { return *registry_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return util::hash_combine(dns::DnsNameHash{}(key.name),
                                static_cast<std::uint64_t>(key.type));
    }
  };
  struct Node {
    Key key;
    Entry entry;
  };
  using NodeList = std::list<Node>;
  /// Per-shard registry counter handles: the shard bumps these while
  /// holding its own lock, so the relaxed adds never contend across
  /// shards the way one shared counter would.
  struct ShardMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* insertions = nullptr;
    obs::Counter* replacements = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* expirations = nullptr;
    obs::Counter* scoped_hits = nullptr;
    obs::Counter* scope_depth_total = nullptr;
    obs::Gauge* entries_gauge = nullptr;
  };
  struct Shard {
    mutable std::mutex mutex;
    /// front = most recently used.
    NodeList lru;
    std::unordered_map<Key, std::vector<NodeList::iterator>, KeyHash> index;
    std::size_t entries = 0;
    ShardMetrics metrics;
  };

  [[nodiscard]] Shard& shard_for(const Key& key) const noexcept;
  /// Remove `node` from its shard (list + index, reaping empty keys).
  /// Caller holds the shard lock.
  static void unlink(Shard& shard, NodeList::iterator node);

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;  ///< when none injected
  obs::MetricsRegistry* registry_;
  std::size_t shard_count_;
  std::size_t shard_mask_;
  std::size_t per_shard_capacity_;
  std::int64_t stale_window_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace eum::dnsserver
