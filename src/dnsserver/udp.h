// UDP transport: a real socket-based DNS server and client.
//
// The simulation uses the in-memory transport, but the authoritative
// engine is transport-agnostic, and this module serves it over genuine
// UDP (see examples/ecs_dns_server.cpp, which answers `dig +subnet`
// queries). The server runs N worker threads, each with its own
// SO_REUSEPORT socket bound to the same endpoint so the kernel
// load-balances datagrams across workers — the front end the paper's
// authorities need to absorb the ~8x query-rate increase finer ECS
// granularity causes (§5.3, Fig. 23). IPv4 localhost-oriented; RAII
// socket ownership throughout.
//
// The serve path is batched, modeled on Traffic Server's UnixUDPNet
// polling loop: one poll wakeup drains up to a whole UdpBatch with a
// single recvmmsg, responses are staged into preallocated per-worker
// arenas, and one sendmmsg flushes them — so syscall count and per-query
// allocation are amortized to ~zero. Where the mmsg syscalls are
// unavailable the same batch API degrades to recvfrom/sendto loops.
// An optional per-worker wire-level answer cache (answer_cache.h) lets
// repeat queries bypass the engine entirely, invalidated by map-snapshot
// version.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "dns/message.h"
#include "dnsserver/answer_cache.h"
#include "dnsserver/authoritative.h"
#include "dnsserver/resolver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/table.h"

namespace eum::dnsserver {

/// A UDP endpoint (IPv4).
struct UdpEndpoint {
  net::IpV4Addr address;
  std::uint16_t port = 0;

  friend bool operator==(const UdpEndpoint&, const UdpEndpoint&) noexcept = default;
};

/// Preallocated datagram arena for batched receive/send. One instance
/// per worker (or per client loop): all receive buffers are carved from
/// one contiguous allocation made at construction, and staged-response
/// vectors are reused across batches, so the steady-state serve path
/// performs zero allocation. Not thread-safe — single owner by design.
class UdpBatch {
 public:
  /// Hard upper bound on datagrams per syscall (mmsghdr arrays live on
  /// the stack in UdpSocket).
  static constexpr std::size_t kMaxCapacity = 64;
  /// Receive buffer per slot. 4096 covers every EDNS query we advertise
  /// for; larger datagrams are flagged truncated and dropped.
  static constexpr std::size_t kRxBufferSize = 4096;

  /// `capacity` is clamped to [1, kMaxCapacity].
  explicit UdpBatch(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // Received datagrams, filled by UdpSocket::receive_batch.
  [[nodiscard]] std::size_t received() const noexcept { return received_; }
  [[nodiscard]] std::span<const std::uint8_t> datagram(std::size_t i) const noexcept {
    return {rx_storage_.get() + i * kRxBufferSize, rx_size_[i]};
  }
  [[nodiscard]] const UdpEndpoint& peer(std::size_t i) const noexcept { return rx_peer_[i]; }
  /// True when the datagram exceeded kRxBufferSize and was cut short.
  [[nodiscard]] bool rx_truncated(std::size_t i) const noexcept { return rx_trunc_[i] != 0; }

  // Responses staged for UdpSocket::send_batch. stage() returns a
  // cleared, capacity-retaining buffer to encode into; staging more than
  // `capacity()` datagrams throws std::out_of_range.
  std::vector<std::uint8_t>& stage(const UdpEndpoint& to);
  [[nodiscard]] std::size_t staged() const noexcept { return staged_; }
  void clear_staged() noexcept { staged_ = 0; }

 private:
  friend class UdpSocket;

  std::size_t capacity_;
  std::unique_ptr<std::uint8_t[]> rx_storage_;  ///< capacity_ * kRxBufferSize
  std::vector<std::uint32_t> rx_size_;
  std::vector<std::uint8_t> rx_trunc_;
  std::vector<UdpEndpoint> rx_peer_;
  std::size_t received_ = 0;

  std::vector<std::vector<std::uint8_t>> tx_;
  std::vector<UdpEndpoint> tx_peer_;
  std::size_t staged_ = 0;
};

/// RAII wrapper over a bound UDP socket.
class UdpSocket {
 public:
  /// Bind to `endpoint`; port 0 picks an ephemeral port. With
  /// `reuse_port`, SO_REUSEPORT is set before binding so several sockets
  /// can share one endpoint and the kernel spreads datagrams over them.
  /// Throws std::system_error on failure.
  explicit UdpSocket(const UdpEndpoint& endpoint, bool reuse_port = false);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The actual bound endpoint (resolves ephemeral ports).
  [[nodiscard]] UdpEndpoint local_endpoint() const;

  /// Send one datagram.
  void send_to(std::span<const std::uint8_t> data, const UdpEndpoint& peer);

  /// Receive one datagram, waiting up to `timeout`. Returns nullopt on
  /// timeout. `peer` receives the sender's endpoint.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> receive(
      std::chrono::milliseconds timeout, UdpEndpoint& peer);

  /// Wait up to `timeout` for readability, then drain up to
  /// `batch.capacity()` datagrams in one recvmmsg (single recvfrom loop
  /// where unavailable). Returns the number received; 0 on timeout.
  /// Previously received/staged contents of `batch` are discarded.
  std::size_t receive_batch(UdpBatch& batch, std::chrono::milliseconds timeout);

  struct SendBatchResult {
    std::size_t sent = 0;    ///< datagrams handed to the kernel
    std::size_t errors = 0;  ///< datagrams refused (ENOBUFS, EPERM, ...)
    int last_errno = 0;
  };

  /// Flush every staged response in one sendmmsg (sendto loop where
  /// unavailable). Never throws: per-datagram send failures — the
  /// ENOBUFS/EPERM/ECONNREFUSED family — are counted, the rest of the
  /// batch still goes out, and the staged set is cleared either way.
  SendBatchResult send_batch(UdpBatch& batch) noexcept;

  /// Ask the kernel to attach its receive-queue overflow counter to
  /// incoming datagrams (Linux SO_RXQ_OVFL). Returns false where the
  /// option is unsupported; kernel_drops() then stays 0. Overload
  /// analysis needs this to tell kernel drops (queue overflow before the
  /// server ever saw the query) apart from server-side latency.
  bool enable_rx_drop_counter() noexcept;

  /// Cumulative datagrams the kernel dropped on this socket's receive
  /// queue, as of the most recently received batch. Only advances on the
  /// recvmmsg path (the drop count rides in per-datagram cmsg metadata,
  /// which the portable recvfrom fallback does not request).
  [[nodiscard]] std::uint64_t kernel_drops() const noexcept {
    return rxq_drops_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int native_handle() const noexcept { return fd_; }

 private:
  /// Deadline-based readability wait (EINTR-safe); true when readable.
  [[nodiscard]] bool wait_readable(std::chrono::milliseconds timeout);

  int fd_ = -1;
  bool mmsg_unavailable_ = false;  ///< runtime ENOSYS fallback latch
  /// Latest SO_RXQ_OVFL cumulative value seen in receive cmsg metadata.
  /// Atomic because stats snapshots read it from other threads.
  std::atomic<std::uint64_t> rxq_drops_{0};
};

struct UdpServerConfig {
  /// Worker threads started by start(); each owns one SO_REUSEPORT
  /// socket on the shared endpoint.
  std::size_t workers = 1;
  /// Poll granularity of the worker loops (stop-flag latency bound).
  /// Must be positive: a non-positive interval would park workers in
  /// poll() forever and stop() could never join them — the constructor
  /// rejects it.
  std::chrono::milliseconds poll_interval{50};
  /// Registry for eum_udp_* metrics (borrowed; must outlive the server).
  /// nullptr shares the engine's registry, so one snapshot covers the
  /// whole serving stack.
  obs::MetricsRegistry* registry = nullptr;
  /// Datagrams drained/flushed per syscall round, clamped to
  /// [1, UdpBatch::kMaxCapacity]. 1 degenerates to the single-shot path.
  std::size_t batch = 32;
  /// Slots in the per-worker wire answer cache; 0 (default) disables it.
  /// With the cache on, repeat queries are answered from memoized wire
  /// bytes and never reach the engine (its counters and query log see
  /// only misses), so enabling it is an explicit opt-in.
  std::size_t answer_cache_entries = 0;
  /// Responses larger than this are not cached.
  std::size_t answer_cache_max_wire = 4096;
  /// Map-snapshot version cell the cache keys on (borrowed, may be
  /// null): point it at MapMaker::version_cell() and every snapshot
  /// publish invalidates all cached answers. Null pins version 0 —
  /// fine for static zones, wrong for live-republished mappings.
  const std::atomic<std::uint64_t>* map_version = nullptr;
  /// Flight recorder for per-query trace spans (borrowed, may be null =
  /// tracing off). Each worker gets its own QueryTracer scratch; a
  /// datagram's trace is committed when sampled or anomalous. See
  /// obs/trace.h for the cost discipline.
  obs::FlightRecorder* recorder = nullptr;
};

/// Counter snapshot for the UDP front end — a thin view over the
/// per-worker registry counters. Every counter is kept per worker
/// (eum_udp_*{worker="N"}) so worker bumps never contend; the aggregate
/// fields here are sums over the workers.
struct UdpServerStats {
  std::uint64_t queries = 0;            ///< datagrams answered
  std::uint64_t truncated = 0;          ///< TC=1 responses sent
  std::uint64_t wire_errors = 0;        ///< unparseable datagrams
  std::uint64_t send_errors = 0;        ///< datagrams the kernel refused to send
  std::uint64_t kernel_drops = 0;       ///< receive-queue overflow drops (SO_RXQ_OVFL)
  std::uint64_t cache_hits = 0;         ///< answers served from the wire cache
  std::uint64_t cache_misses = 0;       ///< cacheable queries that took the slow path
  std::uint64_t worker_exceptions = 0;  ///< exceptions the worker barrier absorbed
  std::vector<std::uint64_t> per_worker;             ///< queries per worker
  std::vector<std::uint64_t> per_worker_truncated;   ///< TC=1 per worker
  std::vector<std::uint64_t> per_worker_wire_errors; ///< wire errors per worker
  std::vector<std::uint64_t> per_worker_send_errors; ///< send errors per worker
  std::vector<std::uint64_t> per_worker_kernel_drops;///< kernel drops per worker
  std::vector<std::uint64_t> per_worker_cache_hits;  ///< cache hits per worker
  std::vector<std::uint64_t> per_worker_cache_misses;///< cache misses per worker

  /// Hits over probed lookups (hits + misses); 0 when the cache is off.
  [[nodiscard]] double cache_hit_ratio() const noexcept {
    const std::uint64_t probed = cache_hits + cache_misses;
    return probed == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(probed);
  }
};

/// Render UDP server counters as a two-column table for benches/examples.
[[nodiscard]] stats::Table udp_server_stats_table(const UdpServerStats& stats);

/// Serves an AuthoritativeServer over UDP with a pool of SO_REUSEPORT
/// worker threads. `serve_once`/`serve_until` remain for single-threaded
/// callers and always use worker 0's socket.
class UdpAuthorityServer {
 public:
  /// `engine` is borrowed and must outlive the server. All sockets are
  /// bound up front; start() only spawns the threads.
  UdpAuthorityServer(AuthoritativeServer* engine, const UdpEndpoint& bind,
                     UdpServerConfig config = {});
  ~UdpAuthorityServer();

  UdpAuthorityServer(const UdpAuthorityServer&) = delete;
  UdpAuthorityServer& operator=(const UdpAuthorityServer&) = delete;

  [[nodiscard]] UdpEndpoint endpoint() const { return sockets_.front().local_endpoint(); }
  [[nodiscard]] std::size_t worker_count() const noexcept { return sockets_.size(); }

  /// Spawn the worker threads; idempotent. Each worker serves its own
  /// socket until stop(). Workers run behind an exception barrier: a
  /// transient serve failure (a throwing decode path, a socket error) is
  /// counted in eum_udp_worker_exceptions_total and the worker keeps
  /// serving — it never escapes to std::terminate.
  void start();

  /// Stop and join the worker threads; idempotent (also run by the
  /// destructor).
  void stop();

  /// Handle at most one batch of requests on worker 0's socket; returns
  /// true if anything was served. Do not mix with start() — workers own
  /// the sockets.
  bool serve_once(std::chrono::milliseconds timeout);

  /// Serve single-threaded until `stop` becomes true (checked between
  /// datagrams).
  void serve_until(const std::atomic<bool>& stop);

  [[nodiscard]] UdpServerStats stats() const;

  /// Reset contract (shared with the engine and resolver): zero the UDP
  /// front end's own counters and serve-latency histogram. The wrapped
  /// engine's metrics are its own — call engine->reset_stats() for those.
  void reset_stats();

  /// The registry the front end records into (the engine's unless one
  /// was injected via UdpServerConfig).
  [[nodiscard]] obs::MetricsRegistry& registry() const noexcept { return *registry_; }

 private:
  /// Per-worker registry counter handles: only the owning worker thread
  /// bumps these, so the relaxed adds never bounce between cores.
  struct WorkerMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* truncated = nullptr;
    obs::Counter* wire_errors = nullptr;
    obs::Counter* send_errors = nullptr;
    obs::Counter* kernel_drops = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* worker_exceptions = nullptr;
  };

  /// One receive-batch/handle/send-batch round on `socket`, crediting
  /// `worker`. Returns true when any datagram was drained.
  bool serve_on(UdpSocket& socket, std::size_t worker, std::chrono::milliseconds timeout);

  /// Decode/answer one received datagram of `batch` and stage its
  /// response. `version` is the map generation this batch serves under.
  /// `tracer` (may be null) records the datagram's trace spans and is
  /// installed as the thread's current tracer for the duration, so the
  /// engine/mapping/resolver layers can add their own spans.
  void serve_datagram(UdpBatch& batch, std::size_t index, std::size_t worker,
                      std::uint64_t version, AnswerCache* cache, obs::QueryTracer* tracer);

  AuthoritativeServer* engine_;
  UdpServerConfig config_;
  obs::MetricsRegistry* registry_;
  std::vector<UdpSocket> sockets_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::vector<WorkerMetrics> worker_metrics_;
  /// Last SO_RXQ_OVFL cumulative value already exported per worker; only
  /// the owning worker thread touches its slot (delta -> counter).
  std::vector<std::uint64_t> kernel_drops_seen_;
  std::vector<UdpBatch> batches_;       ///< one preallocated arena per worker
  std::vector<AnswerCache> caches_;     ///< empty when the cache is disabled
  /// One trace scratch per worker (empty when no recorder was injected).
  /// unique_ptr keeps the scratch address stable against vector moves.
  std::vector<std::unique_ptr<obs::QueryTracer>> tracers_;
  obs::LatencyHistogram* serve_latency_;  ///< batch received -> responses sent
  obs::LatencyHistogram* rx_batch_size_;  ///< datagrams drained per wakeup
};

/// One-shot DNS-over-UDP client.
class UdpDnsClient {
 public:
  UdpDnsClient();

  /// Send `query` to `server` and await the matching response (by id).
  /// Returns nullopt on timeout.
  [[nodiscard]] std::optional<dns::Message> query(const dns::Message& query_msg,
                                                  const UdpEndpoint& server,
                                                  std::chrono::milliseconds timeout);

 private:
  UdpSocket socket_;
};

/// Resolver upstream speaking real UDP to one authoritative endpoint, so
/// the retry/backoff machinery (and the FaultInjector wrapped around it)
/// exercises the genuine socket path. Each call opens its own ephemeral
/// client socket: concurrent resolver threads never share transport
/// state, and a late response to a lost attempt dies with its socket.
class UdpUpstream : public Upstream {
 public:
  explicit UdpUpstream(UdpEndpoint server,
                       std::chrono::milliseconds timeout = std::chrono::milliseconds{250});

  /// Infallible adapter: a timeout surfaces as SERVFAIL.
  [[nodiscard]] dns::Message forward(const dns::Message& query,
                                     const net::IpAddr& source) override;
  /// nullopt = no (matching) response before the timeout.
  [[nodiscard]] std::optional<dns::Message> try_forward(const dns::Message& query,
                                                        const net::IpAddr& source) override;
  /// Only the configured endpoint's address is addressable.
  [[nodiscard]] ForwardToResult try_forward_to(const net::IpAddr& server,
                                               const dns::Message& query,
                                               const net::IpAddr& source) override;

  [[nodiscard]] const UdpEndpoint& server() const noexcept { return server_; }

 private:
  UdpEndpoint server_;
  std::chrono::milliseconds timeout_;
};

}  // namespace eum::dnsserver
