// UDP transport: a real socket-based DNS server and client.
//
// The simulation uses the in-memory transport, but the authoritative
// engine is transport-agnostic, and this module serves it over genuine
// UDP (see examples/ecs_dns_server.cpp, which answers `dig +subnet`
// queries). The server runs N worker threads, each with its own
// SO_REUSEPORT socket bound to the same endpoint so the kernel
// load-balances datagrams across workers — the front end the paper's
// authorities need to absorb the ~8x query-rate increase finer ECS
// granularity causes (§5.3, Fig. 23). IPv4 localhost-oriented; RAII
// socket ownership throughout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "dns/message.h"
#include "dnsserver/authoritative.h"
#include "dnsserver/resolver.h"
#include "obs/metrics.h"
#include "stats/table.h"

namespace eum::dnsserver {

/// A UDP endpoint (IPv4).
struct UdpEndpoint {
  net::IpV4Addr address;
  std::uint16_t port = 0;

  friend bool operator==(const UdpEndpoint&, const UdpEndpoint&) noexcept = default;
};

/// RAII wrapper over a bound UDP socket.
class UdpSocket {
 public:
  /// Bind to `endpoint`; port 0 picks an ephemeral port. With
  /// `reuse_port`, SO_REUSEPORT is set before binding so several sockets
  /// can share one endpoint and the kernel spreads datagrams over them.
  /// Throws std::system_error on failure.
  explicit UdpSocket(const UdpEndpoint& endpoint, bool reuse_port = false);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The actual bound endpoint (resolves ephemeral ports).
  [[nodiscard]] UdpEndpoint local_endpoint() const;

  /// Send one datagram.
  void send_to(std::span<const std::uint8_t> data, const UdpEndpoint& peer);

  /// Receive one datagram, waiting up to `timeout`. Returns nullopt on
  /// timeout. `peer` receives the sender's endpoint.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> receive(
      std::chrono::milliseconds timeout, UdpEndpoint& peer);

 private:
  int fd_ = -1;
};

struct UdpServerConfig {
  /// Worker threads started by start(); each owns one SO_REUSEPORT
  /// socket on the shared endpoint.
  std::size_t workers = 1;
  /// Poll granularity of the worker loops (stop-flag latency bound).
  std::chrono::milliseconds poll_interval{50};
  /// Registry for eum_udp_* metrics (borrowed; must outlive the server).
  /// nullptr shares the engine's registry, so one snapshot covers the
  /// whole serving stack.
  obs::MetricsRegistry* registry = nullptr;
};

/// Counter snapshot for the UDP front end — a thin view over the
/// per-worker registry counters. Every counter is kept per worker
/// (eum_udp_*{worker="N"}) so worker bumps never contend; the aggregate
/// fields here are sums over the workers.
struct UdpServerStats {
  std::uint64_t queries = 0;            ///< datagrams answered
  std::uint64_t truncated = 0;          ///< TC=1 responses sent
  std::uint64_t wire_errors = 0;        ///< unparseable datagrams
  std::vector<std::uint64_t> per_worker;             ///< queries per worker
  std::vector<std::uint64_t> per_worker_truncated;   ///< TC=1 per worker
  std::vector<std::uint64_t> per_worker_wire_errors; ///< wire errors per worker
};

/// Render UDP server counters as a two-column table for benches/examples.
[[nodiscard]] stats::Table udp_server_stats_table(const UdpServerStats& stats);

/// Serves an AuthoritativeServer over UDP with a pool of SO_REUSEPORT
/// worker threads. `serve_once`/`serve_until` remain for single-threaded
/// callers and always use worker 0's socket.
class UdpAuthorityServer {
 public:
  /// `engine` is borrowed and must outlive the server. All sockets are
  /// bound up front; start() only spawns the threads.
  UdpAuthorityServer(AuthoritativeServer* engine, const UdpEndpoint& bind,
                     UdpServerConfig config = {});
  ~UdpAuthorityServer();

  UdpAuthorityServer(const UdpAuthorityServer&) = delete;
  UdpAuthorityServer& operator=(const UdpAuthorityServer&) = delete;

  [[nodiscard]] UdpEndpoint endpoint() const { return sockets_.front().local_endpoint(); }
  [[nodiscard]] std::size_t worker_count() const noexcept { return sockets_.size(); }

  /// Spawn the worker threads; idempotent. Each worker serves its own
  /// socket until stop().
  void start();

  /// Stop and join the worker threads; idempotent (also run by the
  /// destructor).
  void stop();

  /// Handle at most one request on worker 0's socket; returns true if
  /// one was served. Do not mix with start() — workers own the sockets.
  bool serve_once(std::chrono::milliseconds timeout);

  /// Serve single-threaded until `stop` becomes true (checked between
  /// datagrams).
  void serve_until(const std::atomic<bool>& stop);

  [[nodiscard]] UdpServerStats stats() const;

  /// Reset contract (shared with the engine and resolver): zero the UDP
  /// front end's own counters and serve-latency histogram. The wrapped
  /// engine's metrics are its own — call engine->reset_stats() for those.
  void reset_stats();

  /// The registry the front end records into (the engine's unless one
  /// was injected via UdpServerConfig).
  [[nodiscard]] obs::MetricsRegistry& registry() const noexcept { return *registry_; }

 private:
  /// Per-worker registry counter handles: only the owning worker thread
  /// bumps these, so the relaxed adds never bounce between cores.
  struct WorkerMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* truncated = nullptr;
    obs::Counter* wire_errors = nullptr;
  };

  /// One receive/handle/send round on `socket`, crediting `worker`.
  bool serve_on(UdpSocket& socket, std::size_t worker, std::chrono::milliseconds timeout);

  AuthoritativeServer* engine_;
  UdpServerConfig config_;
  obs::MetricsRegistry* registry_;
  std::vector<UdpSocket> sockets_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::vector<WorkerMetrics> worker_metrics_;
  obs::LatencyHistogram* serve_latency_;  ///< datagram received -> response sent
};

/// One-shot DNS-over-UDP client.
class UdpDnsClient {
 public:
  UdpDnsClient();

  /// Send `query` to `server` and await the matching response (by id).
  /// Returns nullopt on timeout.
  [[nodiscard]] std::optional<dns::Message> query(const dns::Message& query_msg,
                                                  const UdpEndpoint& server,
                                                  std::chrono::milliseconds timeout);

 private:
  UdpSocket socket_;
};

/// Resolver upstream speaking real UDP to one authoritative endpoint, so
/// the retry/backoff machinery (and the FaultInjector wrapped around it)
/// exercises the genuine socket path. Each call opens its own ephemeral
/// client socket: concurrent resolver threads never share transport
/// state, and a late response to a lost attempt dies with its socket.
class UdpUpstream : public Upstream {
 public:
  explicit UdpUpstream(UdpEndpoint server,
                       std::chrono::milliseconds timeout = std::chrono::milliseconds{250});

  /// Infallible adapter: a timeout surfaces as SERVFAIL.
  [[nodiscard]] dns::Message forward(const dns::Message& query,
                                     const net::IpAddr& source) override;
  /// nullopt = no (matching) response before the timeout.
  [[nodiscard]] std::optional<dns::Message> try_forward(const dns::Message& query,
                                                        const net::IpAddr& source) override;
  /// Only the configured endpoint's address is addressable.
  [[nodiscard]] ForwardToResult try_forward_to(const net::IpAddr& server,
                                               const dns::Message& query,
                                               const net::IpAddr& source) override;

  [[nodiscard]] const UdpEndpoint& server() const noexcept { return server_; }

 private:
  UdpEndpoint server_;
  std::chrono::milliseconds timeout_;
};

}  // namespace eum::dnsserver
