// UDP transport: a real socket-based DNS server and client.
//
// The simulation uses the in-memory transport, but the authoritative
// engine is transport-agnostic, and this module serves it over genuine
// UDP (see examples/ecs_dns_server.cpp, which answers `dig +subnet`
// queries). IPv4 localhost-oriented; RAII socket ownership throughout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "dns/message.h"
#include "dnsserver/authoritative.h"

namespace eum::dnsserver {

/// A UDP endpoint (IPv4).
struct UdpEndpoint {
  net::IpV4Addr address;
  std::uint16_t port = 0;

  friend bool operator==(const UdpEndpoint&, const UdpEndpoint&) noexcept = default;
};

/// RAII wrapper over a bound UDP socket.
class UdpSocket {
 public:
  /// Bind to `endpoint`; port 0 picks an ephemeral port.
  /// Throws std::system_error on failure.
  explicit UdpSocket(const UdpEndpoint& endpoint);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The actual bound endpoint (resolves ephemeral ports).
  [[nodiscard]] UdpEndpoint local_endpoint() const;

  /// Send one datagram.
  void send_to(std::span<const std::uint8_t> data, const UdpEndpoint& peer);

  /// Receive one datagram, waiting up to `timeout`. Returns nullopt on
  /// timeout. `peer` receives the sender's endpoint.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> receive(
      std::chrono::milliseconds timeout, UdpEndpoint& peer);

 private:
  int fd_ = -1;
};

/// Serves an AuthoritativeServer over UDP.
class UdpAuthorityServer {
 public:
  /// `engine` is borrowed and must outlive the server.
  UdpAuthorityServer(AuthoritativeServer* engine, const UdpEndpoint& bind);

  [[nodiscard]] UdpEndpoint endpoint() const { return socket_.local_endpoint(); }

  /// Handle at most one request; returns true if one was served.
  bool serve_once(std::chrono::milliseconds timeout);

  /// Serve until `stop` becomes true (checked between datagrams).
  void serve_until(const std::atomic<bool>& stop);

 private:
  AuthoritativeServer* engine_;
  UdpSocket socket_;
};

/// One-shot DNS-over-UDP client.
class UdpDnsClient {
 public:
  UdpDnsClient();

  /// Send `query` to `server` and await the matching response (by id).
  /// Returns nullopt on timeout.
  [[nodiscard]] std::optional<dns::Message> query(const dns::Message& query_msg,
                                                  const UdpEndpoint& server,
                                                  std::chrono::milliseconds timeout);

 private:
  UdpSocket socket_;
};

}  // namespace eum::dnsserver
