// DNS over TCP (RFC 1035 §4.2.2) and the UDP->TCP fallback client.
//
// When a UDP response comes back truncated (TC bit — see udp.cpp's
// size discipline), the standard recovery is to retry the query over
// TCP, where messages are framed by a two-octet length prefix. This
// module provides a TCP server front-end for the authoritative engine,
// a TCP client, and `FallbackDnsClient`, which speaks UDP first and
// upgrades on TC.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>

#include "dns/message.h"
#include "dnsserver/authoritative.h"
#include "dnsserver/udp.h"

namespace eum::dnsserver {

/// RAII listening TCP socket (IPv4).
class TcpListener {
 public:
  /// Bind + listen on `endpoint` (port 0 picks an ephemeral port).
  /// Throws std::system_error on failure.
  explicit TcpListener(const UdpEndpoint& endpoint);
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] UdpEndpoint local_endpoint() const;

  /// Accept one connection, waiting up to `timeout`; -1 on timeout.
  [[nodiscard]] int accept_fd(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
};

/// A connected TCP stream carrying length-prefixed DNS messages.
class TcpDnsStream {
 public:
  /// Take ownership of a connected fd.
  explicit TcpDnsStream(int fd) noexcept : fd_(fd) {}
  /// Connect to a server. Throws std::system_error on failure.
  static TcpDnsStream connect(const UdpEndpoint& server, std::chrono::milliseconds timeout);
  ~TcpDnsStream();

  TcpDnsStream(TcpDnsStream&& other) noexcept;
  TcpDnsStream& operator=(TcpDnsStream&& other) noexcept;
  TcpDnsStream(const TcpDnsStream&) = delete;
  TcpDnsStream& operator=(const TcpDnsStream&) = delete;

  /// Send one message with the RFC 1035 two-octet length prefix.
  void send(const dns::Message& message);

  /// Receive one length-prefixed message; nullopt on timeout or EOF.
  [[nodiscard]] std::optional<dns::Message> receive(std::chrono::milliseconds timeout);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] UdpEndpoint peer_endpoint() const;

 private:
  /// Read exactly n bytes before `deadline`; false on EOF/timeout. The
  /// caller computes one deadline per message so prefix and body share
  /// a single budget.
  [[nodiscard]] bool read_exact(std::uint8_t* out, std::size_t n,
                                std::chrono::steady_clock::time_point deadline);

  int fd_ = -1;
};

/// Serves an AuthoritativeServer over TCP. One connection at a time
/// (sufficient for tests/examples; production would multiplex).
class TcpAuthorityServer {
 public:
  TcpAuthorityServer(AuthoritativeServer* engine, const UdpEndpoint& bind);

  [[nodiscard]] UdpEndpoint endpoint() const { return listener_.local_endpoint(); }

  /// Accept one connection and answer every query on it until the peer
  /// closes. Returns the number of queries served (0 on accept timeout).
  std::size_t serve_connection(std::chrono::milliseconds timeout);

  /// Serve until `stop` becomes true.
  void serve_until(const std::atomic<bool>& stop);

 private:
  AuthoritativeServer* engine_;
  TcpListener listener_;
};

/// UDP-first client that retries truncated responses over TCP, the
/// standard stub/resolver behaviour behind the TC bit.
class FallbackDnsClient {
 public:
  /// `udp_server` and `tcp_server` are usually the same host:port pair.
  FallbackDnsClient(UdpEndpoint udp_server, UdpEndpoint tcp_server);

  struct Outcome {
    dns::Message response;
    bool used_tcp = false;
  };

  /// Resolve one query; nullopt on timeout/failure of both transports.
  [[nodiscard]] std::optional<Outcome> query(const dns::Message& query_msg,
                                             std::chrono::milliseconds timeout);

 private:
  UdpEndpoint udp_server_;
  UdpEndpoint tcp_server_;
  UdpDnsClient udp_client_;
};

}  // namespace eum::dnsserver
