// Authoritative zone data (RFC 1035 §4.3.2 lookup semantics).
//
// A zone owns an origin and the record sets at and below it. Lookup
// distinguishes NXDOMAIN (name does not exist) from NODATA (name exists
// but has no records of the requested type), follows CNAMEs within the
// zone, and reports delegations (NS sets below the origin).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dns/message.h"

namespace eum::dnsserver {

/// Outcome of a zone lookup.
enum class LookupStatus {
  success,     ///< records found (possibly via CNAME chain)
  nx_domain,   ///< the name does not exist in the zone
  no_data,     ///< the name exists but not with this type
  delegation,  ///< the name is below a delegation point (see referral records)
  out_of_zone, ///< the final CNAME target left the zone; resolution must continue elsewhere
};

struct LookupResult {
  LookupStatus status = LookupStatus::nx_domain;
  /// Answer records (CNAME chain followed by the terminal records, if any).
  std::vector<dns::ResourceRecord> answers;
  /// For delegation: the NS records of the delegated child zone.
  std::vector<dns::ResourceRecord> referral;
  /// SOA of this zone (for negative responses).
  std::optional<dns::ResourceRecord> soa;
};

class Zone {
 public:
  /// Creates a zone rooted at `origin` with the given SOA.
  Zone(dns::DnsName origin, dns::SoaRecord soa);

  [[nodiscard]] const dns::DnsName& origin() const noexcept { return origin_; }

  /// Add a record; its name must be at or below the origin.
  /// Throws std::invalid_argument otherwise, or when mixing CNAME with
  /// other data at one name (RFC 1034 §3.6.2).
  void add(dns::ResourceRecord record);

  /// Convenience helpers.
  void add_a(const dns::DnsName& name, net::IpV4Addr addr, std::uint32_t ttl);
  void add_cname(const dns::DnsName& name, const dns::DnsName& target, std::uint32_t ttl);
  void add_ns(const dns::DnsName& name, const dns::DnsName& nameserver, std::uint32_t ttl);

  /// True if `name` is at or below this zone's origin.
  [[nodiscard]] bool contains(const dns::DnsName& name) const noexcept {
    return name.is_subdomain_of(origin_);
  }

  /// Full lookup per RFC 1034 §4.3.2: delegation check, CNAME chase,
  /// NXDOMAIN vs NODATA. Precondition: contains(name).
  [[nodiscard]] LookupResult lookup(const dns::DnsName& name, dns::RecordType type) const;

  [[nodiscard]] std::size_t record_count() const noexcept;

  /// Visit every record in the zone (SOA included) in owner-name order.
  template <typename Fn>
  void visit_records(Fn&& fn) const {
    for (const auto& [name, sets] : nodes_) {
      for (const auto& [type, records] : sets) {
        for (const dns::ResourceRecord& record : records) fn(record);
      }
    }
  }

 private:
  using RecordSets = std::map<dns::RecordType, std::vector<dns::ResourceRecord>>;

  /// One lookup step without CNAME chasing.
  [[nodiscard]] const RecordSets* find_node(const dns::DnsName& name) const noexcept;
  /// The closest enclosing delegation (NS set strictly below origin, at or
  /// above `name`), if any.
  [[nodiscard]] const std::vector<dns::ResourceRecord>* find_delegation(
      const dns::DnsName& name) const noexcept;

  dns::DnsName origin_;
  dns::ResourceRecord soa_record_;
  std::map<dns::DnsName, RecordSets> nodes_;
};

}  // namespace eum::dnsserver
