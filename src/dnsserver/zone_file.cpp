#include "dnsserver/zone_file.h"

#include <charconv>
#include <optional>
#include <vector>

#include "util/strings.h"

namespace eum::dnsserver {

namespace {

using dns::DnsName;

/// Tokenize one line, honouring quoted strings and ';' comments.
std::vector<std::string> tokenize(std::string_view line, std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ';') break;  // comment to end of line
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"') {
      std::string value;
      ++i;
      while (i < line.size() && line[i] != '"') value.push_back(line[i++]);
      if (i >= line.size()) throw ZoneFileError{line_no, "unterminated quoted string"};
      ++i;  // closing quote
      tokens.push_back("\"" + value);  // keep a marker so TXT knows it was quoted
      continue;
    }
    std::string value;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != ';') {
      value.push_back(line[i++]);
    }
    tokens.push_back(std::move(value));
  }
  return tokens;
}

/// Resolve a possibly-relative name against the origin.
DnsName resolve_name(std::string_view token, const DnsName& origin, std::size_t line_no) {
  try {
    if (token == "@") return origin;
    if (!token.empty() && token.back() == '.') return DnsName::from_text(token);
    // Relative: append the origin labels.
    DnsName relative = DnsName::from_text(token);
    std::vector<std::string> labels = relative.labels();
    for (const std::string& label : origin.labels()) labels.push_back(label);
    return DnsName::from_labels(std::move(labels));
  } catch (const dns::WireError& error) {
    throw ZoneFileError{line_no, std::string{"bad name '"} + std::string{token} +
                                     "': " + error.what()};
  }
}

std::optional<std::uint32_t> parse_u32(std::string_view token) {
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) return std::nullopt;
  return value;
}

}  // namespace

Zone parse_zone_file(std::string_view text, const DnsName& fallback_origin) {
  DnsName origin = fallback_origin;
  std::uint32_t default_ttl = 3600;
  std::optional<Zone> zone;

  std::size_t line_no = 0;
  for (const auto raw_line : util::split(text, '\n')) {
    ++line_no;
    const auto tokens = tokenize(raw_line, line_no);
    if (tokens.empty()) continue;

    // Directives.
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) throw ZoneFileError{line_no, "$ORIGIN needs one argument"};
      origin = resolve_name(tokens[1], DnsName{}, line_no);
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2) throw ZoneFileError{line_no, "$TTL needs one argument"};
      const auto ttl = parse_u32(tokens[1]);
      if (!ttl) throw ZoneFileError{line_no, "bad $TTL value"};
      default_ttl = *ttl;
      continue;
    }

    // Record line: NAME [TTL] TYPE RDATA...
    std::size_t cursor = 0;
    const DnsName owner = resolve_name(tokens[cursor++], origin, line_no);
    std::uint32_t ttl = default_ttl;
    if (cursor < tokens.size()) {
      if (const auto explicit_ttl = parse_u32(tokens[cursor])) {
        ttl = *explicit_ttl;
        ++cursor;
      }
    }
    if (cursor >= tokens.size()) throw ZoneFileError{line_no, "missing record type"};
    const std::string type = util::to_lower(tokens[cursor++]);
    const auto need = [&](std::size_t n, const char* what) {
      if (tokens.size() - cursor != n) {
        throw ZoneFileError{line_no, std::string{what} + ": wrong number of fields"};
      }
    };

    if (type == "soa") {
      need(7, "SOA");
      if (zone.has_value()) throw ZoneFileError{line_no, "duplicate SOA"};
      dns::SoaRecord soa;
      soa.mname = resolve_name(tokens[cursor], origin, line_no);
      soa.rname = resolve_name(tokens[cursor + 1], origin, line_no);
      const char* field_names[5] = {"serial", "refresh", "retry", "expire", "minimum"};
      std::uint32_t fields[5];
      for (int f = 0; f < 5; ++f) {
        const auto value = parse_u32(tokens[cursor + 2 + static_cast<std::size_t>(f)]);
        if (!value) {
          throw ZoneFileError{line_no, std::string{"bad SOA "} + field_names[f]};
        }
        fields[f] = *value;
      }
      soa.serial = fields[0];
      soa.refresh = fields[1];
      soa.retry = fields[2];
      soa.expire = fields[3];
      soa.minimum = fields[4];
      zone.emplace(owner, soa);
      continue;
    }

    if (!zone.has_value()) throw ZoneFileError{line_no, "record before SOA"};
    try {
      if (type == "a") {
        need(1, "A");
        const auto addr = net::IpV4Addr::parse(tokens[cursor]);
        if (!addr) throw ZoneFileError{line_no, "bad IPv4 address"};
        zone->add_a(owner, *addr, ttl);
      } else if (type == "aaaa") {
        need(1, "AAAA");
        const auto addr = net::IpV6Addr::parse(tokens[cursor]);
        if (!addr) throw ZoneFileError{line_no, "bad IPv6 address"};
        zone->add(dns::ResourceRecord{owner, dns::RecordType::AAAA, dns::RecordClass::IN, ttl,
                                      dns::AaaaRecord{*addr}});
      } else if (type == "cname") {
        need(1, "CNAME");
        zone->add_cname(owner, resolve_name(tokens[cursor], origin, line_no), ttl);
      } else if (type == "ns") {
        need(1, "NS");
        zone->add_ns(owner, resolve_name(tokens[cursor], origin, line_no), ttl);
      } else if (type == "txt") {
        if (tokens.size() == cursor) throw ZoneFileError{line_no, "TXT needs strings"};
        dns::TxtRecord txt;
        for (std::size_t t = cursor; t < tokens.size(); ++t) {
          // Strip the quoted-string marker if present.
          const std::string& token = tokens[t];
          std::string value = token.starts_with('"') ? token.substr(1) : token;
          // RFC 1035 §3.3.14: each character-string is at most 255 octets.
          // Reject here — a longer string would parse fine but throw
          // WireError when the serve path encodes the answer (found by
          // fuzz_zone_file; pinned in tests/dns_fuzz_test.cpp).
          if (value.size() > 255) {
            throw ZoneFileError{line_no, "TXT character-string longer than 255 octets"};
          }
          txt.strings.push_back(std::move(value));
        }
        zone->add(dns::ResourceRecord{owner, dns::RecordType::TXT, dns::RecordClass::IN, ttl,
                                      std::move(txt)});
      } else {
        throw ZoneFileError{line_no, "unsupported record type '" + type + "'"};
      }
    } catch (const std::invalid_argument& error) {
      throw ZoneFileError{line_no, error.what()};
    }
  }
  if (!zone.has_value()) throw ZoneFileError{line_no, "zone file has no SOA record"};
  return std::move(*zone);
}

}  // namespace eum::dnsserver
