#include "dnsserver/authoritative.h"

#include <algorithm>

namespace eum::dnsserver {

using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;
using dns::ResourceRecord;

void AuthoritativeServer::add_zone(Zone zone) { zones_.push_back(std::move(zone)); }

AuthServerStats AuthoritativeServer::stats() const noexcept {
  AuthServerStats snapshot;
  snapshot.queries = stats_.queries.load(std::memory_order_relaxed);
  snapshot.queries_with_ecs = stats_.queries_with_ecs.load(std::memory_order_relaxed);
  snapshot.dynamic_answers = stats_.dynamic_answers.load(std::memory_order_relaxed);
  snapshot.referrals = stats_.referrals.load(std::memory_order_relaxed);
  snapshot.static_answers = stats_.static_answers.load(std::memory_order_relaxed);
  snapshot.negative_answers = stats_.negative_answers.load(std::memory_order_relaxed);
  snapshot.refused = stats_.refused.load(std::memory_order_relaxed);
  snapshot.form_errors = stats_.form_errors.load(std::memory_order_relaxed);
  return snapshot;
}

void AuthoritativeServer::reset_stats() noexcept {
  stats_.queries.store(0, std::memory_order_relaxed);
  stats_.queries_with_ecs.store(0, std::memory_order_relaxed);
  stats_.dynamic_answers.store(0, std::memory_order_relaxed);
  stats_.referrals.store(0, std::memory_order_relaxed);
  stats_.static_answers.store(0, std::memory_order_relaxed);
  stats_.negative_answers.store(0, std::memory_order_relaxed);
  stats_.refused.store(0, std::memory_order_relaxed);
  stats_.form_errors.store(0, std::memory_order_relaxed);
}

void AuthoritativeServer::add_dynamic_domain(DnsName suffix, DynamicAnswerFn handler) {
  dynamic_domains_.emplace_back(std::move(suffix), std::move(handler));
}

const Zone* AuthoritativeServer::zone_for(const DnsName& name) const noexcept {
  // Most specific (longest-origin) enclosing zone wins.
  const Zone* best = nullptr;
  for (const Zone& zone : zones_) {
    if (zone.contains(name) &&
        (best == nullptr || zone.origin().label_count() > best->origin().label_count())) {
      best = &zone;
    }
  }
  return best;
}

std::pair<const DnsName*, const DynamicAnswerFn*> AuthoritativeServer::dynamic_for(
    const DnsName& name) const noexcept {
  const std::pair<DnsName, DynamicAnswerFn>* best = nullptr;
  for (const auto& entry : dynamic_domains_) {
    if (name.is_subdomain_of(entry.first) &&
        (best == nullptr || entry.first.label_count() > best->first.label_count())) {
      best = &entry;
    }
  }
  if (best == nullptr) return {nullptr, nullptr};
  return {&best->first, &best->second};
}

Message AuthoritativeServer::handle(const Message& query, const net::IpAddr& source,
                                    const net::IpAddr& server_address) {
  ++stats_.queries;
  Message response = Message::make_response(query);
  response.header.authoritative = true;

  if (query.header.is_response || query.questions.size() != 1 ||
      query.header.opcode != dns::Opcode::query) {
    ++stats_.form_errors;
    response.header.rcode = Rcode::form_err;
    return response;
  }
  const dns::Question& question = query.questions.front();

  // ECS handling: pick up the client block if present, honoured, and valid.
  const dns::ClientSubnetOption* ecs = query.client_subnet();
  std::optional<net::IpPrefix> client_block;
  if (ecs != nullptr) {
    ++stats_.queries_with_ecs;
    if (ecs->scope_prefix_len() != 0) {
      // RFC 7871 §7.1.2: SCOPE PREFIX-LENGTH must be 0 in queries.
      ++stats_.form_errors;
      response.header.rcode = Rcode::form_err;
      return response;
    }
    if (ecs_enabled_) client_block = ecs->source_block();
  }

  // Dynamic (CDN) domains first.
  if (const auto [suffix, handler] = dynamic_for(question.name); handler != nullptr) {
    DynamicQuery dyn{question.name, question.type, source, client_block, server_address};
    const std::optional<DynamicAnswer> answer = (*handler)(dyn);
    if (!answer) {
      ++stats_.negative_answers;
      response.header.rcode = Rcode::nx_domain;
      return response;
    }
    if (!answer->referral.empty()) {
      // Delegation: NS records at the dynamic suffix plus A glue.
      ++stats_.referrals;
      response.header.authoritative = false;
      for (const DynamicReferral& ref : answer->referral) {
        response.authorities.push_back(ResourceRecord{*suffix, RecordType::NS,
                                                      dns::RecordClass::IN, answer->ttl,
                                                      dns::NsRecord{ref.nameserver}});
        if (ref.glue.is_v4()) {
          response.additionals.push_back(ResourceRecord{ref.nameserver, RecordType::A,
                                                        dns::RecordClass::IN, answer->ttl,
                                                        dns::ARecord{ref.glue.v4()}});
        }
      }
      if (ecs != nullptr && response.edns) {
        const int scope = std::min(answer->ecs_scope_len, ecs->source_prefix_len());
        response.edns->set_client_subnet(ecs->with_scope(ecs_enabled_ ? scope : 0));
      }
      return response;
    }
    ++stats_.dynamic_answers;
    for (const net::IpAddr& addr : answer->addresses) {
      ResourceRecord record;
      record.name = question.name;
      record.ttl = answer->ttl;
      if (addr.is_v4()) {
        record.type = RecordType::A;
        record.rdata = dns::ARecord{addr.v4()};
      } else {
        record.type = RecordType::AAAA;
        record.rdata = dns::AaaaRecord{addr.v6()};
      }
      // Only include records matching the question type.
      if (record.type == question.type) response.answers.push_back(std::move(record));
    }
    if (ecs != nullptr && response.edns) {
      // Echo ECS with our scope; scope <= source per the paper's usage.
      const int scope = std::min(answer->ecs_scope_len, ecs->source_prefix_len());
      response.edns->set_client_subnet(ecs->with_scope(ecs_enabled_ ? scope : 0));
    }
    return response;
  }

  // Static zones.
  const Zone* zone = zone_for(question.name);
  if (zone == nullptr) {
    ++stats_.refused;
    response.header.authoritative = false;
    response.header.rcode = Rcode::refused;
    return response;
  }
  // Static answers are client-independent: scope /0 (RFC 7871 §7.2.1
  // recommends scope 0 for answers that do not depend on the client).
  if (ecs != nullptr && response.edns) {
    response.edns->set_client_subnet(ecs->with_scope(0));
  }

  const LookupResult result = zone->lookup(question.name, question.type);
  switch (result.status) {
    case LookupStatus::success:
    case LookupStatus::out_of_zone:
      ++stats_.static_answers;
      response.answers = result.answers;
      break;
    case LookupStatus::no_data:
      ++stats_.negative_answers;
      response.answers = result.answers;  // possibly a partial CNAME chain
      if (result.soa) response.authorities.push_back(*result.soa);
      break;
    case LookupStatus::nx_domain:
      ++stats_.negative_answers;
      response.header.rcode = Rcode::nx_domain;
      if (result.soa) response.authorities.push_back(*result.soa);
      break;
    case LookupStatus::delegation:
      ++stats_.static_answers;
      response.header.authoritative = false;
      response.authorities = result.referral;
      break;
  }
  return response;
}

}  // namespace eum::dnsserver
