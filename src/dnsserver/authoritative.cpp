#include "dnsserver/authoritative.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace eum::dnsserver {

using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;
using dns::ResourceRecord;

AuthoritativeServer::AuthoritativeServer(obs::MetricsRegistry* registry)
    : owned_registry_(registry == nullptr ? std::make_unique<obs::MetricsRegistry>() : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()) {
  queries_ = &registry_->counter("eum_authority_queries_total", "queries handled");
  queries_with_ecs_ =
      &registry_->counter("eum_authority_queries_with_ecs_total", "queries carrying ECS");
  dynamic_answers_ =
      &registry_->counter("eum_authority_dynamic_answers_total", "mapping-system answers");
  referrals_ = &registry_->counter("eum_authority_referrals_total", "two-tier delegations");
  static_answers_ = &registry_->counter("eum_authority_static_answers_total", "zone answers");
  negative_answers_ =
      &registry_->counter("eum_authority_negative_answers_total", "NXDOMAIN/NODATA answers");
  refused_ = &registry_->counter("eum_authority_refused_total", "queries outside our zones");
  form_errors_ = &registry_->counter("eum_authority_form_errors_total", "malformed queries");
  handle_latency_ = &registry_->histogram("eum_authority_handle_latency_us",
                                          "handle() serving latency, microseconds");
}

void AuthoritativeServer::add_zone(Zone zone) { zones_.push_back(std::move(zone)); }

AuthServerStats AuthoritativeServer::stats() const noexcept {
  AuthServerStats snapshot;
  snapshot.queries = queries_->value();
  snapshot.queries_with_ecs = queries_with_ecs_->value();
  snapshot.dynamic_answers = dynamic_answers_->value();
  snapshot.referrals = referrals_->value();
  snapshot.static_answers = static_answers_->value();
  snapshot.negative_answers = negative_answers_->value();
  snapshot.refused = refused_->value();
  snapshot.form_errors = form_errors_->value();
  return snapshot;
}

void AuthoritativeServer::reset_stats() noexcept {
  queries_->reset();
  queries_with_ecs_->reset();
  dynamic_answers_->reset();
  referrals_->reset();
  static_answers_->reset();
  negative_answers_->reset();
  refused_->reset();
  form_errors_->reset();
  handle_latency_->reset();
}

void AuthoritativeServer::add_dynamic_domain(DnsName suffix, DynamicAnswerFn handler) {
  dynamic_domains_.emplace_back(std::move(suffix), std::move(handler));
}

const Zone* AuthoritativeServer::zone_for(const DnsName& name) const noexcept {
  // Most specific (longest-origin) enclosing zone wins.
  const Zone* best = nullptr;
  for (const Zone& zone : zones_) {
    if (zone.contains(name) &&
        (best == nullptr || zone.origin().label_count() > best->origin().label_count())) {
      best = &zone;
    }
  }
  return best;
}

std::pair<const DnsName*, const DynamicAnswerFn*> AuthoritativeServer::dynamic_for(
    const DnsName& name) const noexcept {
  const std::pair<DnsName, DynamicAnswerFn>* best = nullptr;
  for (const auto& entry : dynamic_domains_) {
    if (name.is_subdomain_of(entry.first) &&
        (best == nullptr || entry.first.label_count() > best->first.label_count())) {
      best = &entry;
    }
  }
  if (best == nullptr) return {nullptr, nullptr};
  return {&best->first, &best->second};
}

Message AuthoritativeServer::handle(const Message& query, const net::IpAddr& source,
                                    const net::IpAddr& server_address) {
  // Timing is sampled: two clock reads cost more than the rest of the
  // instrumentation combined, so only every Nth query (and every
  // query-log-sampled query) pays them. The tick is the queries counter
  // handle_inner() bumps anyway; concurrent handlers may occasionally
  // double- or zero-sample a tick, which sampling tolerates by design.
  const bool time_hist =
      latency_tracking_ && (queries_->value() & latency_sample_mask_) == 0;
  const bool log_this = query_log_ != nullptr && query_log_->sample();
  const bool timing = time_hist || log_this;
  const auto start =
      timing ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  obs::AnswerSource answer_source = obs::AnswerSource::static_answer;
  Message response = handle_inner(query, source, server_address, answer_source);
  // Flight-recorder span via the thread-local tracer (installed by the
  // UDP worker; null on untraced transports). A SERVFAIL — whatever layer
  // produced it — marks the trace anomalous so it is always retained.
  if (obs::QueryTracer* tracer = obs::current_tracer()) {
    if (obs::TraceSpan* span = tracer->span(obs::TraceStage::handle)) {
      span->code = static_cast<std::int32_t>(response.header.rcode);
      span->set_detail(obs::to_string(answer_source));
    }
    if (response.header.rcode == Rcode::serv_fail) {
      tracer->note_anomaly(obs::TraceAnomaly::kServfail);
    }
  }
  if (timing) {
    const auto latency_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              start)
            .count());
    if (time_hist) handle_latency_->record(latency_us);
    if (log_this) {
      obs::QueryLogRecord record;
      record.ts_us = obs::QueryLog::now_us();
      record.client = source.to_string();
      if (const dns::ClientSubnetOption* ecs = query.client_subnet()) {
        record.ecs = ecs->source_block().to_string();
      }
      if (!query.questions.empty()) {
        record.qname = query.questions.front().name.to_string();
        record.qtype = dns::to_string(query.questions.front().type);
      }
      record.source = answer_source;
      record.rcode = dns::to_string(response.header.rcode);
      record.latency_us = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(latency_us, 0xFFFFFFFFull));
      query_log_->log(std::move(record));
    }
  }
  return response;
}

Message AuthoritativeServer::handle_inner(const Message& query, const net::IpAddr& source,
                                          const net::IpAddr& server_address,
                                          obs::AnswerSource& answer_source) {
  queries_->add();
  Message response = Message::make_response(query);
  response.header.authoritative = true;

  if (query.header.is_response || query.questions.size() != 1 ||
      query.header.opcode != dns::Opcode::query) {
    form_errors_->add();
    answer_source = obs::AnswerSource::form_error;
    response.header.rcode = Rcode::form_err;
    return response;
  }
  const dns::Question& question = query.questions.front();

  // ECS handling: pick up the client block if present, honoured, and valid.
  const dns::ClientSubnetOption* ecs = query.client_subnet();
  std::optional<net::IpPrefix> client_block;
  if (ecs != nullptr) {
    queries_with_ecs_->add();
    if (ecs->scope_prefix_len() != 0) {
      // RFC 7871 §7.1.2: SCOPE PREFIX-LENGTH must be 0 in queries.
      form_errors_->add();
      answer_source = obs::AnswerSource::form_error;
      response.header.rcode = Rcode::form_err;
      return response;
    }
    if (ecs_enabled_) client_block = ecs->source_block();
  }

  // Dynamic (CDN) domains first.
  if (const auto [suffix, handler] = dynamic_for(question.name); handler != nullptr) {
    DynamicQuery dyn{question.name, question.type, source, client_block, server_address};
    const std::optional<DynamicAnswer> answer = (*handler)(dyn);
    if (!answer) {
      negative_answers_->add();
      answer_source = obs::AnswerSource::negative;
      response.header.rcode = Rcode::nx_domain;
      return response;
    }
    if (!answer->referral.empty()) {
      // Delegation: NS records at the dynamic suffix plus A glue.
      referrals_->add();
      answer_source = obs::AnswerSource::referral;
      response.header.authoritative = false;
      for (const DynamicReferral& ref : answer->referral) {
        response.authorities.push_back(ResourceRecord{*suffix, RecordType::NS,
                                                      dns::RecordClass::IN, answer->ttl,
                                                      dns::NsRecord{ref.nameserver}});
        if (ref.glue.is_v4()) {
          response.additionals.push_back(ResourceRecord{ref.nameserver, RecordType::A,
                                                        dns::RecordClass::IN, answer->ttl,
                                                        dns::ARecord{ref.glue.v4()}});
        }
      }
      if (ecs != nullptr && response.edns) {
        const int scope = std::min(answer->ecs_scope_len, ecs->source_prefix_len());
        response.edns->set_client_subnet(ecs->with_scope(ecs_enabled_ ? scope : 0));
      }
      return response;
    }
    dynamic_answers_->add();
    answer_source = obs::AnswerSource::dynamic_answer;
    for (const net::IpAddr& addr : answer->addresses) {
      ResourceRecord record;
      record.name = question.name;
      record.ttl = answer->ttl;
      if (addr.is_v4()) {
        record.type = RecordType::A;
        record.rdata = dns::ARecord{addr.v4()};
      } else {
        record.type = RecordType::AAAA;
        record.rdata = dns::AaaaRecord{addr.v6()};
      }
      // Only include records matching the question type.
      if (record.type == question.type) response.answers.push_back(std::move(record));
    }
    if (ecs != nullptr && response.edns) {
      // Echo ECS with our scope; scope <= source per the paper's usage.
      const int scope = std::min(answer->ecs_scope_len, ecs->source_prefix_len());
      response.edns->set_client_subnet(ecs->with_scope(ecs_enabled_ ? scope : 0));
    }
    return response;
  }

  // Static zones.
  const Zone* zone = zone_for(question.name);
  if (zone == nullptr) {
    refused_->add();
    answer_source = obs::AnswerSource::refused;
    response.header.authoritative = false;
    response.header.rcode = Rcode::refused;
    return response;
  }
  // Static answers are client-independent: scope /0 (RFC 7871 §7.2.1
  // recommends scope 0 for answers that do not depend on the client).
  if (ecs != nullptr && response.edns) {
    response.edns->set_client_subnet(ecs->with_scope(0));
  }

  const LookupResult result = zone->lookup(question.name, question.type);
  switch (result.status) {
    case LookupStatus::success:
    case LookupStatus::out_of_zone:
      static_answers_->add();
      answer_source = obs::AnswerSource::static_answer;
      response.answers = result.answers;
      break;
    case LookupStatus::no_data:
      negative_answers_->add();
      answer_source = obs::AnswerSource::negative;
      response.answers = result.answers;  // possibly a partial CNAME chain
      if (result.soa) response.authorities.push_back(*result.soa);
      break;
    case LookupStatus::nx_domain:
      negative_answers_->add();
      answer_source = obs::AnswerSource::negative;
      response.header.rcode = Rcode::nx_domain;
      if (result.soa) response.authorities.push_back(*result.soa);
      break;
    case LookupStatus::delegation:
      static_answers_->add();
      answer_source = obs::AnswerSource::referral;
      response.header.authoritative = false;
      response.authorities = result.referral;
      break;
  }
  return response;
}

}  // namespace eum::dnsserver
