// Master-file (zone file) parsing — RFC 1035 §5, simplified.
//
// Supports the subset an operator needs to stand up the static side of
// the name server: $ORIGIN and $TTL directives, '@' for the origin,
// relative and absolute owner names, optional per-record TTLs, ';'
// comments, and the record types the engine serves (SOA, A, AAAA, NS,
// CNAME, TXT). Class is implicitly IN. Multi-line parenthesized records
// are not supported; one record per line.
//
//   $ORIGIN cdn.example.
//   $TTL 300
//   @      SOA ns1 hostmaster 2014032801 3600 600 86400 30
//   www    A 203.0.113.1
//   www 60 A 203.0.113.2
//   alias  CNAME www
//   child  NS ns.child.example.
//   info   TXT "hello world"
#pragma once

#include <string_view>

#include "dnsserver/zone.h"

namespace eum::dnsserver {

/// Raised with a line number and reason on malformed input.
class ZoneFileError : public std::runtime_error {
 public:
  ZoneFileError(std::size_t line, const std::string& reason)
      : std::runtime_error("zone file line " + std::to_string(line) + ": " + reason),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse a zone from master-file text. The file must contain exactly one
/// SOA record, which must be the first record; `fallback_origin` is used
/// until a $ORIGIN directive appears (pass the zone's apex).
[[nodiscard]] Zone parse_zone_file(std::string_view text,
                                   const dns::DnsName& fallback_origin = dns::DnsName{});

}  // namespace eum::dnsserver
