#include "dnsserver/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace eum::dnsserver {

namespace {

sockaddr_in to_sockaddr(const UdpEndpoint& endpoint) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(endpoint.port);
  sa.sin_addr.s_addr = htonl(endpoint.address.value());
  return sa;
}

UdpEndpoint from_sockaddr(const sockaddr_in& sa) {
  return UdpEndpoint{net::IpV4Addr{ntohl(sa.sin_addr.s_addr)}, ntohs(sa.sin_port)};
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error{errno, std::generic_category(), what};
}

/// Wait for readability/writability until `deadline`; false on timeout.
/// Deadline-based so a poll() interrupted by a signal (EINTR) resumes
/// with the time remaining — a signal storm cannot extend the wait. The
/// fd is always polled at least once (non-blocking when the deadline has
/// already passed), so already-pending events are still delivered.
bool wait_fd(int fd, short events, std::chrono::steady_clock::time_point deadline) {
  pollfd pfd{fd, events, 0};
  while (true) {
    const auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int wait_ms = static_cast<int>(std::max<std::int64_t>(remaining.count(), 0));
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        continue;
      }
      throw_errno("poll");
    }
    return ready > 0;
  }
}

bool wait_fd(int fd, short events, std::chrono::milliseconds timeout) {
  return wait_fd(fd, events, std::chrono::steady_clock::now() + timeout);
}

}  // namespace

// ---------- TcpListener ----------

TcpListener::TcpListener(const UdpEndpoint& endpoint) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in sa = to_sockaddr(endpoint);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0 ||
      ::listen(fd_, 16) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind/listen");
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UdpEndpoint TcpListener::local_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("getsockname");
  }
  return from_sockaddr(sa);
}

int TcpListener::accept_fd(std::chrono::milliseconds timeout) {
  if (!wait_fd(fd_, POLLIN, timeout)) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) throw_errno("accept");
  return client;
}

// ---------- TcpDnsStream ----------

TcpDnsStream TcpDnsStream::connect(const UdpEndpoint& server,
                                   std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_in sa = to_sockaddr(server);
  // Non-blocking connect with a poll-based deadline.
  const int flags = ::fcntl(fd, F_GETFL);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0 &&
      errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
  if (!wait_fd(fd, POLLOUT, timeout)) {
    ::close(fd);
    errno = ETIMEDOUT;
    throw_errno("connect timeout");
  }
  int error = 0;
  socklen_t len = sizeof error;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 || error != 0) {
    ::close(fd);
    errno = error != 0 ? error : EIO;
    throw_errno("connect");
  }
  (void)::fcntl(fd, F_SETFL, flags);
  return TcpDnsStream{fd};
}

TcpDnsStream::~TcpDnsStream() {
  if (fd_ >= 0) ::close(fd_);
}

TcpDnsStream::TcpDnsStream(TcpDnsStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpDnsStream& TcpDnsStream::operator=(TcpDnsStream&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UdpEndpoint TcpDnsStream::peer_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("getpeername");
  }
  return from_sockaddr(sa);
}

void TcpDnsStream::send(const dns::Message& message) {
  const auto wire = message.encode();
  if (wire.size() > 0xFFFF) throw dns::WireError{"message exceeds TCP length prefix"};
  std::vector<std::uint8_t> framed;
  framed.reserve(wire.size() + 2);
  framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
  framed.push_back(static_cast<std::uint8_t>(wire.size()));
  framed.insert(framed.end(), wire.begin(), wire.end());
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool TcpDnsStream::read_exact(std::uint8_t* out, std::size_t n,
                              std::chrono::steady_clock::time_point deadline) {
  std::size_t got = 0;
  while (got < n) {
    if (!wait_fd(fd_, POLLIN, deadline)) return false;
    const ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (r == 0) return false;  // peer closed
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::optional<dns::Message> TcpDnsStream::receive(std::chrono::milliseconds timeout) {
  // ONE deadline covers the length prefix AND the body: a peer that
  // dribbles out the prefix near the timeout no longer earns a second
  // full budget for the body.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::uint8_t prefix[2];
  if (!read_exact(prefix, 2, deadline)) return std::nullopt;
  const std::size_t length = (static_cast<std::size_t>(prefix[0]) << 8) | prefix[1];
  std::vector<std::uint8_t> wire(length);
  if (length > 0 && !read_exact(wire.data(), length, deadline)) return std::nullopt;
  return dns::Message::decode(wire);
}

// ---------- TcpAuthorityServer ----------

TcpAuthorityServer::TcpAuthorityServer(AuthoritativeServer* engine, const UdpEndpoint& bind)
    : engine_(engine), listener_(bind) {
  if (engine_ == nullptr) throw std::invalid_argument{"TcpAuthorityServer: null engine"};
}

std::size_t TcpAuthorityServer::serve_connection(std::chrono::milliseconds timeout) {
  const int fd = listener_.accept_fd(timeout);
  if (fd < 0) return 0;
  TcpDnsStream stream{fd};
  const net::IpAddr peer{stream.peer_endpoint().address};
  std::size_t served = 0;
  while (true) {
    std::optional<dns::Message> query;
    try {
      query = stream.receive(timeout);
    } catch (const dns::WireError&) {
      break;  // unparseable framing: drop the connection
    }
    if (!query) break;
    stream.send(engine_->handle(*query, peer));
    ++served;
  }
  return served;
}

void TcpAuthorityServer::serve_until(const std::atomic<bool>& stop) {
  using namespace std::chrono_literals;
  while (!stop.load(std::memory_order_relaxed)) {
    (void)serve_connection(50ms);
  }
}

// ---------- FallbackDnsClient ----------

FallbackDnsClient::FallbackDnsClient(UdpEndpoint udp_server, UdpEndpoint tcp_server)
    : udp_server_(udp_server), tcp_server_(tcp_server) {}

std::optional<FallbackDnsClient::Outcome> FallbackDnsClient::query(
    const dns::Message& query_msg, std::chrono::milliseconds timeout) {
  const auto udp_response = udp_client_.query(query_msg, udp_server_, timeout);
  if (udp_response && !udp_response->header.truncated) {
    return Outcome{*udp_response, false};
  }
  // TC (or UDP loss): retry over TCP.
  try {
    TcpDnsStream stream = TcpDnsStream::connect(tcp_server_, timeout);
    stream.send(query_msg);
    if (auto tcp_response = stream.receive(timeout)) {
      return Outcome{std::move(*tcp_response), true};
    }
  } catch (const std::system_error&) {
    // fall through: both transports failed
  }
  return std::nullopt;
}

}  // namespace eum::dnsserver
