#include "dnsserver/answer_cache.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace eum::dnsserver {

namespace {

constexpr std::uint16_t kOptType = 41;       // RFC 6891 OPT pseudo-RR
constexpr std::uint16_t kEcsOptionCode = 8;  // RFC 7871 edns-client-subnet

[[nodiscard]] std::uint16_t read_u16(std::span<const std::uint8_t> wire,
                                     std::size_t pos) noexcept {
  return static_cast<std::uint16_t>((wire[pos] << 8) | wire[pos + 1]);
}

/// Bytes needed for a prefix of `bits` bits.
[[nodiscard]] constexpr std::size_t prefix_bytes(unsigned bits) noexcept {
  return (static_cast<std::size_t>(bits) + 7) / 8;
}

/// Copy `address` truncated to `scope` bits into `out` (zeroing the bits
/// past the prefix in the last byte). Returns the byte count.
std::size_t truncate_to_scope(std::span<const std::uint8_t> address, unsigned scope,
                              std::span<std::uint8_t> out) noexcept {
  const std::size_t n = prefix_bytes(scope);
  for (std::size_t i = 0; i < n; ++i) out[i] = i < address.size() ? address[i] : 0;
  if (scope % 8 != 0 && n > 0) {
    out[n - 1] &= static_cast<std::uint8_t>(0xFF << (8 - scope % 8));
  }
  return n;
}

/// FNV-1a, seeded per key field so field boundaries cannot alias.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  }
  void mix_bytes(std::span<const std::uint8_t> bytes) noexcept {
    for (const std::uint8_t b : bytes) {
      h ^= b;
      h *= 0x100000001b3ull;
    }
  }
};

std::uint64_t key_hash(const QueryProbe& probe, std::uint64_t version, std::int16_t scope,
                       std::span<const std::uint8_t> scope_addr) noexcept {
  Fnv fnv;
  fnv.mix(version);
  fnv.mix(static_cast<std::uint64_t>(probe.flags) << 32 |
          static_cast<std::uint64_t>(probe.qtype) << 16 | probe.qclass);
  fnv.mix(static_cast<std::uint64_t>(probe.has_edns) << 48 |
          static_cast<std::uint64_t>(probe.payload_limit()) << 32 | probe.opt_ttl);
  fnv.mix(static_cast<std::uint64_t>(probe.ecs_family) << 24 |
          static_cast<std::uint64_t>(probe.ecs_source_len) << 16 |
          static_cast<std::uint64_t>(static_cast<std::uint16_t>(scope)));
  fnv.mix_bytes(probe.qname);
  fnv.mix_bytes(scope_addr);
  return fnv.h;
}

/// Where the ECS echo lives in a response wire: the address offset (for
/// id-style patching) plus the announced scope.
struct ResponseEcs {
  bool has_option = false;       ///< response carries an ECS option at all
  std::uint32_t addr_offset = 0;
  std::uint8_t scope = 0;
  std::uint8_t source_len = 0;
  std::uint16_t family = 0;
};

/// Skip a (possibly compressed) owner name. Returns false on malform.
bool skip_name(std::span<const std::uint8_t> wire, std::size_t& pos) noexcept {
  while (true) {
    if (pos >= wire.size()) return false;
    const std::uint8_t len = wire[pos];
    if (len == 0) {
      ++pos;
      return true;
    }
    if ((len & 0xC0) == 0xC0) {  // compression pointer terminates the name
      pos += 2;
      return pos <= wire.size();
    }
    if ((len & 0xC0) != 0) return false;
    pos += 1 + len;
  }
}

/// Walk the response's resource records looking for the OPT record's ECS
/// option. nullopt = walk failed (malformed); has_option=false = walked
/// fine but no ECS echo present.
std::optional<ResponseEcs> find_response_ecs(std::span<const std::uint8_t> wire) noexcept {
  if (wire.size() < 12) return std::nullopt;
  const std::uint16_t qd = read_u16(wire, 4);
  const std::size_t rr_total = static_cast<std::size_t>(read_u16(wire, 6)) +
                               read_u16(wire, 8) + read_u16(wire, 10);
  std::size_t pos = 12;
  for (std::uint16_t q = 0; q < qd; ++q) {
    if (!skip_name(wire, pos)) return std::nullopt;
    pos += 4;  // qtype + qclass
    if (pos > wire.size()) return std::nullopt;
  }
  for (std::size_t r = 0; r < rr_total; ++r) {
    if (!skip_name(wire, pos)) return std::nullopt;
    if (pos + 10 > wire.size()) return std::nullopt;
    const std::uint16_t type = read_u16(wire, pos);
    const std::uint16_t rdlen = read_u16(wire, pos + 8);
    pos += 10;
    if (pos + rdlen > wire.size()) return std::nullopt;
    if (type != kOptType) {
      pos += rdlen;
      continue;
    }
    const std::size_t rdend = pos + rdlen;
    while (pos < rdend) {
      if (pos + 4 > rdend) return std::nullopt;
      const std::uint16_t code = read_u16(wire, pos);
      const std::uint16_t optlen = read_u16(wire, pos + 2);
      pos += 4;
      if (pos + optlen > rdend) return std::nullopt;
      if (code == kEcsOptionCode) {
        if (optlen < 4) return std::nullopt;
        ResponseEcs ecs;
        ecs.has_option = true;
        ecs.family = read_u16(wire, pos);
        ecs.source_len = wire[pos + 2];
        ecs.scope = wire[pos + 3];
        ecs.addr_offset = static_cast<std::uint32_t>(pos + 4);
        if (optlen != 4 + prefix_bytes(ecs.source_len)) return std::nullopt;
        return ecs;
      }
      pos += optlen;
    }
  }
  return ResponseEcs{};  // no ECS echo anywhere
}

}  // namespace

std::optional<QueryProbe> QueryProbe::parse(std::span<const std::uint8_t> wire) noexcept {
  QueryProbe probe;
  if (wire.size() < 12) return std::nullopt;
  probe.id = read_u16(wire, 0);
  probe.flags = read_u16(wire, 2);
  if ((probe.flags & 0x8000) != 0) return std::nullopt;  // QR=1: not a query
  const std::uint16_t qd = read_u16(wire, 4);
  const std::uint16_t an = read_u16(wire, 6);
  const std::uint16_t ns = read_u16(wire, 8);
  const std::uint16_t ar = read_u16(wire, 10);
  if (qd != 1 || an != 0 || ns != 0 || ar > 1) return std::nullopt;

  std::size_t pos = 12;
  const std::size_t qname_start = pos;
  while (true) {
    if (pos >= wire.size()) return std::nullopt;
    const std::uint8_t len = wire[pos];
    if (len == 0) {
      ++pos;
      break;
    }
    if ((len & 0xC0) != 0) return std::nullopt;  // compression/reserved bits
    pos += 1 + len;
    if (pos - qname_start > 255) return std::nullopt;
  }
  probe.qname = wire.subspan(qname_start, pos - qname_start);
  if (pos + 4 > wire.size()) return std::nullopt;
  probe.qtype = read_u16(wire, pos);
  probe.qclass = read_u16(wire, pos + 2);
  pos += 4;

  if (ar == 1) {
    // The single additional must be an OPT pseudo-RR: root owner, TYPE 41.
    if (pos + 11 > wire.size()) return std::nullopt;
    if (wire[pos] != 0 || read_u16(wire, pos + 1) != kOptType) return std::nullopt;
    probe.has_edns = true;
    probe.udp_payload = read_u16(wire, pos + 3);
    probe.opt_ttl = static_cast<std::uint32_t>(wire[pos + 5]) << 24 |
                    static_cast<std::uint32_t>(wire[pos + 6]) << 16 |
                    static_cast<std::uint32_t>(wire[pos + 7]) << 8 | wire[pos + 8];
    const std::uint16_t rdlen = read_u16(wire, pos + 9);
    pos += 11;
    if (pos + rdlen > wire.size()) return std::nullopt;
    const std::size_t rdend = pos + rdlen;
    while (pos < rdend) {
      if (pos + 4 > rdend) return std::nullopt;
      const std::uint16_t code = read_u16(wire, pos);
      const std::uint16_t optlen = read_u16(wire, pos + 2);
      pos += 4;
      if (pos + optlen > rdend) return std::nullopt;
      if (code == kEcsOptionCode) {
        if (probe.has_ecs) return std::nullopt;  // duplicate ECS
        if (optlen < 4) return std::nullopt;
        const std::uint16_t family = read_u16(wire, pos);
        const std::uint8_t source = wire[pos + 2];
        const std::uint8_t scope = wire[pos + 3];
        // Scope must be 0 in queries (RFC 7871 §7.1.2) — nonzero takes
        // the slow path so the engine's FORMERR answer is authoritative.
        if (scope != 0) return std::nullopt;
        if (family != 1 && family != 2) return std::nullopt;
        if (source > (family == 1 ? 32 : 128)) return std::nullopt;
        if (optlen != 4 + prefix_bytes(source)) return std::nullopt;
        probe.has_ecs = true;
        probe.ecs_family = static_cast<std::uint8_t>(family);
        probe.ecs_source_len = source;
        probe.ecs_address = wire.subspan(pos + 4, prefix_bytes(source));
      }
      pos += optlen;
    }
    if (pos != rdend) return std::nullopt;
  }
  if (pos != wire.size()) return std::nullopt;  // trailing bytes
  return probe;
}

AnswerCache::AnswerCache(const Config& config) : max_wire_(config.max_wire) {
  const std::size_t entries = std::bit_ceil(std::max<std::size_t>(config.entries, 1));
  slots_.resize(entries);
  mask_ = entries - 1;
}

const AnswerCache::Entry* AnswerCache::probe_slot(
    const QueryProbe& probe, std::uint64_t version, std::int16_t scope,
    std::span<const std::uint8_t> scope_addr) const noexcept {
  const std::uint64_t hash = key_hash(probe, version, scope, scope_addr);
  const Entry& entry = slots_[hash & mask_];
  if (!entry.used || entry.hash != hash) return nullptr;
  if (entry.version != version || entry.flags != probe.flags || entry.qtype != probe.qtype ||
      entry.qclass != probe.qclass || entry.has_edns != probe.has_edns ||
      entry.opt_ttl != probe.opt_ttl || entry.payload_limit != probe.payload_limit() ||
      entry.has_ecs != probe.has_ecs || entry.ecs_family != probe.ecs_family ||
      entry.ecs_source_len != probe.ecs_source_len || entry.scope_len != scope) {
    return nullptr;
  }
  if (entry.qname.size() != probe.qname.size() ||
      (!entry.qname.empty() &&
       std::memcmp(entry.qname.data(), probe.qname.data(), entry.qname.size()) != 0)) {
    return nullptr;
  }
  if (entry.scope_addr.size() != scope_addr.size() ||
      (!scope_addr.empty() &&
       std::memcmp(entry.scope_addr.data(), scope_addr.data(), scope_addr.size()) != 0)) {
    return nullptr;
  }
  return &entry;
}

const AnswerCache::Entry* AnswerCache::find(const QueryProbe& probe,
                                            std::uint64_t version) const noexcept {
  if (!probe.has_ecs) return probe_slot(probe, version, -1, {});
  std::array<std::uint8_t, 16> trunc{};
  // Longest announced scope first: the most specific cached answer wins,
  // matching what the engine would have computed for this client block.
  for (std::size_t i = 0; i < scope_count_; ++i) {
    const std::int16_t scope = scopes_[i];
    if (scope > probe.ecs_source_len) continue;
    const std::size_t n =
        truncate_to_scope(probe.ecs_address, static_cast<unsigned>(scope), trunc);
    if (const Entry* hit =
            probe_slot(probe, version, scope, std::span<const std::uint8_t>{trunc.data(), n})) {
      return hit;
    }
  }
  return nullptr;
}

void AnswerCache::render(const Entry& entry, const QueryProbe& probe,
                         std::vector<std::uint8_t>& out) const {
  out.assign(entry.wire.begin(), entry.wire.end());
  out[0] = static_cast<std::uint8_t>(probe.id >> 8);
  out[1] = static_cast<std::uint8_t>(probe.id & 0xFF);
  if (entry.ecs_addr_offset != 0) {
    // Echo this client's announced address (the key guarantees the same
    // family and source length, hence the same byte count).
    std::copy(probe.ecs_address.begin(), probe.ecs_address.end(),
              out.begin() + static_cast<std::ptrdiff_t>(entry.ecs_addr_offset));
  }
}

bool AnswerCache::note_scope(std::int16_t scope) noexcept {
  for (std::size_t i = 0; i < scope_count_; ++i) {
    if (scopes_[i] == scope) return true;
  }
  if (scope_count_ == kMaxScopes) return false;
  std::size_t at = scope_count_++;
  while (at > 0 && scopes_[at - 1] < scope) {  // keep descending order
    scopes_[at] = scopes_[at - 1];
    --at;
  }
  scopes_[at] = scope;
  return true;
}

void AnswerCache::store(const QueryProbe& probe, std::uint64_t version,
                        std::span<const std::uint8_t> response) {
  if (response.size() < 12 || response.size() > max_wire_) return;
  std::int16_t scope = -1;
  std::uint32_t addr_offset = 0;
  std::array<std::uint8_t, 16> trunc{};
  std::span<const std::uint8_t> scope_addr;
  if (probe.has_ecs) {
    const std::optional<ResponseEcs> echo = find_response_ecs(response);
    if (!echo) return;  // malformed walk: refuse to memoize what we can't key
    if (echo->has_option) {
      if (echo->family != probe.ecs_family || echo->source_len != probe.ecs_source_len) return;
      if (echo->scope > probe.ecs_source_len) return;
      scope = echo->scope;
      addr_offset = echo->addr_offset;
    } else {
      // No echo (FORMERR and friends): valid for every client block.
      scope = 0;
    }
    if (!note_scope(scope)) return;  // scope ladder full; skip, stay correct
    const std::size_t n =
        truncate_to_scope(probe.ecs_address, static_cast<unsigned>(scope), trunc);
    scope_addr = std::span<const std::uint8_t>{trunc.data(), n};
  }
  const std::uint64_t hash = key_hash(probe, version, scope, scope_addr);
  Entry& entry = slots_[hash & mask_];
  entry.used = true;
  entry.hash = hash;
  entry.version = version;
  entry.flags = probe.flags;
  entry.qtype = probe.qtype;
  entry.qclass = probe.qclass;
  entry.opt_ttl = probe.opt_ttl;
  entry.payload_limit = static_cast<std::uint16_t>(probe.payload_limit());
  entry.has_edns = probe.has_edns;
  entry.has_ecs = probe.has_ecs;
  entry.ecs_family = probe.ecs_family;
  entry.ecs_source_len = probe.ecs_source_len;
  entry.scope_len = scope;
  entry.ecs_addr_offset = addr_offset;
  entry.qname.assign(probe.qname.begin(), probe.qname.end());
  entry.scope_addr.assign(scope_addr.begin(), scope_addr.end());
  entry.wire.assign(response.begin(), response.end());
}

}  // namespace eum::dnsserver
