// Fault-injection upstream decorator.
//
// The paper's mapping roll-out was gated on not regressing availability
// (§4): the LDNS must keep answering through nameserver loss, slow
// authorities, and damaged wire images. Nothing in a clean in-process
// test exercises those paths, so `FaultInjector` wraps any `Upstream`
// (the in-memory `AuthorityDirectory`, the real-socket `UdpUpstream`,
// the simulator) and injects a configurable fault mix driven by the
// deterministic `util::Rng` — the same seed always produces the same
// fault sequence, so failure tests and the fault-sweep bench are
// reproducible.
//
// Fault taxonomy (per query, evaluated in this order):
//   drop      the query vanishes; the inner upstream is never called and
//             the attempt reports as lost (nullopt).
//   servfail  the authority is overloaded: a SERVFAIL response is
//             synthesized without consulting the inner upstream.
//   delay     the response is held for `delay + U[0, delay_jitter)`.
//   corrupt   1-4 random bytes of the encoded response are flipped; if
//             the result no longer parses the attempt reports as lost,
//             otherwise the damaged message (likely a mismatched ID) is
//             delivered for the resolver's validation to catch.
//   truncate  the response loses its sections and comes back TC=1 (the
//             EDNS OPT, a non-droppable pseudo-section, survives).
//   duplicate the network duplicates the query datagram: the inner
//             upstream handles it twice and the second response is
//             discarded — amplified authority load, single delivery.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "dnsserver/resolver.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace eum::dnsserver {

/// Per-authority fault mix. Probabilities in [0, 1]; delays are added to
/// every non-dropped response.
struct FaultSpec {
  double drop = 0.0;
  double servfail = 0.0;
  double truncate = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  std::chrono::microseconds delay{0};
  std::chrono::microseconds delay_jitter{0};

  /// Whether this spec can ever fire (used to skip the RNG on the
  /// all-zero default).
  [[nodiscard]] bool active() const noexcept {
    return drop > 0.0 || servfail > 0.0 || truncate > 0.0 || duplicate > 0.0 || corrupt > 0.0 ||
           delay.count() > 0 || delay_jitter.count() > 0;
  }
};

struct FaultInjectorConfig {
  /// Default mix applied to forward() and to servers without an override.
  FaultSpec faults;
  /// Seed for the fault stream; same seed = same fault sequence.
  std::uint64_t seed = 0xFA017EEDULL;
  /// Registry for eum_fault_* counters (borrowed; must outlive the
  /// injector). nullptr = private registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Injected-fault counters — a thin view over the registry counters.
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t servfails = 0;
  std::uint64_t truncations = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t forwards = 0;  ///< queries the inner upstream actually saw
};

class FaultInjector : public Upstream {
 public:
  /// `inner` is borrowed and must outlive the injector.
  explicit FaultInjector(Upstream* inner, FaultInjectorConfig config = {});

  /// Replace the default fault mix (thread-safe; applies to subsequent
  /// queries).
  void set_faults(FaultSpec spec);
  /// Override the mix for one authority address (matched by
  /// try_forward_to/forward_to target).
  void set_faults_for(const net::IpAddr& server, FaultSpec spec);

  [[nodiscard]] dns::Message forward(const dns::Message& query,
                                     const net::IpAddr& source) override;
  [[nodiscard]] std::optional<dns::Message> forward_to(const net::IpAddr& server,
                                                       const dns::Message& query,
                                                       const net::IpAddr& source) override;
  [[nodiscard]] std::optional<dns::Message> try_forward(const dns::Message& query,
                                                        const net::IpAddr& source) override;
  [[nodiscard]] ForwardToResult try_forward_to(const net::IpAddr& server,
                                               const dns::Message& query,
                                               const net::IpAddr& source) override;

  [[nodiscard]] FaultStats stats() const;

  /// Reset contract: zero the injected-fault counters.
  void reset_stats();

 private:
  /// Outcome of one fault draw, taken under the mutex so concurrent
  /// callers see a single deterministic stream.
  struct Decision {
    bool drop = false;
    bool servfail = false;
    bool truncate = false;
    bool duplicate = false;
    bool corrupt = false;
    std::chrono::microseconds delay{0};
    std::uint64_t corrupt_seed = 0;
  };

  [[nodiscard]] Decision draw(const FaultSpec& spec);
  [[nodiscard]] FaultSpec spec_for(const net::IpAddr& server) const;

  /// Apply post-response faults (delay/corrupt/truncate) to `response`.
  [[nodiscard]] std::optional<dns::Message> mangle(const Decision& decision,
                                                   std::optional<dns::Message> response);

  Upstream* inner_;
  mutable std::mutex mutex_;  ///< guards rng_, default_spec_, per_server_
  FaultSpec default_spec_;
  std::unordered_map<std::string, FaultSpec> per_server_;
  util::Rng rng_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;  ///< when none injected
  obs::MetricsRegistry* registry_;
  obs::Counter* drops_;
  obs::Counter* servfails_;
  obs::Counter* truncations_;
  obs::Counter* duplicates_;
  obs::Counter* corruptions_;
  obs::Counter* delays_;
  obs::Counter* forwards_;
};

}  // namespace eum::dnsserver
