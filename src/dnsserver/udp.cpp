#include "dnsserver/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace eum::dnsserver {

namespace {

constexpr std::size_t kMaxDatagram = 65535;

sockaddr_in to_sockaddr(const UdpEndpoint& endpoint) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(endpoint.port);
  sa.sin_addr.s_addr = htonl(endpoint.address.value());
  return sa;
}

UdpEndpoint from_sockaddr(const sockaddr_in& sa) {
  return UdpEndpoint{net::IpV4Addr{ntohl(sa.sin_addr.s_addr)}, ntohs(sa.sin_port)};
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error{errno, std::generic_category(), what};
}

}  // namespace

UdpSocket::UdpSocket(const UdpEndpoint& endpoint, bool reuse_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  if (reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_errno("setsockopt(SO_REUSEPORT)");
    }
  }
  const sockaddr_in sa = to_sockaddr(endpoint);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

UdpEndpoint UdpSocket::local_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("getsockname");
  }
  return from_sockaddr(sa);
}

void UdpSocket::send_to(std::span<const std::uint8_t> data, const UdpEndpoint& peer) {
  const sockaddr_in sa = to_sockaddr(peer);
  const ssize_t sent = ::sendto(fd_, data.data(), data.size(), 0,
                                reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  if (sent < 0) throw_errno("sendto");
  if (static_cast<std::size_t>(sent) != data.size()) {
    throw std::system_error{EMSGSIZE, std::generic_category(), "sendto: short write"};
  }
}

std::optional<std::vector<std::uint8_t>> UdpSocket::receive(std::chrono::milliseconds timeout,
                                                            UdpEndpoint& peer) {
  // The wait is deadline-based: a poll() interrupted by a signal (EINTR)
  // resumes with the time REMAINING, not the caller's full timeout, so a
  // signal storm cannot extend the wait unboundedly. A negative timeout
  // still means "wait forever".
  const bool infinite = timeout.count() < 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    int wait_ms = -1;
    if (!infinite) {
      const auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(remaining.count(), 0));
    }
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        if (!infinite && std::chrono::steady_clock::now() >= deadline) return std::nullopt;
        continue;
      }
      throw_errno("poll");
    }
    if (ready == 0) return std::nullopt;
    break;
  }
  std::vector<std::uint8_t> buffer(kMaxDatagram);
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  ssize_t received;
  do {
    received = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                          reinterpret_cast<sockaddr*>(&sa), &len);
  } while (received < 0 && errno == EINTR);
  if (received < 0) throw_errno("recvfrom");
  buffer.resize(static_cast<std::size_t>(received));
  peer = from_sockaddr(sa);
  return buffer;
}

stats::Table udp_server_stats_table(const UdpServerStats& stats) {
  stats::Table table{"counter", "value"};
  table.add_row("queries", stats.queries);
  table.add_row("truncated", stats.truncated);
  table.add_row("wire_errors", stats.wire_errors);
  for (std::size_t w = 0; w < stats.per_worker.size(); ++w) {
    const std::string prefix = "worker_" + std::to_string(w) + "_";
    table.add_row(prefix + "queries", stats.per_worker[w]);
    if (w < stats.per_worker_truncated.size()) {
      table.add_row(prefix + "truncated", stats.per_worker_truncated[w]);
    }
    if (w < stats.per_worker_wire_errors.size()) {
      table.add_row(prefix + "wire_errors", stats.per_worker_wire_errors[w]);
    }
  }
  return table;
}

UdpAuthorityServer::UdpAuthorityServer(AuthoritativeServer* engine, const UdpEndpoint& bind,
                                       UdpServerConfig config)
    : engine_(engine), config_(config), registry_(config.registry) {
  if (engine_ == nullptr) throw std::invalid_argument{"UdpAuthorityServer: null engine"};
  if (config_.workers == 0) throw std::invalid_argument{"UdpAuthorityServer: need >= 1 worker"};
  if (registry_ == nullptr) registry_ = &engine_->registry();
  // Bind the first socket (resolving an ephemeral port), then the rest of
  // the SO_REUSEPORT group onto the resolved endpoint. SO_REUSEPORT must
  // be set on the first socket too or later binds are refused.
  const bool shared = config_.workers > 1;
  sockets_.emplace_back(bind, shared);
  const UdpEndpoint resolved = sockets_.front().local_endpoint();
  for (std::size_t w = 1; w < config_.workers; ++w) {
    sockets_.emplace_back(resolved, true);
  }
  worker_metrics_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    const obs::Labels labels{{"worker", std::to_string(w)}};
    WorkerMetrics metrics;
    metrics.queries =
        &registry_->counter("eum_udp_queries_total", "datagrams answered", labels);
    metrics.truncated =
        &registry_->counter("eum_udp_truncated_total", "TC=1 responses sent", labels);
    metrics.wire_errors =
        &registry_->counter("eum_udp_wire_errors_total", "unparseable datagrams", labels);
    worker_metrics_.push_back(metrics);
  }
  serve_latency_ = &registry_->histogram(
      "eum_udp_serve_latency_us", "datagram received to response sent, microseconds");
}

UdpAuthorityServer::~UdpAuthorityServer() { stop(); }

void UdpAuthorityServer::start() {
  if (!threads_.empty()) return;
  stopping_.store(false, std::memory_order_relaxed);
  threads_.reserve(sockets_.size());
  for (std::size_t w = 0; w < sockets_.size(); ++w) {
    threads_.emplace_back([this, w] {
      while (!stopping_.load(std::memory_order_relaxed)) {
        serve_on(sockets_[w], w, config_.poll_interval);
      }
    });
  }
}

void UdpAuthorityServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

bool UdpAuthorityServer::serve_once(std::chrono::milliseconds timeout) {
  return serve_on(sockets_.front(), 0, timeout);
}

bool UdpAuthorityServer::serve_on(UdpSocket& socket, std::size_t worker,
                                  std::chrono::milliseconds timeout) {
  UdpEndpoint peer;
  const auto datagram = socket.receive(timeout, peer);
  if (!datagram) return false;
  // Serve latency covers decode + handle + encode + send — what a client
  // would see past the kernel's receive queue.
  const auto received_at = std::chrono::steady_clock::now();
  WorkerMetrics& metrics = worker_metrics_[worker];
  dns::Message response;
  try {
    const dns::Message query = dns::Message::decode(*datagram);
    response = engine_->handle(query, net::IpAddr{peer.address});
    metrics.queries->add();
    // RFC 1035 / RFC 6891 size discipline: a response larger than the
    // requester's advertised UDP payload (512 octets without EDNS) is
    // truncated — DNS sections dropped and TC set so the client retries
    // over a bigger channel. The OPT pseudo-record (Message::edns) is
    // NOT a droppable section: RFC 6891 §7 / RFC 7871 §7.2.2 require the
    // TC=1 response to keep it so the client still learns our payload
    // limit and the answer's ECS scope.
    std::vector<std::uint8_t> wire = response.encode();
    const std::size_t limit = query.edns ? query.edns->udp_payload_size : 512;
    if (wire.size() > limit) {
      response.answers.clear();
      response.authorities.clear();
      response.additionals.clear();
      response.header.truncated = true;
      metrics.truncated->add();
      wire = response.encode();
    }
    socket.send_to(wire, peer);
    serve_latency_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              received_at)
            .count()));
    return true;
  } catch (const dns::WireError&) {
    // Unparseable datagram: best-effort FORMERR if we can extract an id.
    metrics.wire_errors->add();
    if (datagram->size() < 2) return true;  // too short even for an id; drop
    response.header.id =
        static_cast<std::uint16_t>(((*datagram)[0] << 8) | (*datagram)[1]);
    response.header.is_response = true;
    response.header.rcode = dns::Rcode::form_err;
  }
  socket.send_to(response.encode(), peer);
  serve_latency_->record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            received_at)
          .count()));
  return true;
}

void UdpAuthorityServer::serve_until(const std::atomic<bool>& stop) {
  using namespace std::chrono_literals;
  while (!stop.load(std::memory_order_relaxed)) {
    serve_once(50ms);
  }
}

UdpServerStats UdpAuthorityServer::stats() const {
  UdpServerStats snapshot;
  snapshot.per_worker.resize(worker_metrics_.size());
  snapshot.per_worker_truncated.resize(worker_metrics_.size());
  snapshot.per_worker_wire_errors.resize(worker_metrics_.size());
  for (std::size_t w = 0; w < worker_metrics_.size(); ++w) {
    snapshot.per_worker[w] = worker_metrics_[w].queries->value();
    snapshot.per_worker_truncated[w] = worker_metrics_[w].truncated->value();
    snapshot.per_worker_wire_errors[w] = worker_metrics_[w].wire_errors->value();
    snapshot.queries += snapshot.per_worker[w];
    snapshot.truncated += snapshot.per_worker_truncated[w];
    snapshot.wire_errors += snapshot.per_worker_wire_errors[w];
  }
  return snapshot;
}

void UdpAuthorityServer::reset_stats() {
  for (const WorkerMetrics& metrics : worker_metrics_) {
    metrics.queries->reset();
    metrics.truncated->reset();
    metrics.wire_errors->reset();
  }
  serve_latency_->reset();
}

UdpDnsClient::UdpDnsClient() : socket_(UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0}) {}

std::optional<dns::Message> UdpDnsClient::query(const dns::Message& query_msg,
                                                const UdpEndpoint& server,
                                                std::chrono::milliseconds timeout) {
  socket_.send_to(query_msg.encode(), server);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    UdpEndpoint peer;
    const auto datagram = socket_.receive(remaining, peer);
    if (!datagram) return std::nullopt;
    try {
      dns::Message response = dns::Message::decode(*datagram);
      if (response.header.id == query_msg.header.id && response.header.is_response) {
        return response;
      }
    } catch (const dns::WireError&) {
      // Ignore malformed datagrams and keep waiting until the deadline.
    }
  }
}

UdpUpstream::UdpUpstream(UdpEndpoint server, std::chrono::milliseconds timeout)
    : server_(server), timeout_(timeout) {
  if (timeout_.count() <= 0) {
    throw std::invalid_argument{"UdpUpstream: timeout must be positive"};
  }
}

std::optional<dns::Message> UdpUpstream::try_forward(const dns::Message& query,
                                                     const net::IpAddr& source) {
  (void)source;  // the kernel stamps the real source address
  UdpDnsClient client;
  return client.query(query, server_, timeout_);
}

Upstream::ForwardToResult UdpUpstream::try_forward_to(const net::IpAddr& server,
                                                      const dns::Message& query,
                                                      const net::IpAddr& source) {
  if (!server.is_v4() || server.v4().value() != server_.address.value()) {
    return ForwardToResult{std::nullopt, false};
  }
  return ForwardToResult{try_forward(query, source), true};
}

dns::Message UdpUpstream::forward(const dns::Message& query, const net::IpAddr& source) {
  if (auto response = try_forward(query, source)) return std::move(*response);
  dns::Message failure = dns::Message::make_response(query);
  failure.header.rcode = dns::Rcode::serv_fail;
  return failure;
}

}  // namespace eum::dnsserver
