#include "dnsserver/udp.h"

#include "obs/query_log.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace eum::dnsserver {

namespace {

constexpr std::size_t kMaxDatagram = 65535;

// SIGPIPE protection: a send on a shutdown/disconnected socket must
// surface as an errno the serve path can count, never a process-killing
// signal.
#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

sockaddr_in to_sockaddr(const UdpEndpoint& endpoint) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(endpoint.port);
  sa.sin_addr.s_addr = htonl(endpoint.address.value());
  return sa;
}

UdpEndpoint from_sockaddr(const sockaddr_in& sa) {
  return UdpEndpoint{net::IpV4Addr{ntohl(sa.sin_addr.s_addr)}, ntohs(sa.sin_port)};
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error{errno, std::generic_category(), what};
}

}  // namespace

UdpSocket::UdpSocket(const UdpEndpoint& endpoint, bool reuse_port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  if (reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_errno("setsockopt(SO_REUSEPORT)");
    }
  }
  const sockaddr_in sa = to_sockaddr(endpoint);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {
  mmsg_unavailable_ = other.mmsg_unavailable_;
  rxq_drops_.store(other.rxq_drops_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    mmsg_unavailable_ = other.mmsg_unavailable_;
    rxq_drops_.store(other.rxq_drops_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  return *this;
}

bool UdpSocket::enable_rx_drop_counter() noexcept {
#if defined(__linux__) && defined(SO_RXQ_OVFL)
  const int one = 1;
  return ::setsockopt(fd_, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof one) == 0;
#else
  return false;
#endif
}

UdpEndpoint UdpSocket::local_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("getsockname");
  }
  return from_sockaddr(sa);
}

void UdpSocket::send_to(std::span<const std::uint8_t> data, const UdpEndpoint& peer) {
  const sockaddr_in sa = to_sockaddr(peer);
  const ssize_t sent = ::sendto(fd_, data.data(), data.size(), kSendFlags,
                                reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  if (sent < 0) throw_errno("sendto");
  if (static_cast<std::size_t>(sent) != data.size()) {
    throw std::system_error{EMSGSIZE, std::generic_category(), "sendto: short write"};
  }
}

bool UdpSocket::wait_readable(std::chrono::milliseconds timeout) {
  // The wait is deadline-based: a poll() interrupted by a signal (EINTR)
  // resumes with the time REMAINING, not the caller's full timeout, so a
  // signal storm cannot extend the wait unboundedly. A negative timeout
  // still means "wait forever".
  const bool infinite = timeout.count() < 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    int wait_ms = -1;
    if (!infinite) {
      const auto remaining = std::chrono::ceil<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(remaining.count(), 0));
    }
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        if (!infinite && std::chrono::steady_clock::now() >= deadline) return false;
        continue;
      }
      throw_errno("poll");
    }
    return ready != 0;
  }
}

std::optional<std::vector<std::uint8_t>> UdpSocket::receive(std::chrono::milliseconds timeout,
                                                            UdpEndpoint& peer) {
  if (!wait_readable(timeout)) return std::nullopt;
  std::vector<std::uint8_t> buffer(kMaxDatagram);
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  ssize_t received;
  do {
    received = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                          reinterpret_cast<sockaddr*>(&sa), &len);
  } while (received < 0 && errno == EINTR);
  if (received < 0) throw_errno("recvfrom");
  buffer.resize(static_cast<std::size_t>(received));
  peer = from_sockaddr(sa);
  return buffer;
}

UdpBatch::UdpBatch(std::size_t capacity)
    : capacity_(std::clamp<std::size_t>(capacity, 1, kMaxCapacity)),
      rx_storage_(std::make_unique<std::uint8_t[]>(capacity_ * kRxBufferSize)),
      rx_size_(capacity_, 0),
      rx_trunc_(capacity_, 0),
      rx_peer_(capacity_),
      tx_(capacity_),
      tx_peer_(capacity_) {
  for (std::vector<std::uint8_t>& buffer : tx_) buffer.reserve(512);
}

std::vector<std::uint8_t>& UdpBatch::stage(const UdpEndpoint& to) {
  if (staged_ == capacity_) throw std::out_of_range{"UdpBatch::stage: batch full"};
  tx_peer_[staged_] = to;
  std::vector<std::uint8_t>& buffer = tx_[staged_++];
  buffer.clear();  // keeps capacity: no allocation once warmed up
  return buffer;
}

std::size_t UdpSocket::receive_batch(UdpBatch& batch, std::chrono::milliseconds timeout) {
  batch.received_ = 0;
  batch.staged_ = 0;
  if (!wait_readable(timeout)) return 0;
  const std::size_t want = batch.capacity_;
#if defined(__linux__)
  if (!mmsg_unavailable_) {
    mmsghdr headers[UdpBatch::kMaxCapacity];
    iovec iovecs[UdpBatch::kMaxCapacity];
    sockaddr_in addrs[UdpBatch::kMaxCapacity];
    // Per-slot ancillary space for the SO_RXQ_OVFL drop counter; union
    // with a cmsghdr for alignment.
    union CtrlSlot {
      cmsghdr align;
      char buf[CMSG_SPACE(sizeof(std::uint32_t))];
    };
    CtrlSlot controls[UdpBatch::kMaxCapacity];
    std::memset(headers, 0, sizeof(mmsghdr) * want);
    for (std::size_t i = 0; i < want; ++i) {
      iovecs[i] = {batch.rx_storage_.get() + i * UdpBatch::kRxBufferSize,
                   UdpBatch::kRxBufferSize};
      headers[i].msg_hdr.msg_name = &addrs[i];
      headers[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
      headers[i].msg_hdr.msg_control = controls[i].buf;
      headers[i].msg_hdr.msg_controllen = sizeof controls[i].buf;
    }
    int got;
    do {
      got = ::recvmmsg(fd_, headers, static_cast<unsigned>(want), MSG_DONTWAIT, nullptr);
    } while (got < 0 && errno == EINTR);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
      if (errno != ENOSYS) throw_errno("recvmmsg");
      mmsg_unavailable_ = true;  // fall through to the single-shot drain
    } else {
      bool saw_drops = false;
      std::uint32_t drops = 0;
      for (int i = 0; i < got; ++i) {
        batch.rx_size_[static_cast<std::size_t>(i)] = headers[i].msg_len;
        batch.rx_trunc_[static_cast<std::size_t>(i)] =
            (headers[i].msg_hdr.msg_flags & MSG_TRUNC) != 0 ? 1 : 0;
        batch.rx_peer_[static_cast<std::size_t>(i)] = from_sockaddr(addrs[i]);
#if defined(SO_RXQ_OVFL)
        for (cmsghdr* cm = CMSG_FIRSTHDR(&headers[i].msg_hdr); cm != nullptr;
             cm = CMSG_NXTHDR(&headers[i].msg_hdr, cm)) {
          if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SO_RXQ_OVFL) {
            // Cumulative per-socket counter; the last datagram carries
            // the most recent value.
            std::memcpy(&drops, CMSG_DATA(cm), sizeof drops);
            saw_drops = true;
          }
        }
#endif
      }
      if (saw_drops) rxq_drops_.store(drops, std::memory_order_relaxed);
      batch.received_ = static_cast<std::size_t>(got);
      return batch.received_;
    }
  }
#endif
  // Portable drain: non-blocking recvfrom until the queue is empty or the
  // batch is full. Without MSG_TRUNC metadata a buffer-filling datagram
  // is conservatively flagged truncated.
  std::size_t count = 0;
  while (count < want) {
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    ssize_t received;
    do {
      received = ::recvfrom(fd_, batch.rx_storage_.get() + count * UdpBatch::kRxBufferSize,
                            UdpBatch::kRxBufferSize, MSG_DONTWAIT,
                            reinterpret_cast<sockaddr*>(&sa), &len);
    } while (received < 0 && errno == EINTR);
    if (received < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (count > 0) break;  // deliver what we have; next round rethrows
      throw_errno("recvfrom");
    }
    batch.rx_size_[count] = static_cast<std::uint32_t>(received);
    batch.rx_trunc_[count] =
        static_cast<std::size_t>(received) >= UdpBatch::kRxBufferSize ? 1 : 0;
    batch.rx_peer_[count] = from_sockaddr(sa);
    ++count;
  }
  batch.received_ = count;
  return count;
}

UdpSocket::SendBatchResult UdpSocket::send_batch(UdpBatch& batch) noexcept {
  SendBatchResult result;
  std::size_t next = 0;
  // Per-datagram sendto fallback, also used to retry the datagram that
  // stalled a partial sendmmsg so its errno is observable.
  const auto send_one = [&](std::size_t i) {
    const sockaddr_in sa = to_sockaddr(batch.tx_peer_[i]);
    ssize_t sent;
    do {
      sent = ::sendto(fd_, batch.tx_[i].data(), batch.tx_[i].size(), kSendFlags,
                      reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    } while (sent < 0 && errno == EINTR);
    if (sent < 0 || static_cast<std::size_t>(sent) != batch.tx_[i].size()) {
      ++result.errors;
      result.last_errno = sent < 0 ? errno : EMSGSIZE;
    } else {
      ++result.sent;
    }
  };
#if defined(__linux__)
  if (!mmsg_unavailable_) {
    mmsghdr headers[UdpBatch::kMaxCapacity];
    iovec iovecs[UdpBatch::kMaxCapacity];
    sockaddr_in addrs[UdpBatch::kMaxCapacity];
    std::memset(headers, 0, sizeof(mmsghdr) * batch.staged_);
    for (std::size_t i = 0; i < batch.staged_; ++i) {
      addrs[i] = to_sockaddr(batch.tx_peer_[i]);
      iovecs[i] = {batch.tx_[i].data(), batch.tx_[i].size()};
      headers[i].msg_hdr.msg_name = &addrs[i];
      headers[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
    }
    while (next < batch.staged_ && !mmsg_unavailable_) {
      const int sent = ::sendmmsg(fd_, headers + next,
                                  static_cast<unsigned>(batch.staged_ - next), kSendFlags);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == ENOSYS) {
          mmsg_unavailable_ = true;
          break;  // remaining datagrams take the sendto loop below
        }
        // The head datagram was refused; count it and move past it.
        ++result.errors;
        result.last_errno = errno;
        ++next;
        continue;
      }
      result.sent += static_cast<std::size_t>(sent);
      next += static_cast<std::size_t>(sent);
      if (next < batch.staged_) send_one(next++);  // probe the blocker's errno
    }
  }
#endif
  for (; next < batch.staged_; ++next) send_one(next);
  batch.staged_ = 0;
  return result;
}

stats::Table udp_server_stats_table(const UdpServerStats& stats) {
  stats::Table table{"counter", "value"};
  table.add_row("queries", stats.queries);
  table.add_row("truncated", stats.truncated);
  table.add_row("wire_errors", stats.wire_errors);
  table.add_row("send_errors", stats.send_errors);
  table.add_row("kernel_drops", stats.kernel_drops);
  table.add_row("cache_hits", stats.cache_hits);
  table.add_row("cache_misses", stats.cache_misses);
  table.add_row("worker_exceptions", stats.worker_exceptions);
  for (std::size_t w = 0; w < stats.per_worker.size(); ++w) {
    const std::string prefix = "worker_" + std::to_string(w) + "_";
    table.add_row(prefix + "queries", stats.per_worker[w]);
    if (w < stats.per_worker_truncated.size()) {
      table.add_row(prefix + "truncated", stats.per_worker_truncated[w]);
    }
    if (w < stats.per_worker_wire_errors.size()) {
      table.add_row(prefix + "wire_errors", stats.per_worker_wire_errors[w]);
    }
  }
  return table;
}

UdpAuthorityServer::UdpAuthorityServer(AuthoritativeServer* engine, const UdpEndpoint& bind,
                                       UdpServerConfig config)
    : engine_(engine), config_(config), registry_(config.registry) {
  if (engine_ == nullptr) throw std::invalid_argument{"UdpAuthorityServer: null engine"};
  if (config_.workers == 0) throw std::invalid_argument{"UdpAuthorityServer: need >= 1 worker"};
  if (config_.poll_interval.count() <= 0) {
    // A non-positive interval means "poll forever": workers would never
    // re-check the stop flag and stop() would hang on join.
    throw std::invalid_argument{
        "UdpAuthorityServer: poll_interval must be positive (infinite poll makes "
        "stop() hang)"};
  }
  config_.batch = std::clamp<std::size_t>(config_.batch, 1, UdpBatch::kMaxCapacity);
  if (registry_ == nullptr) registry_ = &engine_->registry();
  // Bind the first socket (resolving an ephemeral port), then the rest of
  // the SO_REUSEPORT group onto the resolved endpoint. SO_REUSEPORT must
  // be set on the first socket too or later binds are refused.
  const bool shared = config_.workers > 1;
  sockets_.emplace_back(bind, shared);
  const UdpEndpoint resolved = sockets_.front().local_endpoint();
  for (std::size_t w = 1; w < config_.workers; ++w) {
    sockets_.emplace_back(resolved, true);
  }
  // Best effort: where SO_RXQ_OVFL is unsupported the counter stays 0.
  for (UdpSocket& socket : sockets_) (void)socket.enable_rx_drop_counter();
  kernel_drops_seen_.assign(config_.workers, 0);
  worker_metrics_.reserve(config_.workers);
  batches_.reserve(config_.workers);
  if (config_.answer_cache_entries > 0) caches_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    const obs::Labels labels{{"worker", std::to_string(w)}};
    WorkerMetrics metrics;
    metrics.queries =
        &registry_->counter("eum_udp_queries_total", "datagrams answered", labels);
    metrics.truncated =
        &registry_->counter("eum_udp_truncated_total", "TC=1 responses sent", labels);
    metrics.wire_errors =
        &registry_->counter("eum_udp_wire_errors_total", "unparseable datagrams", labels);
    metrics.send_errors = &registry_->counter("eum_udp_send_errors_total",
                                              "datagram send failures", labels);
    metrics.kernel_drops = &registry_->counter(
        "eum_udp_kernel_drops_total",
        "datagrams dropped by the kernel receive queue (SO_RXQ_OVFL)", labels);
    metrics.cache_hits = &registry_->counter("eum_udp_cache_hits_total",
                                             "wire answer-cache hits", labels);
    metrics.cache_misses = &registry_->counter(
        "eum_udp_cache_misses_total", "cacheable queries served by the slow path", labels);
    metrics.worker_exceptions = &registry_->counter(
        "eum_udp_worker_exceptions_total", "exceptions absorbed by the worker barrier",
        labels);
    worker_metrics_.push_back(metrics);
    batches_.emplace_back(config_.batch);
    if (config_.answer_cache_entries > 0) {
      caches_.emplace_back(AnswerCache::Config{config_.answer_cache_entries,
                                               config_.answer_cache_max_wire});
    }
    if (config_.recorder != nullptr) {
      tracers_.push_back(std::make_unique<obs::QueryTracer>(config_.recorder,
                                                            static_cast<std::uint32_t>(w)));
    }
  }
  serve_latency_ = &registry_->histogram(
      "eum_udp_serve_latency_us", "batch received to responses sent, microseconds");
  rx_batch_size_ = &registry_->histogram("eum_udp_rx_batch_size",
                                         "datagrams drained per socket wakeup");
}

UdpAuthorityServer::~UdpAuthorityServer() { stop(); }

void UdpAuthorityServer::start() {
  if (!threads_.empty()) return;
  stopping_.store(false, std::memory_order_relaxed);
  threads_.reserve(sockets_.size());
  for (std::size_t w = 0; w < sockets_.size(); ++w) {
    threads_.emplace_back([this, w] {
      // Exception barrier: a transient serve failure must not reach
      // std::terminate. Anything thrown is counted; the short sleep
      // keeps a persistently-failing socket from hot-spinning the core.
      while (!stopping_.load(std::memory_order_relaxed)) {
        try {
          serve_on(sockets_[w], w, config_.poll_interval);
        } catch (...) {
          worker_metrics_[w].worker_exceptions->add();
          std::this_thread::sleep_for(std::chrono::milliseconds{1});
        }
      }
    });
  }
}

void UdpAuthorityServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

bool UdpAuthorityServer::serve_once(std::chrono::milliseconds timeout) {
  return serve_on(sockets_.front(), 0, timeout);
}

bool UdpAuthorityServer::serve_on(UdpSocket& socket, std::size_t worker,
                                  std::chrono::milliseconds timeout) {
  UdpBatch& batch = batches_[worker];
  const std::size_t got = socket.receive_batch(batch, timeout);
  if (got == 0) return false;
  // Serve latency covers decode + handle + encode + send for the whole
  // drained batch — what a client at the batch tail would see past the
  // kernel's receive queue.
  const auto received_at = std::chrono::steady_clock::now();
  WorkerMetrics& metrics = worker_metrics_[worker];
  rx_batch_size_->record(got);
  // Export the kernel's cumulative drop counter as a delta; only the
  // owning worker thread touches its seen-slot.
  const std::uint64_t kernel_total = socket.kernel_drops();
  if (kernel_total > kernel_drops_seen_[worker]) {
    metrics.kernel_drops->add(kernel_total - kernel_drops_seen_[worker]);
    kernel_drops_seen_[worker] = kernel_total;
  }
  // One version read per batch: every answer in the batch is served (and
  // cached) under the same map generation. The acquire pairs with the
  // MapMaker's release publish, which stores the snapshot BEFORE the
  // version — so version V here implies the fast path serves >= V.
  const std::uint64_t version =
      config_.map_version != nullptr
          ? config_.map_version->load(std::memory_order_acquire)
          : 0;
  AnswerCache* cache = caches_.empty() ? nullptr : &caches_[worker];
  obs::QueryTracer* tracer = tracers_.empty() ? nullptr : tracers_[worker].get();
  // Deep layers (engine, mapping, resolver) find the tracer through the
  // thread-local slot — no signature changes below this point. Installed
  // once per batch: the worker reuses one tracer for every datagram.
  obs::TracerScope trace_scope{tracer};
  for (std::size_t i = 0; i < got; ++i) {
    if (tracer != nullptr) {
      tracer->begin(received_at);  // one clock read for the whole batch
      tracer->set_client_v4(batch.peer(i).address.value());
    }
    try {
      serve_datagram(batch, i, worker, version, cache, tracer);
    } catch (...) {
      // One poisoned datagram must not take down its batch-mates.
      metrics.worker_exceptions->add();
      if (tracer != nullptr) tracer->note_anomaly(obs::TraceAnomaly::kException);
    }
    // finish() is what guarantees anomaly retention: it runs whether the
    // datagram served cleanly, threw, or was dropped as unparseable.
    if (tracer != nullptr) tracer->finish();
  }
  // One shared-counter flush per drained batch, not per datagram: the
  // tracer coalesced the whole batch's latency observations locally.
  if (tracer != nullptr) tracer->flush_observations();
  const UdpSocket::SendBatchResult sent = socket.send_batch(batch);
  if (sent.errors != 0) {
    metrics.send_errors->add(sent.errors);
    if (config_.recorder != nullptr) {
      // Send errors surface only after the per-datagram traces closed, so
      // retention is via a synthesized record: one per flush, carrying
      // the errno and the refused-datagram count.
      obs::TraceRecord record;
      record.ts_us = obs::QueryLog::now_us();
      record.worker = static_cast<std::uint32_t>(worker);
      record.anomalies = obs::TraceAnomaly::kSendError;
      record.span_count = 1;
      record.spans[0].stage = obs::TraceStage::tx;
      record.spans[0].code = sent.last_errno;
      record.spans[0].value = static_cast<std::int64_t>(sent.errors);
      record.spans[0].set_detail("send_batch refused datagrams");
      config_.recorder->commit(record);
    }
  }
  serve_latency_->record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            received_at)
          .count()));
  return true;
}

void UdpAuthorityServer::serve_datagram(UdpBatch& batch, std::size_t index,
                                        std::size_t worker, std::uint64_t version,
                                        AnswerCache* cache, obs::QueryTracer* tracer) {
  const std::span<const std::uint8_t> datagram = batch.datagram(index);
  const UdpEndpoint peer = batch.peer(index);
  WorkerMetrics& metrics = worker_metrics_[worker];
  if (obs::TraceSpan* rx = tracer != nullptr ? tracer->span(obs::TraceStage::rx) : nullptr) {
    rx->value = static_cast<std::int64_t>(datagram.size());
  }
  if (batch.rx_truncated(index)) {
    // The query overflowed the arena slot; anything we parsed would be a
    // fragment, so drop it as unparseable.
    metrics.wire_errors->add();
    return;
  }
  std::optional<QueryProbe> probe;
  if (cache != nullptr) {
    probe = QueryProbe::parse(datagram);
    if (probe) {
      if (tracer != nullptr) tracer->set_qname_wire(probe->qname);
      if (const AnswerCache::Entry* hit = cache->find(*probe, version)) {
        std::vector<std::uint8_t>& wire = batch.stage(peer);
        cache->render(*hit, *probe, wire);
        metrics.queries->add();
        metrics.cache_hits->add();
        if (tracer != nullptr) {
          if (obs::TraceSpan* span = tracer->span(obs::TraceStage::cache_probe)) {
            span->code = 1;
            span->value = static_cast<std::int64_t>(version);
            span->set_detail("hit");
          }
          if (obs::TraceSpan* span = tracer->span(obs::TraceStage::tx)) {
            span->value = static_cast<std::int64_t>(wire.size());
          }
        }
        return;
      }
      metrics.cache_misses->add();
      if (obs::TraceSpan* span =
              tracer != nullptr ? tracer->span(obs::TraceStage::cache_probe) : nullptr) {
        span->code = 0;
        span->value = static_cast<std::int64_t>(version);
        span->set_detail("miss");
      }
    } else if (obs::TraceSpan* span =
                   tracer != nullptr ? tracer->span(obs::TraceStage::cache_probe) : nullptr) {
      span->code = -1;
      span->set_detail("unprobeable");
    }
  }
  dns::Message response;
  try {
    const dns::Message query = dns::Message::decode(datagram);
    if (tracer != nullptr && !probe && !query.questions.empty()) {
      tracer->set_qname_text(query.questions.front().name.to_string());
    }
    response = engine_->handle(query, net::IpAddr{peer.address});
    metrics.queries->add();
    // RFC 1035 / RFC 6891 size discipline: a response larger than the
    // requester's advertised UDP payload (512 octets without EDNS) is
    // truncated — DNS sections dropped and TC set so the client retries
    // over a bigger channel. RFC 6891 §6.2.3: advertised sizes below 512
    // are treated as exactly 512, so a client advertising 0 or 100
    // octets cannot force nonsensical truncation. The OPT pseudo-record
    // (Message::edns) is NOT a droppable section: RFC 6891 §7 / RFC 7871
    // §7.2.2 require the TC=1 response to keep it so the client still
    // learns our payload limit and the answer's ECS scope.
    std::vector<std::uint8_t> wire = response.encode();
    const std::size_t limit = effective_udp_payload_limit(
        query.edns.has_value(), query.edns ? query.edns->udp_payload_size : 0);
    if (wire.size() > limit) {
      response.answers.clear();
      response.authorities.clear();
      response.additionals.clear();
      response.header.truncated = true;
      metrics.truncated->add();
      wire = response.encode();
    }
    if (cache != nullptr && probe) cache->store(*probe, version, wire);
    if (obs::TraceSpan* span =
            tracer != nullptr ? tracer->span(obs::TraceStage::tx) : nullptr) {
      span->value = static_cast<std::int64_t>(wire.size());
    }
    batch.stage(peer) = std::move(wire);
    return;
  } catch (const dns::WireError&) {
    // Unparseable datagram: best-effort FORMERR if we can extract an id.
    metrics.wire_errors->add();
    if (datagram.size() < 2) return;  // too short even for an id; drop
    response.header.id = static_cast<std::uint16_t>((datagram[0] << 8) | datagram[1]);
    response.header.is_response = true;
    response.header.rcode = dns::Rcode::form_err;
  }
  std::vector<std::uint8_t>& wire = batch.stage(peer);
  wire = response.encode();
  if (obs::TraceSpan* span = tracer != nullptr ? tracer->span(obs::TraceStage::tx) : nullptr) {
    span->code = static_cast<std::int32_t>(response.header.rcode);
    span->value = static_cast<std::int64_t>(wire.size());
    span->set_detail("formerr");
  }
}

void UdpAuthorityServer::serve_until(const std::atomic<bool>& stop) {
  using namespace std::chrono_literals;
  while (!stop.load(std::memory_order_relaxed)) {
    serve_once(50ms);
  }
}

UdpServerStats UdpAuthorityServer::stats() const {
  UdpServerStats snapshot;
  snapshot.per_worker.resize(worker_metrics_.size());
  snapshot.per_worker_truncated.resize(worker_metrics_.size());
  snapshot.per_worker_wire_errors.resize(worker_metrics_.size());
  snapshot.per_worker_send_errors.resize(worker_metrics_.size());
  snapshot.per_worker_kernel_drops.resize(worker_metrics_.size());
  snapshot.per_worker_cache_hits.resize(worker_metrics_.size());
  snapshot.per_worker_cache_misses.resize(worker_metrics_.size());
  for (std::size_t w = 0; w < worker_metrics_.size(); ++w) {
    snapshot.per_worker[w] = worker_metrics_[w].queries->value();
    snapshot.per_worker_truncated[w] = worker_metrics_[w].truncated->value();
    snapshot.per_worker_wire_errors[w] = worker_metrics_[w].wire_errors->value();
    snapshot.per_worker_send_errors[w] = worker_metrics_[w].send_errors->value();
    snapshot.per_worker_kernel_drops[w] = worker_metrics_[w].kernel_drops->value();
    snapshot.per_worker_cache_hits[w] = worker_metrics_[w].cache_hits->value();
    snapshot.per_worker_cache_misses[w] = worker_metrics_[w].cache_misses->value();
    snapshot.queries += snapshot.per_worker[w];
    snapshot.truncated += snapshot.per_worker_truncated[w];
    snapshot.wire_errors += snapshot.per_worker_wire_errors[w];
    snapshot.send_errors += snapshot.per_worker_send_errors[w];
    snapshot.kernel_drops += snapshot.per_worker_kernel_drops[w];
    snapshot.cache_hits += snapshot.per_worker_cache_hits[w];
    snapshot.cache_misses += snapshot.per_worker_cache_misses[w];
    snapshot.worker_exceptions += worker_metrics_[w].worker_exceptions->value();
  }
  return snapshot;
}

void UdpAuthorityServer::reset_stats() {
  for (const WorkerMetrics& metrics : worker_metrics_) {
    metrics.queries->reset();
    metrics.truncated->reset();
    metrics.wire_errors->reset();
    metrics.send_errors->reset();
    metrics.kernel_drops->reset();
    metrics.cache_hits->reset();
    metrics.cache_misses->reset();
    metrics.worker_exceptions->reset();
  }
  serve_latency_->reset();
  rx_batch_size_->reset();
}

UdpDnsClient::UdpDnsClient() : socket_(UdpEndpoint{net::IpV4Addr{127, 0, 0, 1}, 0}) {}

std::optional<dns::Message> UdpDnsClient::query(const dns::Message& query_msg,
                                                const UdpEndpoint& server,
                                                std::chrono::milliseconds timeout) {
  socket_.send_to(query_msg.encode(), server);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return std::nullopt;
    UdpEndpoint peer;
    const auto datagram = socket_.receive(remaining, peer);
    if (!datagram) return std::nullopt;
    try {
      dns::Message response = dns::Message::decode(*datagram);
      if (response.header.id == query_msg.header.id && response.header.is_response) {
        return response;
      }
    } catch (const dns::WireError&) {
      // Ignore malformed datagrams and keep waiting until the deadline.
    }
  }
}

UdpUpstream::UdpUpstream(UdpEndpoint server, std::chrono::milliseconds timeout)
    : server_(server), timeout_(timeout) {
  if (timeout_.count() <= 0) {
    throw std::invalid_argument{"UdpUpstream: timeout must be positive"};
  }
}

std::optional<dns::Message> UdpUpstream::try_forward(const dns::Message& query,
                                                     const net::IpAddr& source) {
  (void)source;  // the kernel stamps the real source address
  UdpDnsClient client;
  return client.query(query, server_, timeout_);
}

Upstream::ForwardToResult UdpUpstream::try_forward_to(const net::IpAddr& server,
                                                      const dns::Message& query,
                                                      const net::IpAddr& source) {
  if (!server.is_v4() || server.v4().value() != server_.address.value()) {
    return ForwardToResult{std::nullopt, false};
  }
  return ForwardToResult{try_forward(query, source), true};
}

dns::Message UdpUpstream::forward(const dns::Message& query, const net::IpAddr& source) {
  if (auto response = try_forward(query, source)) return std::move(*response);
  dns::Message failure = dns::Message::make_response(query);
  failure.header.rcode = dns::Rcode::serv_fail;
  return failure;
}

}  // namespace eum::dnsserver
