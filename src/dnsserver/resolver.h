// ECS-aware recursive resolver (the paper's LDNS).
//
// The LDNS sits between clients and the CDN's authoritative name servers
// (paper §2, Figure 3/4). With end-user mapping it forwards a /x prefix
// of the client's IP in an EDNS0 client-subnet option and must cache the
// answer per scope block — which is precisely what multiplies the query
// rate seen by the authorities (§5.2, Figures 23/24). The cache is the
// sharded RFC 7871 §7.3 scoped cache in scoped_cache.h: lookups key on
// the ECS address (the forwarded client subnet when present, per
// §7.1.1 — never the bare connection address), prefer the longest
// matching scope, and evict per-shard LRU under pressure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "dns/message.h"
#include "dnsserver/authoritative.h"
#include "dnsserver/scoped_cache.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "stats/table.h"
#include "util/sim_clock.h"

namespace eum::dnsserver {

/// Where the resolver forwards cache misses. Implementations route the
/// query to the correct authority (in-memory bus, UDP, or the simulator).
class Upstream {
 public:
  virtual ~Upstream() = default;
  /// Forward `query` on behalf of resolver `source`; returns the response.
  [[nodiscard]] virtual dns::Message forward(const dns::Message& query,
                                             const net::IpAddr& source) = 0;
  /// Forward `query` to a specific nameserver address (used to chase
  /// delegations). Implementations without addressable servers return
  /// nullopt and the resolver keeps the referral response.
  [[nodiscard]] virtual std::optional<dns::Message> forward_to(const net::IpAddr& server,
                                                               const dns::Message& query,
                                                               const net::IpAddr& source) {
    (void)server;
    (void)query;
    (void)source;
    return std::nullopt;
  }
};

struct ResolverConfig {
  /// Send ECS upstream (public resolvers: yes; most ISP resolvers in the
  /// paper's period: no).
  bool ecs_enabled = false;
  /// Source prefix length announced upstream; /24 is the norm the paper
  /// describes, and longer prefixes are "discouraged to retain client's
  /// privacy" (§2.1 footnote 4).
  int ecs_source_len = 24;
  int ecs_source_len_v6 = 56;
  /// Clamp on cached TTLs, seconds.
  std::uint32_t max_ttl = 86400;
  /// TTL for cached negative answers, seconds.
  std::uint32_t negative_ttl = 30;
  /// Cache capacity in entries (scoped answers count individually).
  std::size_t max_cache_entries = 1 << 20;
  /// Independently-locked cache shards (rounded up to a power of two).
  std::size_t cache_shards = 8;
  /// Registry for eum_resolver_* metrics (borrowed; must outlive the
  /// resolver). The scoped cache shares it. nullptr = private registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Counter snapshot — a thin view over the resolver's registry counters
/// merged with the cache's.
struct ResolverStats {
  std::uint64_t client_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t referrals_followed = 0;
  std::uint64_t cache_evictions = 0;     ///< LRU pressure evictions
  std::uint64_t cache_expirations = 0;   ///< TTL-expired entries reaped
  std::uint64_t scoped_hits = 0;         ///< hits served by a scoped entry
  std::uint64_t scope_depth_total = 0;   ///< sum of matched scope lengths
  /// Mean matched scope length over scoped hits (0 when none).
  [[nodiscard]] double mean_scope_depth() const noexcept {
    return scoped_hits == 0 ? 0.0
                            : static_cast<double>(scope_depth_total) /
                                  static_cast<double>(scoped_hits);
  }
};

/// Render resolver counters as a two-column table for benches/examples.
[[nodiscard]] stats::Table resolver_stats_table(const ResolverStats& stats);

class RecursiveResolver {
 public:
  /// `clock` and `upstream` are borrowed and must outlive the resolver.
  RecursiveResolver(ResolverConfig config, const util::SimClock* clock, Upstream* upstream,
                    net::IpAddr own_address);

  /// Resolve a client query arriving from `client_addr`. Serves from the
  /// scoped cache when possible; otherwise queries upstream (attaching ECS
  /// when enabled), chasing CNAMEs across authorities.
  [[nodiscard]] dns::Message resolve(const dns::Message& client_query,
                                     const net::IpAddr& client_addr);

  /// Counter snapshot (resolver counters merged with the cache's own).
  [[nodiscard]] ResolverStats stats() const noexcept;

  /// Reset contract (shared with the authority and UDP front end): zero
  /// every monotonic metric stats() reports — the resolver's counters,
  /// its resolve-latency histogram, AND the cache's merged counters —
  /// in one call. Live state (cached entries, entry gauges) survives.
  void reset_stats() noexcept;

  /// Attach a structured query log (borrowed): one record per client
  /// query, with the cache outcome as the answer source.
  void set_query_log(obs::QueryLog* log) noexcept { query_log_ = log; }

  /// Record resolve() serving latency (on by default).
  void set_latency_tracking(bool enabled) noexcept { latency_tracking_ = enabled; }

  /// The registry this resolver (and its cache) records into.
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return *registry_; }

  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }
  [[nodiscard]] const ScopedEcsCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const net::IpAddr& address() const noexcept { return own_address_; }
  [[nodiscard]] const ResolverConfig& config() const noexcept { return config_; }

  /// Hook invoked with the qname of every upstream query (Fig 24 analysis).
  std::function<void(const dns::DnsName&)> on_upstream_query;

  /// Drop every cached entry.
  void flush_cache() noexcept { cache_.clear(); }

 private:
  /// One upstream round for (name, type), with optional ECS. Returns the
  /// response and caches it.
  [[nodiscard]] dns::Message query_upstream(const dns::DnsName& name, dns::RecordType type,
                                            const std::optional<net::IpAddr>& ecs_client);
  [[nodiscard]] dns::Message resolve_inner(const dns::Message& client_query,
                                           const net::IpAddr& client_addr,
                                           obs::AnswerSource& answer_source);

  ResolverConfig config_;
  const util::SimClock* clock_;
  Upstream* upstream_;
  net::IpAddr own_address_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;  ///< when none injected
  obs::MetricsRegistry* registry_;
  obs::Counter* client_queries_;
  obs::Counter* upstream_queries_;
  obs::Counter* referrals_followed_;
  obs::LatencyHistogram* resolve_latency_;
  obs::QueryLog* query_log_ = nullptr;
  bool latency_tracking_ = true;
  ScopedEcsCache cache_;
  std::uint16_t next_id_ = 1;
};

}  // namespace eum::dnsserver
