// ECS-aware recursive resolver (the paper's LDNS).
//
// The LDNS sits between clients and the CDN's authoritative name servers
// (paper §2, Figure 3/4). With end-user mapping it forwards a /x prefix
// of the client's IP in an EDNS0 client-subnet option and must cache the
// answer per scope block — which is precisely what multiplies the query
// rate seen by the authorities (§5.2, Figures 23/24). The cache is the
// sharded RFC 7871 §7.3 scoped cache in scoped_cache.h: lookups key on
// the ECS address (the forwarded client subnet when present, per
// §7.1.1 — never the bare connection address), prefer the longest
// matching scope, and evict per-shard LRU under pressure.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "dns/message.h"
#include "dnsserver/authoritative.h"
#include "dnsserver/scoped_cache.h"
#include "stats/table.h"
#include "util/sim_clock.h"

namespace eum::dnsserver {

/// Where the resolver forwards cache misses. Implementations route the
/// query to the correct authority (in-memory bus, UDP, or the simulator).
class Upstream {
 public:
  virtual ~Upstream() = default;
  /// Forward `query` on behalf of resolver `source`; returns the response.
  [[nodiscard]] virtual dns::Message forward(const dns::Message& query,
                                             const net::IpAddr& source) = 0;
  /// Forward `query` to a specific nameserver address (used to chase
  /// delegations). Implementations without addressable servers return
  /// nullopt and the resolver keeps the referral response.
  [[nodiscard]] virtual std::optional<dns::Message> forward_to(const net::IpAddr& server,
                                                               const dns::Message& query,
                                                               const net::IpAddr& source) {
    (void)server;
    (void)query;
    (void)source;
    return std::nullopt;
  }
};

struct ResolverConfig {
  /// Send ECS upstream (public resolvers: yes; most ISP resolvers in the
  /// paper's period: no).
  bool ecs_enabled = false;
  /// Source prefix length announced upstream; /24 is the norm the paper
  /// describes, and longer prefixes are "discouraged to retain client's
  /// privacy" (§2.1 footnote 4).
  int ecs_source_len = 24;
  int ecs_source_len_v6 = 56;
  /// Clamp on cached TTLs, seconds.
  std::uint32_t max_ttl = 86400;
  /// TTL for cached negative answers, seconds.
  std::uint32_t negative_ttl = 30;
  /// Cache capacity in entries (scoped answers count individually).
  std::size_t max_cache_entries = 1 << 20;
  /// Independently-locked cache shards (rounded up to a power of two).
  std::size_t cache_shards = 8;
};

struct ResolverStats {
  std::uint64_t client_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t referrals_followed = 0;
  std::uint64_t cache_evictions = 0;     ///< LRU pressure evictions
  std::uint64_t cache_expirations = 0;   ///< TTL-expired entries reaped
  std::uint64_t scoped_hits = 0;         ///< hits served by a scoped entry
  std::uint64_t scope_depth_total = 0;   ///< sum of matched scope lengths
  /// Mean matched scope length over scoped hits (0 when none).
  [[nodiscard]] double mean_scope_depth() const noexcept {
    return scoped_hits == 0 ? 0.0
                            : static_cast<double>(scope_depth_total) /
                                  static_cast<double>(scoped_hits);
  }
};

/// Render resolver counters as a two-column table for benches/examples.
[[nodiscard]] stats::Table resolver_stats_table(const ResolverStats& stats);

class RecursiveResolver {
 public:
  /// `clock` and `upstream` are borrowed and must outlive the resolver.
  RecursiveResolver(ResolverConfig config, const util::SimClock* clock, Upstream* upstream,
                    net::IpAddr own_address);

  /// Resolve a client query arriving from `client_addr`. Serves from the
  /// scoped cache when possible; otherwise queries upstream (attaching ECS
  /// when enabled), chasing CNAMEs across authorities.
  [[nodiscard]] dns::Message resolve(const dns::Message& client_query,
                                     const net::IpAddr& client_addr);

  /// Counter snapshot (resolver counters merged with the cache's own).
  [[nodiscard]] ResolverStats stats() const noexcept;
  void reset_stats() noexcept;
  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }
  [[nodiscard]] const ScopedEcsCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const net::IpAddr& address() const noexcept { return own_address_; }
  [[nodiscard]] const ResolverConfig& config() const noexcept { return config_; }

  /// Hook invoked with the qname of every upstream query (Fig 24 analysis).
  std::function<void(const dns::DnsName&)> on_upstream_query;

  /// Drop every cached entry.
  void flush_cache() noexcept { cache_.clear(); }

 private:
  /// One upstream round for (name, type), with optional ECS. Returns the
  /// response and caches it.
  [[nodiscard]] dns::Message query_upstream(const dns::DnsName& name, dns::RecordType type,
                                            const std::optional<net::IpAddr>& ecs_client);

  ResolverConfig config_;
  const util::SimClock* clock_;
  Upstream* upstream_;
  net::IpAddr own_address_;
  ResolverStats stats_;
  ScopedEcsCache cache_;
  std::uint16_t next_id_ = 1;
};

}  // namespace eum::dnsserver
