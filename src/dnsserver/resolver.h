// ECS-aware recursive resolver (the paper's LDNS).
//
// The LDNS sits between clients and the CDN's authoritative name servers
// (paper §2, Figure 3/4). With end-user mapping it forwards a /x prefix
// of the client's IP in an EDNS0 client-subnet option and must cache the
// answer per scope block — which is precisely what multiplies the query
// rate seen by the authorities (§5.2, Figures 23/24). The cache is the
// sharded RFC 7871 §7.3 scoped cache in scoped_cache.h: lookups key on
// the ECS address (the forwarded client subnet when present, per
// §7.1.1 — never the bare connection address), prefer the longest
// matching scope, and evict per-shard LRU under pressure.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "dnsserver/authoritative.h"
#include "dnsserver/scoped_cache.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "stats/table.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace eum::dnsserver {

/// Where the resolver forwards cache misses. Implementations route the
/// query to the correct authority (in-memory bus, UDP, or the simulator).
///
/// Two tiers: the legacy `forward`/`forward_to` pair is infallible-ish
/// (loss is invisible), and the `try_*` pair makes failure explicit —
/// nullopt means the query or its response was lost (drop, timeout,
/// unparseable wire) and the attempt is retryable. The defaults adapt
/// either tier onto the other, so existing transports keep working and
/// failure-aware ones (FaultInjector, UdpUpstream) override `try_*`.
class Upstream {
 public:
  virtual ~Upstream() = default;
  /// Forward `query` on behalf of resolver `source`; returns the response.
  [[nodiscard]] virtual dns::Message forward(const dns::Message& query,
                                             const net::IpAddr& source) = 0;
  /// Forward `query` to a specific nameserver address (used to chase
  /// delegations). Implementations without addressable servers return
  /// nullopt and the resolver keeps the referral response.
  [[nodiscard]] virtual std::optional<dns::Message> forward_to(const net::IpAddr& server,
                                                               const dns::Message& query,
                                                               const net::IpAddr& source) {
    (void)server;
    (void)query;
    (void)source;
    return std::nullopt;
  }

  /// Failure-aware forward: nullopt = the attempt failed (dropped or
  /// timed out) and may be retried.
  [[nodiscard]] virtual std::optional<dns::Message> try_forward(const dns::Message& query,
                                                                const net::IpAddr& source) {
    return forward(query, source);
  }

  struct ForwardToResult {
    /// nullopt with `addressable` = the attempt failed (retryable).
    std::optional<dns::Message> response;
    /// false: the transport has no route to this nameserver at all — the
    /// resolver keeps the referral instead of retrying (the legacy
    /// forward_to-returns-nullopt semantics).
    bool addressable = true;
  };

  /// Failure-aware forward_to; see ForwardToResult for the distinction
  /// between a lost query and an unaddressable server.
  [[nodiscard]] virtual ForwardToResult try_forward_to(const net::IpAddr& server,
                                                       const dns::Message& query,
                                                       const net::IpAddr& source) {
    auto response = forward_to(server, query, source);
    const bool addressable = response.has_value();
    return ForwardToResult{std::move(response), addressable};
  }
};

/// Upstream retry policy: `attempts` bounds the queries sent per
/// resolution round (first try included), with exponential backoff and
/// uniform jitter between attempts against the same server. Failing over
/// to a *different* nameserver (delegation chasing) is immediate.
struct RetryPolicy {
  int attempts = 3;
  std::chrono::microseconds backoff_initial{2000};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds backoff_max{200000};
  /// Jitter fraction: each sleep is drawn uniformly from
  /// [backoff*(1-jitter), backoff*(1+jitter)] so synchronized resolvers
  /// don't re-stampede a recovering authority in lockstep.
  double jitter = 0.5;
};

struct ResolverConfig {
  /// Send ECS upstream (public resolvers: yes; most ISP resolvers in the
  /// paper's period: no).
  bool ecs_enabled = false;
  /// Source prefix length announced upstream; /24 is the norm the paper
  /// describes, and longer prefixes are "discouraged to retain client's
  /// privacy" (§2.1 footnote 4).
  int ecs_source_len = 24;
  int ecs_source_len_v6 = 56;
  /// Clamp on cached TTLs, seconds.
  std::uint32_t max_ttl = 86400;
  /// TTL for cached negative answers, seconds.
  std::uint32_t negative_ttl = 30;
  /// Cache capacity in entries (scoped answers count individually).
  std::size_t max_cache_entries = 1 << 20;
  /// Independently-locked cache shards (rounded up to a power of two).
  std::size_t cache_shards = 8;
  /// Registry for eum_resolver_* metrics (borrowed; must outlive the
  /// resolver). The scoped cache shares it. nullptr = private registry.
  obs::MetricsRegistry* registry = nullptr;
  /// Retry/backoff policy for upstream attempts.
  RetryPolicy retry;
  /// RFC 8767 serve-stale: how long past expiry a cached answer may
  /// still be served when every upstream attempt fails, seconds. 0
  /// disables serve-stale entirely (expired entries are reaped on
  /// sight, the pre-existing behaviour).
  std::int64_t serve_stale_window = 0;
  /// TTL stamped on answers served stale (RFC 8767 §4 recommends 30s so
  /// clients re-ask soon after the authority recovers).
  std::uint32_t stale_answer_ttl = 30;
  /// Seed for retry backoff jitter (deterministic per resolver).
  std::uint64_t retry_seed = 0x5EED4E7;
};

/// Counter snapshot — a thin view over the resolver's registry counters
/// merged with the cache's.
struct ResolverStats {
  std::uint64_t client_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t referrals_followed = 0;
  std::uint64_t retries = 0;             ///< upstream attempts beyond the first
  std::uint64_t upstream_failures = 0;   ///< attempts lost/unusable
  std::uint64_t stale_served = 0;        ///< RFC 8767 answers from expired entries
  std::uint64_t cache_evictions = 0;     ///< LRU pressure evictions
  std::uint64_t cache_expirations = 0;   ///< TTL-expired entries reaped
  std::uint64_t scoped_hits = 0;         ///< hits served by a scoped entry
  std::uint64_t scope_depth_total = 0;   ///< sum of matched scope lengths
  /// Mean matched scope length over scoped hits (0 when none).
  [[nodiscard]] double mean_scope_depth() const noexcept {
    return scoped_hits == 0 ? 0.0
                            : static_cast<double>(scope_depth_total) /
                                  static_cast<double>(scoped_hits);
  }
};

/// Render resolver counters as a two-column table for benches/examples.
[[nodiscard]] stats::Table resolver_stats_table(const ResolverStats& stats);

class RecursiveResolver {
 public:
  /// `clock` and `upstream` are borrowed and must outlive the resolver.
  RecursiveResolver(ResolverConfig config, const util::SimClock* clock, Upstream* upstream,
                    net::IpAddr own_address);

  /// Resolve a client query arriving from `client_addr`. Serves from the
  /// scoped cache when possible; otherwise queries upstream (attaching ECS
  /// when enabled), chasing CNAMEs across authorities.
  [[nodiscard]] dns::Message resolve(const dns::Message& client_query,
                                     const net::IpAddr& client_addr);

  /// Counter snapshot (resolver counters merged with the cache's own).
  [[nodiscard]] ResolverStats stats() const noexcept;

  /// Reset contract (shared with the authority and UDP front end): zero
  /// every monotonic metric stats() reports — the resolver's counters,
  /// its resolve-latency histogram, AND the cache's merged counters —
  /// in one call. Live state (cached entries, entry gauges) survives.
  void reset_stats() noexcept;

  /// Attach a structured query log (borrowed): one record per client
  /// query, with the cache outcome as the answer source.
  void set_query_log(obs::QueryLog* log) noexcept { query_log_ = log; }

  /// Record resolve() serving latency (on by default).
  void set_latency_tracking(bool enabled) noexcept { latency_tracking_ = enabled; }

  /// The registry this resolver (and its cache) records into.
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return *registry_; }

  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }
  [[nodiscard]] const ScopedEcsCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const net::IpAddr& address() const noexcept { return own_address_; }
  [[nodiscard]] const ResolverConfig& config() const noexcept { return config_; }

  /// Smoothed RTT estimate for a delegated nameserver, microseconds;
  /// 0 when the server has never been tried.
  [[nodiscard]] double srtt_us(const net::IpAddr& server) const;

  /// Hook invoked with the qname of every upstream query (Fig 24 analysis).
  std::function<void(const dns::DnsName&)> on_upstream_query;

  /// Drop every cached entry.
  void flush_cache() noexcept { cache_.clear(); }

 private:
  /// Per-nameserver smoothed RTT (TCP-style EWMA, alpha = 1/8) plus its
  /// exported gauge. A failed attempt doubles the estimate so the next
  /// ordering prefers live siblings; an untried server keeps SRTT 0 and
  /// therefore sorts first (explore before exploit).
  struct SrttEntry {
    double srtt_us = 0.0;
    obs::Gauge* gauge = nullptr;
  };

  /// One upstream round for (name, type), with optional ECS. Returns the
  /// response and caches it; on total upstream failure falls back to a
  /// stale cache entry (`served_stale` reports that) or SERVFAIL.
  [[nodiscard]] dns::Message query_upstream(const dns::DnsName& name, dns::RecordType type,
                                            const std::optional<net::IpAddr>& ecs_client,
                                            const net::IpAddr& lookup_addr, bool& served_stale);
  [[nodiscard]] dns::Message resolve_inner(const dns::Message& client_query,
                                           const net::IpAddr& client_addr,
                                           obs::AnswerSource& answer_source);

  /// forward() with the retry policy applied; nullopt = every attempt
  /// failed. `retried` is set when any attempt beyond the first ran.
  [[nodiscard]] std::optional<dns::Message> forward_with_retries(dns::Message& query,
                                                                 const dns::DnsName& name,
                                                                 bool& retried);
  /// forward_to() over the glue candidates in SRTT order, immediate
  /// failover across servers, backoff when re-trying the same one.
  /// `unaddressable` = the transport could route to none of them (the
  /// caller keeps the referral).
  [[nodiscard]] std::optional<dns::Message> forward_to_with_retries(
      std::vector<net::IpAddr> candidates, dns::Message& query, const dns::DnsName& name,
      bool& retried, bool& unaddressable);

  /// Whether a response can be trusted for this query: the ID must echo
  /// (corrupt/spoofed wire fails here), TC=1 and SERVFAIL are retryable.
  [[nodiscard]] static bool response_usable(const dns::Message& query,
                                            const dns::Message& response) noexcept;

  [[nodiscard]] std::uint16_t next_query_id() noexcept {
    // uint16 wrap is intended: ID 0 is legal and issued once per 65536.
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void backoff_sleep(int round);
  void record_srtt(const net::IpAddr& server, double sample_us, bool success);
  [[nodiscard]] std::vector<net::IpAddr> order_by_srtt(std::vector<net::IpAddr> candidates) const;

  ResolverConfig config_;
  const util::SimClock* clock_;
  Upstream* upstream_;
  net::IpAddr own_address_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;  ///< when none injected
  obs::MetricsRegistry* registry_;
  obs::Counter* client_queries_;
  obs::Counter* upstream_queries_;
  obs::Counter* referrals_followed_;
  obs::Counter* retries_;
  obs::Counter* upstream_failures_;
  obs::Counter* stale_served_;
  obs::LatencyHistogram* resolve_latency_;
  obs::LatencyHistogram* retry_latency_;
  obs::QueryLog* query_log_ = nullptr;
  bool latency_tracking_ = true;
  ScopedEcsCache cache_;
  std::atomic<std::uint16_t> next_id_{1};
  mutable std::mutex srtt_mutex_;
  std::unordered_map<std::string, SrttEntry> srtt_;
  std::mutex rng_mutex_;
  util::Rng rng_;
};

}  // namespace eum::dnsserver
