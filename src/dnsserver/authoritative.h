// Authoritative name server engine.
//
// This is the paper's "name server" component (§2.2, part 3): it answers
// queries for Akamai-hosted domains, and for dynamic (CDN) domains it
// consults the mapping system with either the resolver identity (NS-based
// mapping) or the ECS client block (end-user mapping), returning A records
// and an ECS scope. The engine is transport-agnostic: `handle()` maps one
// request message to one response message.
//
// Telemetry lives in an obs::MetricsRegistry (eum_authority_* counters
// plus the eum_authority_handle_latency_us histogram); pass one in to
// share it across components — the default is a private registry. The
// AuthServerStats struct remains as a thin snapshot view over the
// registry so existing callers keep working.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dnsserver/zone.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace eum::dnsserver {

/// What the dynamic-answer hook (the mapping system) sees per query.
struct DynamicQuery {
  dns::DnsName qname;
  dns::RecordType qtype = dns::RecordType::A;
  net::IpAddr resolver;                  ///< unicast address of the querying LDNS
  std::optional<net::IpPrefix> client_block;  ///< ECS source block, if present
  /// The address this query arrived at. In the paper's two-tier name
  /// server hierarchy a low-level server's own address identifies which
  /// cluster's delegation it is answering for.
  net::IpAddr server_address;
};

/// One entry of a dynamic referral: a delegated nameserver plus its glue.
struct DynamicReferral {
  dns::DnsName nameserver;
  net::IpAddr glue;
};

/// What the hook returns.
struct DynamicAnswer {
  std::vector<net::IpAddr> addresses;  ///< >= 2 in production practice
  std::uint32_t ttl = 20;
  /// Scope the answer is valid for when the query carried ECS. The paper's
  /// name servers may answer "for a /y prefix of the client's IP where
  /// y <= x" (§2.1); /0 makes the answer client-independent.
  int ecs_scope_len = 24;
  /// When non-empty, the response is a referral instead of an answer:
  /// NS records (owner = the dynamic suffix) plus A glue — the paper's
  /// top-level delegation implementing the global load balancer's cluster
  /// choice (§2.2 part 3).
  std::vector<DynamicReferral> referral;
};

using DynamicAnswerFn = std::function<std::optional<DynamicAnswer>(const DynamicQuery&)>;

/// Query counter snapshot (feeds the Figure 23 analysis). A thin view
/// over the engine's registry counters.
struct AuthServerStats {
  std::uint64_t queries = 0;
  std::uint64_t queries_with_ecs = 0;
  std::uint64_t dynamic_answers = 0;
  std::uint64_t referrals = 0;
  std::uint64_t static_answers = 0;
  std::uint64_t negative_answers = 0;
  std::uint64_t refused = 0;
  std::uint64_t form_errors = 0;
};

class AuthoritativeServer {
 public:
  /// `registry` is borrowed and must outlive the server; nullptr gives
  /// the engine a private registry (reachable via registry()).
  explicit AuthoritativeServer(obs::MetricsRegistry* registry = nullptr);

  /// Register static zone data.
  void add_zone(Zone zone);

  /// Register a dynamic domain: queries for names at/below `suffix` are
  /// answered by `handler`. Dynamic domains take precedence over zones.
  void add_dynamic_domain(dns::DnsName suffix, DynamicAnswerFn handler);

  /// Whether to honour ECS in queries (mirrors the staged roll-out: the
  /// server accepted ECS before end-user mapping was enabled per domain).
  void set_ecs_enabled(bool enabled) noexcept { ecs_enabled_ = enabled; }

  /// Record per-query serving latency into the handle-latency histogram
  /// (on by default). The microbench measures the instrumented vs.
  /// uninstrumented delta; counters stay on either way — they are single
  /// relaxed atomics.
  void set_latency_tracking(bool enabled) noexcept { latency_tracking_ = enabled; }

  /// Time one in every `every` queries for the latency histogram (the
  /// first query is always timed). handle() itself is only a few hundred
  /// nanoseconds, so reading the clock twice per query would dominate the
  /// instrumentation cost; sampling keeps the steady-state overhead below
  /// a branch and one relaxed load (the tick is the queries counter the
  /// engine already bumps) while the percentiles stay faithful at
  /// serving volume. Rounded up to a power of two; query-log sampled
  /// queries are always timed so their records carry real latencies
  /// regardless of this setting.
  void set_latency_sampling(std::uint32_t every) noexcept {
    std::uint32_t pow2 = 1;
    while (pow2 < every && pow2 < (1u << 30)) pow2 <<= 1;
    latency_sample_mask_ = pow2 - 1;
  }

  static constexpr std::uint32_t kDefaultLatencySampleEvery = 16;

  /// Attach a structured query log (borrowed; may be shared with other
  /// components). Sampling is the log's own concern — unsampled queries
  /// skip all record-building work.
  void set_query_log(obs::QueryLog* log) noexcept { query_log_ = log; }

  /// The registry this engine records into (its own unless one was
  /// injected). Exposition formats hang off the registry.
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return *registry_; }

  /// Answer one query arriving from `source` (the LDNS unicast address).
  /// `server_address` is the address the query was received on (passed to
  /// dynamic handlers; defaults to unspecified). Safe to call from many
  /// threads concurrently provided registration (add_zone /
  /// add_dynamic_domain / set_ecs_enabled / set_query_log) has finished
  /// and the dynamic handlers themselves are thread-safe — counters and
  /// histograms are wait-free relaxed atomics so the multithreaded UDP
  /// front end stays race-free.
  [[nodiscard]] dns::Message handle(const dns::Message& query, const net::IpAddr& source,
                                    const net::IpAddr& server_address = net::IpAddr{});

  [[nodiscard]] AuthServerStats stats() const noexcept;

  /// Reset contract (shared with the resolver and UDP front end): zero
  /// every monotonic metric this component's stats() view reports —
  /// counters and the handle-latency histogram — and nothing else.
  void reset_stats() noexcept;

 private:
  [[nodiscard]] dns::Message handle_inner(const dns::Message& query, const net::IpAddr& source,
                                          const net::IpAddr& server_address,
                                          obs::AnswerSource& answer_source);
  [[nodiscard]] const Zone* zone_for(const dns::DnsName& name) const noexcept;
  [[nodiscard]] std::pair<const dns::DnsName*, const DynamicAnswerFn*> dynamic_for(
      const dns::DnsName& name) const noexcept;

  std::vector<Zone> zones_;
  std::vector<std::pair<dns::DnsName, DynamicAnswerFn>> dynamic_domains_;
  bool ecs_enabled_ = true;
  bool latency_tracking_ = true;

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;  ///< when none injected
  obs::MetricsRegistry* registry_;
  obs::Counter* queries_;
  obs::Counter* queries_with_ecs_;
  obs::Counter* dynamic_answers_;
  obs::Counter* referrals_;
  obs::Counter* static_answers_;
  obs::Counter* negative_answers_;
  obs::Counter* refused_;
  obs::Counter* form_errors_;
  obs::LatencyHistogram* handle_latency_;
  obs::QueryLog* query_log_ = nullptr;
  std::uint32_t latency_sample_mask_ = kDefaultLatencySampleEvery - 1;
};

}  // namespace eum::dnsserver
