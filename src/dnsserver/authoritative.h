// Authoritative name server engine.
//
// This is the paper's "name server" component (§2.2, part 3): it answers
// queries for Akamai-hosted domains, and for dynamic (CDN) domains it
// consults the mapping system with either the resolver identity (NS-based
// mapping) or the ECS client block (end-user mapping), returning A records
// and an ECS scope. The engine is transport-agnostic: `handle()` maps one
// request message to one response message.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dnsserver/zone.h"

namespace eum::dnsserver {

/// What the dynamic-answer hook (the mapping system) sees per query.
struct DynamicQuery {
  dns::DnsName qname;
  dns::RecordType qtype = dns::RecordType::A;
  net::IpAddr resolver;                  ///< unicast address of the querying LDNS
  std::optional<net::IpPrefix> client_block;  ///< ECS source block, if present
  /// The address this query arrived at. In the paper's two-tier name
  /// server hierarchy a low-level server's own address identifies which
  /// cluster's delegation it is answering for.
  net::IpAddr server_address;
};

/// One entry of a dynamic referral: a delegated nameserver plus its glue.
struct DynamicReferral {
  dns::DnsName nameserver;
  net::IpAddr glue;
};

/// What the hook returns.
struct DynamicAnswer {
  std::vector<net::IpAddr> addresses;  ///< >= 2 in production practice
  std::uint32_t ttl = 20;
  /// Scope the answer is valid for when the query carried ECS. The paper's
  /// name servers may answer "for a /y prefix of the client's IP where
  /// y <= x" (§2.1); /0 makes the answer client-independent.
  int ecs_scope_len = 24;
  /// When non-empty, the response is a referral instead of an answer:
  /// NS records (owner = the dynamic suffix) plus A glue — the paper's
  /// top-level delegation implementing the global load balancer's cluster
  /// choice (§2.2 part 3).
  std::vector<DynamicReferral> referral;
};

using DynamicAnswerFn = std::function<std::optional<DynamicAnswer>(const DynamicQuery&)>;

/// Query counter snapshot (feeds the Figure 23 analysis).
struct AuthServerStats {
  std::uint64_t queries = 0;
  std::uint64_t queries_with_ecs = 0;
  std::uint64_t dynamic_answers = 0;
  std::uint64_t referrals = 0;
  std::uint64_t static_answers = 0;
  std::uint64_t negative_answers = 0;
  std::uint64_t refused = 0;
  std::uint64_t form_errors = 0;
};

class AuthoritativeServer {
 public:
  AuthoritativeServer() = default;

  /// Register static zone data.
  void add_zone(Zone zone);

  /// Register a dynamic domain: queries for names at/below `suffix` are
  /// answered by `handler`. Dynamic domains take precedence over zones.
  void add_dynamic_domain(dns::DnsName suffix, DynamicAnswerFn handler);

  /// Whether to honour ECS in queries (mirrors the staged roll-out: the
  /// server accepted ECS before end-user mapping was enabled per domain).
  void set_ecs_enabled(bool enabled) noexcept { ecs_enabled_ = enabled; }

  /// Answer one query arriving from `source` (the LDNS unicast address).
  /// `server_address` is the address the query was received on (passed to
  /// dynamic handlers; defaults to unspecified). Safe to call from many
  /// threads concurrently provided registration (add_zone /
  /// add_dynamic_domain / set_ecs_enabled) has finished and the dynamic
  /// handlers themselves are thread-safe — counters are relaxed atomics
  /// so the multithreaded UDP front end stays race-free.
  [[nodiscard]] dns::Message handle(const dns::Message& query, const net::IpAddr& source,
                                    const net::IpAddr& server_address = net::IpAddr{});

  [[nodiscard]] AuthServerStats stats() const noexcept;
  void reset_stats() noexcept;

 private:
  /// Counters a concurrent transport may bump from several threads.
  /// Copyable (relaxed snapshot) so the enclosing server stays movable.
  struct AtomicStats {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> queries_with_ecs{0};
    std::atomic<std::uint64_t> dynamic_answers{0};
    std::atomic<std::uint64_t> referrals{0};
    std::atomic<std::uint64_t> static_answers{0};
    std::atomic<std::uint64_t> negative_answers{0};
    std::atomic<std::uint64_t> refused{0};
    std::atomic<std::uint64_t> form_errors{0};

    AtomicStats() = default;
    AtomicStats(const AtomicStats& other) noexcept { *this = other; }
    AtomicStats& operator=(const AtomicStats& other) noexcept {
      queries = other.queries.load(std::memory_order_relaxed);
      queries_with_ecs = other.queries_with_ecs.load(std::memory_order_relaxed);
      dynamic_answers = other.dynamic_answers.load(std::memory_order_relaxed);
      referrals = other.referrals.load(std::memory_order_relaxed);
      static_answers = other.static_answers.load(std::memory_order_relaxed);
      negative_answers = other.negative_answers.load(std::memory_order_relaxed);
      refused = other.refused.load(std::memory_order_relaxed);
      form_errors = other.form_errors.load(std::memory_order_relaxed);
      return *this;
    }
  };

  [[nodiscard]] const Zone* zone_for(const dns::DnsName& name) const noexcept;
  [[nodiscard]] std::pair<const dns::DnsName*, const DynamicAnswerFn*> dynamic_for(
      const dns::DnsName& name) const noexcept;

  std::vector<Zone> zones_;
  std::vector<std::pair<dns::DnsName, DynamicAnswerFn>> dynamic_domains_;
  bool ecs_enabled_ = true;
  AtomicStats stats_;
};

}  // namespace eum::dnsserver
