// Wire-level answer cache for the UDP serve path.
//
// The paper's §5 (Fig. 23) shows end-user mapping multiplies the query
// rate an authoritative must absorb ~8x while ECS shreds resolver-side
// cacheability, so repeat queries dominate the hot path. This cache
// memoizes fully-encoded response datagrams keyed on
//
//     (qname, qtype/qclass, EDNS presence + clamped payload limit,
//      ECS scope-prefix of the client address, map-snapshot version)
//
// so a repeat query skips decode, zone lookup, mapping, and encode
// entirely: the cached wire bytes are copied out with only the 2-byte
// DNS id and the echoed ECS address patched in. Scope-prefix keying is
// the RFC 7871 §7.3.1 contract — an answer announced for scope /s is
// valid for every client block inside that /s — so clients in the same
// scope hit one entry and clients in different scopes miss to distinct
// entries.
//
// Invalidation is by construction, not by sweeping: the snapshot
// version is part of the key, and the serve path reads the MapMaker's
// version cell (acquire) once per batch. A republish bumps the version,
// every old entry stops matching, and stale wires age out by overwrite.
// MapMaker publishes the snapshot pointer BEFORE the version (both
// release), so a worker that reads version V is guaranteed the mapping
// fast path already serves generation >= V — no answer computed from an
// old map can be stored under a new version.
//
// Threading: one AnswerCache per worker, touched only by its owning
// thread. No locks, no atomics, no sharing — which is also what keeps
// it inside the serve-path lock-free lint fence (scripts/
// lint_invariants.py). Memory bound: slots * (key bytes + max_wire)
// per worker, all preallocated lazily per slot and reused on overwrite.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace eum::dnsserver {

/// RFC 6891 §6.2.3: "Values lower than 512 MUST be treated as equal to
/// 512" — the floor for the UDP truncation limit whether or not the
/// query carried an OPT record (plain DNS is capped at 512 by RFC 1035).
inline constexpr std::size_t kMinUdpPayload = 512;

[[nodiscard]] constexpr std::size_t effective_udp_payload_limit(bool has_edns,
                                                                std::uint16_t advertised) noexcept {
  if (!has_edns) return kMinUdpPayload;
  return advertised < kMinUdpPayload ? kMinUdpPayload : std::size_t{advertised};
}

/// A zero-allocation parse of a query datagram: just enough structure to
/// key the answer cache, with spans pointing into the caller's receive
/// buffer (valid only while that buffer is). Anything irregular —
/// compression in the qname, multiple questions, unknown counts, a
/// non-OPT additional, a malformed or non-zero-scope ECS option,
/// trailing bytes — returns nullopt and the query takes the full
/// decode/handle slow path, so the cache can never mask an error answer
/// the engine would have produced.
struct QueryProbe {
  std::uint16_t id = 0;
  std::uint16_t flags = 0;  ///< raw header flags word (opcode, RD, ...)
  std::span<const std::uint8_t> qname;  ///< wire-form labels incl. root byte
  std::uint16_t qtype = 0;
  std::uint16_t qclass = 0;
  bool has_edns = false;
  std::uint16_t udp_payload = 0;     ///< advertised, unclamped
  std::uint32_t opt_ttl = 0;         ///< raw OPT TTL (extended rcode/flags)
  bool has_ecs = false;
  std::uint8_t ecs_family = 0;       ///< 1 = IPv4, 2 = IPv6
  std::uint8_t ecs_source_len = 0;
  std::span<const std::uint8_t> ecs_address;  ///< ceil(source_len/8) bytes

  [[nodiscard]] std::size_t payload_limit() const noexcept {
    return effective_udp_payload_limit(has_edns, udp_payload);
  }

  /// Parse `wire` as a cacheable query; nullopt means "slow path".
  [[nodiscard]] static std::optional<QueryProbe> parse(
      std::span<const std::uint8_t> wire) noexcept;
};

/// Direct-mapped memoization table of encoded responses. Single-owner:
/// one instance per worker thread, no internal synchronization.
class AnswerCache {
 public:
  struct Config {
    /// Slot count, rounded up to a power of two. 0 is rounded to 1.
    std::size_t entries = 1024;
    /// Responses larger than this are not cached (they are rare —
    /// truncated or jumbo — and would inflate the memory bound).
    std::size_t max_wire = 4096;
  };

  explicit AnswerCache(const Config& config);

  /// Opaque handle to a matching entry, valid until the next store().
  struct Entry;

  /// Look up a cached response for `probe` under `version`. For ECS
  /// queries this probes each announced scope length (longest first), so
  /// one cached /16-scoped answer serves every client block inside the
  /// /16. Returns nullptr on miss.
  [[nodiscard]] const Entry* find(const QueryProbe& probe, std::uint64_t version) const noexcept;

  /// Render `entry` (from find()) into `out`: the cached wire with the
  /// probe's id and announced ECS address patched in.
  void render(const Entry& entry, const QueryProbe& probe, std::vector<std::uint8_t>& out) const;

  /// Memoize `response` (the encoded, possibly truncated, wire about to
  /// be sent for `probe`). The echoed ECS scope and the in-wire address
  /// offset are recovered from the response itself; a response whose ECS
  /// echo cannot be located is simply not cached. Overwrites the slot's
  /// previous occupant (direct-mapped), reusing its buffers.
  void store(const QueryProbe& probe, std::uint64_t version,
             std::span<const std::uint8_t> response);

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  struct Entry {
    bool used = false;
    std::uint64_t hash = 0;
    std::uint64_t version = 0;
    std::uint16_t flags = 0;
    std::uint16_t qtype = 0;
    std::uint16_t qclass = 0;
    std::uint32_t opt_ttl = 0;
    std::uint16_t payload_limit = 0;  ///< clamped; fits: kMaxDatagram < 2^16
    bool has_edns = false;
    bool has_ecs = false;
    std::uint8_t ecs_family = 0;
    std::uint8_t ecs_source_len = 0;
    /// Scope the cached answer was announced for; -1 = query had no ECS.
    std::int16_t scope_len = -1;
    /// Offset of the echoed ECS address inside `wire`; 0 = nothing to
    /// patch (offset 0 can never hold an option, it is the id field).
    std::uint32_t ecs_addr_offset = 0;
    std::vector<std::uint8_t> qname;
    std::vector<std::uint8_t> scope_addr;  ///< client address truncated to scope_len
    std::vector<std::uint8_t> wire;        ///< full encoded response
  };

 private:
  static constexpr std::size_t kMaxScopes = 8;

  [[nodiscard]] const Entry* probe_slot(const QueryProbe& probe, std::uint64_t version,
                                        std::int16_t scope,
                                        std::span<const std::uint8_t> scope_addr) const noexcept;
  /// Track a scope length seen in stored answers (descending order).
  /// Returns false when the ladder is full of other scopes — the entry
  /// is then not cached rather than silently unreachable.
  bool note_scope(std::int16_t scope) noexcept;

  std::size_t mask_;
  std::size_t max_wire_;
  std::vector<Entry> slots_;
  /// Distinct ECS scope lengths present in the table, longest first —
  /// the lookup ladder. Bounded; real deployments announce one or two.
  std::array<std::int16_t, kMaxScopes> scopes_{};
  std::size_t scope_count_ = 0;
};

}  // namespace eum::dnsserver
