#include "dnsserver/resolver.h"

#include <algorithm>

namespace eum::dnsserver {

using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;
using dns::ResourceRecord;

RecursiveResolver::RecursiveResolver(ResolverConfig config, const util::SimClock* clock,
                                     Upstream* upstream, net::IpAddr own_address)
    : config_(config), clock_(clock), upstream_(upstream), own_address_(own_address) {
  if (clock_ == nullptr || upstream_ == nullptr) {
    throw std::invalid_argument{"RecursiveResolver: clock and upstream are required"};
  }
  if (config_.ecs_source_len < 0 || config_.ecs_source_len > 32 ||
      config_.ecs_source_len_v6 < 0 || config_.ecs_source_len_v6 > 128) {
    throw std::invalid_argument{"RecursiveResolver: ECS source length out of range"};
  }
}

const RecursiveResolver::CacheEntry* RecursiveResolver::cache_lookup(
    const CacheKey& key, const net::IpAddr& client_addr) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  const util::SimTime now = clock_->now();
  // Drop expired entries in passing.
  auto& entries = it->second;
  const auto before = entries.size();
  std::erase_if(entries, [&](const CacheEntry& e) { return e.expires <= now; });
  cache_entries_ -= before - entries.size();
  for (const CacheEntry& entry : entries) {
    if (!entry.scope || entry.scope->contains(client_addr)) return &entry;
  }
  return nullptr;
}

void RecursiveResolver::cache_store(const CacheKey& key, CacheEntry entry) {
  if (cache_entries_ >= config_.max_cache_entries) {
    // Full sweep of expired entries; if still full, drop the map wholesale.
    // (Production resolvers use LRU; a sweep keeps the simulation honest
    // without tracking recency on the hot path.)
    const util::SimTime now = clock_->now();
    for (auto& [k, entries] : cache_) {
      const auto before = entries.size();
      std::erase_if(entries, [&](const CacheEntry& e) { return e.expires <= now; });
      cache_entries_ -= before - entries.size();
    }
    if (cache_entries_ >= config_.max_cache_entries) {
      stats_.cache_evictions += cache_entries_;
      flush_cache();
    }
  }
  auto& entries = cache_[key];
  // Replace an entry with the identical scope rather than duplicating.
  for (CacheEntry& existing : entries) {
    if (existing.scope == entry.scope) {
      existing = std::move(entry);
      return;
    }
  }
  entries.push_back(std::move(entry));
  ++cache_entries_;
}

Message RecursiveResolver::query_upstream(const DnsName& name, RecordType type,
                                          const std::optional<net::IpAddr>& ecs_client) {
  std::optional<dns::ClientSubnetOption> ecs;
  if (ecs_client) {
    const int source_len =
        ecs_client->is_v4() ? config_.ecs_source_len : config_.ecs_source_len_v6;
    ecs = dns::ClientSubnetOption::for_query(*ecs_client, source_len);
  }
  Message query = Message::make_query(next_id_++, name, type, std::move(ecs));
  query.header.recursion_desired = false;
  ++stats_.upstream_queries;
  if (on_upstream_query) on_upstream_query(name);
  Message response = upstream_->forward(query, own_address_);

  // Chase delegations: a NOERROR response with no answers but NS records
  // in the authority section refers us to the delegated nameservers; use
  // the A glue from the additional section (the paper's two-tier name
  // server hierarchy works exactly this way, §2.2 part 3).
  for (int hop = 0; hop < 4; ++hop) {
    if (response.header.rcode != Rcode::no_error || !response.answers.empty()) break;
    std::optional<net::IpAddr> glue;
    for (const ResourceRecord& ns_record : response.authorities) {
      const auto* ns = std::get_if<dns::NsRecord>(&ns_record.rdata);
      if (ns == nullptr) continue;
      for (const ResourceRecord& extra : response.additionals) {
        if (extra.name == ns->nameserver) {
          if (const auto* a = std::get_if<dns::ARecord>(&extra.rdata)) {
            glue = net::IpAddr{a->address};
            break;
          }
        }
      }
      if (glue) break;
    }
    if (!glue) break;
    query.header.id = next_id_++;
    ++stats_.upstream_queries;
    if (on_upstream_query) on_upstream_query(name);
    const auto delegated = upstream_->forward_to(*glue, query, own_address_);
    if (!delegated) break;  // transport cannot address servers
    ++stats_.referrals_followed;
    response = *delegated;
  }

  // Cache the outcome.
  CacheKey key{name, type};
  CacheEntry entry;
  entry.inserted = clock_->now();
  std::uint32_t ttl = config_.max_ttl;
  if (response.header.rcode == Rcode::no_error && !response.answers.empty()) {
    for (const ResourceRecord& r : response.answers) ttl = std::min(ttl, r.ttl);
    entry.answers = response.answers;
  } else {
    // Negative caching (RFC 2308 §5): prefer the authority-section SOA's
    // MINIMUM (capped by the SOA record's own TTL); fall back to the
    // configured default when the response carries no SOA.
    ttl = config_.negative_ttl;
    for (const ResourceRecord& record : response.authorities) {
      if (const auto* soa = std::get_if<dns::SoaRecord>(&record.rdata)) {
        ttl = std::min(soa->minimum, record.ttl);
        break;
      }
    }
  }
  entry.rcode = response.header.rcode;
  entry.expires = entry.inserted + static_cast<std::int64_t>(ttl);

  // RFC 7871 §7.3.1: an ECS answer is cached against its scope block; a
  // scope of /0 (or an answer without ECS) is valid for all clients. An
  // authority returning a scope LONGER than the announced source only
  // knows the source bits, so the entry is clamped to the source length
  // (§7.3.1's caching guidance).
  if (const dns::ClientSubnetOption* resp_ecs = response.client_subnet();
      resp_ecs != nullptr && resp_ecs->scope_prefix_len() > 0) {
    const int effective =
        std::min(resp_ecs->scope_prefix_len(), resp_ecs->source_prefix_len());
    entry.scope = net::IpPrefix{resp_ecs->address(), effective};
  }
  cache_store(key, std::move(entry));
  return response;
}

Message RecursiveResolver::resolve(const Message& client_query, const net::IpAddr& client_addr) {
  ++stats_.client_queries;
  Message response = Message::make_response(client_query);
  response.header.recursion_available = true;
  if (client_query.questions.size() != 1) {
    response.header.rcode = Rcode::form_err;
    return response;
  }
  const dns::Question& question = client_query.questions.front();

  // The address used for ECS: an ECS option in the client's own query wins
  // (forwarder chain, RFC 7871 §7.1.1); otherwise the connection address.
  std::optional<net::IpAddr> ecs_client;
  if (config_.ecs_enabled) {
    if (const auto* client_ecs = client_query.client_subnet()) {
      ecs_client = client_ecs->address();
    } else {
      ecs_client = client_addr;
    }
  }

  // Resolve with CNAME chasing across authorities.
  DnsName current = question.name;
  RecordType type = question.type;
  for (int hop = 0; hop < 8; ++hop) {
    CacheKey key{current, type};
    std::vector<ResourceRecord> answers;
    Rcode rcode = Rcode::no_error;

    if (const CacheEntry* cached = cache_lookup(key, client_addr)) {
      ++stats_.cache_hits;
      rcode = cached->rcode;
      // Age TTLs by the time the entry has been cached.
      const auto age = static_cast<std::uint32_t>(clock_->now() - cached->inserted);
      answers = cached->answers;
      for (ResourceRecord& r : answers) r.ttl = r.ttl > age ? r.ttl - age : 0;
    } else {
      ++stats_.cache_misses;
      const Message upstream_response = query_upstream(current, type, ecs_client);
      rcode = upstream_response.header.rcode;
      answers = upstream_response.answers;
    }

    response.header.rcode = rcode;
    response.answers.insert(response.answers.end(), answers.begin(), answers.end());
    if (rcode != Rcode::no_error) return response;

    // Complete if we obtained a record of the requested type; otherwise
    // follow the last CNAME in the chain.
    const bool satisfied = std::any_of(answers.begin(), answers.end(), [&](const auto& r) {
      return dns::rdata_type(r.rdata, r.type) == type;
    });
    if (satisfied || answers.empty()) return response;
    const auto last_cname =
        std::find_if(answers.rbegin(), answers.rend(), [](const ResourceRecord& r) {
          return std::holds_alternative<dns::CnameRecord>(r.rdata);
        });
    if (last_cname == answers.rend()) return response;
    current = std::get<dns::CnameRecord>(last_cname->rdata).target;
  }
  response.header.rcode = Rcode::serv_fail;  // CNAME chain too long
  return response;
}

void RecursiveResolver::flush_cache() noexcept {
  cache_.clear();
  cache_entries_ = 0;
}

}  // namespace eum::dnsserver
