#include "dnsserver/resolver.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace eum::dnsserver {

using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;
using dns::ResourceRecord;

stats::Table resolver_stats_table(const ResolverStats& stats) {
  stats::Table table{"counter", "value"};
  table.add_row("client_queries", stats.client_queries);
  table.add_row("cache_hits", stats.cache_hits);
  table.add_row("cache_misses", stats.cache_misses);
  table.add_row("upstream_queries", stats.upstream_queries);
  table.add_row("referrals_followed", stats.referrals_followed);
  table.add_row("cache_evictions", stats.cache_evictions);
  table.add_row("cache_expirations", stats.cache_expirations);
  table.add_row("scoped_hits", stats.scoped_hits);
  table.add_row("mean_scope_depth", stats.mean_scope_depth(), 2);
  return table;
}

RecursiveResolver::RecursiveResolver(ResolverConfig config, const util::SimClock* clock,
                                     Upstream* upstream, net::IpAddr own_address)
    : config_(config),
      clock_(clock),
      upstream_(upstream),
      own_address_(own_address),
      owned_registry_(config.registry == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                 : nullptr),
      registry_(config.registry != nullptr ? config.registry : owned_registry_.get()),
      client_queries_(
          &registry_->counter("eum_resolver_client_queries_total", "client queries resolved")),
      upstream_queries_(
          &registry_->counter("eum_resolver_upstream_queries_total", "queries sent upstream")),
      referrals_followed_(&registry_->counter("eum_resolver_referrals_followed_total",
                                              "delegations chased via glue")),
      resolve_latency_(&registry_->histogram("eum_resolver_resolve_latency_us",
                                             "resolve() serving latency, microseconds")),
      cache_(ScopedCacheConfig{config.max_cache_entries, config.cache_shards, registry_}) {
  if (clock_ == nullptr || upstream_ == nullptr) {
    throw std::invalid_argument{"RecursiveResolver: clock and upstream are required"};
  }
  if (config_.ecs_source_len < 0 || config_.ecs_source_len > 32 ||
      config_.ecs_source_len_v6 < 0 || config_.ecs_source_len_v6 > 128) {
    throw std::invalid_argument{"RecursiveResolver: ECS source length out of range"};
  }
}

ResolverStats RecursiveResolver::stats() const noexcept {
  ResolverStats merged;
  merged.client_queries = client_queries_->value();
  merged.upstream_queries = upstream_queries_->value();
  merged.referrals_followed = referrals_followed_->value();
  const ScopedCacheStats cache = cache_.stats();
  merged.cache_hits = cache.hits;
  merged.cache_misses = cache.misses;
  merged.cache_evictions = cache.evictions;
  merged.cache_expirations = cache.expirations;
  merged.scoped_hits = cache.scoped_hits;
  merged.scope_depth_total = cache.scope_depth_total;
  return merged;
}

void RecursiveResolver::reset_stats() noexcept {
  client_queries_->reset();
  upstream_queries_->reset();
  referrals_followed_->reset();
  resolve_latency_->reset();
  cache_.reset_stats();
}

Message RecursiveResolver::query_upstream(const DnsName& name, RecordType type,
                                          const std::optional<net::IpAddr>& ecs_client) {
  std::optional<dns::ClientSubnetOption> ecs;
  if (ecs_client) {
    const int source_len =
        ecs_client->is_v4() ? config_.ecs_source_len : config_.ecs_source_len_v6;
    ecs = dns::ClientSubnetOption::for_query(*ecs_client, source_len);
  }
  Message query = Message::make_query(next_id_++, name, type, std::move(ecs));
  query.header.recursion_desired = false;
  upstream_queries_->add();
  if (on_upstream_query) on_upstream_query(name);
  Message response = upstream_->forward(query, own_address_);

  // Chase delegations: a NOERROR response with no answers but NS records
  // in the authority section refers us to the delegated nameservers; use
  // the A glue from the additional section (the paper's two-tier name
  // server hierarchy works exactly this way, §2.2 part 3).
  for (int hop = 0; hop < 4; ++hop) {
    if (response.header.rcode != Rcode::no_error || !response.answers.empty()) break;
    std::optional<net::IpAddr> glue;
    for (const ResourceRecord& ns_record : response.authorities) {
      const auto* ns = std::get_if<dns::NsRecord>(&ns_record.rdata);
      if (ns == nullptr) continue;
      for (const ResourceRecord& extra : response.additionals) {
        if (extra.name == ns->nameserver) {
          if (const auto* a = std::get_if<dns::ARecord>(&extra.rdata)) {
            glue = net::IpAddr{a->address};
            break;
          }
        }
      }
      if (glue) break;
    }
    if (!glue) break;
    query.header.id = next_id_++;
    upstream_queries_->add();
    if (on_upstream_query) on_upstream_query(name);
    const auto delegated = upstream_->forward_to(*glue, query, own_address_);
    if (!delegated) break;  // transport cannot address servers
    referrals_followed_->add();
    response = *delegated;
  }

  // Cache the outcome.
  ScopedEcsCache::Key key{name, type};
  ScopedEcsCache::Entry entry;
  entry.inserted = clock_->now();
  std::uint32_t ttl = config_.max_ttl;
  if (response.header.rcode == Rcode::no_error && !response.answers.empty()) {
    for (const ResourceRecord& r : response.answers) ttl = std::min(ttl, r.ttl);
    entry.answers = response.answers;
  } else {
    // Negative caching (RFC 2308 §5): prefer the authority-section SOA's
    // MINIMUM (capped by the SOA record's own TTL); fall back to the
    // configured default when the response carries no SOA.
    ttl = config_.negative_ttl;
    for (const ResourceRecord& record : response.authorities) {
      if (const auto* soa = std::get_if<dns::SoaRecord>(&record.rdata)) {
        ttl = std::min(soa->minimum, record.ttl);
        break;
      }
    }
  }
  entry.rcode = response.header.rcode;
  entry.expires = entry.inserted + static_cast<std::int64_t>(ttl);

  // RFC 7871 §7.3.1: an ECS answer is cached against its scope block; a
  // scope of /0 (or an answer without ECS) is valid for all clients. An
  // authority returning a scope LONGER than the announced source only
  // knows the source bits, so the entry is clamped to the source length
  // (§7.3.1's caching guidance).
  if (const dns::ClientSubnetOption* resp_ecs = response.client_subnet();
      resp_ecs != nullptr && resp_ecs->scope_prefix_len() > 0) {
    const int effective =
        std::min(resp_ecs->scope_prefix_len(), resp_ecs->source_prefix_len());
    entry.scope = net::IpPrefix{resp_ecs->address(), effective};
  }
  cache_.store(key, std::move(entry));
  return response;
}

Message RecursiveResolver::resolve(const Message& client_query, const net::IpAddr& client_addr) {
  const bool timing = latency_tracking_ || query_log_ != nullptr;
  const auto start =
      timing ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  obs::AnswerSource answer_source = obs::AnswerSource::upstream;
  Message response = resolve_inner(client_query, client_addr, answer_source);
  if (timing) {
    const auto latency_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              start)
            .count());
    if (latency_tracking_) resolve_latency_->record(latency_us);
    if (query_log_ != nullptr && query_log_->sample()) {
      obs::QueryLogRecord record;
      record.ts_us = obs::QueryLog::now_us();
      record.client = client_addr.to_string();
      if (const dns::ClientSubnetOption* ecs = client_query.client_subnet()) {
        record.ecs = ecs->source_block().to_string();
      }
      if (!client_query.questions.empty()) {
        record.qname = client_query.questions.front().name.to_string();
        record.qtype = dns::to_string(client_query.questions.front().type);
      }
      record.source = answer_source;
      record.rcode = dns::to_string(response.header.rcode);
      record.latency_us =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(latency_us, 0xFFFFFFFFull));
      query_log_->log(std::move(record));
    }
  }
  return response;
}

Message RecursiveResolver::resolve_inner(const Message& client_query,
                                         const net::IpAddr& client_addr,
                                         obs::AnswerSource& answer_source) {
  client_queries_->add();
  Message response = Message::make_response(client_query);
  response.header.recursion_available = true;
  if (client_query.questions.size() != 1) {
    answer_source = obs::AnswerSource::form_error;
    response.header.rcode = Rcode::form_err;
    return response;
  }
  const dns::Question& question = client_query.questions.front();

  // The address used for ECS: an ECS option in the client's own query wins
  // (forwarder chain, RFC 7871 §7.1.1); otherwise the connection address.
  std::optional<net::IpAddr> ecs_client;
  if (config_.ecs_enabled) {
    if (const auto* client_ecs = client_query.client_subnet()) {
      ecs_client = client_ecs->address();
    } else {
      ecs_client = client_addr;
    }
  }
  // Cache lookups must use the same address the upstream query announces:
  // a forwarded ECS option replaces the connection address entirely, or
  // scoped entries for other blocks would (mis)match the connection.
  const net::IpAddr& lookup_addr = ecs_client ? *ecs_client : client_addr;

  // Resolve with CNAME chasing across authorities. The logged answer
  // source reflects the first hop: a scoped or global cache hit, or an
  // upstream round trip.
  DnsName current = question.name;
  RecordType type = question.type;
  for (int hop = 0; hop < 8; ++hop) {
    const ScopedEcsCache::Key key{current, type};
    std::vector<ResourceRecord> answers;
    Rcode rcode = Rcode::no_error;

    if (const auto cached = cache_.lookup(key, lookup_addr, clock_->now())) {
      rcode = cached->rcode;
      if (hop == 0) {
        answer_source = cached->scope ? obs::AnswerSource::cache_hit_scoped
                                      : obs::AnswerSource::cache_hit;
      }
      // Age TTLs by the time the entry has been cached.
      const auto age = static_cast<std::uint32_t>(clock_->now() - cached->inserted);
      answers = cached->answers;
      for (ResourceRecord& r : answers) r.ttl = r.ttl > age ? r.ttl - age : 0;
    } else {
      if (hop == 0) answer_source = obs::AnswerSource::upstream;
      const Message upstream_response = query_upstream(current, type, ecs_client);
      rcode = upstream_response.header.rcode;
      answers = upstream_response.answers;
    }

    response.header.rcode = rcode;
    response.answers.insert(response.answers.end(), answers.begin(), answers.end());
    if (rcode != Rcode::no_error) return response;

    // Complete if we obtained a record of the requested type; otherwise
    // follow the last CNAME in the chain.
    const bool satisfied = std::any_of(answers.begin(), answers.end(), [&](const auto& r) {
      return dns::rdata_type(r.rdata, r.type) == type;
    });
    if (satisfied || answers.empty()) return response;
    const auto last_cname =
        std::find_if(answers.rbegin(), answers.rend(), [](const ResourceRecord& r) {
          return std::holds_alternative<dns::CnameRecord>(r.rdata);
        });
    if (last_cname == answers.rend()) return response;
    current = std::get<dns::CnameRecord>(last_cname->rdata).target;
  }
  response.header.rcode = Rcode::serv_fail;  // CNAME chain too long
  return response;
}

}  // namespace eum::dnsserver
