#include "dnsserver/resolver.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/trace.h"

namespace eum::dnsserver {

namespace {

/// SRTT charged to a server whose very first attempt failed: a lost
/// query says nothing about the true RTT, only that the server is
/// suspect, so start it well behind any plausibly-live sibling.
constexpr double kSrttFailurePenaltyUs = 100000.0;

/// All A-glue addresses of a referral (NS records in the authority
/// section matched with A records in the additional section), deduped in
/// referral order.
std::vector<net::IpAddr> glue_candidates(const dns::Message& referral) {
  std::vector<net::IpAddr> out;
  for (const dns::ResourceRecord& ns_record : referral.authorities) {
    const auto* ns = std::get_if<dns::NsRecord>(&ns_record.rdata);
    if (ns == nullptr) continue;
    for (const dns::ResourceRecord& extra : referral.additionals) {
      if (extra.name != ns->nameserver) continue;
      if (const auto* a = std::get_if<dns::ARecord>(&extra.rdata)) {
        const net::IpAddr addr{a->address};
        if (std::find(out.begin(), out.end(), addr) == out.end()) out.push_back(addr);
      }
    }
  }
  return out;
}

}  // namespace

using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;
using dns::ResourceRecord;

stats::Table resolver_stats_table(const ResolverStats& stats) {
  stats::Table table{"counter", "value"};
  table.add_row("client_queries", stats.client_queries);
  table.add_row("cache_hits", stats.cache_hits);
  table.add_row("cache_misses", stats.cache_misses);
  table.add_row("upstream_queries", stats.upstream_queries);
  table.add_row("referrals_followed", stats.referrals_followed);
  table.add_row("retries", stats.retries);
  table.add_row("upstream_failures", stats.upstream_failures);
  table.add_row("stale_served", stats.stale_served);
  table.add_row("cache_evictions", stats.cache_evictions);
  table.add_row("cache_expirations", stats.cache_expirations);
  table.add_row("scoped_hits", stats.scoped_hits);
  table.add_row("mean_scope_depth", stats.mean_scope_depth(), 2);
  return table;
}

RecursiveResolver::RecursiveResolver(ResolverConfig config, const util::SimClock* clock,
                                     Upstream* upstream, net::IpAddr own_address)
    : config_(config),
      clock_(clock),
      upstream_(upstream),
      own_address_(own_address),
      owned_registry_(config.registry == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                 : nullptr),
      registry_(config.registry != nullptr ? config.registry : owned_registry_.get()),
      client_queries_(
          &registry_->counter("eum_resolver_client_queries_total", "client queries resolved")),
      upstream_queries_(
          &registry_->counter("eum_resolver_upstream_queries_total", "queries sent upstream")),
      referrals_followed_(&registry_->counter("eum_resolver_referrals_followed_total",
                                              "delegations chased via glue")),
      retries_(&registry_->counter("eum_resolver_retries_total",
                                   "upstream attempts beyond the first")),
      upstream_failures_(&registry_->counter("eum_resolver_upstream_failures_total",
                                             "upstream attempts lost or unusable")),
      stale_served_(&registry_->counter("eum_resolver_stale_served_total",
                                        "RFC 8767 answers served from expired entries")),
      resolve_latency_(&registry_->histogram("eum_resolver_resolve_latency_us",
                                             "resolve() serving latency, microseconds")),
      retry_latency_(&registry_->histogram(
          "eum_resolver_retry_latency_us",
          "upstream round latency when at least one retry ran, microseconds")),
      cache_(ScopedCacheConfig{config.max_cache_entries, config.cache_shards, registry_,
                               config.serve_stale_window}),
      rng_(config.retry_seed) {
  if (clock_ == nullptr || upstream_ == nullptr) {
    throw std::invalid_argument{"RecursiveResolver: clock and upstream are required"};
  }
  if (config_.ecs_source_len < 0 || config_.ecs_source_len > 32 ||
      config_.ecs_source_len_v6 < 0 || config_.ecs_source_len_v6 > 128) {
    throw std::invalid_argument{"RecursiveResolver: ECS source length out of range"};
  }
  if (config_.retry.attempts < 1) {
    throw std::invalid_argument{"RecursiveResolver: retry.attempts must be >= 1"};
  }
  if (config_.serve_stale_window < 0) {
    throw std::invalid_argument{"RecursiveResolver: serve_stale_window must be >= 0"};
  }
}

ResolverStats RecursiveResolver::stats() const noexcept {
  ResolverStats merged;
  merged.client_queries = client_queries_->value();
  merged.upstream_queries = upstream_queries_->value();
  merged.referrals_followed = referrals_followed_->value();
  merged.retries = retries_->value();
  merged.upstream_failures = upstream_failures_->value();
  merged.stale_served = stale_served_->value();
  const ScopedCacheStats cache = cache_.stats();
  merged.cache_hits = cache.hits;
  merged.cache_misses = cache.misses;
  merged.cache_evictions = cache.evictions;
  merged.cache_expirations = cache.expirations;
  merged.scoped_hits = cache.scoped_hits;
  merged.scope_depth_total = cache.scope_depth_total;
  return merged;
}

void RecursiveResolver::reset_stats() noexcept {
  client_queries_->reset();
  upstream_queries_->reset();
  referrals_followed_->reset();
  retries_->reset();
  upstream_failures_->reset();
  stale_served_->reset();
  resolve_latency_->reset();
  retry_latency_->reset();
  cache_.reset_stats();
  // SRTT gauges are live state, like cache-entry gauges: they survive.
}

double RecursiveResolver::srtt_us(const net::IpAddr& server) const {
  const std::scoped_lock lock{srtt_mutex_};
  const auto it = srtt_.find(server.to_string());
  return it == srtt_.end() ? 0.0 : it->second.srtt_us;
}

bool RecursiveResolver::response_usable(const Message& query, const Message& response) noexcept {
  // An ID mismatch means a corrupt or spoofed wire image — never trust
  // it. TC=1 lost its sections in transit, and SERVFAIL is the
  // authority saying "try again": both are worth a retry. REFUSED,
  // NXDOMAIN etc. are definitive answers, not failures.
  return response.header.is_response && response.header.id == query.header.id &&
         !response.header.truncated && response.header.rcode != Rcode::serv_fail;
}

void RecursiveResolver::backoff_sleep(int round) {
  const RetryPolicy& policy = config_.retry;
  double base = static_cast<double>(policy.backoff_initial.count());
  for (int i = 1; i < round; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy.backoff_max.count()));
  if (policy.jitter > 0.0) {
    const std::scoped_lock lock{rng_mutex_};
    base *= rng_.uniform(std::max(0.0, 1.0 - policy.jitter), 1.0 + policy.jitter);
  }
  const auto sleep_us = static_cast<std::int64_t>(base);
  if (sleep_us > 0) std::this_thread::sleep_for(std::chrono::microseconds{sleep_us});
}

void RecursiveResolver::record_srtt(const net::IpAddr& server, double sample_us, bool success) {
  const std::string key = server.to_string();
  const std::scoped_lock lock{srtt_mutex_};
  const auto [it, inserted] = srtt_.try_emplace(key);
  SrttEntry& entry = it->second;
  if (inserted) {
    entry.gauge = &registry_->gauge("eum_resolver_srtt_us",
                                    "smoothed RTT per delegated nameserver, microseconds",
                                    obs::Labels{{"server", key}});
  }
  if (success) {
    entry.srtt_us =
        entry.srtt_us == 0.0 ? sample_us : entry.srtt_us + (sample_us - entry.srtt_us) / 8.0;
  } else {
    entry.srtt_us = entry.srtt_us == 0.0 ? kSrttFailurePenaltyUs : entry.srtt_us * 2.0;
  }
  entry.gauge->set(static_cast<std::int64_t>(entry.srtt_us));
}

std::vector<net::IpAddr> RecursiveResolver::order_by_srtt(
    std::vector<net::IpAddr> candidates) const {
  const std::scoped_lock lock{srtt_mutex_};
  const auto srtt_of = [this](const net::IpAddr& addr) {
    const auto it = srtt_.find(addr.to_string());
    return it == srtt_.end() ? 0.0 : it->second.srtt_us;
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const net::IpAddr& a, const net::IpAddr& b) {
                     return srtt_of(a) < srtt_of(b);
                   });
  return candidates;
}

std::optional<Message> RecursiveResolver::forward_with_retries(Message& query,
                                                               const DnsName& name,
                                                               bool& retried) {
  for (int attempt = 0; attempt < config_.retry.attempts; ++attempt) {
    if (attempt > 0) {
      retried = true;
      retries_->add();
      backoff_sleep(attempt);
      query.header.id = next_query_id();  // fresh ID: a late answer to a
                                          // lost attempt must not match
    }
    upstream_queries_->add();
    if (on_upstream_query) on_upstream_query(name);
    std::optional<Message> response = upstream_->try_forward(query, own_address_);
    const bool usable = response && response_usable(query, *response);
    if (obs::QueryTracer* tracer = obs::current_tracer()) {
      if (obs::TraceSpan* span = tracer->span(obs::TraceStage::resolver_attempt)) {
        span->code = attempt;
        span->set_detail(usable ? "upstream ok" : "upstream fail");
      }
    }
    if (usable) return response;
    upstream_failures_->add();
  }
  return std::nullopt;
}

std::optional<Message> RecursiveResolver::forward_to_with_retries(
    std::vector<net::IpAddr> candidates, Message& query, const DnsName& name, bool& retried,
    bool& unaddressable) {
  unaddressable = false;
  bool dispatched = false;
  int sent = 0;
  std::optional<net::IpAddr> last_server;
  while (sent < config_.retry.attempts && !candidates.empty()) {
    // Prefer the fastest live authority; an untried server (SRTT 0)
    // sorts first so every glue candidate gets explored before we settle.
    const net::IpAddr server = order_by_srtt(candidates).front();
    if (sent > 0 && last_server && server == *last_server) {
      backoff_sleep(sent);  // re-trying the same server: back off
    }
    query.header.id = next_query_id();
    const auto sent_at = std::chrono::steady_clock::now();
    Upstream::ForwardToResult result = upstream_->try_forward_to(server, query, own_address_);
    if (!result.addressable) {
      // No route to this nameserver at all: strike it without consuming
      // an attempt and try its siblings.
      candidates.erase(std::find(candidates.begin(), candidates.end(), server));
      continue;
    }
    dispatched = true;
    if (sent > 0) {
      retried = true;
      retries_->add();
    }
    ++sent;
    upstream_queries_->add();
    if (on_upstream_query) on_upstream_query(name);
    const auto sample_us = static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              sent_at)
            .count());
    const bool usable = result.response && response_usable(query, *result.response);
    record_srtt(server, sample_us, usable);
    if (obs::QueryTracer* tracer = obs::current_tracer()) {
      if (obs::TraceSpan* span = tracer->span(obs::TraceStage::resolver_attempt)) {
        span->code = sent - 1;
        span->value = static_cast<std::int64_t>(sample_us);
        span->set_detail(server.to_string() + (usable ? " ok" : " fail"));
      }
    }
    if (usable) return std::move(result.response);
    upstream_failures_->add();
    last_server = server;
  }
  unaddressable = !dispatched;
  return std::nullopt;
}

Message RecursiveResolver::query_upstream(const DnsName& name, RecordType type,
                                          const std::optional<net::IpAddr>& ecs_client,
                                          const net::IpAddr& lookup_addr, bool& served_stale) {
  served_stale = false;
  std::optional<dns::ClientSubnetOption> ecs;
  if (ecs_client) {
    const int source_len =
        ecs_client->is_v4() ? config_.ecs_source_len : config_.ecs_source_len_v6;
    ecs = dns::ClientSubnetOption::for_query(*ecs_client, source_len);
  }
  Message query = Message::make_query(next_query_id(), name, type, std::move(ecs));
  query.header.recursion_desired = false;

  const auto round_started = std::chrono::steady_clock::now();
  bool retried = false;
  std::optional<Message> maybe_response = forward_with_retries(query, name, retried);

  // Chase delegations: a NOERROR response with no answers but NS records
  // in the authority section refers us to the delegated nameservers; use
  // the A glue from the additional section (the paper's two-tier name
  // server hierarchy works exactly this way, §2.2 part 3). All glue
  // candidates are kept so a dead delegated server fails over to a live
  // sibling instead of killing the resolution.
  for (int hop = 0; maybe_response && hop < 4; ++hop) {
    if (maybe_response->header.rcode != Rcode::no_error || !maybe_response->answers.empty()) {
      break;
    }
    std::vector<net::IpAddr> glue = glue_candidates(*maybe_response);
    if (glue.empty()) break;
    bool unaddressable = false;
    std::optional<Message> delegated =
        forward_to_with_retries(std::move(glue), query, name, retried, unaddressable);
    if (unaddressable) break;  // transport cannot address servers: keep the referral
    if (!delegated) {
      maybe_response.reset();  // live servers, every attempt failed
      break;
    }
    referrals_followed_->add();
    maybe_response = std::move(delegated);
  }

  if (retried) {
    retry_latency_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              round_started)
            .count()));
  }

  if (!maybe_response) {
    // Every upstream attempt failed. RFC 8767 graceful degradation:
    // answer from an expired cache entry inside the stale window with a
    // short TTL; otherwise SERVFAIL — and never cache the failure.
    if (config_.serve_stale_window > 0) {
      if (auto stale = cache_.lookup_stale(ScopedEcsCache::Key{name, type}, lookup_addr,
                                           clock_->now())) {
        stale_served_->add();
        served_stale = true;
        // A stale answer saved the query but is operationally notable:
        // retain its trace unconditionally.
        if (obs::QueryTracer* tracer = obs::current_tracer()) {
          tracer->note_anomaly(obs::TraceAnomaly::kStale);
        }
        Message answer;
        answer.header.rcode = stale->rcode;
        answer.answers = std::move(stale->answers);
        for (ResourceRecord& r : answer.answers) {
          r.ttl = std::min(r.ttl, config_.stale_answer_ttl);
        }
        return answer;
      }
    }
    Message failure;
    failure.header.rcode = Rcode::serv_fail;
    return failure;
  }
  Message response = std::move(*maybe_response);

  // Cache the outcome.
  ScopedEcsCache::Key key{name, type};
  ScopedEcsCache::Entry entry;
  entry.inserted = clock_->now();
  std::uint32_t ttl = config_.max_ttl;
  if (response.header.rcode == Rcode::no_error && !response.answers.empty()) {
    for (const ResourceRecord& r : response.answers) ttl = std::min(ttl, r.ttl);
    entry.answers = response.answers;
  } else {
    // Negative caching (RFC 2308 §5): prefer the authority-section SOA's
    // MINIMUM (capped by the SOA record's own TTL); fall back to the
    // configured default when the response carries no SOA.
    ttl = config_.negative_ttl;
    for (const ResourceRecord& record : response.authorities) {
      if (const auto* soa = std::get_if<dns::SoaRecord>(&record.rdata)) {
        ttl = std::min(soa->minimum, record.ttl);
        break;
      }
    }
  }
  entry.rcode = response.header.rcode;
  entry.expires = entry.inserted + static_cast<std::int64_t>(ttl);

  // RFC 7871 §7.3.1: an ECS answer is cached against its scope block; a
  // scope of /0 (or an answer without ECS) is valid for all clients. An
  // authority returning a scope LONGER than the announced source only
  // knows the source bits, so the entry is clamped to the source length
  // (§7.3.1's caching guidance).
  if (const dns::ClientSubnetOption* resp_ecs = response.client_subnet();
      resp_ecs != nullptr && resp_ecs->scope_prefix_len() > 0) {
    const int effective =
        std::min(resp_ecs->scope_prefix_len(), resp_ecs->source_prefix_len());
    entry.scope = net::IpPrefix{resp_ecs->address(), effective};
  }
  cache_.store(key, std::move(entry));
  return response;
}

Message RecursiveResolver::resolve(const Message& client_query, const net::IpAddr& client_addr) {
  const bool timing = latency_tracking_ || query_log_ != nullptr;
  const auto start =
      timing ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  obs::AnswerSource answer_source = obs::AnswerSource::upstream;
  Message response = resolve_inner(client_query, client_addr, answer_source);
  if (timing) {
    const auto latency_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              start)
            .count());
    if (latency_tracking_) resolve_latency_->record(latency_us);
    if (query_log_ != nullptr && query_log_->sample()) {
      obs::QueryLogRecord record;
      record.ts_us = obs::QueryLog::now_us();
      record.client = client_addr.to_string();
      if (const dns::ClientSubnetOption* ecs = client_query.client_subnet()) {
        record.ecs = ecs->source_block().to_string();
      }
      if (!client_query.questions.empty()) {
        record.qname = client_query.questions.front().name.to_string();
        record.qtype = dns::to_string(client_query.questions.front().type);
      }
      record.source = answer_source;
      record.rcode = dns::to_string(response.header.rcode);
      record.latency_us =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(latency_us, 0xFFFFFFFFull));
      query_log_->log(std::move(record));
    }
  }
  return response;
}

Message RecursiveResolver::resolve_inner(const Message& client_query,
                                         const net::IpAddr& client_addr,
                                         obs::AnswerSource& answer_source) {
  client_queries_->add();
  Message response = Message::make_response(client_query);
  response.header.recursion_available = true;
  if (client_query.questions.size() != 1) {
    answer_source = obs::AnswerSource::form_error;
    response.header.rcode = Rcode::form_err;
    return response;
  }
  const dns::Question& question = client_query.questions.front();

  // The address used for ECS: an ECS option in the client's own query wins
  // (forwarder chain, RFC 7871 §7.1.1); otherwise the connection address.
  std::optional<net::IpAddr> ecs_client;
  if (config_.ecs_enabled) {
    if (const auto* client_ecs = client_query.client_subnet()) {
      ecs_client = client_ecs->address();
    } else {
      ecs_client = client_addr;
    }
  }
  // Cache lookups must use the same address the upstream query announces:
  // a forwarded ECS option replaces the connection address entirely, or
  // scoped entries for other blocks would (mis)match the connection.
  const net::IpAddr& lookup_addr = ecs_client ? *ecs_client : client_addr;

  // Resolve with CNAME chasing across authorities. The logged answer
  // source reflects the first hop: a scoped or global cache hit, or an
  // upstream round trip.
  DnsName current = question.name;
  RecordType type = question.type;
  for (int hop = 0; hop < 8; ++hop) {
    const ScopedEcsCache::Key key{current, type};
    std::vector<ResourceRecord> answers;
    Rcode rcode = Rcode::no_error;

    if (const auto cached = cache_.lookup(key, lookup_addr, clock_->now())) {
      rcode = cached->rcode;
      if (hop == 0) {
        answer_source = cached->scope ? obs::AnswerSource::cache_hit_scoped
                                      : obs::AnswerSource::cache_hit;
      }
      // Age TTLs by the time the entry has been cached.
      const auto age = static_cast<std::uint32_t>(clock_->now() - cached->inserted);
      answers = cached->answers;
      for (ResourceRecord& r : answers) r.ttl = r.ttl > age ? r.ttl - age : 0;
    } else {
      if (hop == 0) answer_source = obs::AnswerSource::upstream;
      bool served_stale = false;
      const Message upstream_response =
          query_upstream(current, type, ecs_client, lookup_addr, served_stale);
      if (served_stale && hop == 0) answer_source = obs::AnswerSource::stale;
      rcode = upstream_response.header.rcode;
      answers = upstream_response.answers;
    }

    response.header.rcode = rcode;
    response.answers.insert(response.answers.end(), answers.begin(), answers.end());
    if (rcode != Rcode::no_error) return response;

    // Complete if we obtained a record of the requested type; otherwise
    // follow the last CNAME in the chain.
    const bool satisfied = std::any_of(answers.begin(), answers.end(), [&](const auto& r) {
      return dns::rdata_type(r.rdata, r.type) == type;
    });
    if (satisfied || answers.empty()) return response;
    const auto last_cname =
        std::find_if(answers.rbegin(), answers.rend(), [](const ResourceRecord& r) {
          return std::holds_alternative<dns::CnameRecord>(r.rdata);
        });
    if (last_cname == answers.rend()) return response;
    current = std::get<dns::CnameRecord>(last_cname->rdata).target;
  }
  response.header.rcode = Rcode::serv_fail;  // CNAME chain too long
  return response;
}

}  // namespace eum::dnsserver
