#include "dnsserver/fault.h"

#include <stdexcept>
#include <thread>
#include <utility>

namespace eum::dnsserver {

using dns::Message;

namespace {

void validate(const FaultSpec& spec) {
  const auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(spec.drop) || !in_unit(spec.servfail) || !in_unit(spec.truncate) ||
      !in_unit(spec.duplicate) || !in_unit(spec.corrupt)) {
    throw std::invalid_argument{"FaultSpec: probabilities must be in [0, 1]"};
  }
  if (spec.delay.count() < 0 || spec.delay_jitter.count() < 0) {
    throw std::invalid_argument{"FaultSpec: delays must be non-negative"};
  }
}

}  // namespace

FaultInjector::FaultInjector(Upstream* inner, FaultInjectorConfig config)
    : inner_(inner),
      default_spec_(config.faults),
      rng_(config.seed),
      owned_registry_(config.registry == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                 : nullptr),
      registry_(config.registry != nullptr ? config.registry : owned_registry_.get()) {
  if (inner_ == nullptr) throw std::invalid_argument{"FaultInjector: null inner upstream"};
  validate(default_spec_);
  const auto fault_counter = [this](const char* kind) {
    return &registry_->counter("eum_fault_injected_total", "faults injected by kind",
                               obs::Labels{{"fault", kind}});
  };
  drops_ = fault_counter("drop");
  servfails_ = fault_counter("servfail");
  truncations_ = fault_counter("truncate");
  duplicates_ = fault_counter("duplicate");
  corruptions_ = fault_counter("corrupt");
  delays_ = fault_counter("delay");
  forwards_ = &registry_->counter("eum_fault_forwarded_total",
                                  "queries passed through to the inner upstream");
}

void FaultInjector::set_faults(FaultSpec spec) {
  validate(spec);
  const std::scoped_lock lock{mutex_};
  default_spec_ = spec;
}

void FaultInjector::set_faults_for(const net::IpAddr& server, FaultSpec spec) {
  validate(spec);
  const std::scoped_lock lock{mutex_};
  per_server_[server.to_string()] = spec;
}

FaultSpec FaultInjector::spec_for(const net::IpAddr& server) const {
  const std::scoped_lock lock{mutex_};
  const auto it = per_server_.find(server.to_string());
  return it == per_server_.end() ? default_spec_ : it->second;
}

FaultInjector::Decision FaultInjector::draw(const FaultSpec& spec) {
  Decision decision;
  if (!spec.active()) return decision;
  const std::scoped_lock lock{mutex_};
  decision.drop = spec.drop > 0.0 && rng_.chance(spec.drop);
  if (decision.drop) return decision;  // nothing else matters: the query is gone
  decision.servfail = spec.servfail > 0.0 && rng_.chance(spec.servfail);
  decision.truncate = spec.truncate > 0.0 && rng_.chance(spec.truncate);
  decision.duplicate = spec.duplicate > 0.0 && rng_.chance(spec.duplicate);
  decision.corrupt = spec.corrupt > 0.0 && rng_.chance(spec.corrupt);
  if (decision.corrupt) decision.corrupt_seed = rng_();
  decision.delay = spec.delay;
  if (spec.delay_jitter.count() > 0) {
    decision.delay += std::chrono::microseconds{
        static_cast<std::int64_t>(rng_.below(static_cast<std::uint64_t>(spec.delay_jitter.count())))};
  }
  return decision;
}

std::optional<Message> FaultInjector::mangle(const Decision& decision,
                                             std::optional<Message> response) {
  if (decision.delay.count() > 0) {
    delays_->add();
    std::this_thread::sleep_for(decision.delay);
  }
  if (!response) return response;
  if (decision.corrupt) {
    // Flip 1-4 random bytes of the wire image, then re-parse exactly as
    // a receiver would: an unparseable datagram is a silent loss, a
    // parseable-but-damaged one (mismatched ID, mangled rdata) is
    // delivered so the resolver's validation gets exercised.
    corruptions_->add();
    std::vector<std::uint8_t> wire = response->encode();
    if (!wire.empty()) {
      util::Rng corrupt_rng{decision.corrupt_seed};
      const std::uint64_t flips = 1 + corrupt_rng.below(4);
      for (std::uint64_t i = 0; i < flips; ++i) {
        wire[corrupt_rng.below(wire.size())] ^=
            static_cast<std::uint8_t>(1 + corrupt_rng.below(255));
      }
      try {
        response = Message::decode(wire);
      } catch (const dns::WireError&) {
        return std::nullopt;
      }
    }
  }
  if (decision.truncate) {
    // Mirror the UDP front end's size discipline: sections dropped,
    // TC=1, the EDNS OPT pseudo-record retained (RFC 6891 §7).
    truncations_->add();
    response->answers.clear();
    response->authorities.clear();
    response->additionals.clear();
    response->header.truncated = true;
  }
  return response;
}

std::optional<Message> FaultInjector::try_forward(const Message& query,
                                                  const net::IpAddr& source) {
  FaultSpec spec;
  {
    const std::scoped_lock lock{mutex_};
    spec = default_spec_;
  }
  const Decision decision = draw(spec);
  if (decision.drop) {
    drops_->add();
    return std::nullopt;
  }
  if (decision.servfail) {
    servfails_->add();
    Message response = Message::make_response(query);
    response.header.rcode = dns::Rcode::serv_fail;
    return response;
  }
  forwards_->add();
  std::optional<Message> response = inner_->try_forward(query, source);
  if (decision.duplicate) {
    duplicates_->add();
    forwards_->add();
    (void)inner_->try_forward(query, source);  // second copy: handled, discarded
  }
  return mangle(decision, std::move(response));
}

Upstream::ForwardToResult FaultInjector::try_forward_to(const net::IpAddr& server,
                                                        const Message& query,
                                                        const net::IpAddr& source) {
  const Decision decision = draw(spec_for(server));
  if (decision.drop) {
    drops_->add();
    return ForwardToResult{std::nullopt, true};
  }
  if (decision.servfail) {
    servfails_->add();
    Message response = Message::make_response(query);
    response.header.rcode = dns::Rcode::serv_fail;
    return ForwardToResult{std::move(response), true};
  }
  forwards_->add();
  ForwardToResult result = inner_->try_forward_to(server, query, source);
  if (!result.addressable) return result;
  if (decision.duplicate) {
    duplicates_->add();
    forwards_->add();
    (void)inner_->try_forward_to(server, query, source);
  }
  result.response = mangle(decision, std::move(result.response));
  return result;
}

Message FaultInjector::forward(const Message& query, const net::IpAddr& source) {
  // Infallible adapter for legacy callers: a dropped/lost attempt
  // surfaces as SERVFAIL, which is what a resolver without retry support
  // would eventually conclude anyway.
  if (auto response = try_forward(query, source)) return std::move(*response);
  Message failure = Message::make_response(query);
  failure.header.rcode = dns::Rcode::serv_fail;
  return failure;
}

std::optional<Message> FaultInjector::forward_to(const net::IpAddr& server, const Message& query,
                                                 const net::IpAddr& source) {
  ForwardToResult result = try_forward_to(server, query, source);
  return std::move(result.response);
}

FaultStats FaultInjector::stats() const {
  FaultStats stats;
  stats.drops = drops_->value();
  stats.servfails = servfails_->value();
  stats.truncations = truncations_->value();
  stats.duplicates = duplicates_->value();
  stats.corruptions = corruptions_->value();
  stats.delays = delays_->value();
  stats.forwards = forwards_->value();
  return stats;
}

void FaultInjector::reset_stats() {
  drops_->reset();
  servfails_->reset();
  truncations_->reset();
  duplicates_->reset();
  corruptions_->reset();
  delays_->reset();
  forwards_->reset();
}

}  // namespace eum::dnsserver
