// In-memory DNS transport.
//
// `AuthorityDirectory` wires recursive resolvers to authoritative servers
// inside one process. Every message still round-trips through the wire
// codec, so simulated traffic exercises exactly the bytes a network would
// carry (including EDNS0/ECS encoding) — only the socket is elided.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <functional>
#include <vector>

#include "dnsserver/authoritative.h"
#include "dnsserver/resolver.h"

namespace eum::dnsserver {

class AuthorityDirectory : public Upstream {
 public:
  AuthorityDirectory() = default;
  AuthorityDirectory(AuthorityDirectory&& other) noexcept
      : authorities_(std::move(other.authorities_)),
        servers_by_address_(std::move(other.servers_by_address_)),
        forwarded_(other.forwarded_.load(std::memory_order_relaxed)) {}

  /// Route queries for names at/below `suffix` to `server` (borrowed;
  /// must outlive the directory). Longest suffix wins.
  void add_authority(dns::DnsName suffix, AuthoritativeServer* server);

  /// Register a nameserver reachable at a specific unicast address, the
  /// target of delegation glue (borrowed; must outlive the directory).
  void add_server(const net::IpAddr& address, AuthoritativeServer* server);

  /// Total messages forwarded (both directions counted once). The
  /// counter is a relaxed atomic so concurrent resolvers can share one
  /// directory, mirroring the SO_REUSEPORT UDP front end.
  [[nodiscard]] std::uint64_t forwarded() const noexcept {
    return forwarded_.load(std::memory_order_relaxed);
  }

  /// Forward a query to the owning authority, round-tripping the wire
  /// encoding both ways. Returns REFUSED if no authority matches.
  [[nodiscard]] dns::Message forward(const dns::Message& query,
                                     const net::IpAddr& source) override;

  /// Forward to a registered server address (delegation chasing); nullopt
  /// for unknown addresses.
  [[nodiscard]] std::optional<dns::Message> forward_to(const net::IpAddr& server,
                                                       const dns::Message& query,
                                                       const net::IpAddr& source) override;

 private:
  std::vector<std::pair<dns::DnsName, AuthoritativeServer*>> authorities_;
  std::unordered_map<std::uint32_t, AuthoritativeServer*> servers_by_address_;
  std::atomic<std::uint64_t> forwarded_{0};
};

/// Client-side stub resolver: what the paper calls "the client requests
/// its LDNS to resolve the domain name" (§2 step 1).
class StubClient {
 public:
  /// Both borrowed; must outlive the stub.
  StubClient(RecursiveResolver* ldns, net::IpAddr client_addr);

  /// Resolve and return all A/AAAA addresses (empty on failure).
  [[nodiscard]] std::vector<net::IpAddr> lookup(const dns::DnsName& name,
                                                dns::RecordType type = dns::RecordType::A);

  /// Full-message variant for callers that need TTLs/rcode. The response
  /// is validated against the query (ID echo + question echo, the
  /// classic anti-spoofing check); a mismatch is surfaced as SERVFAIL
  /// rather than trusted.
  [[nodiscard]] dns::Message query(const dns::DnsName& name,
                                   dns::RecordType type = dns::RecordType::A);

  /// Whether `response` is an acceptable answer to `query`: QR set, the
  /// 16-bit ID echoed, and the question section echoed verbatim.
  [[nodiscard]] static bool matches(const dns::Message& query,
                                    const dns::Message& response) noexcept;

  /// Pin the next query ID (testing aid: ID 0 is legal and the uint16
  /// counter wraps through it, so wrap behaviour must stay symmetric).
  void set_next_id(std::uint16_t id) noexcept { next_id_ = id; }

  [[nodiscard]] const net::IpAddr& address() const noexcept { return client_addr_; }

 private:
  RecursiveResolver* ldns_;
  net::IpAddr client_addr_;
  std::uint16_t next_id_ = 1;
};

}  // namespace eum::dnsserver
