#include "dnsserver/zone.h"

#include <stdexcept>

namespace eum::dnsserver {

using dns::DnsName;
using dns::RecordType;
using dns::ResourceRecord;

Zone::Zone(DnsName origin, dns::SoaRecord soa) : origin_(std::move(origin)) {
  soa_record_.name = origin_;
  soa_record_.type = RecordType::SOA;
  soa_record_.ttl = soa.minimum;
  soa_record_.rdata = std::move(soa);
  nodes_[origin_][RecordType::SOA].push_back(soa_record_);
}

void Zone::add(ResourceRecord record) {
  if (!contains(record.name)) {
    throw std::invalid_argument{"Zone::add: record name outside zone origin"};
  }
  auto& sets = nodes_[record.name];
  const bool adding_cname = record.type == RecordType::CNAME;
  const bool has_cname = sets.contains(RecordType::CNAME);
  const bool has_other = !sets.empty() && !(sets.size() == 1 && has_cname);
  if ((adding_cname && has_other) || (!adding_cname && has_cname)) {
    throw std::invalid_argument{"Zone::add: CNAME cannot coexist with other data"};
  }
  sets[record.type].push_back(std::move(record));
}

void Zone::add_a(const DnsName& name, net::IpV4Addr addr, std::uint32_t ttl) {
  add(ResourceRecord{name, RecordType::A, dns::RecordClass::IN, ttl, dns::ARecord{addr}});
}

void Zone::add_cname(const DnsName& name, const DnsName& target, std::uint32_t ttl) {
  add(ResourceRecord{name, RecordType::CNAME, dns::RecordClass::IN, ttl,
                     dns::CnameRecord{target}});
}

void Zone::add_ns(const DnsName& name, const DnsName& nameserver, std::uint32_t ttl) {
  add(ResourceRecord{name, RecordType::NS, dns::RecordClass::IN, ttl,
                     dns::NsRecord{nameserver}});
}

const Zone::RecordSets* Zone::find_node(const DnsName& name) const noexcept {
  const auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

const std::vector<ResourceRecord>* Zone::find_delegation(const DnsName& name) const noexcept {
  // Walk from `name` upward, stopping before the origin: an NS set at the
  // origin is authoritative data, not a delegation.
  DnsName cursor = name;
  while (cursor != origin_ && !cursor.is_root()) {
    if (const RecordSets* sets = find_node(cursor)) {
      if (const auto it = sets->find(RecordType::NS); it != sets->end()) return &it->second;
    }
    cursor = cursor.parent();
  }
  return nullptr;
}

LookupResult Zone::lookup(const DnsName& name, RecordType type) const {
  if (!contains(name)) throw std::invalid_argument{"Zone::lookup: name outside zone"};
  LookupResult result;
  result.soa = soa_record_;

  DnsName current = name;
  for (int chain = 0; chain < 16; ++chain) {  // CNAME chain cap
    if (current != origin_) {
      if (const auto* referral = find_delegation(current)) {
        result.status = LookupStatus::delegation;
        result.referral = *referral;
        return result;
      }
    }
    const RecordSets* sets = find_node(current);
    if (sets == nullptr) {
      result.status =
          result.answers.empty() ? LookupStatus::nx_domain : LookupStatus::out_of_zone;
      return result;
    }
    if (const auto it = sets->find(type); it != sets->end()) {
      result.answers.insert(result.answers.end(), it->second.begin(), it->second.end());
      result.status = LookupStatus::success;
      return result;
    }
    if (const auto it = sets->find(RecordType::CNAME);
        it != sets->end() && type != RecordType::CNAME) {
      result.answers.push_back(it->second.front());
      const auto& cname = std::get<dns::CnameRecord>(it->second.front().rdata);
      if (!contains(cname.target)) {
        result.status = LookupStatus::out_of_zone;
        return result;
      }
      current = cname.target;
      continue;
    }
    result.status = LookupStatus::no_data;
    return result;
  }
  // Chain too long: treat as server failure upstream; report NODATA with
  // whatever chain was accumulated.
  result.status = LookupStatus::no_data;
  return result;
}

std::size_t Zone::record_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [name, sets] : nodes_) {
    for (const auto& [type, records] : sets) count += records.size();
  }
  return count;
}

}  // namespace eum::dnsserver
