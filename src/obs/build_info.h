// Build provenance for self-describing dumps (satellite of the flight
// recorder PR): which exact build produced a metrics snapshot or a trace
// dump. Values are baked in at configure time by src/obs/CMakeLists.txt
// (git describe, compiler id+version, build type) with "unknown"
// fallbacks so builds outside git still link.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace eum::obs {

struct BuildInfo {
  const char* git_describe;  ///< `git describe --always --dirty` at configure
  const char* compiler;      ///< "GNU 13.2.0", "Clang 17.0.6", ...
  const char* build_type;    ///< CMAKE_BUILD_TYPE
};

[[nodiscard]] BuildInfo build_info() noexcept;

/// "git=<d> compiler=<c> build=<t>" — for snapshot.info and logs.
[[nodiscard]] std::string build_info_string();

/// Register the conventional `eum_build_info` gauge (value always 1, the
/// build facts ride in labels — the Prometheus "info metric" idiom).
/// `extra` labels let the binary attach its runtime shape (batch size,
/// cache slots, worker count). Idempotent per (registry, labels).
Gauge& register_build_info(MetricsRegistry& registry, Labels extra = {});

}  // namespace eum::obs
