#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "obs/query_log.h"
#include "util/strings.h"

namespace eum::obs {

namespace {

thread_local QueryTracer* t_current_tracer = nullptr;

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render one span as text for the flat NDJSON "spans" field.
void render_span(const TraceSpan& span, std::string& out) {
  out += to_string(span.stage);
  out += util::format("[code=%d", span.code);
  if (span.value != 0) out += util::format(" value=%lld", static_cast<long long>(span.value));
  if (span.detail[0] != '\0') {
    out += ' ';
    out += span.detail;
  }
  if (span.elapsed_us != 0) out += util::format(" +%uus", span.elapsed_us);
  out += ']';
}

}  // namespace

const char* to_string(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::rx: return "rx";
    case TraceStage::cache_probe: return "cache_probe";
    case TraceStage::map_decision: return "map_decision";
    case TraceStage::handle: return "handle";
    case TraceStage::resolver_attempt: return "resolver_attempt";
    case TraceStage::tx: return "tx";
  }
  return "unknown";
}

std::string anomaly_names(std::uint32_t mask) {
  static constexpr struct {
    std::uint32_t flag;
    const char* name;
  } kNames[] = {
      {TraceAnomaly::kSlow, "slow"},
      {TraceAnomaly::kServfail, "servfail"},
      {TraceAnomaly::kStale, "stale"},
      {TraceAnomaly::kException, "exception"},
      {TraceAnomaly::kSendError, "send_error"},
  };
  std::string out;
  for (const auto& entry : kNames) {
    if ((mask & entry.flag) == 0) continue;
    if (!out.empty()) out += '|';
    out += entry.name;
  }
  return out;
}

void TraceSpan::set_detail(std::string_view text) noexcept {
  const std::size_t n = std::min(text.size(), kDetailSize - 1);
  std::memcpy(detail, text.data(), n);
  detail[n] = '\0';
}

// --- FlightRecorder --------------------------------------------------------
// (FlightRecorder::Ring is the extracted lockfree::MpmcRing kernel; the
// protocol formerly defined here is model-checked in mc/protocols.cpp.)

FlightRecorder::FlightRecorder(FlightRecorderConfig config) : config_(config) {
  sampled_ring_.init(config_.capacity);
  anomaly_ring_.init(config_.capacity);
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    latency_buckets_[i].store(0, std::memory_order_relaxed);
  }
  if (config_.fixed_slow_threshold_us != 0) {
    threshold_us_.store(config_.fixed_slow_threshold_us, std::memory_order_relaxed);
  }
}

bool FlightRecorder::sample() noexcept {
  if (config_.sample_every <= 1) return true;
  return claim_sample_ticks(1) % config_.sample_every == 0;
}

std::uint32_t FlightRecorder::slow_threshold_us() const noexcept {
  return threshold_us_.load(std::memory_order_relaxed);
}

void FlightRecorder::observe_latency(std::uint32_t us) noexcept {
  observe_latency_n(us, 1);
}

void FlightRecorder::observe_latency_n(std::uint32_t us, std::uint32_t count) noexcept {
  if (count == 0) return;
  const std::uint32_t bucket = 31U - static_cast<std::uint32_t>(std::countl_zero(us | 1U));
  latency_buckets_[bucket].fetch_add(count, std::memory_order_relaxed);
  const std::uint64_t before = observed_.fetch_add(count, std::memory_order_relaxed);
  // Refresh the threshold whenever a 1024-observation boundary is
  // crossed; any thread may do it (the recompute is a 32-element scan
  // and the store is idempotent).
  if (config_.fixed_slow_threshold_us == 0 && (before >> 10) != ((before + count) >> 10)) {
    recompute_threshold();
  }
}

void FlightRecorder::recompute_threshold() noexcept {
  std::uint64_t counts[kLatencyBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    counts[i] = latency_buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return;
  // p99 rank: the bucket holding the (total - total/100)-th observation.
  const std::uint64_t rank = total - total / 100;
  std::uint64_t cumulative = 0;
  std::size_t p99_bucket = kLatencyBuckets - 1;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      p99_bucket = i;
      break;
    }
  }
  // Bucket i holds [2^i, 2^(i+1)); its upper bound approximates the p99.
  const double p99_us = static_cast<double>(std::uint64_t{2} << p99_bucket);
  double threshold = config_.slow_factor * p99_us;
  if (threshold < static_cast<double>(config_.min_slow_us)) {
    threshold = static_cast<double>(config_.min_slow_us);
  }
  if (threshold > 4294967295.0) threshold = 4294967295.0;
  threshold_us_.store(static_cast<std::uint32_t>(threshold), std::memory_order_relaxed);
}

void FlightRecorder::commit(const TraceRecord& record) noexcept {
  TraceRecord stamped = record;
  stamped.seq = commit_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool anomalous = stamped.anomalies != 0;
  Ring& ring = anomalous ? anomaly_ring_ : sampled_ring_;
  const std::size_t discarded = ring.push(stamped);
  committed_.fetch_add(1, std::memory_order_relaxed);
  if (anomalous) anomalies_.fetch_add(1, std::memory_order_relaxed);
  if (discarded != 0) overwritten_.fetch_add(discarded, std::memory_order_relaxed);
}

std::vector<TraceRecord> FlightRecorder::drain(std::size_t max) {
  std::vector<TraceRecord> out;
  TraceRecord record;
  while (out.size() < max && sampled_ring_.pop(record)) out.push_back(record);
  while (out.size() < max && anomaly_ring_.pop(record)) out.push_back(record);
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.seq < b.seq; });
  return out;
}

std::string FlightRecorder::to_ndjson(const TraceRecord& record) {
  std::string spans;
  for (std::uint8_t i = 0; i < record.span_count && i < TraceRecord::kMaxSpans; ++i) {
    if (!spans.empty()) spans += "; ";
    render_span(record.spans[i], spans);
  }
  const std::uint32_t v4 = record.client_v4;
  std::string out = util::format(
      "{\"seq\":%llu,\"ts_us\":%lld,\"worker\":%u,\"client\":\"%u.%u.%u.%u\","
      "\"qname\":\"%s\",\"latency_us\":%u,\"sampled\":%u,\"anomalies\":\"%s\","
      "\"spans\":\"%s\"}",
      static_cast<unsigned long long>(record.seq), static_cast<long long>(record.ts_us),
      record.worker, (v4 >> 24) & 0xFFU, (v4 >> 16) & 0xFFU, (v4 >> 8) & 0xFFU, v4 & 0xFFU,
      json_escape(record.qname).c_str(), record.latency_us, record.sampled,
      anomaly_names(record.anomalies).c_str(), json_escape(spans).c_str());
  return out;
}

// --- QueryTracer -----------------------------------------------------------

void QueryTracer::begin(std::chrono::steady_clock::time_point started) noexcept {
  if (recorder_ == nullptr) return;
  scratch_.ts_us = 0;
  scratch_.worker = worker_;
  scratch_.latency_us = 0;
  scratch_.anomalies = 0;
  scratch_.sampled = next_tick_sampled() ? 1 : 0;
  scratch_.span_count = 0;
  scratch_.client_v4 = 0;
  scratch_.qname[0] = '\0';
  deferred_qname_ = {};
  started_ = started;
  active_ = true;
}

void QueryTracer::render_qname(std::span<const std::uint8_t> labels) noexcept {
  std::size_t out = 0;
  std::size_t i = 0;
  while (i < labels.size()) {
    const std::uint8_t len = labels[i++];
    if (len == 0 || len > 63 || i + len > labels.size()) break;
    for (std::uint8_t k = 0; k < len && out + 2 < TraceRecord::kQnameSize; ++k) {
      const char c = static_cast<char>(labels[i + k]);
      scratch_.qname[out++] = (c >= 0x21 && c <= 0x7E) ? c : '?';
    }
    if (out + 1 < TraceRecord::kQnameSize) scratch_.qname[out++] = '.';
    i += len;
  }
  if (out == 0) scratch_.qname[out++] = '.';
  scratch_.qname[out] = '\0';
}

void QueryTracer::set_qname_text(std::string_view text) noexcept {
  const std::size_t n = std::min(text.size(), TraceRecord::kQnameSize - 1);
  std::memcpy(scratch_.qname, text.data(), n);
  scratch_.qname[n] = '\0';
}

TraceSpan* QueryTracer::span(TraceStage stage) noexcept {
  if (!active_ || scratch_.span_count >= TraceRecord::kMaxSpans) return nullptr;
  TraceSpan& slot = scratch_.spans[scratch_.span_count++];
  slot.stage = stage;
  slot.code = 0;
  slot.value = 0;
  slot.detail[0] = '\0';
  slot.elapsed_us = 0;
  if (scratch_.sampled != 0) {
    slot.elapsed_us = static_cast<std::uint32_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
  }
  return &slot;
}

void QueryTracer::finish() noexcept {
  if (!active_) return;
  active_ = false;
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started_);
  scratch_.latency_us =
      static_cast<std::uint32_t>(std::min<std::int64_t>(elapsed.count(), 0xFFFFFFFFLL));
  // Coalesce the rolling-estimate feed instead of touching the shared
  // counters per query: consecutive fast-path queries land in the same
  // power-of-two bucket, so one flush per rx batch (or bucket change)
  // carries the whole run and the per-query cost stays plain stores.
  const auto bucket = static_cast<std::uint8_t>(
      31U - static_cast<std::uint32_t>(std::countl_zero(scratch_.latency_us | 1U)));
  if (pending_count_ != 0 && bucket != pending_bucket_) flush_observations();
  pending_bucket_ = bucket;
  pending_us_ = scratch_.latency_us;
  ++pending_count_;
  if (scratch_.latency_us > recorder_->slow_threshold_us()) {
    scratch_.anomalies |= TraceAnomaly::kSlow;
  }
  if (scratch_.sampled == 0 && scratch_.anomalies == 0) return;
  // Work deferred to the 1-in-N commit path: decoding the wire qname
  // and reading the wall clock happen only for records actually kept.
  if (scratch_.qname[0] == '\0' && !deferred_qname_.empty()) {
    render_qname(deferred_qname_);
  }
  scratch_.ts_us = QueryLog::now_us();
  recorder_->commit(scratch_);
}

bool QueryTracer::next_tick_sampled() noexcept {
  const std::uint32_t every = recorder_->config().sample_every;
  if (every <= 1) return true;
  // Same tick stream as FlightRecorder::sample() (tick t samples iff
  // t % every == 0), claimed in strides so the shared cursor is one
  // fetch_add per kSampleStride queries instead of one per query —
  // cross-worker cache-line traffic is what a per-query claim would
  // cost. The division runs once per stride; the per-query path is a
  // compare and an add.
  if (stride_left_ == 0) {
    stride_base_ = recorder_->claim_sample_ticks(kSampleStride);
    stride_left_ = kSampleStride;
    next_sampled_tick_ = ((stride_base_ + every - 1) / every) * static_cast<std::uint64_t>(every);
  }
  const std::uint64_t tick = stride_base_ + (kSampleStride - stride_left_);
  --stride_left_;
  if (tick != next_sampled_tick_) return false;
  next_sampled_tick_ += every;
  return true;
}

void QueryTracer::flush_observations() noexcept {
  if (pending_count_ == 0 || recorder_ == nullptr) return;
  recorder_->observe_latency_n(pending_us_, pending_count_);
  pending_count_ = 0;
}

// --- thread-local installation ---------------------------------------------

QueryTracer* current_tracer() noexcept { return t_current_tracer; }

void set_current_tracer(QueryTracer* tracer) noexcept { t_current_tracer = tracer; }

}  // namespace eum::obs
