#include "obs/build_info.h"

#include "util/strings.h"

#ifndef EUM_GIT_DESCRIBE
#define EUM_GIT_DESCRIBE "unknown"
#endif
#ifndef EUM_COMPILER
#define EUM_COMPILER "unknown"
#endif
#ifndef EUM_BUILD_TYPE
#define EUM_BUILD_TYPE "unknown"
#endif

namespace eum::obs {

BuildInfo build_info() noexcept {
  return BuildInfo{EUM_GIT_DESCRIBE, EUM_COMPILER, EUM_BUILD_TYPE};
}

std::string build_info_string() {
  const BuildInfo info = build_info();
  return util::format("git=%s compiler=%s build=%s", info.git_describe, info.compiler,
                      info.build_type);
}

Gauge& register_build_info(MetricsRegistry& registry, Labels extra) {
  const BuildInfo info = build_info();
  Labels labels{{"git", info.git_describe},
                {"compiler", info.compiler},
                {"build_type", info.build_type}};
  for (auto& label : extra) labels.push_back(std::move(label));
  Gauge& gauge = registry.gauge("eum_build_info",
                                "build provenance; value is always 1, facts in labels",
                                std::move(labels));
  gauge.set(1);
  return gauge;
}

}  // namespace eum::obs
