// Sampled structured query log (dnstap-style) for the DNS serving stack.
//
// Every handled query can emit one record: timestamp, client, ECS
// prefix, qname/qtype, answer source, rcode, and serving latency in
// microseconds. Records land in a lock-striped ring buffer (each thread
// writes its own stripe, so worker threads only ever contend with a
// draining reader), and a drain pass renders them as NDJSON to a
// pluggable sink — stderr, a file, or the caller's own consumer.
//
// The log is deliberately decoupled from the DNS types: producers fill
// in pre-rendered strings, so `obs` stays below `dns`/`dnsserver` in the
// layering and the log can carry resolver, authority, and transport
// records alike.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eum::obs {

/// Where the answer came from — the paper's serving-path taxonomy
/// (static zone, mapping-system dynamic answer, two-tier referral) plus
/// the resolver-side cache outcomes RFC 7871 adds.
enum class AnswerSource : std::uint8_t {
  static_answer,     ///< authoritative zone data
  dynamic_answer,    ///< mapping-system (CDN) answer
  referral,          ///< two-tier delegation
  negative,          ///< NXDOMAIN / NODATA
  refused,           ///< not our zone
  form_error,        ///< malformed query
  cache_hit,         ///< resolver: served by a global (scope-/0) entry
  cache_hit_scoped,  ///< resolver: served by a scoped (RFC 7871) entry
  upstream,          ///< resolver: forwarded to an authority
  stale,             ///< resolver: RFC 8767 stale answer, upstream failed
};

[[nodiscard]] const char* to_string(AnswerSource source) noexcept;

struct QueryLogRecord {
  std::int64_t ts_us = 0;        ///< wall clock, microseconds since the Unix epoch
  std::string client;            ///< unicast source address
  std::string ecs;               ///< announced ECS prefix ("1.2.3.0/24"), empty if none
  std::string qname;
  std::string qtype;             ///< "A", "AAAA", "TXT", ...
  AnswerSource source = AnswerSource::static_answer;
  std::string rcode;             ///< "NOERROR", "NXDOMAIN", ...
  std::uint32_t latency_us = 0;  ///< serving latency
};

struct QueryLogConfig {
  /// Total ring capacity in records, split evenly across stripes; when
  /// full, the oldest record in the writing thread's stripe is
  /// overwritten (and counted in dropped()).
  std::size_t capacity = 4096;
  /// Independently-locked stripes (rounded up to a power of two). Each
  /// thread writes one stripe, picked by the same round-robin slot the
  /// latency histograms use.
  std::size_t stripes = 8;
  /// Log every Nth sampled query; 1 = everything. Production query
  /// streams are sampled exactly like the paper's telemetry pipelines.
  std::uint32_t sample_every = 1;
};

class QueryLog {
 public:
  explicit QueryLog(QueryLogConfig config = {});

  /// Cheap sampling decision; call before building a record so the hot
  /// path skips the string work for unsampled queries.
  [[nodiscard]] bool sample() noexcept;

  /// Append one record (lock-striped; the critical section is a move).
  void log(QueryLogRecord record);

  /// Remove and return everything, oldest first (by timestamp).
  [[nodiscard]] std::vector<QueryLogRecord> drain();

  /// Drain as NDJSON lines to a stdio stream (stderr, or a file the
  /// caller opened). Returns the number of records written.
  std::size_t drain_to(std::FILE* out);

  /// Records accepted into the ring (post-sampling).
  [[nodiscard]] std::uint64_t logged() const noexcept {
    return logged_.load(std::memory_order_relaxed);
  }
  /// Records overwritten before being drained.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// One NDJSON line (no trailing newline); empty `ecs` is omitted.
  [[nodiscard]] static std::string to_ndjson(const QueryLogRecord& record);

  /// Wall-clock helper for producers.
  [[nodiscard]] static std::int64_t now_us() noexcept;

 private:
  struct Stripe {
    std::mutex mutex;
    std::vector<QueryLogRecord> ring;  ///< fixed capacity, circular
    std::size_t next = 0;              ///< next write position
    std::size_t used = 0;              ///< live records (<= ring.size())
  };

  [[nodiscard]] Stripe& stripe_for_thread() noexcept;

  std::size_t stripe_count_;
  std::size_t stripe_mask_;
  std::size_t per_stripe_capacity_;
  std::unique_ptr<Stripe[]> stripes_;
  std::uint32_t sample_every_;
  std::atomic<std::uint64_t> sampler_{0};
  std::atomic<std::uint64_t> logged_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace eum::obs
