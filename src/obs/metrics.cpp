#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace eum::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto word = [](char c, bool first) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           (!first && c >= '0' && c <= '9');
  };
  if (!word(name.front(), true)) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) { return word(c, false); });
}

/// Prometheus text-exposition escaping: `\` -> `\\` and line feed ->
/// `\n` everywhere the spec escapes (HELP text and label values); label
/// values are double-quoted and additionally escape `"` -> `\"`. The
/// HELP line is unquoted, so quotes there stay raw per the spec.
std::string prometheus_escape(std::string_view text, bool label_value) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '"':
        if (label_value) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
  return out;
}

/// `{key="value",...}` with the Prometheus escapes, or "" for no labels.
std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += prometheus_escape(labels[i].second, /*label_value=*/true);
    out += '"';
  }
  out += '}';
  return out;
}

std::string full_name(const std::string& name, const Labels& labels) {
  return name + render_labels(labels);
}

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------- HistogramSnapshot ----------

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) buckets.resize(other.buckets.size(), 0);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::percentile(double q) const {
  if (q < 0.0 || q > 100.0) throw std::invalid_argument{"percentile: q outside [0, 100]"};
  if (count == 0) return 0.0;
  const double rank = q / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const auto next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = static_cast<double>(LatencyHistogram::bucket_lower(i));
      const double hi = static_cast<double>(LatencyHistogram::bucket_upper(i));
      const double frac = std::clamp(
          (rank - static_cast<double>(cumulative)) / static_cast<double>(buckets[i]), 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(LatencyHistogram::bucket_upper(buckets.size() - 1));
}

// ---------- LatencyHistogram ----------

LatencyHistogram::LatencyHistogram(std::size_t shards)
    : shard_count_(std::bit_ceil(std::max<std::size_t>(shards, 1))),
      shard_mask_(shard_count_ - 1),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(shard_count_ * kBucketCount)),
      sums_(std::make_unique<ShardSum[]>(shard_count_)) {
  for (std::size_t i = 0; i < shard_count_ * kBucketCount; ++i) buckets_[i] = 0;
}

std::size_t LatencyHistogram::shard_slot() const noexcept {
  // Round-robin shard assignment per thread: cheap, stable, and spreads
  // any number of worker threads over the shards without hashing.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void LatencyHistogram::record(std::uint64_t value) noexcept {
  if (value > kMaxValue) value = kMaxValue;
  const std::size_t shard = shard_slot() & shard_mask_;
  buckets_[shard * kBucketCount + bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  sums_[shard].sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBucketCount, 0);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      snap.buckets[b] += buckets_[s * kBucketCount + b].load(std::memory_order_relaxed);
    }
    snap.sum += sums_[s].sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : snap.buckets) snap.count += c;
  return snap;
}

void LatencyHistogram::reset() noexcept {
  for (std::size_t i = 0; i < shard_count_ * kBucketCount; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < shard_count_; ++s) {
    sums_[s].sum.store(0, std::memory_order_relaxed);
  }
}

// ---------- MetricsRegistry ----------

MetricsRegistry::Key MetricsRegistry::make_key(std::string_view name, Labels& labels) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument{"MetricsRegistry: invalid metric name '" + std::string{name} +
                                "'"};
  }
  std::sort(labels.begin(), labels.end());
  return {std::string{name}, render_labels(labels)};
}

void MetricsRegistry::check_kind(const Key& key, Kind kind) const {
  const bool clash = (kind != Kind::counter && counters_.count(key) != 0) ||
                     (kind != Kind::gauge && gauges_.count(key) != 0) ||
                     (kind != Kind::histogram && histograms_.count(key) != 0);
  if (clash) {
    throw std::invalid_argument{"MetricsRegistry: metric '" + key.first + key.second +
                                "' already registered as a different kind"};
  }
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help, Labels labels) {
  Key key = make_key(name, labels);
  const std::scoped_lock lock{mutex_};
  check_kind(key, Kind::counter);
  auto [it, inserted] = counters_.try_emplace(std::move(key));
  if (inserted) {
    it->second.labels = std::move(labels);
    it->second.help = std::string{help};
    it->second.metric = std::make_unique<Counter>();
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help, Labels labels) {
  Key key = make_key(name, labels);
  const std::scoped_lock lock{mutex_};
  check_kind(key, Kind::gauge);
  auto [it, inserted] = gauges_.try_emplace(std::move(key));
  if (inserted) {
    it->second.labels = std::move(labels);
    it->second.help = std::string{help};
    it->second.metric = std::make_unique<Gauge>();
  }
  return *it->second.metric;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                             Labels labels, std::size_t shards) {
  Key key = make_key(name, labels);
  const std::scoped_lock lock{mutex_};
  check_kind(key, Kind::histogram);
  auto [it, inserted] = histograms_.try_emplace(std::move(key));
  if (inserted) {
    it->second.labels = std::move(labels);
    it->second.help = std::string{help};
    it->second.metric = std::make_unique<LatencyHistogram>(shards);
  }
  return *it->second.metric;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::scoped_lock lock{mutex_};
  snap.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    snap.counters.push_back({key.first, entry.labels, entry.help, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_) {
    snap.gauges.push_back({key.first, entry.labels, entry.help, entry.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    snap.histograms.push_back({key.first, entry.labels, entry.help, entry.metric->snapshot()});
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock{mutex_};
  for (auto& [key, entry] : counters_) entry.metric->reset();
  for (auto& [key, entry] : histograms_) entry.metric->reset();
  // Gauges mirror live state (cache occupancy, queue depth) and are
  // deliberately NOT cleared — see the reset contract in the header.
}

// ---------- Exposition ----------

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  const auto header = [&out](const std::string& name, const std::string& help,
                             const char* type) {
    // HELP text carries operator prose: escape it per the exposition
    // format spec (backslash and line feed) so a multi-line or
    // backslashed help string cannot corrupt the line protocol.
    if (!help.empty()) {
      out += "# HELP " + name + " " + prometheus_escape(help, /*label_value=*/false) + "\n";
    }
    out += "# TYPE " + name + " " + type + "\n";
  };

  std::string last_family;
  for (const auto& sample : snapshot.counters) {
    if (sample.name != last_family) {
      header(sample.name, sample.help, "counter");
      last_family = sample.name;
    }
    out += full_name(sample.name, sample.labels) + " " + std::to_string(sample.value) + "\n";
  }
  last_family.clear();
  for (const auto& sample : snapshot.gauges) {
    if (sample.name != last_family) {
      header(sample.name, sample.help, "gauge");
      last_family = sample.name;
    }
    out += full_name(sample.name, sample.labels) + " " + std::to_string(sample.value) + "\n";
  }
  for (const auto& sample : snapshot.histograms) {
    header(sample.name, sample.help, "histogram");
    // Cumulative buckets; only occupied edges are emitted (a sparse but
    // valid exposition — `le` buckets are cumulative, so gaps are fine).
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < sample.hist.buckets.size(); ++i) {
      if (sample.hist.buckets[i] == 0) continue;
      cumulative += sample.hist.buckets[i];
      Labels with_le = sample.labels;
      with_le.emplace_back("le", std::to_string(LatencyHistogram::bucket_upper(i)));
      out += full_name(sample.name + "_bucket", with_le) + " " + std::to_string(cumulative) +
             "\n";
    }
    Labels inf = sample.labels;
    inf.emplace_back("le", "+Inf");
    out += full_name(sample.name + "_bucket", inf) + " " + std::to_string(sample.hist.count) +
           "\n";
    out += full_name(sample.name + "_sum", sample.labels) + " " +
           std::to_string(sample.hist.sum) + "\n";
    out += full_name(sample.name + "_count", sample.labels) + " " +
           std::to_string(sample.hist.count) + "\n";
  }
  return out;
}

stats::Table render_table(const MetricsSnapshot& snapshot) {
  stats::Table table{"metric", "value"};
  for (const auto& sample : snapshot.counters) {
    table.add_row(full_name(sample.name, sample.labels), sample.value);
  }
  for (const auto& sample : snapshot.gauges) {
    table.add_row({full_name(sample.name, sample.labels), std::to_string(sample.value)});
  }
  for (const auto& sample : snapshot.histograms) {
    const std::string base = full_name(sample.name, sample.labels);
    table.add_row(base + "_count", sample.hist.count);
    table.add_row(base + "_mean", sample.hist.mean(), 1);
    table.add_row(base + "_p50", sample.hist.percentile(50), 1);
    table.add_row(base + "_p90", sample.hist.percentile(90), 1);
    table.add_row(base + "_p99", sample.hist.percentile(99), 1);
    table.add_row(base + "_p999", sample.hist.percentile(99.9), 1);
  }
  return table;
}

std::string render_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& sample = snapshot.counters[i];
    if (i != 0) out += ',';
    out += "\"" + json_escape(full_name(sample.name, sample.labels)) +
           "\":" + std::to_string(sample.value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& sample = snapshot.gauges[i];
    if (i != 0) out += ',';
    out += "\"" + json_escape(full_name(sample.name, sample.labels)) +
           "\":" + std::to_string(sample.value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& sample = snapshot.histograms[i];
    if (i != 0) out += ',';
    out += "\"" + json_escape(full_name(sample.name, sample.labels)) + "\":" +
           util::format("{\"count\":%llu,\"sum\":%llu,\"mean\":%.3f,\"p50\":%.1f,"
                        "\"p90\":%.1f,\"p99\":%.1f,\"p999\":%.1f}",
                        static_cast<unsigned long long>(sample.hist.count),
                        static_cast<unsigned long long>(sample.hist.sum), sample.hist.mean(),
                        sample.hist.percentile(50), sample.hist.percentile(90),
                        sample.hist.percentile(99), sample.hist.percentile(99.9));
  }
  out += "}}";
  return out;
}

}  // namespace eum::obs
