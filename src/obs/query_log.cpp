#include "obs/query_log.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "util/strings.h"

namespace eum::obs {

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* to_string(AnswerSource source) noexcept {
  switch (source) {
    case AnswerSource::static_answer: return "static";
    case AnswerSource::dynamic_answer: return "dynamic";
    case AnswerSource::referral: return "referral";
    case AnswerSource::negative: return "negative";
    case AnswerSource::refused: return "refused";
    case AnswerSource::form_error: return "form_error";
    case AnswerSource::cache_hit: return "cache_hit";
    case AnswerSource::cache_hit_scoped: return "cache_hit_scoped";
    case AnswerSource::upstream: return "upstream";
    case AnswerSource::stale: return "stale";
  }
  return "unknown";
}

QueryLog::QueryLog(QueryLogConfig config)
    : stripe_count_(std::bit_ceil(std::max<std::size_t>(config.stripes, 1))),
      stripe_mask_(stripe_count_ - 1),
      per_stripe_capacity_(std::max<std::size_t>(1, config.capacity / stripe_count_)),
      stripes_(std::make_unique<Stripe[]>(stripe_count_)),
      sample_every_(std::max<std::uint32_t>(config.sample_every, 1)) {
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    stripes_[i].ring.resize(per_stripe_capacity_);
  }
}

QueryLog::Stripe& QueryLog::stripe_for_thread() noexcept {
  // Same per-thread round-robin slot scheme as LatencyHistogram: each
  // worker thread settles on one stripe and only the drain pass ever
  // crosses stripes.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return stripes_[slot & stripe_mask_];
}

bool QueryLog::sample() noexcept {
  if (sample_every_ <= 1) return true;
  return sampler_.fetch_add(1, std::memory_order_relaxed) % sample_every_ == 0;
}

void QueryLog::log(QueryLogRecord record) {
  Stripe& stripe = stripe_for_thread();
  bool overwrote = false;
  {
    const std::scoped_lock lock{stripe.mutex};
    overwrote = stripe.used == stripe.ring.size();
    stripe.ring[stripe.next] = std::move(record);
    stripe.next = (stripe.next + 1) % stripe.ring.size();
    if (!overwrote) ++stripe.used;
  }
  logged_.fetch_add(1, std::memory_order_relaxed);
  if (overwrote) dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<QueryLogRecord> QueryLog::drain() {
  std::vector<QueryLogRecord> out;
  for (std::size_t i = 0; i < stripe_count_; ++i) {
    Stripe& stripe = stripes_[i];
    const std::scoped_lock lock{stripe.mutex};
    // Oldest record sits at `next` when the ring has wrapped, else at 0.
    const std::size_t start =
        stripe.used == stripe.ring.size() ? stripe.next : 0;
    for (std::size_t k = 0; k < stripe.used; ++k) {
      out.push_back(std::move(stripe.ring[(start + k) % stripe.ring.size()]));
    }
    stripe.used = 0;
    stripe.next = 0;
  }
  std::stable_sort(out.begin(), out.end(), [](const QueryLogRecord& a, const QueryLogRecord& b) {
    return a.ts_us < b.ts_us;
  });
  return out;
}

std::size_t QueryLog::drain_to(std::FILE* out) {
  const std::vector<QueryLogRecord> records = drain();
  for (const QueryLogRecord& record : records) {
    const std::string line = to_ndjson(record);
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
  }
  std::fflush(out);
  return records.size();
}

std::string QueryLog::to_ndjson(const QueryLogRecord& record) {
  std::string out = util::format("{\"ts_us\":%lld,\"client\":\"%s\",",
                                 static_cast<long long>(record.ts_us),
                                 json_escape(record.client).c_str());
  if (!record.ecs.empty()) {
    out += "\"ecs\":\"" + json_escape(record.ecs) + "\",";
  }
  out += util::format(
      "\"qname\":\"%s\",\"qtype\":\"%s\",\"source\":\"%s\",\"rcode\":\"%s\","
      "\"latency_us\":%u}",
      json_escape(record.qname).c_str(), json_escape(record.qtype).c_str(),
      to_string(record.source), json_escape(record.rcode).c_str(), record.latency_us);
  return out;
}

std::int64_t QueryLog::now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace eum::obs
