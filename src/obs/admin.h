// Operator introspection channel, in the spirit of BIND's
// statistics-channel and unbound-control: a localhost-only TCP listener
// speaking a trivial line protocol. One command per line; the response
// is arbitrary text terminated by a line containing exactly "END", so
// `printf 'stats\n' | nc 127.0.0.1 PORT` and scripted probes both work.
// Errors come back as "ERROR: ..." followed by "END". "quit" closes the
// connection.
//
// The server owns nothing it reports on: built-in commands render the
// shared MetricsRegistry and drain the FlightRecorder, and the hosting
// binary registers domain commands (cache.stats, snapshot.info, health,
// explain ...) as closures. dispatch() is exposed directly so tests can
// drive every command without a socket.
//
// This is the cold path — handlers run on the admin thread and may
// allocate and lock freely; the only contact with the serve path is
// through the wait-free FlightRecorder rings and relaxed metric reads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace eum::obs {

struct AdminServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Registry behind the built-in `stats` / `metrics` commands (optional).
  MetricsRegistry* registry = nullptr;
  /// Recorder behind the built-in `traces` command (optional).
  FlightRecorder* recorder = nullptr;
  /// Accept/read poll granularity — bounds stop() latency.
  std::chrono::milliseconds poll_interval{50};
};

class AdminServer {
 public:
  /// Command handler: argv (argv[0] = command name) -> response text.
  /// A missing trailing newline is added; the END terminator is appended
  /// by the server. Throwing reports "ERROR: <what>" to the client.
  using Handler = std::function<std::string(const std::vector<std::string>&)>;

  explicit AdminServer(AdminServerConfig config = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Register a command before start(); replaces any previous handler of
  /// the same name. `help_text` shows up in the built-in `help` output.
  void register_command(std::string name, std::string help_text, Handler handler);

  /// Resolve one command line to its response body (no END terminator).
  /// Used by the socket loop and directly by tests.
  [[nodiscard]] std::string dispatch(std::string_view line);

  /// Bind 127.0.0.1:port and serve on a background thread. Throws
  /// std::runtime_error when the socket can't be set up.
  void start();
  void stop();

  /// The bound port (resolved after start() when config port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

 private:
  struct Command {
    std::string help;
    Handler handler;
  };

  void register_builtins();
  void serve_loop();
  void serve_connection(int client_fd);

  AdminServerConfig config_;
  std::map<std::string, Command> commands_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace eum::obs
