#include "obs/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/strings.h"

namespace eum::obs {
namespace {

constexpr std::string_view kTerminator = "END\n";

std::vector<std::string> split_args(std::string_view line) {
  std::vector<std::string> args;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) args.emplace_back(line.substr(start, i - start));
  }
  return args;
}

void close_fd(int& fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config) : config_(config) { register_builtins(); }

AdminServer::~AdminServer() { stop(); }

void AdminServer::register_command(std::string name, std::string help_text, Handler handler) {
  commands_[std::move(name)] = Command{std::move(help_text), std::move(handler)};
}

void AdminServer::register_builtins() {
  register_command("help", "list available commands", [this](const std::vector<std::string>&) {
    std::string out;
    for (const auto& [name, command] : commands_) {
      out += name;
      if (!command.help.empty()) {
        out += "  - ";
        out += command.help;
      }
      out += '\n';
    }
    return out;
  });
  register_command("stats", "human-readable metrics table",
                   [this](const std::vector<std::string>&) -> std::string {
                     if (config_.registry == nullptr) return "no metrics registry attached\n";
                     return config_.registry->table().render();
                   });
  register_command("metrics", "Prometheus exposition of all metrics",
                   [this](const std::vector<std::string>&) -> std::string {
                     if (config_.registry == nullptr) return "no metrics registry attached\n";
                     return config_.registry->prometheus();
                   });
  register_command(
      "traces", "traces [n]: drain up to n flight-recorder records as NDJSON (default all)",
      [this](const std::vector<std::string>& args) -> std::string {
        if (config_.recorder == nullptr) return "no flight recorder attached\n";
        std::size_t max = SIZE_MAX;
        if (args.size() > 1) {
          char* end = nullptr;
          const unsigned long long parsed = std::strtoull(args[1].c_str(), &end, 10);
          if (end == args[1].c_str() || *end != '\0') {
            throw std::runtime_error("traces: count must be a non-negative integer");
          }
          max = static_cast<std::size_t>(parsed);
        }
        std::string out;
        for (const TraceRecord& record : config_.recorder->drain(max)) {
          out += FlightRecorder::to_ndjson(record);
          out += '\n';
        }
        out += util::format(
            "# recorder committed=%llu anomalies_retained=%llu overwritten=%llu "
            "observed=%llu slow_threshold_us=%lu sample_every=%lu\n",
            static_cast<unsigned long long>(config_.recorder->committed()),
            static_cast<unsigned long long>(config_.recorder->anomalies_retained()),
            static_cast<unsigned long long>(config_.recorder->overwritten()),
            static_cast<unsigned long long>(config_.recorder->observed()),
            static_cast<unsigned long>(config_.recorder->slow_threshold_us()),
            static_cast<unsigned long>(config_.recorder->config().sample_every));
        return out;
      });
}

std::string AdminServer::dispatch(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.remove_suffix(1);
  const std::vector<std::string> args = split_args(line);
  if (args.empty()) return {};
  const auto it = commands_.find(args[0]);
  if (it == commands_.end()) {
    return util::format("ERROR: unknown command '%s' (try 'help')\n", args[0].c_str());
  }
  try {
    std::string out = it->second.handler(args);
    if (!out.empty() && out.back() != '\n') out += '\n';
    return out;
  } catch (const std::exception& error) {
    return util::format("ERROR: %s\n", error.what());
  }
}

void AdminServer::start() {
  if (thread_.joinable()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("admin: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only, by design
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close_fd(listen_fd_);
    throw std::runtime_error(
        util::format("admin: bind(127.0.0.1:%u) failed: %s",
                     static_cast<unsigned>(config_.port), std::strerror(err)));
  }
  if (::listen(listen_fd_, 4) != 0) {
    const int err = errno;
    close_fd(listen_fd_);
    throw std::runtime_error(util::format("admin: listen() failed: %s", std::strerror(err)));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void AdminServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  close_fd(listen_fd_);
  bound_port_ = 0;
}

void AdminServer::serve_loop() {
  const int timeout_ms = static_cast<int>(config_.poll_interval.count());
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    serve_connection(client_fd);
    ::close(client_fd);
  }
}

void AdminServer::serve_connection(int client_fd) {
  const int timeout_ms = static_cast<int>(config_.poll_interval.count());
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Serve any complete lines already buffered.
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      std::string_view trimmed = line;
      while (!trimmed.empty() && trimmed.back() == '\r') trimmed.remove_suffix(1);
      if (trimmed == "quit" || trimmed == "exit") return;
      std::string response = dispatch(trimmed);
      response += kTerminator;
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t n = ::send(client_fd, response.data() + sent, response.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) return;
        sent += static_cast<std::size_t>(n);
      }
    }
    pollfd pfd{client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) return;
    if (ready == 0) continue;
    const ssize_t n = ::recv(client_fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;  // peer closed (or error)
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > 1U << 20) return;  // refuse unbounded buffering
  }
}

}  // namespace eum::obs
