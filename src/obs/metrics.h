// Process-wide observability: a registry of named, optionally-labelled
// counters, gauges, and sharded log-bucket latency histograms.
//
// The paper's evaluation (Figures 13-23) is production telemetry; every
// layer of the serving stack here is instrumented the same way so the
// repo can answer "where does the time go" before optimising. Design
// constraints, in order:
//
//   1. Recording on the UDP worker threads is wait-free: counters are
//      single relaxed atomics, histogram recording is two relaxed
//      fetch_adds into a per-thread shard (no locks, no CAS loops).
//   2. Snapshots are mergeable: `HistogramSnapshot::merge` is an
//      elementwise add, so per-shard (and per-process) views compose
//      associatively.
//   3. One exposition source, three formats: Prometheus text, the
//      repo's `stats::Table`, and a JSON dump the benches use to emit
//      BENCH_*.json artifacts.
//
// Metric naming scheme: `eum_<module>_<name>` with `_total` on
// monotonic counters and `_us` on microsecond histograms (see
// DESIGN.md "Observability").
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/table.h"

namespace eum::obs {

/// Label set attached to a metric ("worker" = "3"). Kept sorted by key
/// once registered so (name, labels) identity is canonical.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter; wait-free recording from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value (cache occupancy, queue depth). Unlike counters,
/// gauges mirror live state, so the registry-wide reset contract leaves
/// them alone (see MetricsRegistry::reset).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A merged, immutable view of a histogram: per-bucket counts plus count
/// and sum. Merging is an elementwise add, hence associative and
/// commutative — shard views, thread views, and process views all
/// compose the same way.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void merge(const HistogramSnapshot& other);

  /// Quantile estimate (q in [0,100]) by linear interpolation inside
  /// the covering bucket; error is bounded by one bucket width (<= 1
  /// below 32, <= 6.25% relative above). 0 when empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Log-bucket latency histogram (HdrHistogram-style log-linear layout):
/// values 0..31 get exact unit buckets, larger values get 16 linear
/// sub-buckets per power of two (<= 6.25% relative bucket width), and
/// everything is clamped at 2^32-1 — microseconds up to ~71 minutes.
///
/// Recording is wait-free: each thread writes a private shard (round-
/// robin assignment on first use), so worker threads never contend on a
/// cache line. Snapshots merge the shards.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 32
  static constexpr std::uint64_t kHalf = kSubBuckets / 2;               // 16
  static constexpr unsigned kMaxBits = 32;
  static constexpr std::uint64_t kMaxValue = (1ull << kMaxBits) - 1;
  static constexpr std::size_t kBucketCount =
      (kMaxBits - kSubBucketBits) * kHalf + kSubBuckets;  // 464

  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v > kMaxValue) v = kMaxValue;
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned exp = static_cast<unsigned>(std::bit_width(v)) - kSubBucketBits;
    return static_cast<std::size_t>(exp) * kHalf + static_cast<std::size_t>(v >> exp);
  }
  /// Inclusive lower edge of bucket i.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::size_t exp = i / kHalf - 1;
    return (i - exp * kHalf) << exp;
  }
  /// Exclusive upper edge of bucket i.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i < kSubBuckets) return i + 1;
    const std::size_t exp = i / kHalf - 1;
    return (i - exp * kHalf + 1) << exp;
  }

  /// `shards` is rounded up to a power of two.
  explicit LatencyHistogram(std::size_t shards = 8);

  /// Wait-free: two relaxed fetch_adds on this thread's shard.
  void record(std::uint64_t value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Zero all buckets. Not linearizable against concurrent record()
  /// calls (a racing increment may survive or vanish) — the same
  /// contract as Counter::reset.
  void reset() noexcept;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shard_count_; }

 private:
  [[nodiscard]] std::size_t shard_slot() const noexcept;

  std::size_t shard_count_;
  std::size_t shard_mask_;
  /// Shard-major bucket counts: shard s owns [s*kBucketCount, (s+1)*kBucketCount).
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  struct alignas(64) ShardSum {
    std::atomic<std::uint64_t> sum{0};
  };
  std::unique_ptr<ShardSum[]> sums_;
};

/// Point-in-time copy of every metric in a registry, used by all three
/// exposition formats. Samples are sorted by (name, labels).
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    Labels labels;
    std::string help;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    Labels labels;
    std::string help;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    Labels labels;
    std::string help;
    HistogramSnapshot hist;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Prometheus text exposition format (counters as `_total`, histograms
/// as cumulative `_bucket{le=...}` / `_sum` / `_count`; only occupied
/// buckets plus `+Inf` are emitted).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Two-column ("metric", "value") stats::Table; histograms render as
/// count/mean/p50/p90/p99/p999 rows.
[[nodiscard]] stats::Table render_table(const MetricsSnapshot& snapshot);

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} —
/// the payload the benches embed in BENCH_*.json artifacts.
[[nodiscard]] std::string render_json(const MetricsSnapshot& snapshot);

/// Registry of named metrics. Registration (counter/gauge/histogram) is
/// mutex-protected and idempotent: asking for an existing (name, labels)
/// pair returns the same object, so components sharing a registry share
/// the metric. Returned references stay valid for the registry's
/// lifetime — components cache them and record lock-free thereafter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Names must match [a-zA-Z_][a-zA-Z0-9_]*; registering one name as
  /// two different kinds throws std::invalid_argument.
  Counter& counter(std::string_view name, std::string_view help = "", Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = "", Labels labels = {});
  LatencyHistogram& histogram(std::string_view name, std::string_view help = "",
                              Labels labels = {}, std::size_t shards = 8);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The registry-wide reset contract (shared by every component's
  /// reset_stats()): monotonic state is zeroed — counters to 0,
  /// histograms emptied — while gauges are left untouched, because they
  /// mirror live state (a cache's entry count survives a stats reset).
  void reset();

  // Convenience single-call exposition.
  [[nodiscard]] std::string prometheus() const { return render_prometheus(snapshot()); }
  [[nodiscard]] stats::Table table() const { return render_table(snapshot()); }
  [[nodiscard]] std::string json() const { return render_json(snapshot()); }

 private:
  /// (name, canonical label string) -> metric; map keeps exposition sorted.
  using Key = std::pair<std::string, std::string>;
  template <typename T>
  struct Entry {
    Labels labels;
    std::string help;
    std::unique_ptr<T> metric;
  };

  enum class Kind { counter, gauge, histogram };
  [[nodiscard]] static Key make_key(std::string_view name, Labels& labels);
  void check_kind(const Key& key, Kind kind) const;  // caller holds mutex_

  mutable std::mutex mutex_;
  std::map<Key, Entry<Counter>> counters_;
  std::map<Key, Entry<Gauge>> gauges_;
  std::map<Key, Entry<LatencyHistogram>> histograms_;
};

}  // namespace eum::obs
