// Per-query flight recorder: sampled trace spans on the serve path.
//
// The paper's staged rollout (§4) needed operators to answer "what
// happened to THIS query" — aggregates (metrics.h) can't. This module
// is the per-query layer: every query gets a preallocated per-worker
// scratch record (QueryTracer) that the serve path fills with spans —
// rx, answer-cache probe, mapping decision, authoritative handle,
// resolver attempts, tx — and a finish() decision commits it into a
// global bounded ring (FlightRecorder) when the query was sampled OR
// anomalous. Anomalies (latency above a rolling p99-derived threshold,
// SERVFAIL, stale-served, worker exception, send error) are always
// retained, even when sampling would have dropped the query: they land
// in their own ring, so a flood of healthy traffic can never evict the
// one trace the operator needs.
//
// Serve-path discipline (enforced by scripts/lint_invariants.py, which
// fences this file): the per-query cost is wait-free and allocation-free
// — QueryTracer is single-owner POD scratch (plain stores, two
// steady_clock reads per query), and FlightRecorder's rings are bounded
// MPMC queues in the Vyukov style (per-cell sequence numbers, explicit
// memory orders, no locks anywhere). Wall-clock timestamps are read only
// at commit time, through obs::QueryLog::now_us(), so unsampled healthy
// queries never touch the wall clock.
//
// Deep layers (the authoritative engine, the mapping handler, the
// resolver) add spans through a thread-local current tracer installed by
// the UDP worker (TracerScope), so no function signature on the serve
// path had to change to thread the trace through.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lockfree/atomics_policy.h"
#include "lockfree/mpmc_ring.h"

namespace eum::obs {

/// Where on the serve path a span was recorded.
enum class TraceStage : std::uint8_t {
  rx,                ///< datagram received (value = wire size)
  cache_probe,       ///< answer-cache lookup (code: 1 hit, 0 miss, -1 unprobeable)
  map_decision,      ///< snapshot map() (code: 1 = client-block path, value = cluster)
  handle,            ///< authoritative handle (code = rcode, detail = answer source)
  resolver_attempt,  ///< one upstream attempt (code = attempt #, value = latency us)
  tx,                ///< response staged / send outcome (value = wire size)
};

[[nodiscard]] const char* to_string(TraceStage stage) noexcept;

/// Anomaly bitmask: any set bit forces retention regardless of sampling.
struct TraceAnomaly {
  static constexpr std::uint32_t kSlow = 1U << 0;       ///< latency above threshold
  static constexpr std::uint32_t kServfail = 1U << 1;   ///< response rcode SERVFAIL
  static constexpr std::uint32_t kStale = 1U << 2;      ///< RFC 8767 stale served
  static constexpr std::uint32_t kException = 1U << 3;  ///< worker barrier absorbed a throw
  static constexpr std::uint32_t kSendError = 1U << 4;  ///< kernel refused the response
};

/// Render a mask as "slow|servfail"; empty mask renders as "".
[[nodiscard]] std::string anomaly_names(std::uint32_t mask);

/// One fixed-size span. POD on purpose: recording is plain stores into
/// the worker's scratch, committing is a memcpy into the ring.
struct TraceSpan {
  static constexpr std::size_t kDetailSize = 40;

  TraceStage stage = TraceStage::rx;
  std::int32_t code = 0;      ///< stage-specific (rcode, hit/miss, attempt #)
  std::int64_t value = 0;     ///< stage-specific (bytes, cluster id, latency us)
  std::uint32_t elapsed_us = 0;  ///< since begin(); stamped only when sampled
  char detail[kDetailSize] = {};  ///< short NUL-terminated label

  /// Truncating copy into `detail`.
  void set_detail(std::string_view text) noexcept;
};

/// One committed query trace. Fixed-size so ring cells need no heap.
struct TraceRecord {
  static constexpr std::size_t kMaxSpans = 12;
  static constexpr std::size_t kQnameSize = 64;

  std::uint64_t seq = 0;        ///< global commit sequence (drain orders by this)
  std::int64_t ts_us = 0;       ///< wall clock at commit (us since epoch)
  std::uint32_t worker = 0;
  std::uint32_t latency_us = 0;
  std::uint32_t anomalies = 0;  ///< TraceAnomaly mask
  std::uint8_t sampled = 0;     ///< 1 when the sampler picked this query
  std::uint8_t span_count = 0;
  std::uint32_t client_v4 = 0;  ///< host-order source address; 0 = unknown
  char qname[kQnameSize] = {};  ///< dotted text, NUL-terminated ("" = unknown)
  TraceSpan spans[kMaxSpans];
};

struct FlightRecorderConfig {
  /// Retained records per ring (sampled and anomalous rings are separate,
  /// so anomalies can never be crowded out). Rounded up to a power of 2.
  std::size_t capacity = 1024;
  /// Trace every Nth query in full; 0/1 = every query.
  std::uint32_t sample_every = 64;
  /// Slow-query threshold = max(min_slow_us, slow_factor * rolling p99).
  double slow_factor = 4.0;
  std::uint32_t min_slow_us = 1000;
  /// Nonzero pins the slow threshold (tests, operator override) and
  /// disables the rolling estimate.
  std::uint32_t fixed_slow_threshold_us = 0;
};

/// Global trace sink: two bounded wait-free MPMC rings (sampled /
/// anomalous) plus the rolling latency estimate that defines "slow".
/// Producers are the per-worker QueryTracers; the consumer is the admin
/// channel's `traces` command (or a test). Overwrite-oldest on overflow,
/// counted — never blocks a worker.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Per-query sampling decision (single relaxed fetch_add).
  [[nodiscard]] bool sample() noexcept;

  /// Reserve `n` consecutive sampler ticks (one relaxed fetch_add) and
  /// return the first. QueryTracers claim ticks in strides so the shared
  /// sampler cursor is touched once per rx batch, not per datagram; tick
  /// t samples iff t % sample_every == 0, so the global 1-in-N rate is
  /// independent of the stride size.
  [[nodiscard]] std::uint64_t claim_sample_ticks(std::uint32_t n) noexcept {
    return sampler_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Current slow-query threshold; UINT32_MAX until the rolling estimate
  /// has enough observations (nothing is "slow" before a baseline exists).
  [[nodiscard]] std::uint32_t slow_threshold_us() const noexcept;

  /// Feed the rolling latency estimate (every finished query, sampled or
  /// not). Two relaxed adds; every 1024th observation recomputes the
  /// threshold from the bucket counts.
  void observe_latency(std::uint32_t us) noexcept;

  /// Batched observe_latency(): `count` observations that all share
  /// `us`'s power-of-two bucket, for one pair of relaxed adds. The
  /// workers' QueryTracers run-length coalesce their feed per rx batch
  /// so the shared counters don't ping-pong between cores on every
  /// datagram — at 4 workers that coherence traffic, not the stores,
  /// is the tracer's dominant serve-path cost.
  void observe_latency_n(std::uint32_t us, std::uint32_t count) noexcept;

  /// Enqueue a finished record. Routes to the anomaly ring when
  /// record.anomalies != 0, else to the sampled ring. Lock-free; on a
  /// full ring the oldest record of that ring is discarded (counted).
  void commit(const TraceRecord& record) noexcept;

  /// Remove up to `max` records across both rings, oldest first by
  /// commit sequence. Safe concurrently with producers.
  [[nodiscard]] std::vector<TraceRecord> drain(std::size_t max = SIZE_MAX);

  // --- introspection counters (relaxed) --------------------------------
  [[nodiscard]] std::uint64_t committed() const noexcept {
    return committed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t anomalies_retained() const noexcept {
    return anomalies_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return overwritten_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t observed() const noexcept {
    return observed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FlightRecorderConfig& config() const noexcept { return config_; }

  /// One flat NDJSON object (no trailing newline); spans are rendered
  /// into a single string field so the schema stays flat.
  [[nodiscard]] static std::string to_ndjson(const TraceRecord& record);

 private:
  /// Bounded MPMC ring (Vyukov): per-cell sequence numbers, CAS claims,
  /// release/acquire pairs on the cell sequence protect the payload copy.
  /// Bounded MPMC ring with producer-side eviction. The protocol lives
  /// in the extracted lockfree::MpmcRing kernel so the identical code is
  /// model-checked under mc::atomic (see mc/protocols.cpp).
  using Ring = lockfree::MpmcRing<lockfree::StdAtomicsPolicy, TraceRecord>;

  void recompute_threshold() noexcept;

  FlightRecorderConfig config_;
  Ring sampled_ring_;
  Ring anomaly_ring_;
  std::atomic<std::uint64_t> sampler_{0};
  std::atomic<std::uint64_t> commit_seq_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> anomalies_{0};
  std::atomic<std::uint64_t> overwritten_{0};
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint32_t> threshold_us_{0xFFFFFFFFU};
  /// Power-of-two latency buckets feeding the rolling p99 estimate.
  static constexpr std::size_t kLatencyBuckets = 32;
  std::atomic<std::uint64_t> latency_buckets_[kLatencyBuckets];
};

/// Per-worker trace scratch. Single owner by design: only its worker
/// thread touches it between begin() and finish(), so recording is plain
/// stores — no atomics, no locks, no allocation.
class QueryTracer {
 public:
  QueryTracer(FlightRecorder* recorder, std::uint32_t worker) noexcept
      : recorder_(recorder), worker_(worker) {}
  /// Flushes any coalesced observations still pending.
  ~QueryTracer() { flush_observations(); }

  QueryTracer(const QueryTracer&) = delete;
  QueryTracer& operator=(const QueryTracer&) = delete;

  /// Arm the scratch for one query: resets spans/anomalies, consults the
  /// recorder's sampler, stamps the start time. Every query is traced
  /// into the scratch (cheap plain stores) so an anomaly discovered at
  /// finish() still has its spans; only sampled queries stamp per-span
  /// elapsed times (extra clock reads).
  void begin() noexcept { begin(std::chrono::steady_clock::now()); }
  /// begin() against a caller-provided start time. The worker passes the
  /// batch-receipt timestamp, shared by every datagram in the rx batch:
  /// one clock read per batch, and the per-query latency then includes
  /// queueing behind batch-mates — the same quantity the serve-latency
  /// histogram reports.
  void begin(std::chrono::steady_clock::time_point started) noexcept;

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] bool sampled() const noexcept { return scratch_.sampled != 0; }

  void set_client_v4(std::uint32_t host_order) noexcept { scratch_.client_v4 = host_order; }
  /// Record the wire-format qname (the answer-cache probe's view) by
  /// reference; it is decoded into dotted text only if the query commits
  /// (sampled or anomalous), so the 63-in-64 healthy majority never pays
  /// the copy. The labels must stay valid until finish() — the worker's
  /// rx batch buffer, untouched until the next receive, satisfies this.
  void set_qname_wire(std::span<const std::uint8_t> labels) noexcept {
    deferred_qname_ = labels;
  }
  /// Fill qname from already-rendered text (slow path).
  void set_qname_text(std::string_view text) noexcept;

  /// Append a span; nullptr when inactive or the span array is full.
  /// Stamps elapsed_us only for sampled queries (clock-read budget).
  [[nodiscard]] TraceSpan* span(TraceStage stage) noexcept;

  void note_anomaly(std::uint32_t flag) noexcept { scratch_.anomalies |= flag; }

  /// Close the query: computes latency, feeds the rolling estimate,
  /// applies the slow threshold, and commits when sampled or anomalous.
  /// Idempotent — a second finish() (the worker loop's unconditional
  /// one after an exception) is a no-op.
  void finish() noexcept;

  /// Push the coalesced latency observations to the recorder. finish()
  /// run-length coalesces same-bucket latencies locally (consecutive
  /// fast-path queries land in the same power-of-two bucket); the worker
  /// calls this once per drained rx batch, so between flushes the
  /// rolling estimate lags by at most one batch.
  void flush_observations() noexcept;

 private:
  /// Sampler ticks claimed per shared-cursor fetch_add (one rx batch).
  static constexpr std::uint32_t kSampleStride = 64;

  [[nodiscard]] bool next_tick_sampled() noexcept;
  void render_qname(std::span<const std::uint8_t> labels) noexcept;

  FlightRecorder* recorder_;
  std::uint32_t worker_;
  bool active_ = false;
  std::chrono::steady_clock::time_point started_{};
  /// Run-length coalesced observe_latency feed (see flush_observations).
  std::uint32_t pending_us_ = 0;
  std::uint32_t pending_count_ = 0;
  std::uint8_t pending_bucket_ = 0;
  /// Locally-owned window of claimed sampler ticks (see claim_sample_ticks).
  std::uint64_t stride_base_ = 0;
  std::uint64_t next_sampled_tick_ = 0;
  std::uint32_t stride_left_ = 0;
  /// Wire qname recorded by reference; decoded only on commit.
  std::span<const std::uint8_t> deferred_qname_{};
  TraceRecord scratch_;
};

/// The thread's installed tracer (nullptr when tracing is off). Deep
/// layers consult this to add spans without signature changes.
[[nodiscard]] QueryTracer* current_tracer() noexcept;
void set_current_tracer(QueryTracer* tracer) noexcept;

/// RAII install/restore of the thread-local current tracer.
class TracerScope {
 public:
  explicit TracerScope(QueryTracer* tracer) noexcept : previous_(current_tracer()) {
    set_current_tracer(tracer);
  }
  ~TracerScope() { set_current_tracer(previous_); }

  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  QueryTracer* previous_;
};

}  // namespace eum::obs
