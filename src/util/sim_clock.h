// Simulated time for the roll-out timeline and DNS TTL accounting.
//
// The paper's evaluation spans Jan 1 - Jun 30 2014 with the end-user
// mapping ramp between Mar 28 and Apr 15. We model time as seconds since
// a simulation epoch (Jan 1 2014 00:00 UTC) and provide calendar helpers
// for that window so figure harnesses can label series with real dates.
#pragma once

#include <atomic>
#include <compare>
#include <cstdint>
#include <string>

namespace eum::util {

/// A point in simulated time, in seconds since Jan 1 2014 00:00 UTC.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t seconds) noexcept : seconds_(seconds) {}

  [[nodiscard]] constexpr std::int64_t seconds() const noexcept { return seconds_; }
  [[nodiscard]] constexpr double days() const noexcept {
    return static_cast<double>(seconds_) / 86400.0;
  }

  constexpr SimTime& operator+=(std::int64_t secs) noexcept {
    seconds_ += secs;
    return *this;
  }
  [[nodiscard]] friend constexpr SimTime operator+(SimTime t, std::int64_t secs) noexcept {
    return SimTime{t.seconds_ + secs};
  }
  [[nodiscard]] friend constexpr std::int64_t operator-(SimTime a, SimTime b) noexcept {
    return a.seconds_ - b.seconds_;
  }
  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

 private:
  std::int64_t seconds_ = 0;
};

/// Calendar date within the simulated year(s).
struct Date {
  int year = 2014;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend constexpr auto operator<=>(const Date&, const Date&) noexcept = default;
};

/// Days since Jan 1 2014 for a date (2014 and 2015 supported; 2014 is not a
/// leap year). Throws std::out_of_range for unsupported years or invalid dates.
[[nodiscard]] int day_index(const Date& date);

/// Inverse of day_index.
[[nodiscard]] Date date_from_day_index(int day_idx);

/// SimTime at 00:00 UTC of the given date.
[[nodiscard]] SimTime start_of(const Date& date);

/// "2014-03-28" style formatting.
[[nodiscard]] std::string to_string(const Date& date);

/// Three-letter month name ("Jan".."Dec"); month in 1..12.
[[nodiscard]] std::string month_name(int month);

/// A mutable simulation clock shared by simulation components.
///
/// Reads and writes are individually atomic (relaxed): a test thread may
/// advance simulated time while the map maker's rebuild thread samples it.
/// There is no cross-thread ordering guarantee beyond the value itself —
/// the clock carries time, not synchronization.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) noexcept : now_(start.seconds()) {}
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  [[nodiscard]] SimTime now() const noexcept {
    return SimTime{now_.load(std::memory_order_relaxed)};
  }
  void advance(std::int64_t seconds) noexcept {
    now_.fetch_add(seconds, std::memory_order_relaxed);
  }
  void set(SimTime t) noexcept { now_.store(t.seconds(), std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> now_{0};
};

}  // namespace eum::util
