// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the library draw from `Rng`, a
// xoshiro256++ generator seeded via splitmix64. Simulations are fully
// reproducible given a seed; independent streams are derived with
// `fork()` so that adding draws to one subsystem does not perturb
// another (important when comparing mapping policies on the same world).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <span>
#include <vector>

namespace eum::util {

/// splitmix64 step; used for seeding and hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream. The child is seeded from the
  /// parent's next output mixed with `salt`, so distinct salts give
  /// distinct streams even from the same parent state.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    std::uint64_t sm = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng{splitmix64(sm)};
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (single value; the pair's twin is discarded
  /// to keep the generator stateless beyond its word state).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean. Precondition: mean > 0.
  [[nodiscard]] double exponential(double mean) noexcept {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto with scale xm and shape alpha (heavy-tailed demand).
  [[nodiscard]] double pareto(double xm, double alpha) noexcept {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Precomputed alias-free weighted sampler over indices [0, n).
/// O(log n) per draw via binary search over the cumulative weights.
class WeightedPicker {
 public:
  WeightedPicker() = default;
  explicit WeightedPicker(std::span<const double> weights);

  /// Number of items.
  [[nodiscard]] std::size_t size() const noexcept { return cumulative_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cumulative_.empty(); }
  /// Sum of all weights.
  [[nodiscard]] double total() const noexcept {
    return cumulative_.empty() ? 0.0 : cumulative_.back();
  }

  /// Draw an index with probability proportional to its weight.
  /// Precondition: !empty() and total() > 0.
  [[nodiscard]] std::size_t pick(Rng& rng) const noexcept;

 private:
  std::vector<double> cumulative_;
};

/// Zipf(s) sampler over ranks 1..n: P(k) proportional to 1/k^s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draw a rank in [1, n].
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return picker_.size(); }

 private:
  WeightedPicker picker_;
};

/// Seeded Poisson arrival process at a fixed rate: successive next_ns()
/// calls return the cumulative arrival times (nanoseconds from 0) of a
/// memoryless event stream, i.e. i.i.d. exponential inter-arrival gaps
/// with mean 1/rate. This is the arrival model open-loop load
/// generation is built on (an open-loop client sends at the *scheduled*
/// instant regardless of outstanding responses, so queueing delay is
/// measured instead of silently omitted). Deterministic in the seed —
/// the same seed replays the identical schedule.
class PoissonArrivals {
 public:
  /// `rate_per_sec` must be positive and finite.
  PoissonArrivals(double rate_per_sec, std::uint64_t seed);

  /// Cumulative arrival time of the next event, in nanoseconds.
  [[nodiscard]] std::uint64_t next_ns() noexcept {
    elapsed_ns_ += rng_.exponential(mean_gap_ns_);
    return static_cast<std::uint64_t>(elapsed_ns_);
  }

  [[nodiscard]] double rate_per_sec() const noexcept { return 1e9 / mean_gap_ns_; }

 private:
  Rng rng_;
  double mean_gap_ns_;
  double elapsed_ns_ = 0.0;  ///< double keeps sub-ns remainders exact enough
};

}  // namespace eum::util
