// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace eum::util {

/// Split on a delimiter; empty fields are preserved ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// ASCII lower-casing (DNS names are case-insensitive in the ASCII range).
[[nodiscard]] std::string to_lower(std::string_view text);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable count with thousands separators ("1234567" -> "1,234,567").
[[nodiscard]] std::string with_commas(std::int64_t value);

}  // namespace eum::util
