#include "util/shard_pool.h"

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "lockfree/atomics_policy.h"
#include "lockfree/job_claim.h"

namespace eum::util {

struct ShardPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;   ///< workers wait here for a batch
  std::condition_variable batch_done;   ///< run() waits here for completion
  std::uint64_t generation = 0;         ///< bumped per batch (and on shutdown)
  bool shutting_down = false;

  /// Fixed before the first thread spawns; worker_loop/run compare
  /// against this, never workers.size() — the vector is still growing
  /// in the constructor while early workers are already parking.
  std::size_t worker_count = 0;

  // Current batch (valid while workers hold a generation observed under
  // the mutex). next_job is claimed lock-free once the batch started;
  // the claim protocol is the extracted lockfree::JobClaim kernel
  // (model-checked in mc/protocols.cpp).
  std::size_t jobs = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  lockfree::JobClaim<lockfree::StdAtomicsPolicy> next_job;
  std::size_t idle_workers = 0;  ///< workers parked between batches
  std::exception_ptr first_error;

  std::vector<std::thread> workers;

  void drain(std::uint64_t my_generation) {
    // Claim and run jobs until the batch is exhausted. Exceptions are
    // captured once; later jobs still run so the batch always drains.
    while (true) {
      const std::size_t job = next_job.claim();
      if (job >= jobs) break;
      try {
        (*fn)(job);
      } catch (...) {
        const std::lock_guard<std::mutex> lock{mutex};
        if (!first_error) first_error = std::current_exception();
      }
    }
    (void)my_generation;
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock{mutex};
    std::uint64_t seen = 0;
    while (true) {
      ++idle_workers;
      if (idle_workers == worker_count) batch_done.notify_all();
      work_ready.wait(lock, [&] { return shutting_down || generation != seen; });
      --idle_workers;
      if (shutting_down) return;
      seen = generation;
      lock.unlock();
      drain(seen);
      lock.lock();
    }
  }
};

std::size_t ShardPool::hardware_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

ShardPool::ShardPool(std::size_t workers) : impl_(new Impl) {
  impl_->worker_count = workers;
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock{impl_->mutex};
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

std::size_t ShardPool::worker_count() const noexcept { return impl_->worker_count; }

void ShardPool::run(std::size_t jobs, const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  std::uint64_t my_generation = 0;
  {
    std::unique_lock<std::mutex> lock{impl_->mutex};
    // Wait for every worker to finish a previous batch before rebinding
    // the shared batch state (run() callers may overlap only erroneously;
    // this keeps the pool safe if they do anyway).
    impl_->batch_done.wait(lock, [&] { return impl_->idle_workers == impl_->worker_count; });
    impl_->jobs = jobs;
    impl_->fn = &fn;
    impl_->next_job.reset();
    impl_->first_error = nullptr;
    my_generation = ++impl_->generation;
  }
  impl_->work_ready.notify_all();
  impl_->drain(my_generation);  // the caller is a worker too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock{impl_->mutex};
    impl_->batch_done.wait(lock, [&] { return impl_->idle_workers == impl_->worker_count; });
    impl_->fn = nullptr;
    error = impl_->first_error;
    impl_->first_error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace eum::util
