// A persistent worker pool for sharded control-plane computations.
//
// The map maker re-scores mapping units on every rebuild; at paper scale
// (millions of client blocks, tens of thousands of units) a single thread
// blows the rebuild budget. ShardPool keeps a fixed set of workers alive
// across rebuilds — spawning threads per rebuild would dominate the very
// incremental rebuilds the pool exists to accelerate — and fans a job
// range out with atomic work stealing. The caller participates, so a
// zero-worker pool degenerates to a plain serial loop (tests and tiny
// worlds pay no threading tax).
//
// This is control-plane machinery: run() blocks until every job finished
// and may take locks internally. It must never be called from the serve
// path (see scripts/lint_invariants.py SERVE_PATH_FILES).
#pragma once

#include <cstddef>
#include <functional>

namespace eum::util {

class ShardPool {
 public:
  /// `workers` = number of extra threads, exactly; 0 makes run() a plain
  /// serial loop on the caller. See hardware_workers() for auto-sizing.
  explicit ShardPool(std::size_t workers = 0);

  /// Worker count that saturates this machine together with the caller:
  /// hardware_concurrency - 1 (0 on single-core machines).
  [[nodiscard]] static std::size_t hardware_workers() noexcept;
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Run fn(i) for every i in [0, jobs). Blocks until all jobs complete;
  /// the calling thread claims jobs alongside the workers. If any fn
  /// throws, the first exception is rethrown here after the batch drains
  /// (remaining jobs still run — partial results must stay consistent).
  /// Not reentrant: one run() at a time per pool.
  void run(std::size_t jobs, const std::function<void(std::size_t)>& fn);

  /// Worker threads (excluding the caller).
  [[nodiscard]] std::size_t worker_count() const noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace eum::util
