#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eum::util {

WeightedPicker::WeightedPicker(std::span<const double> weights) {
  cumulative_.reserve(weights.size());
  double running = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument{"WeightedPicker: weights must be finite and non-negative"};
    }
    running += w;
    cumulative_.push_back(running);
  }
}

std::size_t WeightedPicker::pick(Rng& rng) const noexcept {
  const double needle = rng.uniform() * cumulative_.back();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), needle);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  return std::min(idx, cumulative_.size() - 1);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be positive"};
  std::vector<double> weights(n);
  for (std::size_t k = 0; k < n; ++k) {
    weights[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  picker_ = WeightedPicker{weights};
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept { return picker_.pick(rng) + 1; }

PoissonArrivals::PoissonArrivals(double rate_per_sec, std::uint64_t seed) : rng_(seed) {
  if (!(rate_per_sec > 0.0) || !std::isfinite(rate_per_sec)) {
    throw std::invalid_argument{"PoissonArrivals: rate must be positive and finite"};
  }
  mean_gap_ns_ = 1e9 / rate_per_sec;
}

}  // namespace eum::util
