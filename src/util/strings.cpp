#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace eum::util {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string with_commas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits, 0, first_group);
  for (std::size_t i = first_group; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  return negative ? "-" + out : out;
}

}  // namespace eum::util
