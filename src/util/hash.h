// Hashing primitives used by the consistent-hashing local load balancer
// and by hash-map keys across the library.
#pragma once

#include <cstdint>
#include <string_view>

namespace eum::util {

/// 64-bit FNV-1a over bytes.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Strong 64-bit integer mixer (final stage of splitmix64/Murmur3).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine two hashes (boost::hash_combine style, 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) noexcept {
  return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace eum::util
