#include "util/sim_clock.h"

#include <array>
#include <stdexcept>

namespace eum::util {

namespace {

constexpr std::array<int, 12> kDaysPerMonth = {31, 28, 31, 30, 31, 30,
                                               31, 31, 30, 31, 30, 31};
constexpr std::array<const char*, 12> kMonthNames = {"Jan", "Feb", "Mar", "Apr",
                                                     "May", "Jun", "Jul", "Aug",
                                                     "Sep", "Oct", "Nov", "Dec"};

void validate(const Date& date) {
  // The simulation calendar covers 2014-2015, neither of which is a leap year.
  if (date.year != 2014 && date.year != 2015) {
    throw std::out_of_range{"Date: year outside simulated range [2014, 2015]"};
  }
  if (date.month < 1 || date.month > 12) throw std::out_of_range{"Date: bad month"};
  if (date.day < 1 || date.day > kDaysPerMonth[static_cast<std::size_t>(date.month - 1)]) {
    throw std::out_of_range{"Date: bad day"};
  }
}

}  // namespace

int day_index(const Date& date) {
  validate(date);
  int days = (date.year - 2014) * 365;
  for (int m = 1; m < date.month; ++m) {
    days += kDaysPerMonth[static_cast<std::size_t>(m - 1)];
  }
  return days + date.day - 1;
}

Date date_from_day_index(int day_idx) {
  if (day_idx < 0 || day_idx >= 730) {
    throw std::out_of_range{"date_from_day_index: index outside [0, 730)"};
  }
  Date date;
  date.year = 2014 + day_idx / 365;
  int remaining = day_idx % 365;
  date.month = 1;
  for (const int len : kDaysPerMonth) {
    if (remaining < len) break;
    remaining -= len;
    ++date.month;
  }
  date.day = remaining + 1;
  return date;
}

SimTime start_of(const Date& date) { return SimTime{static_cast<std::int64_t>(day_index(date)) * 86400}; }

std::string to_string(const Date& date) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", date.year, date.month, date.day);
  return buf;
}

std::string month_name(int month) {
  if (month < 1 || month > 12) throw std::out_of_range{"month_name: month must be 1..12"};
  return kMonthNames[static_cast<std::size_t>(month - 1)];
}

}  // namespace eum::util
