#include "stats/sample.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eum::stats {

void WeightedSample::add(double value, double weight) {
  if (weight < 0.0 || !std::isfinite(weight) || !std::isfinite(value)) {
    throw std::invalid_argument{"WeightedSample::add: value/weight must be finite, weight >= 0"};
  }
  if (weight == 0.0) return;
  points_.push_back({value, weight});
  total_weight_ += weight;
  sorted_ = false;
}

void WeightedSample::clear() noexcept {
  points_.clear();
  prefix_weight_.clear();
  total_weight_ = 0.0;
  sorted_ = false;
}

void WeightedSample::ensure_sorted() const {
  if (sorted_) return;
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.value < b.value; });
  prefix_weight_.resize(points_.size());
  double running = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    running += points_[i].weight;
    prefix_weight_[i] = running;
  }
  sorted_ = true;
}

double WeightedSample::mean() const {
  if (empty()) throw std::logic_error{"WeightedSample::mean on empty sample"};
  double sum = 0.0;
  for (const Point& p : points_) sum += p.value * p.weight;
  return sum / total_weight_;
}

double WeightedSample::percentile(double q) const {
  if (empty()) throw std::logic_error{"WeightedSample::percentile on empty sample"};
  if (q < 0.0 || q > 100.0) throw std::invalid_argument{"percentile: q outside [0, 100]"};
  ensure_sorted();
  const double target = total_weight_ * q / 100.0;
  const auto it = std::lower_bound(prefix_weight_.begin(), prefix_weight_.end(), target);
  const auto idx = std::min(static_cast<std::size_t>(it - prefix_weight_.begin()),
                            points_.size() - 1);
  return points_[idx].value;
}

double WeightedSample::min() const {
  if (empty()) throw std::logic_error{"WeightedSample::min on empty sample"};
  ensure_sorted();
  return points_.front().value;
}

double WeightedSample::max() const {
  if (empty()) throw std::logic_error{"WeightedSample::max on empty sample"};
  ensure_sorted();
  return points_.back().value;
}

double WeightedSample::cdf_at(double x) const {
  if (empty()) return 0.0;
  ensure_sorted();
  // Index of the last point with value <= x.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double needle, const Point& p) { return needle < p.value; });
  if (it == points_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(it - points_.begin()) - 1;
  return prefix_weight_[idx] / total_weight_;
}

BoxPlot WeightedSample::box_plot() const {
  return BoxPlot{percentile(5), percentile(25), percentile(50), percentile(75), percentile(95)};
}

std::vector<CdfPoint> WeightedSample::cdf_curve(std::size_t points) const {
  std::vector<CdfPoint> curve;
  if (empty() || points < 2) return curve;
  const double lo = min();
  const double hi = max();
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.push_back({x, cdf_at(x)});
  }
  return curve;
}

std::vector<CdfPoint> WeightedSample::cdf_at_values(std::span<const double> values) const {
  std::vector<CdfPoint> curve;
  curve.reserve(values.size());
  for (const double x : values) curve.push_back({x, cdf_at(x)});
  return curve;
}

}  // namespace eum::stats
