#include "stats/table.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"

namespace eum::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument{"Table: need at least one column"};
  for (std::size_t a = 0; a < headers_.size(); ++a) {
    for (std::size_t b = a + 1; b < headers_.size(); ++b) {
      if (headers_[a] == headers_[b]) {
        throw std::invalid_argument{"Table: duplicate header \"" + headers_[a] + "\""};
      }
    }
  }
}

Table::Table(std::initializer_list<std::string> headers)
    : Table(std::vector<std::string>{headers}) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table::add_row: cell count does not match header count"};
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row(std::string label, std::uint64_t value) {
  add_row({std::move(label), std::to_string(value)});
}

void Table::add_row(std::string label, double value, int precision) {
  add_row({std::move(label), num(value, precision)});
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line.append(widths[c] - row[c].size() + 2, ' ');
    }
    line.push_back('\n');
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_width, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string num(double value, int precision) {
  std::string text = util::format("%.*f", precision, value);
  // printf renders tiny negatives as "-0.0"; a sign on a zero reads as a
  // regression in a counter table, so strip it when every digit is zero.
  if (text.size() > 1 && text[0] == '-' &&
      text.find_first_not_of("0.", 1) == std::string::npos) {
    text.erase(0, 1);
  }
  return text;
}

}  // namespace eum::stats
