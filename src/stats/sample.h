// Weighted sample statistics.
//
// Nearly every figure in the paper is demand-weighted: percentiles,
// CDFs and histograms weight each client block by the content demand it
// generates rather than counting blocks equally. `WeightedSample` is the
// shared accumulator behind those figures.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eum::stats {

/// Five-number summary used by the paper's box plots
/// (5th, 25th, 50th, 75th, 95th percentiles; see footnote 6).
struct BoxPlot {
  double p5 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

/// One point of an empirical CDF: fraction of total weight with value <= x.
struct CdfPoint {
  double value = 0.0;
  double cumulative_fraction = 0.0;
};

/// Accumulates (value, weight) observations and answers weighted
/// order-statistics queries. Queries sort lazily; adding after a query
/// re-sorts on the next query.
class WeightedSample {
 public:
  WeightedSample() = default;

  void add(double value, double weight = 1.0);
  void reserve(std::size_t n) { points_.reserve(n); }
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Weighted mean. Precondition: !empty().
  [[nodiscard]] double mean() const;

  /// Weighted percentile, q in [0, 100]: the smallest value v such that at
  /// least q% of the total weight lies at values <= v. Precondition: !empty().
  [[nodiscard]] double percentile(double q) const;

  /// Minimum / maximum observed value. Precondition: !empty().
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Fraction of total weight with value <= x (the empirical CDF at x).
  [[nodiscard]] double cdf_at(double x) const;

  [[nodiscard]] BoxPlot box_plot() const;

  /// Evenly spaced CDF curve with `points` samples between min and max.
  [[nodiscard]] std::vector<CdfPoint> cdf_curve(std::size_t points = 50) const;

  /// CDF evaluated at caller-chosen values.
  [[nodiscard]] std::vector<CdfPoint> cdf_at_values(std::span<const double> values) const;

 private:
  struct Point {
    double value;
    double weight;
  };

  void ensure_sorted() const;

  mutable std::vector<Point> points_;
  mutable std::vector<double> prefix_weight_;  ///< cumulative weights, valid when sorted_
  mutable bool sorted_ = false;
  double total_weight_ = 0.0;
};

}  // namespace eum::stats
