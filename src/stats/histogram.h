// Histograms for figure reproduction.
//
// Figures 5 and 7 use a logarithmic x-axis (10..10000 miles) with the
// y-axis showing percent of client demand per bin; `LogHistogram` mirrors
// that. `LinearHistogram` covers evenly binned exhibits.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eum::stats {

struct HistogramBin {
  double lo = 0.0;          ///< inclusive lower edge
  double hi = 0.0;          ///< exclusive upper edge (inclusive for the last bin)
  double weight = 0.0;      ///< total weight that fell in this bin
};

/// Histogram with logarithmically spaced bins between [lo, hi].
/// Values below lo clamp into the first bin; values above hi into the last
/// (the paper's figures similarly clamp their axes).
class LogHistogram {
 public:
  /// Precondition: 0 < lo < hi, bins >= 1.
  LogHistogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] const std::vector<HistogramBin>& bins() const noexcept { return bins_; }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Fraction of total weight in bin i (0 if the histogram is empty).
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  std::vector<HistogramBin> bins_;
  double log_lo_;
  double log_step_;
  double total_weight_ = 0.0;
};

/// Histogram with evenly spaced bins between [lo, hi]; clamping as above.
class LinearHistogram {
 public:
  /// Precondition: lo < hi, bins >= 1.
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] const std::vector<HistogramBin>& bins() const noexcept { return bins_; }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  std::vector<HistogramBin> bins_;
  double lo_;
  double step_;
  double total_weight_ = 0.0;
};

/// Render a histogram as rows of "lo..hi  percent  bar" text, used by the
/// figure harnesses to print paper-like marginal distributions.
[[nodiscard]] std::string render_histogram(const std::vector<HistogramBin>& bins,
                                           double total_weight, std::size_t bar_width = 40);

}  // namespace eum::stats
