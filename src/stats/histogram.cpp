#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace eum::stats {

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins) {
  if (!(lo > 0.0) || !(hi > lo) || bins == 0) {
    throw std::invalid_argument{"LogHistogram: need 0 < lo < hi and bins >= 1"};
  }
  log_lo_ = std::log10(lo);
  log_step_ = (std::log10(hi) - log_lo_) / static_cast<double>(bins);
  bins_.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    bins_[i].lo = std::pow(10.0, log_lo_ + log_step_ * static_cast<double>(i));
    bins_[i].hi = std::pow(10.0, log_lo_ + log_step_ * static_cast<double>(i + 1));
  }
}

void LogHistogram::add(double value, double weight) {
  if (weight <= 0.0) return;
  std::size_t idx = 0;
  if (value > 0.0) {
    const double pos = (std::log10(value) - log_lo_) / log_step_;
    idx = static_cast<std::size_t>(std::clamp(pos, 0.0, static_cast<double>(bins_.size() - 1)));
  }
  bins_[idx].weight += weight;
  total_weight_ += weight;
}

double LogHistogram::fraction(std::size_t i) const {
  if (i >= bins_.size()) throw std::out_of_range{"LogHistogram::fraction: bad bin index"};
  return total_weight_ > 0.0 ? bins_[i].weight / total_weight_ : 0.0;
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument{"LinearHistogram: need lo < hi and bins >= 1"};
  }
  step_ = (hi - lo) / static_cast<double>(bins);
  bins_.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    bins_[i].lo = lo + step_ * static_cast<double>(i);
    bins_[i].hi = lo + step_ * static_cast<double>(i + 1);
  }
}

void LinearHistogram::add(double value, double weight) {
  if (weight <= 0.0) return;
  const double pos = (value - lo_) / step_;
  const auto idx =
      static_cast<std::size_t>(std::clamp(pos, 0.0, static_cast<double>(bins_.size() - 1)));
  bins_[idx].weight += weight;
  total_weight_ += weight;
}

double LinearHistogram::fraction(std::size_t i) const {
  if (i >= bins_.size()) throw std::out_of_range{"LinearHistogram::fraction: bad bin index"};
  return total_weight_ > 0.0 ? bins_[i].weight / total_weight_ : 0.0;
}

std::string render_histogram(const std::vector<HistogramBin>& bins, double total_weight,
                             std::size_t bar_width) {
  double max_fraction = 0.0;
  for (const HistogramBin& b : bins) {
    if (total_weight > 0.0) max_fraction = std::max(max_fraction, b.weight / total_weight);
  }
  std::string out;
  for (const HistogramBin& b : bins) {
    const double frac = total_weight > 0.0 ? b.weight / total_weight : 0.0;
    const auto bar_len = static_cast<std::size_t>(
        max_fraction > 0.0 ? std::lround(frac / max_fraction * static_cast<double>(bar_width))
                           : 0);
    out += util::format("%10.1f ..%10.1f  %6.2f%%  ", b.lo, b.hi, frac * 100.0);
    out.append(bar_len, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace eum::stats
