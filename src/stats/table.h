// Minimal fixed-width table renderer used by the bench harnesses to print
// paper-figure data as aligned rows.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace eum::stats {

class Table {
 public:
  /// Throws std::invalid_argument on an empty or duplicated header set —
  /// duplicate columns would silently mislabel every row beneath them.
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string> headers);

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Two-column counter-table conveniences ("name", value). Only valid
  /// on tables with exactly two columns.
  void add_row(std::string label, std::uint64_t value);
  void add_row(std::string label, double value, int precision = 1);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision ("%.*f"). Values that round
/// to zero render unsigned ("0.0", never "-0.0").
[[nodiscard]] std::string num(double value, int precision = 1);

}  // namespace eum::stats
