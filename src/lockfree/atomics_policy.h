// Production atomics policy for the extracted lock-free kernels.
//
// A kernel template takes a policy P supplying:
//   - P::template Atomic<T>  — the atomic cell type
//   - P::template Racy<T>    — plain data the protocol orders via its
//                              atomics (ring payloads, snapshot fields)
//   - P::template order<Site>(default) — the memory order to use at a
//                              named site (see sites.h)
//   - P::fence(order)        — a thread fence
//
// StdAtomicsPolicy is the production binding: std::atomic, plain
// members, and a constexpr passthrough of each site's default order —
// the compiler constant-folds it, so templated kernels emit exactly the
// code the hand-written protocols did. mc/policy.h supplies the checked
// binding (mc::atomic + a mutable per-site order table).
#pragma once

#include <atomic>
#include <utility>

#include "lockfree/sites.h"

namespace eum::lockfree {

/// Plain storage with the mc::racy<T> call surface (get/set) so kernels
/// touch protocol payloads identically under both policies.
template <class T>
class PlainCell {
 public:
  PlainCell() = default;
  explicit PlainCell(T value) : value_(std::move(value)) {}

  [[nodiscard]] T get() const { return value_; }
  void set(T value) { value_ = std::move(value); }

 private:
  T value_;
};

struct StdAtomicsPolicy {
  template <class T>
  using Atomic = std::atomic<T>;

  template <class T>
  using Racy = PlainCell<T>;

  template <Site S>
  [[nodiscard]] static constexpr std::memory_order order(std::memory_order def) noexcept {
    return def;
  }

  static void fence(std::memory_order order) noexcept { std::atomic_thread_fence(order); }
};

}  // namespace eum::lockfree
