// Registry of every atomic operation site in the extracted lock-free
// kernels (src/lockfree/*.h).
//
// Each kernel names each of its atomic operations with a Site and routes
// the operation's memory order through its atomics policy:
//
//   P::template order<Site::rcu_version_publish>(std::memory_order_release)
//
// In production (StdAtomicsPolicy) that call is a constexpr passthrough
// of the default — identical codegen to writing the order literally. The
// model checker's policy (mc/policy.h) instead resolves through a
// mutable override table, which is how the memory-order minimality
// auditor weakens exactly one site at a time and asks the checker for a
// violating schedule. AUDIT_memory_orders.json is keyed by these names;
// a compare_exchange contributes TWO sites (success + failure order),
// audited independently.
#pragma once

#include <atomic>
#include <cstddef>

namespace eum::lockfree {

enum class Site : int {
  // VersionedRcu — MapMaker snapshot/version publish + serve-path reads.
  rcu_snapshot_publish,
  rcu_version_publish,
  rcu_snapshot_load,
  rcu_version_load,
  rcu_version_sync,
  // MpmcRing — FlightRecorder bounded MPMC ring (Vyukov).
  ring_push_pos_load,
  ring_push_seq_load,
  ring_push_claim_cas_ok,
  ring_push_claim_cas_fail,
  ring_push_seq_store,
  ring_evict_tail_load,
  ring_evict_seq_load,
  ring_evict_claim_cas_ok,
  ring_evict_claim_cas_fail,
  ring_evict_seq_store,
  ring_pop_pos_load,
  ring_pop_seq_load,
  ring_pop_claim_cas_ok,
  ring_pop_claim_cas_fail,
  ring_pop_seq_store,
  // PendingTable — loadgen packed sched/state slot lifecycle.
  pending_arm_xchg,
  pending_claim_load,
  pending_claim_cas_ok,
  pending_claim_cas_fail,
  pending_sweep_load,
  // JobClaim — ShardPool batch work stealing.
  job_claim_fetch_add,
  job_reset_store,
  kCount,
};

inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

/// Operation shape at a site; decides the auditor's weakening ladder
/// (e.g. a store weakens release->relaxed, an RMW acq_rel->acquire and
/// acq_rel->release).
enum class SiteOp : int { load, store, rmw, cas_fail };

struct SiteInfo {
  const char* name;    ///< stable key used in AUDIT_memory_orders.json
  const char* kernel;  ///< owning kernel ("versioned_rcu", "mpmc_ring", ...)
  SiteOp op;
  std::memory_order default_order;  ///< the order shipped in production
};

[[nodiscard]] constexpr SiteInfo site_info(Site site) noexcept {
  constexpr std::memory_order rlx = std::memory_order_relaxed;
  constexpr std::memory_order acq = std::memory_order_acquire;
  constexpr std::memory_order rel = std::memory_order_release;
  switch (site) {
    case Site::rcu_snapshot_publish:
      return {"rcu_snapshot_publish", "versioned_rcu", SiteOp::store, rel};
    case Site::rcu_version_publish:
      return {"rcu_version_publish", "versioned_rcu", SiteOp::store, rel};
    case Site::rcu_snapshot_load:
      return {"rcu_snapshot_load", "versioned_rcu", SiteOp::load, acq};
    case Site::rcu_version_load:
      return {"rcu_version_load", "versioned_rcu", SiteOp::load, rlx};
    case Site::rcu_version_sync:
      return {"rcu_version_sync", "versioned_rcu", SiteOp::load, acq};
    case Site::ring_push_pos_load:
      return {"ring_push_pos_load", "mpmc_ring", SiteOp::load, rlx};
    case Site::ring_push_seq_load:
      return {"ring_push_seq_load", "mpmc_ring", SiteOp::load, acq};
    case Site::ring_push_claim_cas_ok:
      return {"ring_push_claim_cas_ok", "mpmc_ring", SiteOp::rmw, rlx};
    case Site::ring_push_claim_cas_fail:
      return {"ring_push_claim_cas_fail", "mpmc_ring", SiteOp::cas_fail, rlx};
    case Site::ring_push_seq_store:
      return {"ring_push_seq_store", "mpmc_ring", SiteOp::store, rel};
    case Site::ring_evict_tail_load:
      return {"ring_evict_tail_load", "mpmc_ring", SiteOp::load, rlx};
    case Site::ring_evict_seq_load:
      return {"ring_evict_seq_load", "mpmc_ring", SiteOp::load, acq};
    case Site::ring_evict_claim_cas_ok:
      return {"ring_evict_claim_cas_ok", "mpmc_ring", SiteOp::rmw, rlx};
    case Site::ring_evict_claim_cas_fail:
      return {"ring_evict_claim_cas_fail", "mpmc_ring", SiteOp::cas_fail, rlx};
    case Site::ring_evict_seq_store:
      return {"ring_evict_seq_store", "mpmc_ring", SiteOp::store, rel};
    case Site::ring_pop_pos_load:
      return {"ring_pop_pos_load", "mpmc_ring", SiteOp::load, rlx};
    case Site::ring_pop_seq_load:
      return {"ring_pop_seq_load", "mpmc_ring", SiteOp::load, acq};
    case Site::ring_pop_claim_cas_ok:
      return {"ring_pop_claim_cas_ok", "mpmc_ring", SiteOp::rmw, rlx};
    case Site::ring_pop_claim_cas_fail:
      return {"ring_pop_claim_cas_fail", "mpmc_ring", SiteOp::cas_fail, rlx};
    case Site::ring_pop_seq_store:
      return {"ring_pop_seq_store", "mpmc_ring", SiteOp::store, rel};
    case Site::pending_arm_xchg:
      return {"pending_arm_xchg", "pending_table", SiteOp::rmw, rlx};
    case Site::pending_claim_load:
      return {"pending_claim_load", "pending_table", SiteOp::load, rlx};
    case Site::pending_claim_cas_ok:
      return {"pending_claim_cas_ok", "pending_table", SiteOp::rmw, rlx};
    case Site::pending_claim_cas_fail:
      return {"pending_claim_cas_fail", "pending_table", SiteOp::cas_fail, rlx};
    case Site::pending_sweep_load:
      return {"pending_sweep_load", "pending_table", SiteOp::load, rlx};
    case Site::job_claim_fetch_add:
      return {"job_claim_fetch_add", "job_claim", SiteOp::rmw, rlx};
    case Site::job_reset_store:
      return {"job_reset_store", "job_claim", SiteOp::store, rlx};
    case Site::kCount: break;
  }
  return {"?", "?", SiteOp::load, std::memory_order_seq_cst};
}

}  // namespace eum::lockfree
