// VersionedRcu: the MapMaker's snapshot-before-version publish protocol
// (paper §2.2 map distribution), extracted so the identical code runs
// under std::atomic in production and mc::atomic under the model checker.
//
// One writer (the rebuild thread) publishes an immutable snapshot and
// then its version; many readers either
//   - snapshot() directly (RCU read path: serve threads answer a query
//     entirely from one generation), or
//   - version_sync() first and then snapshot() (the UDP wire answer cache,
//     which keys cached answers on the map generation).
//
// Invariants (model-checked in mc/protocols.cpp):
//   - a reader that observes version V via version_sync() then
//     snapshot()s a generation >= V — never an older map (PR 6 shipped
//     exactly this bug with the two stores swapped; the checker exhibits
//     it, see the version_before_snapshot mutation);
//   - a snapshot()'s payload is fully visible (no torn reads of a
//     half-built map).
//
// Ordering: both publish stores are release and both serve-path reads
// are acquire; the auditor proves each one load-bearing (weakening any
// of the four admits a violating schedule; rcu_version_load is the
// relaxed monitoring read and is already minimal).
#pragma once

#include <cstdint>
#include <utility>

#include "lockfree/sites.h"

namespace eum::lockfree {

template <class P, class T>
class VersionedRcu {
 public:
  VersionedRcu() : current_{}, version_{0} {}

  /// RCU read path: the current snapshot (acquire — pairs with
  /// publish()'s release so the snapshot's contents are visible).
  [[nodiscard]] T snapshot() const {
    return current_.load(P::template order<Site::rcu_snapshot_load>(std::memory_order_acquire));
  }

  /// Monitoring read: the published version, no ordering obligations.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(P::template order<Site::rcu_version_load>(std::memory_order_relaxed));
  }

  /// Cache-keying read: observing V here guarantees a subsequent
  /// snapshot() returns generation >= V (the AnswerCache invalidation
  /// contract).
  [[nodiscard]] std::uint64_t version_sync() const {
    return version_.load(P::template order<Site::rcu_version_sync>(std::memory_order_acquire));
  }

  /// The version cell itself, for consumers handed only the atomic
  /// (UdpServerConfig::map_version). Loads on it must use acquire to get
  /// the version_sync() guarantee.
  [[nodiscard]] const typename P::template Atomic<std::uint64_t>& version_cell() const noexcept {
    return version_;
  }

  /// Publish `snap` as generation `version`. Snapshot strictly before
  /// version, both release: a reader that sees the new version can never
  /// snapshot() the old map.
  void publish(T snap, std::uint64_t version) {
    current_.store(std::move(snap),
                   P::template order<Site::rcu_snapshot_publish>(std::memory_order_release));
    version_.store(version,
                   P::template order<Site::rcu_version_publish>(std::memory_order_release));
  }

 private:
  typename P::template Atomic<T> current_;
  typename P::template Atomic<std::uint64_t> version_;
};

}  // namespace eum::lockfree
