// JobClaim: the ShardPool's lock-free batch work stealing, extracted
// from util/shard_pool.cpp.
//
// A batch is a range [0, jobs); every participating thread (workers and
// the run() caller) claims the next index with one fetch_add until the
// range is exhausted. The batch boundaries themselves (jobs, fn, the
// generation handshake) are published under the pool mutex — this kernel
// is only the in-batch claim cursor.
//
// Invariants (model-checked in mc/protocols.cpp): every job index is
// claimed exactly once, and every index < jobs is claimed by someone
// before the batch drains.
//
// Ordering: the cursor is pure value-based exclusivity; both sites are
// relaxed and the auditor proves them minimal (reset() is additionally
// ordered by the pool mutex in production).
#pragma once

#include <cstddef>

#include "lockfree/sites.h"

namespace eum::lockfree {

template <class P>
class JobClaim {
 public:
  /// Rebind the cursor for a new batch. Callers must order this against
  /// claimers externally (ShardPool: under the pool mutex, before the
  /// generation bump that releases workers).
  void reset() {
    next_.store(0, P::template order<Site::job_reset_store>(std::memory_order_relaxed));
  }

  /// Claim the next job index; indices >= jobs mean the batch is drained
  /// and the caller stops.
  [[nodiscard]] std::size_t claim() {
    return next_.fetch_add(1,
                           P::template order<Site::job_claim_fetch_add>(std::memory_order_relaxed));
  }

 private:
  typename P::template Atomic<std::size_t> next_{0};
};

}  // namespace eum::lockfree
