// PendingTable: the load generator's per-id outstanding-query slot
// lifecycle, extracted from load/driver.cpp and repaired.
//
// The seed protocol kept two cells per slot — an atomic state machine
// (kEmpty -> kArmed -> kDone) and a separate atomic sched_ns — and the
// receiver read sched_ns AFTER winning the claim CAS. When a DNS id
// wraps onto an unanswered query, the sender's re-arm overwrites
// sched_ns concurrently with that read, so a claimed response could be
// charged against the WRONG scheduled send time (a silently skewed
// latency sample). The model checker exhibits this schedule — see the
// pending_split_sched_state variant in mc/protocols.cpp — so this kernel
// packs sched and state into one 64-bit word: a claim CAS atomically
// retires the slot AND captures the sched it was armed with.
//
// Word layout: sched_ns << 2 | state. Nanosecond offsets keep ~62 bits
// (146 years of run time). ABA note: if an id wraps onto a slot re-armed
// with the SAME sched_ns, a stale response can claim the new arm — the
// accounting (one match, identical latency sample) is unchanged, so the
// protocol tolerates it.
//
// Invariants (model-checked in mc/protocols.cpp):
//   - each arm is claimed at most once, and a claim returns exactly the
//     sched packed by the arm it retired;
//   - arm() reports an overwrite iff the previous occupant was armed and
//     never claimed; the post-join sweep sees every unclaimed arm.
//
// Ordering: the packed word is the whole protocol state, so every site
// is value-based and runs relaxed; the auditor proves each one minimal.
// The seed's acquire/release pairs guarded the now-gone second cell.
#pragma once

#include <cstdint>

#include "lockfree/sites.h"

namespace eum::lockfree {

namespace pending {

inline constexpr std::uint64_t kEmpty = 0;
inline constexpr std::uint64_t kArmed = 1;
inline constexpr std::uint64_t kDone = 2;
inline constexpr std::uint64_t kStateMask = 3;

[[nodiscard]] constexpr std::uint64_t pack(std::uint64_t sched_ns, std::uint64_t state) noexcept {
  return (sched_ns << 2) | state;
}
[[nodiscard]] constexpr std::uint64_t state_of(std::uint64_t word) noexcept {
  return word & kStateMask;
}
[[nodiscard]] constexpr std::uint64_t sched_of(std::uint64_t word) noexcept {
  return word >> 2;
}

}  // namespace pending

template <class P>
class PendingSlot {
 public:
  /// Sender: arm the slot for a query scheduled at `sched_ns`. Returns
  /// true if the previous occupant was still armed (id wrapped onto an
  /// unanswered query — the caller charges it as dropped).
  bool arm(std::uint64_t sched_ns) {
    const std::uint64_t old = word_.exchange(
        pending::pack(sched_ns, pending::kArmed),
        P::template order<Site::pending_arm_xchg>(std::memory_order_relaxed));
    return pending::state_of(old) == pending::kArmed;
  }

  /// Receiver: claim the armed slot for a matched response. On success
  /// stores the sched the slot was armed with into `sched_ns` and
  /// returns true; false for duplicate/stray/already-claimed responses.
  bool claim(std::uint64_t& sched_ns) {
    std::uint64_t old = word_.load(
        P::template order<Site::pending_claim_load>(std::memory_order_relaxed));
    if (pending::state_of(old) != pending::kArmed) return false;
    if (!word_.compare_exchange_strong(
            old, pending::pack(pending::sched_of(old), pending::kDone),
            P::template order<Site::pending_claim_cas_ok>(std::memory_order_relaxed),
            P::template order<Site::pending_claim_cas_fail>(std::memory_order_relaxed))) {
      return false;  // raced with a re-arm or another claim
    }
    sched_ns = pending::sched_of(old);
    return true;
  }

  /// Post-join sweep: true if the slot is still armed (query sent but
  /// never answered). Callers run this after joining both threads.
  [[nodiscard]] bool swept_unanswered() const {
    const std::uint64_t word = word_.load(
        P::template order<Site::pending_sweep_load>(std::memory_order_relaxed));
    return pending::state_of(word) == pending::kArmed;
  }

 private:
  typename P::template Atomic<std::uint64_t> word_{pending::kEmpty};
};

}  // namespace eum::lockfree
