// MpmcRing: the FlightRecorder's bounded MPMC ring (Vyukov-style),
// extracted from obs/trace.cpp so the identical protocol runs under
// std::atomic in production and mc::atomic under the model checker.
//
// Every cell carries a sequence number encoding its state relative to
// the positions: seq == pos (free for the producer at pos), seq == pos+1
// (full for the consumer at pos), anything else = another thread is mid
// claim or the ring wrapped. Producers and consumers claim positions
// with relaxed CAS (exclusivity only) and transfer the payload with the
// release store / acquire load on the cell sequence. push() never blocks:
// on a full ring it claims the oldest record from the producer side
// (eviction) and retries.
//
// Invariants (model-checked in mc/protocols.cpp):
//   - a pop()ed record is exactly what some push() wrote (no torn or
//     stale payloads, including across cell reuse after wrap/eviction);
//   - each pushed record is popped at most once; concurrent producers
//     never hand two threads the same cell.
//
// Ordering: the cell-sequence acquire loads and release stores are each
// load-bearing (payloads are plain data ordered only by them); the
// position CASes and position reloads are relaxed and proven minimal.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "lockfree/sites.h"

namespace eum::lockfree {

template <class P, class Record>
class MpmcRing {
 public:
  /// Size the ring to the next power of two >= capacity (>= 2). Not
  /// thread-safe; call before any push/pop.
  void init(std::size_t capacity) {
    const std::size_t size = std::bit_ceil(std::max<std::size_t>(capacity, 2));
    mask_ = size - 1;
    cells_ = std::make_unique<Cell[]>(size);
    for (std::size_t i = 0; i < size; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
    enqueue_pos_.store(0, std::memory_order_relaxed);
    dequeue_pos_.store(0, std::memory_order_relaxed);
  }

  /// Append `record`, evicting the oldest record(s) if the ring is full.
  /// Returns how many records were discarded to make room.
  std::size_t push(const Record& record) {
    std::size_t discarded = 0;
    std::uint64_t pos =
        enqueue_pos_.load(P::template order<Site::ring_push_pos_load>(std::memory_order_relaxed));
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.sequence.load(
          P::template order<Site::ring_push_seq_load>(std::memory_order_acquire));
      const std::int64_t dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(
                pos, pos + 1,
                P::template order<Site::ring_push_claim_cas_ok>(std::memory_order_relaxed),
                P::template order<Site::ring_push_claim_cas_fail>(std::memory_order_relaxed))) {
          cell.record.set(record);
          cell.sequence.store(
              pos + 1, P::template order<Site::ring_push_seq_store>(std::memory_order_release));
          return discarded;
        }
        // CAS failure reloaded `pos`; retry with the fresh slot.
      } else if (dif < 0) {
        // Ring full: discard the oldest record (a consumer-side claim
        // made from the producer) and retry. The claim gives exclusive
        // cell ownership, so skipping the payload read is safe.
        std::uint64_t tail = dequeue_pos_.load(
            P::template order<Site::ring_evict_tail_load>(std::memory_order_relaxed));
        Cell& old = cells_[tail & mask_];
        const std::uint64_t old_seq = old.sequence.load(
            P::template order<Site::ring_evict_seq_load>(std::memory_order_acquire));
        if (static_cast<std::int64_t>(old_seq) - static_cast<std::int64_t>(tail + 1) == 0 &&
            dequeue_pos_.compare_exchange_weak(
                tail, tail + 1,
                P::template order<Site::ring_evict_claim_cas_ok>(std::memory_order_relaxed),
                P::template order<Site::ring_evict_claim_cas_fail>(std::memory_order_relaxed))) {
          old.sequence.store(tail + mask_ + 1, P::template order<Site::ring_evict_seq_store>(
                                                   std::memory_order_release));
          ++discarded;
        }
        pos = enqueue_pos_.load(
            P::template order<Site::ring_push_pos_load>(std::memory_order_relaxed));
      } else {
        pos = enqueue_pos_.load(
            P::template order<Site::ring_push_pos_load>(std::memory_order_relaxed));
      }
    }
  }

  /// Pop the oldest record into `out`; false if the ring is empty.
  bool pop(Record& out) {
    std::uint64_t pos =
        dequeue_pos_.load(P::template order<Site::ring_pop_pos_load>(std::memory_order_relaxed));
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.sequence.load(
          P::template order<Site::ring_pop_seq_load>(std::memory_order_acquire));
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(
                pos, pos + 1,
                P::template order<Site::ring_pop_claim_cas_ok>(std::memory_order_relaxed),
                P::template order<Site::ring_pop_claim_cas_fail>(std::memory_order_relaxed))) {
          out = cell.record.get();
          cell.sequence.store(pos + mask_ + 1, P::template order<Site::ring_pop_seq_store>(
                                                   std::memory_order_release));
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(
            P::template order<Site::ring_pop_pos_load>(std::memory_order_relaxed));
      }
    }
  }

 private:
  struct Cell {
    typename P::template Atomic<std::uint64_t> sequence{0};
    typename P::template Racy<Record> record;
  };

  std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  typename P::template Atomic<std::uint64_t> enqueue_pos_{0};
  typename P::template Atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace eum::lockfree
