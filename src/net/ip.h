// IP address types.
//
// The mapping system works almost exclusively with IPv4 /24 blocks (the
// granularity recommended by the EDNS0 client-subnet draft and used by the
// paper), but the ECS wire format is family-agnostic, so both IPv4 and
// IPv6 are first-class here.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace eum::net {

/// IPv4 address stored in host byte order.
class IpV4Addr {
 public:
  constexpr IpV4Addr() = default;
  constexpr explicit IpV4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr IpV4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (24 - 8 * i));
  }

  /// Network-order byte serialization.
  [[nodiscard]] constexpr std::array<std::uint8_t, 4> bytes() const noexcept {
    return {octet(0), octet(1), octet(2), octet(3)};
  }

  [[nodiscard]] static std::optional<IpV4Addr> parse(std::string_view text) noexcept;
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(IpV4Addr, IpV4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address as 16 network-order bytes.
class IpV6Addr {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr IpV6Addr() = default;
  constexpr explicit IpV6Addr(const Bytes& bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] constexpr const Bytes& bytes() const noexcept { return bytes_; }
  /// The i-th 16-bit group in host order, i in [0, 8).
  [[nodiscard]] constexpr std::uint16_t group(int i) const noexcept {
    return static_cast<std::uint16_t>((std::uint16_t{bytes_[static_cast<std::size_t>(2 * i)]} << 8) |
                                      bytes_[static_cast<std::size_t>(2 * i + 1)]);
  }

  [[nodiscard]] static std::optional<IpV6Addr> parse(std::string_view text) noexcept;
  /// RFC 5952 canonical text form (lowercase, longest zero run compressed).
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IpV6Addr&, const IpV6Addr&) noexcept = default;

 private:
  Bytes bytes_{};
};

/// Address family discriminator matching the ECS wire encoding
/// (RFC 7871 uses IANA address-family numbers: 1 = IPv4, 2 = IPv6).
enum class Family : std::uint16_t { v4 = 1, v6 = 2 };

/// Either-family address.
class IpAddr {
 public:
  constexpr IpAddr() noexcept : storage_(IpV4Addr{}) {}
  constexpr IpAddr(IpV4Addr v4) noexcept : storage_(v4) {}          // NOLINT(google-explicit-constructor)
  constexpr IpAddr(const IpV6Addr& v6) noexcept : storage_(v6) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr Family family() const noexcept {
    return std::holds_alternative<IpV4Addr>(storage_) ? Family::v4 : Family::v6;
  }
  [[nodiscard]] constexpr bool is_v4() const noexcept { return family() == Family::v4; }
  [[nodiscard]] constexpr bool is_v6() const noexcept { return family() == Family::v6; }

  /// Precondition: matching family.
  [[nodiscard]] IpV4Addr v4() const;
  [[nodiscard]] const IpV6Addr& v6() const;

  /// Address width in bits (32 or 128).
  [[nodiscard]] constexpr int bit_width() const noexcept { return is_v4() ? 32 : 128; }

  /// Bit i counting from the most significant bit (bit 0 = top bit).
  [[nodiscard]] bool bit(int i) const;

  /// Parses either family ("1.2.3.4" or "2001:db8::1").
  [[nodiscard]] static std::optional<IpAddr> parse(std::string_view text) noexcept;
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IpAddr&, const IpAddr&) noexcept = default;

 private:
  std::variant<IpV4Addr, IpV6Addr> storage_;
};

}  // namespace eum::net
