#include "net/cidr_aggregation.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace eum::net {

void CidrTable::add(const IpPrefix& cidr) { trie_.insert(cidr, true); }

std::optional<IpPrefix> CidrTable::covering(const IpPrefix& block) const {
  const auto entry = trie_.longest_match_entry(block.address());
  if (!entry) return std::nullopt;
  if (entry->first.length() > block.length()) return std::nullopt;  // more specific than block
  return entry->first;
}

AggregationResult aggregate_blocks(const std::vector<IpPrefix>& blocks, const CidrTable& table) {
  AggregationResult result;
  std::set<IpPrefix> units;
  for (const IpPrefix& block : blocks) {
    if (const auto cidr = table.covering(block)) {
      units.insert(*cidr);
      ++result.covered_blocks;
    } else {
      units.insert(block);
      ++result.uncovered_blocks;
    }
  }
  result.units.assign(units.begin(), units.end());
  return result;
}

std::vector<IpPrefix> minimal_cover(std::vector<IpPrefix> blocks) {
  for (const IpPrefix& b : blocks) {
    if (b.family() != Family::v4) {
      throw std::invalid_argument{"minimal_cover: IPv4 prefixes only"};
    }
  }
  // Repeatedly merge sibling pairs: two /x blocks differing only in bit x-1
  // combine into their /(x-1) parent. Sorting groups siblings adjacently.
  std::sort(blocks.begin(), blocks.end(), [](const IpPrefix& a, const IpPrefix& b) {
    return a.address().v4().value() != b.address().v4().value()
               ? a.address().v4().value() < b.address().v4().value()
               : a.length() < b.length();
  });
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());

  bool merged = true;
  while (merged) {
    merged = false;
    std::vector<IpPrefix> next;
    next.reserve(blocks.size());
    std::size_t i = 0;
    while (i < blocks.size()) {
      if (i + 1 < blocks.size() && blocks[i].length() == blocks[i + 1].length() &&
          blocks[i].length() > 0) {
        const int len = blocks[i].length();
        const IpPrefix parent = blocks[i].supernet(len - 1);
        if (parent == blocks[i + 1].supernet(len - 1) && blocks[i] != blocks[i + 1]) {
          next.push_back(parent);
          i += 2;
          merged = true;
          continue;
        }
      }
      next.push_back(blocks[i]);
      ++i;
    }
    blocks = std::move(next);
    if (merged) {
      std::sort(blocks.begin(), blocks.end(), [](const IpPrefix& a, const IpPrefix& b) {
        return a.address().v4().value() != b.address().v4().value()
                   ? a.address().v4().value() < b.address().v4().value()
                   : a.length() < b.length();
      });
    }
  }
  return blocks;
}

}  // namespace eum::net
