#include "net/prefix.h"

#include <charconv>
#include <stdexcept>

#include "util/strings.h"

namespace eum::net {

namespace {

IpAddr masked(const IpAddr& addr, int length) {
  if (addr.is_v4()) {
    const std::uint32_t mask =
        length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
    return IpV4Addr{addr.v4().value() & mask};
  }
  IpV6Addr::Bytes bytes = addr.v6().bytes();
  for (int i = 0; i < 16; ++i) {
    const int bit_start = i * 8;
    if (bit_start >= length) {
      bytes[static_cast<std::size_t>(i)] = 0;
    } else if (bit_start + 8 > length) {
      const int keep = length - bit_start;
      bytes[static_cast<std::size_t>(i)] &= static_cast<std::uint8_t>(0xFF << (8 - keep));
    }
  }
  return IpV6Addr{bytes};
}

}  // namespace

IpPrefix::IpPrefix(const IpAddr& addr, int length) : addr_(addr), length_(length) {
  if (length < 0 || length > addr.bit_width()) {
    throw std::invalid_argument{"IpPrefix: prefix length out of range for family"};
  }
  addr_ = masked(addr, length);
}

bool IpPrefix::contains(const IpAddr& addr) const noexcept {
  if (addr.family() != family()) return false;
  if (addr_.is_v4()) {
    const std::uint32_t mask = length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
    return (addr.v4().value() & mask) == addr_.v4().value();
  }
  for (int i = 0; i < length_; ++i) {
    if (addr.bit(i) != addr_.bit(i)) return false;
  }
  return true;
}

bool IpPrefix::contains(const IpPrefix& other) const noexcept {
  return other.family() == family() && other.length_ >= length_ && contains(other.addr_);
}

bool IpPrefix::overlaps(const IpPrefix& other) const noexcept {
  return contains(other) || other.contains(*this);
}

IpPrefix IpPrefix::supernet(int new_length) const {
  if (new_length < 0 || new_length > length_) {
    throw std::invalid_argument{"IpPrefix::supernet: new length must be in [0, length()]"};
  }
  return IpPrefix{addr_, new_length};
}

std::uint64_t IpPrefix::v4_size() const {
  if (!addr_.is_v4()) throw std::logic_error{"IpPrefix::v4_size on an IPv6 prefix"};
  return std::uint64_t{1} << (32 - length_);
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IpAddr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  int length = -1;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) return std::nullopt;
  if (length < 0 || length > addr->bit_width()) return std::nullopt;
  return IpPrefix{*addr, length};
}

std::string IpPrefix::to_string() const {
  return addr_.to_string() + util::format("/%d", length_);
}

}  // namespace eum::net
