// Binary radix trie keyed by IP prefixes, with longest-prefix match.
//
// This is the lookup structure behind the geolocation database, the BGP
// CIDR table used for mapping-unit aggregation (paper §5.1), and the
// mapping system's per-unit state. One trie instance stores one address
// family per branch; both families can coexist in one trie.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/prefix.h"

namespace eum::net {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Insert or overwrite the value at `prefix`. Returns true if the prefix
  /// was newly inserted, false if an existing value was replaced.
  bool insert(const IpPrefix& prefix, T value) {
    Node* node = descend_or_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Value stored exactly at `prefix`, if any.
  [[nodiscard]] const T* exact(const IpPrefix& prefix) const noexcept {
    const Node* node = root(prefix.family());
    for (int i = 0; node != nullptr && i < prefix.length(); ++i) {
      node = node->child[prefix.address().bit(i) ? 1 : 0].get();
    }
    return (node && node->value) ? &*node->value : nullptr;
  }

  /// Longest-prefix match for an address: the value whose prefix contains
  /// `addr` and has the greatest length. Returns nullptr if no prefix matches.
  [[nodiscard]] const T* longest_match(const IpAddr& addr) const noexcept {
    const T* best = nullptr;
    const Node* node = root(addr.family());
    for (int i = 0; node != nullptr; ++i) {
      if (node->value) best = &*node->value;
      if (i >= addr.bit_width()) break;
      node = node->child[addr.bit(i) ? 1 : 0].get();
    }
    return best;
  }

  /// Longest-prefix match together with the matched prefix itself.
  [[nodiscard]] std::optional<std::pair<IpPrefix, T>> longest_match_entry(
      const IpAddr& addr) const {
    std::optional<std::pair<IpPrefix, T>> best;
    const Node* node = root(addr.family());
    for (int i = 0; node != nullptr; ++i) {
      if (node->value) best = {IpPrefix{addr, i}, *node->value};
      if (i >= addr.bit_width()) break;
      node = node->child[addr.bit(i) ? 1 : 0].get();
    }
    return best;
  }

  /// Remove the value at `prefix`. Returns true if something was removed.
  /// (Interior nodes are retained; the trie is built-once in practice.)
  bool erase(const IpPrefix& prefix) noexcept {
    Node* node = mutable_root(prefix.family());
    for (int i = 0; node != nullptr && i < prefix.length(); ++i) {
      node = node->child[prefix.address().bit(i) ? 1 : 0].get();
    }
    if (node == nullptr || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Visit every stored (prefix, value) pair in depth-first order.
  void visit(const std::function<void(const IpPrefix&, const T&)>& fn) const {
    visit_family(Family::v4, fn);
    visit_family(Family::v6, fn);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  [[nodiscard]] const Node* root(Family family) const noexcept {
    return family == Family::v4 ? v4_root_.get() : v6_root_.get();
  }
  [[nodiscard]] Node* mutable_root(Family family) noexcept {
    return family == Family::v4 ? v4_root_.get() : v6_root_.get();
  }

  Node* descend_or_create(const IpPrefix& prefix) {
    std::unique_ptr<Node>& root_slot = prefix.family() == Family::v4 ? v4_root_ : v6_root_;
    if (!root_slot) root_slot = std::make_unique<Node>();
    Node* node = root_slot.get();
    for (int i = 0; i < prefix.length(); ++i) {
      auto& slot = node->child[prefix.address().bit(i) ? 1 : 0];
      if (!slot) slot = std::make_unique<Node>();
      node = slot.get();
    }
    return node;
  }

  void visit_family(Family family, const std::function<void(const IpPrefix&, const T&)>& fn) const {
    const Node* start = root(family);
    if (start == nullptr) return;
    // Iterative DFS carrying the path bits; avoids deep recursion on /128 chains.
    struct Frame {
      const Node* node;
      IpV6Addr::Bytes path;  ///< big enough for either family
      int depth;
    };
    std::vector<Frame> stack;
    stack.push_back({start, {}, 0});
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      if (frame.node->value) {
        fn(make_prefix(family, frame.path, frame.depth), *frame.node->value);
      }
      for (int b = 1; b >= 0; --b) {
        if (const Node* child = frame.node->child[b].get()) {
          Frame next{child, frame.path, frame.depth + 1};
          if (b == 1) {
            next.path[static_cast<std::size_t>(frame.depth / 8)] |=
                static_cast<std::uint8_t>(1U << (7 - frame.depth % 8));
          }
          stack.push_back(next);
        }
      }
    }
  }

  [[nodiscard]] static IpPrefix make_prefix(Family family, const IpV6Addr::Bytes& path,
                                            int depth) {
    if (family == Family::v4) {
      const std::uint32_t value = (std::uint32_t{path[0]} << 24) | (std::uint32_t{path[1]} << 16) |
                                  (std::uint32_t{path[2]} << 8) | std::uint32_t{path[3]};
      return IpPrefix{IpV4Addr{value}, depth};
    }
    return IpPrefix{IpV6Addr{path}, depth};
  }

  std::unique_ptr<Node> v4_root_;
  std::unique_ptr<Node> v6_root_;
  std::size_t size_ = 0;
};

}  // namespace eum::net
