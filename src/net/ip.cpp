#include "net/ip.h"

#include <charconv>
#include <stdexcept>

#include "util/strings.h"

namespace eum::net {

namespace {

/// Parse a decimal integer in [0, max]; returns nullopt on any deviation.
std::optional<std::uint32_t> parse_decimal(std::string_view text, std::uint32_t max) noexcept {
  if (text.empty() || text.size() > 10) return std::nullopt;
  // Reject leading '+'/'-'/spaces; from_chars already rejects them, but also
  // reject leading zeros like "01" which inet_aton would read as octal.
  if (text.size() > 1 && text.front() == '0') return std::nullopt;
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value > max) return std::nullopt;
  return value;
}

std::optional<std::uint16_t> parse_hex_group(std::string_view text) noexcept {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint16_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<IpV4Addr> IpV4Addr::parse(std::string_view text) noexcept {
  const auto fields = util::split(text, '.');
  if (fields.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto field : fields) {
    const auto octet = parse_decimal(field, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  return IpV4Addr{value};
}

std::string IpV4Addr::to_string() const {
  return util::format("%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
}

std::optional<IpV6Addr> IpV6Addr::parse(std::string_view text) noexcept {
  // Handle the optional "::" compression by splitting into head/tail parts.
  std::string_view head = text;
  std::string_view tail;
  bool compressed = false;
  if (const auto pos = text.find("::"); pos != std::string_view::npos) {
    if (text.find("::", pos + 1) != std::string_view::npos) return std::nullopt;  // two "::"
    compressed = true;
    head = text.substr(0, pos);
    tail = text.substr(pos + 2);
  }

  const auto parse_groups = [](std::string_view part, std::vector<std::uint16_t>& out) -> bool {
    if (part.empty()) return true;
    for (const auto group : util::split(part, ':')) {
      const auto value = parse_hex_group(group);
      if (!value) return false;
      out.push_back(*value);
    }
    return true;
  };

  std::vector<std::uint16_t> head_groups;
  std::vector<std::uint16_t> tail_groups;
  if (!parse_groups(head, head_groups) || !parse_groups(tail, tail_groups)) return std::nullopt;

  const std::size_t total = head_groups.size() + tail_groups.size();
  if (compressed ? total > 7 : total != 8) return std::nullopt;

  Bytes bytes{};
  std::size_t gi = 0;
  for (const std::uint16_t g : head_groups) {
    bytes[2 * gi] = static_cast<std::uint8_t>(g >> 8);
    bytes[2 * gi + 1] = static_cast<std::uint8_t>(g);
    ++gi;
  }
  gi = 8 - tail_groups.size();
  for (const std::uint16_t g : tail_groups) {
    bytes[2 * gi] = static_cast<std::uint8_t>(g >> 8);
    bytes[2 * gi + 1] = static_cast<std::uint8_t>(g);
    ++gi;
  }
  return IpV6Addr{bytes};
}

std::string IpV6Addr::to_string() const {
  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ":";
    out += util::format("%x", group(i));
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

IpV4Addr IpAddr::v4() const {
  if (!is_v4()) throw std::logic_error{"IpAddr::v4 on an IPv6 address"};
  return std::get<IpV4Addr>(storage_);
}

const IpV6Addr& IpAddr::v6() const {
  if (!is_v6()) throw std::logic_error{"IpAddr::v6 on an IPv4 address"};
  return std::get<IpV6Addr>(storage_);
}

bool IpAddr::bit(int i) const {
  if (i < 0 || i >= bit_width()) throw std::out_of_range{"IpAddr::bit: index out of range"};
  if (is_v4()) return (v4().value() >> (31 - i)) & 1U;
  const auto& bytes = v6().bytes();
  return (bytes[static_cast<std::size_t>(i / 8)] >> (7 - i % 8)) & 1U;
}

std::optional<IpAddr> IpAddr::parse(std::string_view text) noexcept {
  if (text.find(':') != std::string_view::npos) {
    if (const auto v6 = IpV6Addr::parse(text)) return IpAddr{*v6};
    return std::nullopt;
  }
  if (const auto v4 = IpV4Addr::parse(text)) return IpAddr{*v4};
  return std::nullopt;
}

std::string IpAddr::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

}  // namespace eum::net
