// Mapping-unit aggregation (paper §5.1).
//
// End-user mapping at /24 granularity needs to track 3.76M units; the
// paper reduces this to 444K by merging /24 blocks that fall inside the
// same BGP-announced CIDR, "since they are likely proximal in the network
// sense." `CidrTable` models the BGP feed; `aggregate_blocks` performs the
// merge; `minimal_cover` additionally collapses adjacent sibling blocks.
#pragma once

#include <cstddef>
#include <vector>

#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace eum::net {

/// A set of BGP-announced CIDRs supporting covering-CIDR queries.
class CidrTable {
 public:
  CidrTable() = default;

  /// Add an announced CIDR. Duplicates are ignored.
  void add(const IpPrefix& cidr);

  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }

  /// The most specific announced CIDR covering `block`, if any.
  /// (Covering means the CIDR contains the block's base address and the
  /// CIDR is no more specific than the block.)
  [[nodiscard]] std::optional<IpPrefix> covering(const IpPrefix& block) const;

 private:
  PrefixTrie<bool> trie_;
};

/// Result of aggregating client blocks by BGP CIDR.
struct AggregationResult {
  /// One mapping unit per element; a unit is either a covering CIDR (shared
  /// by all its blocks) or an uncovered original block.
  std::vector<IpPrefix> units;
  std::size_t covered_blocks = 0;    ///< blocks merged into an announced CIDR
  std::size_t uncovered_blocks = 0;  ///< blocks kept as their own unit
};

/// Merge /x client blocks into BGP-CIDR mapping units (paper §5.1).
[[nodiscard]] AggregationResult aggregate_blocks(const std::vector<IpPrefix>& blocks,
                                                 const CidrTable& table);

/// Collapse a set of same-family prefixes into the minimal set of prefixes
/// covering exactly the same address space (sibling merge). Input blocks
/// must be non-overlapping. IPv4 only.
[[nodiscard]] std::vector<IpPrefix> minimal_cover(std::vector<IpPrefix> blocks);

}  // namespace eum::net
