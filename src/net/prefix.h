// IP prefixes (CIDR blocks).
//
// A /x client IP block — "the set of IPs that have the same first x bits
// as the client's IP" (paper §2.1) — is the unit of end-user mapping.
// Prefixes are stored canonicalized: host bits below the prefix length
// are zero, so equal blocks compare equal.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.h"
#include "util/hash.h"

namespace eum::net {

class IpPrefix {
 public:
  /// The default prefix is 0.0.0.0/0.
  IpPrefix() noexcept : addr_(IpV4Addr{}), length_(0) {}

  /// Canonicalizes by zeroing bits below `length`.
  /// Throws std::invalid_argument if length exceeds the family's bit width.
  IpPrefix(const IpAddr& addr, int length);

  [[nodiscard]] const IpAddr& address() const noexcept { return addr_; }
  [[nodiscard]] int length() const noexcept { return length_; }
  [[nodiscard]] Family family() const noexcept { return addr_.family(); }

  /// True if `addr` lies inside this block (families must match).
  [[nodiscard]] bool contains(const IpAddr& addr) const noexcept;
  /// True if `other` is equal to or more specific than this block.
  [[nodiscard]] bool contains(const IpPrefix& other) const noexcept;
  /// True if the two blocks share any address.
  [[nodiscard]] bool overlaps(const IpPrefix& other) const noexcept;

  /// The enclosing prefix of the given (shorter or equal) length.
  /// Throws std::invalid_argument if new_length > length().
  [[nodiscard]] IpPrefix supernet(int new_length) const;

  /// Number of addresses in an IPv4 block; throws for IPv6 (may exceed 64 bits).
  [[nodiscard]] std::uint64_t v4_size() const;

  /// "10.0.0.0/8" style parse/format.
  [[nodiscard]] static std::optional<IpPrefix> parse(std::string_view text) noexcept;
  [[nodiscard]] std::string to_string() const;

  /// Convenience: the /x block containing `addr`.
  [[nodiscard]] static IpPrefix block_of(const IpAddr& addr, int length) {
    return IpPrefix{addr, length};
  }

  friend bool operator==(const IpPrefix&, const IpPrefix&) noexcept = default;
  friend auto operator<=>(const IpPrefix&, const IpPrefix&) noexcept = default;

 private:
  IpAddr addr_;
  int length_;
};

/// Stable hash for unordered containers keyed by prefix.
struct IpPrefixHash {
  [[nodiscard]] std::size_t operator()(const IpPrefix& prefix) const noexcept {
    std::uint64_t h = util::mix64(static_cast<std::uint64_t>(prefix.length()) |
                                  (static_cast<std::uint64_t>(prefix.family()) << 8));
    if (prefix.family() == Family::v4) {
      h = util::hash_combine(h, prefix.address().v4().value());
    } else {
      const auto& bytes = prefix.address().v6().bytes();
      for (std::size_t i = 0; i < 16; i += 8) {
        std::uint64_t word = 0;
        for (std::size_t j = 0; j < 8; ++j) word = (word << 8) | bytes[i + j];
        h = util::hash_combine(h, word);
      }
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace eum::net
