// Client-LDNS pairing discovery (paper §3.1, the NetSession measurement).
//
// "NetSession clients also found their LDNS server performing a 'dig'
// command on a special Akamai name whoami.akamai.net. The client-LDNS
// association was then sent to Akamai's cloud storage ... for each /24
// client IP block, the process generates the set of IPs corresponding to
// the LDNSes used by the clients in that address block [with] relative
// frequency."
//
// This module is that pipeline, run over the real DNS stack: a whoami
// authoritative service answers each query with the unicast address of
// the resolver that asked; instrumented clients resolve it through their
// actual LDNS; the answers aggregate into per-/24 LDNS sets with
// frequencies — which can then be validated against the world's ground
// truth.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dnsserver/authoritative.h"
#include "topo/world.h"

namespace eum::measure {

/// A dynamic-answer handler that echoes the querying resolver's address:
/// an A record carrying the LDNS unicast IP (TTL 0 so downstream caches
/// never blur the association). Attach it to the measurement domain.
[[nodiscard]] dnsserver::DynamicAnswerFn whoami_handler();

struct PairingConfig {
  /// Blocks sampled for instrumentation (the NetSession install base);
  /// sampled by demand weight. 0 = every block.
  std::size_t sample_blocks = 2000;
  /// Lookups performed per instrumented block (clients repeat the dig).
  int lookups_per_block = 4;
  std::uint64_t seed = 31;
};

struct DiscoveredLdns {
  net::IpAddr address;
  double frequency = 0.0;  ///< relative frequency within the block
};

struct PairingResult {
  /// Per-/24 discovered LDNS sets.
  std::unordered_map<topo::BlockId, std::vector<DiscoveredLdns>> by_block;
  std::uint64_t lookups = 0;

  /// Fraction of discovered (block, LDNS) associations present in the
  /// world's ground-truth client-LDNS map.
  [[nodiscard]] double accuracy(const topo::World& world) const;
  /// Fraction of ground-truth associations of the sampled blocks that the
  /// discovery recovered.
  [[nodiscard]] double recall(const topo::World& world) const;
};

/// Run the discovery: stand up a whoami authority, drive each sampled
/// block's stub through its (ground-truth) resolvers, and aggregate what
/// the authority reports back. The world only supplies *which* resolver a
/// stub is configured with; the association data flows entirely through
/// DNS messages, as in the paper.
[[nodiscard]] PairingResult discover_client_ldns_pairs(const topo::World& world,
                                                       const PairingConfig& config = {});

}  // namespace eum::measure
