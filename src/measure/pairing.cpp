#include "measure/pairing.h"

#include <algorithm>

#include "dnsserver/resolver.h"
#include "dnsserver/transport.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace eum::measure {

namespace {

const dns::DnsName& whoami_name() {
  static const dns::DnsName name = dns::DnsName::from_text("whoami.cdn.example");
  return name;
}

}  // namespace

dnsserver::DynamicAnswerFn whoami_handler() {
  return [](const dnsserver::DynamicQuery& query) -> std::optional<dnsserver::DynamicAnswer> {
    dnsserver::DynamicAnswer answer;
    answer.addresses = {query.resolver};
    answer.ttl = 0;          // never reuse across clients of another resolver
    answer.ecs_scope_len = 0;  // the answer does not depend on the client
    return answer;
  };
}

double PairingResult::accuracy(const topo::World& world) const {
  std::size_t correct = 0;
  std::size_t total = 0;
  for (const auto& [block_id, discovered] : by_block) {
    const topo::ClientBlock& block = world.blocks.at(block_id);
    for (const DiscoveredLdns& entry : discovered) {
      ++total;
      const topo::Ldns* ldns = world.ldns_by_address(entry.address);
      if (ldns == nullptr) continue;
      for (const topo::LdnsUse& use : world.ldns_uses(block)) {
        if (use.ldns == ldns->id) {
          ++correct;
          break;
        }
      }
    }
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

double PairingResult::recall(const topo::World& world) const {
  std::size_t recovered = 0;
  std::size_t total = 0;
  for (const auto& [block_id, discovered] : by_block) {
    const topo::ClientBlock& block = world.blocks.at(block_id);
    for (const topo::LdnsUse& use : world.ldns_uses(block)) {
      ++total;
      const net::IpAddr& truth = world.ldnses[use.ldns].address;
      for (const DiscoveredLdns& entry : discovered) {
        if (entry.address == truth) {
          ++recovered;
          break;
        }
      }
    }
  }
  return total > 0 ? static_cast<double>(recovered) / static_cast<double>(total) : 0.0;
}

PairingResult discover_client_ldns_pairs(const topo::World& world,
                                         const PairingConfig& config) {
  if (config.lookups_per_block <= 0) {
    throw std::invalid_argument{"discover_client_ldns_pairs: need at least one lookup"};
  }
  util::Rng rng{config.seed};
  util::SimClock clock;

  dnsserver::AuthoritativeServer authority;
  authority.add_dynamic_domain(whoami_name(), whoami_handler());
  dnsserver::AuthorityDirectory directory;
  directory.add_authority(whoami_name(), &authority);

  // One recursive resolver instance per LDNS, created on demand.
  std::unordered_map<topo::LdnsId, std::unique_ptr<dnsserver::RecursiveResolver>> resolvers;
  const auto resolver_for = [&](const topo::Ldns& ldns) -> dnsserver::RecursiveResolver& {
    auto& slot = resolvers[ldns.id];
    if (!slot) {
      dnsserver::ResolverConfig resolver_config;
      resolver_config.ecs_enabled = ldns.supports_ecs;
      slot = std::make_unique<dnsserver::RecursiveResolver>(resolver_config, &clock,
                                                            &directory, ldns.address);
    }
    return *slot;
  };

  // Sample instrumented blocks by demand.
  std::vector<topo::BlockId> sampled;
  if (config.sample_blocks == 0 || config.sample_blocks >= world.blocks.size()) {
    sampled.resize(world.blocks.size());
    for (topo::BlockId b = 0; b < world.blocks.size(); ++b) sampled[b] = b;
  } else {
    std::vector<double> weights;
    weights.reserve(world.blocks.size());
    for (const topo::ClientBlock& block : world.blocks) weights.push_back(block.demand);
    const util::WeightedPicker picker{weights};
    std::unordered_map<topo::BlockId, bool> chosen;
    while (chosen.size() < config.sample_blocks) {
      chosen.emplace(static_cast<topo::BlockId>(picker.pick(rng)), true);
    }
    sampled.reserve(chosen.size());
    for (const auto& [id, _] : chosen) sampled.push_back(id);
    std::sort(sampled.begin(), sampled.end());
  }

  PairingResult result;
  for (const topo::BlockId block_id : sampled) {
    const topo::ClientBlock& block = world.blocks[block_id];
    std::vector<double> use_weights;
    for (const topo::LdnsUse& use : world.ldns_uses(block)) use_weights.push_back(use.fraction);
    const util::WeightedPicker use_picker{use_weights};

    std::unordered_map<std::uint32_t, int> observed;  // v4 address -> count
    std::vector<net::IpAddr> observed_order;
    for (int q = 0; q < config.lookups_per_block; ++q) {
      // The stub picks whichever resolver its block uses for this lookup
      // (dual-configured stubs rotate), then digs the whoami name.
      const topo::Ldns& ldns = world.ldnses[world.ldns_uses(block)[use_picker.pick(rng)].ldns];
      dnsserver::StubClient stub{
          &resolver_for(ldns),
          net::IpAddr{net::IpV4Addr{block.prefix.address().v4().value() +
                                    static_cast<std::uint32_t>(rng.below(254)) + 1}}};
      const auto addresses = stub.lookup(whoami_name());
      ++result.lookups;
      clock.advance(1);  // whoami answers are TTL-0; keep time moving
      if (addresses.empty() || !addresses.front().is_v4()) continue;
      const std::uint32_t key = addresses.front().v4().value();
      if (observed.emplace(key, 0).second) observed_order.push_back(addresses.front());
      ++observed[key];
    }

    std::vector<DiscoveredLdns> discovered;
    for (const net::IpAddr& address : observed_order) {
      DiscoveredLdns entry;
      entry.address = address;
      entry.frequency = static_cast<double>(observed[address.v4().value()]) /
                        static_cast<double>(config.lookups_per_block);
      discovered.push_back(entry);
    }
    result.by_block.emplace(block_id, std::move(discovered));
  }
  return result;
}

}  // namespace eum::measure
