// Real User Measurement simulation (paper §4.2).
//
// The paper's RUM system runs JavaScript in client browsers and reports
// navigation/resource timings. Here a "session" is one synthetic page
// download: the mapping system assigns servers (by LDNS or by client
// block, depending on whether the session went through end-user mapping),
// and the timing metrics are derived from the latency and TCP models.
// Qualified sessions (the roll-out's measurement population) are those of
// clients using public resolvers.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cdn/mapping.h"
#include "measure/tcp_model.h"
#include "topo/latency.h"
#include "topo/world.h"
#include "util/rng.h"

namespace eum::measure {

struct RumConfig {
  TcpParams tcp;
  /// Last-mile access-network RTT added to every client measurement
  /// (2014-era DSL/cable/3G mix): lognormal, stable per client block.
  /// The infrastructure latency model alone describes router-to-router
  /// paths; real RUM RTTs include the access network.
  double access_latency_median_ms = 55.0;
  double access_latency_sigma = 0.5;
  /// Server-side page construction time: lognormal with this mean (ms).
  /// Includes overlay-assisted origin fetches; NOT improved by mapping.
  double server_construction_mean_ms = 400.0;
  double server_construction_sigma = 0.45;
  /// Embedded page content size: lognormal with this median (bytes).
  double page_bytes_median = 90'000.0;
  double page_bytes_sigma = 0.7;
  /// Domains measured (spreads local load-balancing decisions).
  std::vector<std::string> domains = {"www.retail.example",  "img.media.example",
                                      "www.travel.example",  "cdn.social.example",
                                      "dl.software.example", "www.bank.example"};
};

struct RumSample {
  topo::BlockId block = 0;
  topo::LdnsId ldns = 0;
  topo::CountryId country = 0;
  bool used_end_user_mapping = false;
  double demand_weight = 0.0;
  double mapping_distance_miles = 0.0;
  double rtt_ms = 0.0;
  double ttfb_ms = 0.0;
  double download_ms = 0.0;
};

class RumSimulator {
 public:
  /// All pointers borrowed; must outlive the simulator. The mapping
  /// system should be built over the same world.
  RumSimulator(const topo::World* world, cdn::MappingSystem* mapping,
               const topo::LatencyModel* latency, RumConfig config = {});

  /// Run one session for a specific (block, LDNS) pair. `end_user` selects
  /// whether the mapping decision used the client block (ECS) or the LDNS.
  /// Returns nullopt if the mapping system could not assign a server.
  [[nodiscard]] std::optional<RumSample> session(topo::BlockId block, topo::LdnsId ldns,
                                                 bool end_user, util::Rng& rng);

  /// One session from the qualified population (public-resolver users),
  /// picked by demand weight.
  [[nodiscard]] std::optional<RumSample> sample_qualified(bool end_user, util::Rng& rng);

  /// Pick one qualified (block, LDNS) pair by demand weight without
  /// running the session — the roll-out drives the end-user decision per
  /// resolver (control::RolloutController), so the pair must be known
  /// before the mapping policy is chosen.
  [[nodiscard]] std::optional<std::pair<topo::BlockId, topo::LdnsId>> sample_qualified_pair(
      util::Rng& rng) const;

  /// The qualified (block, LDNS) pairs.
  [[nodiscard]] const std::vector<std::pair<topo::BlockId, topo::LdnsId>>& qualified_pairs()
      const noexcept {
    return qualified_;
  }

 private:
  const topo::World* world_;
  cdn::MappingSystem* mapping_;
  const topo::LatencyModel* latency_;
  RumConfig config_;
  std::vector<std::pair<topo::BlockId, topo::LdnsId>> qualified_;
  util::WeightedPicker qualified_picker_;
};

}  // namespace eum::measure
