// Page-timing models for the RUM metrics (paper §4.1).
//
// Two client-observed quantities depend on the edge-server choice:
//
//  * TTFB — "duration from when the client makes a HTTP request for the
//    base web page to when the first byte ... was received". We model it
//    as kTtfbRttRounds client-server round trips (TCP handshake, the
//    request itself, and one edge revalidation round trip) plus the
//    server-side page-construction time, which end-user mapping does NOT
//    improve (dynamic pages are assembled with origin help over the
//    overlay, §4.1 metric 3). With the paper's numbers (high-expectation
//    mean RTT 200->100 ms while TTFB went 1000->700 ms) the implied
//    RTT multiplier is 3.0 and construction time ~400 ms.
//
//  * Content download time — embedded static content, "dominated by
//    client-server latencies" (§4.1 metric 4). Modelled as TCP slow-start
//    rounds over parallel connections plus serialization at the client's
//    access bandwidth.
#pragma once

#include <cstddef>

namespace eum::measure {

struct TcpParams {
  std::size_t mss_bytes = 1460;
  std::size_t initial_cwnd_segments = 10;  ///< IW10, standard since 2013
  /// Browsers fetch embedded content over several concurrent connections;
  /// this divides the effective rounds needed.
  double parallel_connections = 4.0;
  /// Client access bandwidth, bytes/second (serialization floor).
  double client_bandwidth_bps = 2.0e6;
};

/// Round trips (including handshake) a client pays before the first byte
/// of a dynamic page arrives. See header comment for the calibration.
inline constexpr double kTtfbRttRounds = 3.0;

/// Number of slow-start rounds to move `bytes` with the given parameters
/// (fractional; parallelism splits the object across connections).
[[nodiscard]] double slow_start_rounds(std::size_t bytes, const TcpParams& params = {});

/// Content download time in ms for `bytes` of embedded page content.
[[nodiscard]] double download_time_ms(double rtt_ms, std::size_t bytes,
                                      const TcpParams& params = {});

/// Time to first byte in ms given the client-server RTT and the
/// server-side page construction time.
[[nodiscard]] double ttfb_ms(double rtt_ms, double server_construction_ms);

}  // namespace eum::measure
