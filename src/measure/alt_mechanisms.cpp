#include "measure/alt_mechanisms.h"

#include <cmath>

#include "geo/coords.h"
#include "util/hash.h"

namespace eum::measure {

namespace {

/// Client-observed RTT to a deployment: infrastructure path + the
/// block's stable access-network latency (same recipe as RumSimulator).
double client_rtt_ms(const topo::World& world, const topo::LatencyModel& latency,
                     const topo::ClientBlock& block, const cdn::Deployment& deployment,
                     const RumConfig& config, util::Rng& rng) {
  const std::uint64_t salt = util::hash_combine(util::mix64(0x2077 + block.id),
                                                static_cast<std::uint64_t>(deployment.site_id));
  const std::uint64_t access_bits = util::mix64(0xacce55 + block.id);
  const double u1 = (static_cast<double>(access_bits >> 11) + 1.0) * 0x1.0p-53;
  const double u2 =
      static_cast<double>(util::mix64(access_bits + 0x9e3779b97f4a7c15ULL) >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double access_ms =
      std::exp(std::log(config.access_latency_median_ms) + config.access_latency_sigma * z);
  (void)world;
  return latency.measure_rtt_ms(block.location, deployment.location, salt, rng) + access_ms;
}

}  // namespace

std::string to_string(RoutingMechanism mechanism) {
  switch (mechanism) {
    case RoutingMechanism::ns_dns: return "NS-based DNS";
    case RoutingMechanism::eu_dns: return "end-user DNS (ECS)";
    case RoutingMechanism::http_redirect: return "HTTP redirect";
    case RoutingMechanism::metafile: return "metafile redirect";
  }
  return "?";
}

std::optional<MechanismOutcome> price_download(RoutingMechanism mechanism,
                                               const topo::World& world,
                                               cdn::MappingSystem& mapping,
                                               const topo::LatencyModel& latency,
                                               topo::BlockId block_id, topo::LdnsId ldns,
                                               std::size_t payload_bytes,
                                               const RumConfig& config, util::Rng& rng) {
  const topo::ClientBlock& block = world.blocks.at(block_id);
  const std::string& domain = config.domains[rng.below(config.domains.size())];

  const auto deployment_of = [&](const cdn::MapResult& result) -> const cdn::Deployment& {
    return mapping.network().deployments()[result.deployment];
  };

  // The two underlying assignments: by LDNS identity and by client block.
  const auto ns_result = mapping.map_ldns(ldns, domain);
  const auto eu_result = mapping.map_block(block_id, domain);
  if (!ns_result || !eu_result) return std::nullopt;
  const double ns_rtt = client_rtt_ms(world, latency, block, deployment_of(*ns_result),
                                      config, rng);
  const double eu_rtt = client_rtt_ms(world, latency, block, deployment_of(*eu_result),
                                      config, rng);

  MechanismOutcome outcome;
  switch (mechanism) {
    case RoutingMechanism::ns_dns:
      // Connect (1 RTT) + request reaches server and first byte returns.
      outcome.startup_ms = 2.0 * ns_rtt;
      outcome.delivery_rtt_ms = ns_rtt;
      break;
    case RoutingMechanism::eu_dns:
      outcome.startup_ms = 2.0 * eu_rtt;
      outcome.delivery_rtt_ms = eu_rtt;
      break;
    case RoutingMechanism::http_redirect:
      // Full exchange with the NS-mapped first server (connect + request
      // + 302 response), then a fresh connect/request to the good one.
      outcome.startup_ms = 2.0 * ns_rtt + 2.0 * eu_rtt;
      outcome.delivery_rtt_ms = eu_rtt;
      break;
    case RoutingMechanism::metafile: {
      // The metafile itself is a small object from the NS-mapped server;
      // its transfer is one extra round trip on top of the exchange.
      constexpr std::size_t kMetafileBytes = 2'000;
      outcome.startup_ms = 2.0 * ns_rtt + download_time_ms(ns_rtt, kMetafileBytes, config.tcp) +
                           2.0 * eu_rtt;
      outcome.delivery_rtt_ms = eu_rtt;
      break;
    }
  }
  outcome.transfer_ms = download_time_ms(outcome.delivery_rtt_ms, payload_bytes, config.tcp);
  return outcome;
}

}  // namespace eum::measure
