// Client/LDNS population analyses (paper §3 and §5.1).
//
// These are the computations behind Figures 5-11, 21 and 22: demand-
// weighted client-LDNS distances, per-LDNS client clusters (centroid,
// radius), demand-coverage curves, and /x-prefix cluster sweeps. They are
// library functions (not bench-only code) because the mapping system's
// CANS policy and the roll-out simulator reuse them.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "stats/sample.h"
#include "topo/world.h"

namespace eum::measure {

struct DistanceFilter {
  /// Restrict to demand flowing through public resolvers.
  bool public_only = false;
  /// Restrict to one country.
  std::optional<topo::CountryId> country;
};

/// Demand-weighted sample of client-LDNS great-circle distances. Each
/// (block, LDNS-use) pair contributes its demand share at the distance
/// between the block and that LDNS (§3.2).
[[nodiscard]] stats::WeightedSample client_ldns_distance_sample(const topo::World& world,
                                                                const DistanceFilter& filter = {});

/// Fraction of a country's demand that flows through public resolvers
/// (Figure 9); country = nullopt gives the worldwide fraction.
[[nodiscard]] double public_resolver_share(const topo::World& world,
                                           std::optional<topo::CountryId> country = std::nullopt);

/// The paper's §4.1.1 split: a country is "high expectation" when the
/// median client-LDNS distance of its public-resolver users exceeds
/// 1000 miles. Returns one flag per country index.
[[nodiscard]] std::vector<bool> high_expectation_countries(const topo::World& world,
                                                           double threshold_miles = 1000.0);

/// Per-LDNS client-cluster statistics (§3.3): demand-weighted centroid
/// radius and mean client-LDNS distance.
struct ClusterStats {
  double radius_miles = 0.0;
  double mean_client_ldns_miles = 0.0;
  double demand = 0.0;
};
[[nodiscard]] std::unordered_map<topo::LdnsId, ClusterStats> ldns_clusters(
    const topo::World& world);

/// Demand-coverage curve (Figure 21): with units sorted by decreasing
/// demand, how many are needed to cover a given demand fraction.
struct CoverageCurve {
  /// Demand of each unit, sorted descending.
  std::vector<double> sorted_demand;
  /// Units needed to reach `fraction` of total demand.
  [[nodiscard]] std::size_t units_for_fraction(double fraction) const;
  [[nodiscard]] double total() const;
};
[[nodiscard]] CoverageCurve block_coverage(const topo::World& world);
[[nodiscard]] CoverageCurve ldns_coverage(const topo::World& world);

/// /x-prefix cluster sweep (Figure 22): group blocks into /x units and
/// report the per-unit radius sample (demand-weighted) and unit count.
struct PrefixClusterSweep {
  int prefix_len = 24;
  std::size_t cluster_count = 0;
  stats::WeightedSample radii;  ///< weighted by cluster demand
};
[[nodiscard]] PrefixClusterSweep prefix_clusters(const topo::World& world, int prefix_len);

/// Mapping-unit count after BGP-CIDR aggregation of the /24 blocks (§5.1).
[[nodiscard]] std::size_t bgp_aggregated_unit_count(const topo::World& world);

}  // namespace eum::measure
